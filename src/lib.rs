//! # remos — facade crate
//!
//! Re-exports the whole Remos reproduction workspace under one roof so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`net`] — the fluid flow-level network simulator (testbed substitute);
//! * [`snmp`] — the SNMP-like agent/manager substrate;
//! * [`core`] — the Remos API itself: Collector, Modeler, flow queries,
//!   logical topology, quartile statistics;
//! * [`fx`] — the Fx-like data-parallel runtime, clustering, and the
//!   adaptation module;
//! * [`apps`] — FFT and Airshed application models, background traffic
//!   scenarios, and testbed builders;
//! * [`obs`] — the observability layer: metrics registry, structured
//!   trace recorder, and the shared [`obs::Obs`] handle;
//! * [`serve`] — the overload-safe serving front end: admission control,
//!   per-tenant quotas, deadline budgets, load shedding, and collector
//!   circuit breakers.
//!
//! See the repository README for a quickstart and DESIGN.md for the full
//! system inventory.

pub use remos_apps as apps;
pub use remos_core as core;
pub use remos_fx as fx;
pub use remos_net as net;
pub use remos_obs as obs;
pub use remos_serve as serve;
pub use remos_snmp as snmp;

/// One-stop imports for query-writing applications:
/// `use remos::prelude::*;` (re-exports [`remos_core::prelude`] plus the
/// observability handle).
pub mod prelude {
    pub use remos_core::prelude::*;
    pub use remos_obs::Obs;
}
