//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary prints a human-readable table mirroring the paper's and,
//! with `--json`, machine-readable rows consumed by the EXPERIMENTS.md
//! tooling. The [`experiments`] module holds the shared experiment
//! definitions (rows, node sets, paper values) used by both the table
//! binaries and the `report` generator.

pub mod churn;
pub mod experiments;

use remos_apps::TestbedHarness;
use remos_fx::runtime::ExecutionReport;
use serde::Serialize;

/// One experiment cell in machine-readable form.
#[derive(Debug, Serialize)]
pub struct Cell {
    /// Experiment id (e.g. "table1").
    pub experiment: &'static str,
    /// Row label (e.g. "FFT (512) x2").
    pub row: String,
    /// Column label (e.g. "remos-selected").
    pub column: String,
    /// Node set used.
    pub nodes: Vec<String>,
    /// Execution time in simulated seconds.
    pub seconds: f64,
    /// Migrations performed, if adaptive.
    pub migrations: usize,
}

impl Cell {
    /// Build a cell from an execution report.
    pub fn from_report(
        experiment: &'static str,
        row: &str,
        column: &str,
        nodes: &[String],
        rep: &ExecutionReport,
    ) -> Cell {
        Cell {
            experiment,
            row: row.to_string(),
            column: column.to_string(),
            nodes: nodes.to_vec(),
            seconds: rep.elapsed,
            migrations: rep.migrations.len(),
        }
    }
}

/// True when `--json` was passed.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Emit a cell as a JSON line if in JSON mode.
pub fn emit(cell: &Cell) {
    if json_mode() {
        println!("{}", serde_json::to_string(cell).expect("cell serializes"));
    }
}

/// Order-sensitive FNV-style fold of a digest list into one u64, shared
/// by the bench binaries that fingerprint multi-answer runs.
pub fn fold_digests(ds: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for d in ds {
        h ^= d;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Percent increase of `b` over `a`.
pub fn pct_increase(a: f64, b: f64) -> f64 {
    (b / a - 1.0) * 100.0
}

/// Compact node-set rendering: `m-4,5,6` style like the paper's tables.
pub fn nodeset(nodes: &[String]) -> String {
    let suffixes: Vec<String> = nodes
        .iter()
        .map(|n| n.strip_prefix("m-").unwrap_or(n).to_string())
        .collect();
    let mut sorted = suffixes;
    sorted.sort_by_key(|s| s.parse::<u32>().unwrap_or(u32::MAX));
    format!("m-{}", sorted.join(","))
}

/// A fresh CMU-testbed harness (one per measurement so runs are
/// independent, like separate program invocations on the real testbed).
pub fn fresh_harness() -> TestbedHarness {
    TestbedHarness::cmu()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct() {
        assert!((pct_increase(1.0, 1.5) - 50.0).abs() < 1e-12);
        assert!((pct_increase(2.0, 1.0) + 50.0).abs() < 1e-12);
    }

    #[test]
    fn nodeset_formatting() {
        let nodes: Vec<String> =
            ["m-5", "m-4", "m-1"].iter().map(|s| s.to_string()).collect();
        assert_eq!(nodeset(&nodes), "m-1,4,5");
    }
}
