//! Query-path benchmark: plan-cache warm vs cold graph queries, and
//! batched vs sequential query serving, written to `BENCH_query.json`
//! so future changes have a recorded perf baseline.
//!
//! Two scenarios over the pod network from `remos_bench::churn`:
//!
//! * **repeated_query** — the same all-hosts graph query answered over
//!   and over against an unchanged topology. Cold mode
//!   (`plan_cache_capacity: 0`) rebuilds routing + logicalization every
//!   time; warm mode (default capacity) hits the epoch-keyed plan cache
//!   and only re-annotates samples. The ISSUE's ≥5× acceptance bar is
//!   the cold/warm median ratio, and cold and warm answers must be
//!   digest-identical.
//! * **batch64** — 64 host-pair graph queries served by one
//!   `Remos::run_batch` call (single pinned sample selection, worker
//!   pool) versus 64 sequential `Remos::run` calls on an identically
//!   prepared stack. Per-entry digests must match bit for bit.
//!
//! Flags: `--quick` shrinks both scenarios for CI smoke runs (warn-only
//! gate); `--out <path>` overrides the JSON destination.

use remos_bench::churn::pod_network;
use remos_bench::fold_digests;
use remos_core::collector::oracle::OracleCollector;
use remos_core::collector::{Collector, SimClock};
use remos_core::modeler::{Modeler, ModelerConfig};
use remos_core::prelude::*;
use remos_core::{Remos, RemosConfig};
use remos_net::{SimDuration, Simulator};
use remos_snmp::sim::{share, SharedSim};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    pods: usize,
    hosts_per_pod: usize,
    /// Measured iterations of the repeated-query scenario, per mode.
    repeats: usize,
    /// Measured rounds of the batch scenario, per serving style.
    rounds: usize,
    /// Queries per batch round.
    batch: usize,
}

const PRIME_POLLS: usize = 8;
const WINDOW: SimDuration = SimDuration::from_secs(2);

fn primed_oracle(cfg: &Config) -> (SharedSim, OracleCollector) {
    let sim = share(
        Simulator::new(pod_network(cfg.pods, cfg.hosts_per_pod)).expect("simulator"),
    );
    let mut col = OracleCollector::new(Arc::clone(&sim));
    for _ in 0..PRIME_POLLS {
        sim.lock().run_for(SimDuration::from_millis(250)).expect("advance sim");
        col.poll().expect("poll oracle");
    }
    (sim, col)
}

fn host_names(cfg: &Config) -> Vec<String> {
    let mut names = Vec::with_capacity(cfg.pods * cfg.hosts_per_pod);
    for p in 0..cfg.pods {
        for j in 0..cfg.hosts_per_pod {
            names.push(format!("h{p}x{j}"));
        }
    }
    names
}

struct ModeStats {
    label: &'static str,
    iterations: usize,
    wall_ns: u64,
    median_ns: u64,
    p90_ns: u64,
    digest: u64,
}

fn percentiles(samples: &mut [u64]) -> (u64, u64) {
    samples.sort_unstable();
    (samples[samples.len() / 2], samples[samples.len() * 9 / 10])
}

/// Run the repeated all-hosts graph query `cfg.repeats` times against a
/// modeler with the given plan-cache capacity.
fn run_repeated(cfg: &Config, label: &'static str, capacity: usize) -> ModeStats {
    let (_sim, col) = primed_oracle(cfg);
    let names = host_names(cfg);
    let modeler = Modeler::new(ModelerConfig {
        plan_cache_capacity: capacity,
        ..ModelerConfig::default()
    });
    let tf = Timeframe::Window(WINDOW);
    // One untimed call so the warm mode measures steady-state hits, not
    // the initial miss; the cold mode's answer is identical either way.
    let reference = modeler.get_graph(&col, &names, tf).expect("graph query");
    let digest = reference.digest();

    let mut samples = Vec::with_capacity(cfg.repeats);
    let start = Instant::now();
    for _ in 0..cfg.repeats {
        let t0 = Instant::now();
        let g = modeler.get_graph(&col, &names, tf).expect("graph query");
        samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(g.digest(), digest, "{label}: answer drifted across repeats");
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let (median_ns, p90_ns) = percentiles(&mut samples);
    ModeStats { label, iterations: cfg.repeats, wall_ns, median_ns, p90_ns, digest }
}

fn batch_stack(cfg: &Config) -> Remos {
    let (sim, col) = primed_oracle(cfg);
    Remos::new(
        Box::new(col),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    )
}

/// The 64 (well, `cfg.batch`) host-pair graph queries of the batch
/// scenario, drawn from 32 distinct pairs so the working set fits the
/// default plan-cache capacity — the batch measures warm serving
/// (amortized sample selection + parallel annotation), not cache
/// thrash; pair k connects pod `k % pods` to pod `(k + 1) % pods`.
fn batch_specs(cfg: &Config) -> Vec<QuerySpec> {
    (0..cfg.batch)
        .map(|i| {
            let k = i % 32;
            let (pa, pb) = (k % cfg.pods, (k + 1) % cfg.pods);
            let (ha, hb) = (k % cfg.hosts_per_pod, (k / cfg.pods) % cfg.hosts_per_pod);
            Query::graph([format!("h{pa}x{ha}"), format!("h{pb}x{hb}")])
                .timeframe(Timeframe::Window(WINDOW))
                .into()
        })
        .collect()
}

fn result_digests(results: &[CoreResult<QueryResult>]) -> Vec<u64> {
    results
        .iter()
        .map(|r| match r {
            Ok(QueryResult::Graph(g)) => g.digest(),
            other => panic!("batch entry failed: {other:?}"),
        })
        .collect()
}

fn run_batched(cfg: &Config) -> (ModeStats, Vec<u64>) {
    let mut remos = batch_stack(cfg);
    let specs = batch_specs(cfg);
    let reference = result_digests(&remos.run_batch(specs.clone()));
    let mut samples = Vec::with_capacity(cfg.rounds);
    let start = Instant::now();
    for _ in 0..cfg.rounds {
        let round = specs.clone();
        let t0 = Instant::now();
        let results = remos.run_batch(round);
        samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(result_digests(&results), reference, "batched answers drifted");
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let (median_ns, p90_ns) = percentiles(&mut samples);
    let stats = ModeStats {
        label: "batched",
        iterations: cfg.rounds,
        wall_ns,
        median_ns,
        p90_ns,
        digest: fold_digests(&reference),
    };
    (stats, reference)
}

fn run_sequential(cfg: &Config) -> (ModeStats, Vec<u64>) {
    let mut remos = batch_stack(cfg);
    let specs = batch_specs(cfg);
    let one_round = |remos: &mut Remos| -> Vec<u64> {
        let results: Vec<CoreResult<QueryResult>> =
            specs.iter().map(|s| remos.run(s.clone())).collect();
        result_digests(&results)
    };
    let reference = one_round(&mut remos);
    let mut samples = Vec::with_capacity(cfg.rounds);
    let start = Instant::now();
    for _ in 0..cfg.rounds {
        let t0 = Instant::now();
        let digests = one_round(&mut remos);
        samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(digests, reference, "sequential answers drifted");
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let (median_ns, p90_ns) = percentiles(&mut samples);
    let stats = ModeStats {
        label: "sequential",
        iterations: cfg.rounds,
        wall_ns,
        median_ns,
        p90_ns,
        digest: fold_digests(&reference),
    };
    (stats, reference)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_query.json", |s| s.as_str());

    let cfg = if quick {
        Config { pods: 8, hosts_per_pod: 4, repeats: 50, rounds: 5, batch: 64 }
    } else {
        Config { pods: 16, hosts_per_pod: 4, repeats: 200, rounds: 20, batch: 64 }
    };
    println!(
        "query benchmark: {} pods x {} hosts, {} repeats, {} batch rounds of {}{}",
        cfg.pods,
        cfg.hosts_per_pod,
        cfg.repeats,
        cfg.rounds,
        cfg.batch,
        if quick { " (quick)" } else { "" }
    );

    // Scenario A: repeated all-hosts query, cold plan build vs cache hit.
    let cold = run_repeated(&cfg, "cold", 0);
    let warm = run_repeated(&cfg, "warm", remos_core::modeler::DEFAULT_PLAN_CACHE_CAPACITY);
    assert_eq!(
        cold.digest, warm.digest,
        "plan cache changed the answer: cold and warm digests diverged"
    );

    // Scenario B: one run_batch call vs the same queries run one by one.
    let (batched, batch_digests) = run_batched(&cfg);
    let (sequential, seq_digests) = run_sequential(&cfg);
    assert_eq!(
        batch_digests, seq_digests,
        "run_batch changed an answer: batched and sequential digests diverged"
    );

    for s in [&cold, &warm, &batched, &sequential] {
        println!(
            "  {:<12} {:>10} ns median, {:>10} ns p90, {:>4} iterations",
            s.label, s.median_ns, s.p90_ns, s.iterations
        );
    }
    let warm_speedup = cold.median_ns as f64 / warm.median_ns as f64;
    let batch_speedup = sequential.median_ns as f64 / batched.median_ns as f64;
    println!("  warm-path speedup (cold / warm median): {warm_speedup:.2}x");
    println!("  batch speedup (sequential / batched median): {batch_speedup:.2}x");

    let mode_json = |s: &ModeStats| {
        serde_json::json!({
            "iterations": s.iterations,
            "wall_ns": s.wall_ns,
            "median_ns": s.median_ns,
            "p90_ns": s.p90_ns,
        })
    };
    let doc = serde_json::json!({
        "benchmark": "query_path",
        "quick": quick,
        "scenario": {
            "pods": cfg.pods,
            "hosts_per_pod": cfg.hosts_per_pod,
            "targets": cfg.pods * cfg.hosts_per_pod,
            "repeats": cfg.repeats,
            "batch_rounds": cfg.rounds,
            "batch_size": cfg.batch,
            "window_secs": 2,
            "prime_polls": PRIME_POLLS,
        },
        "repeated_query": {
            "cold": mode_json(&cold),
            "warm": mode_json(&warm),
            "speedup_median": warm_speedup,
        },
        "batch64": {
            "sequential": mode_json(&sequential),
            "batched": mode_json(&batched),
            "speedup_median": batch_speedup,
        },
        "digests_match": true,
    });
    std::fs::write(out, format!("{:#}\n", doc)).expect("write BENCH_query.json");
    println!("wrote {out}");

    // The acceptance bar: a plan-cache hit must beat a cold rebuild by
    // >=5x on the repeated-query scenario. Quick mode (CI smoke) only
    // warns, since shared runners make wall-clock ratios noisy.
    if !quick && warm_speedup < 5.0 {
        eprintln!("FAIL: warm-path speedup {warm_speedup:.2}x is below the 5x acceptance bar");
        std::process::exit(1);
    }
}
