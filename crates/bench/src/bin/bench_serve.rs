//! Serving-front-end benchmark: goodput and latency under overload and
//! fault injection, written to `BENCH_serve.json` so future changes have
//! a recorded robustness baseline.
//!
//! One scenario, four runs over the pod network:
//!
//! * **1x / 2x / 4x offered load** — each simulated round submits
//!   `base * multiplier` graph requests and serves `base`; excess must be
//!   refused at admission with a typed `Overloaded` (never queued without
//!   bound). Goodput — completed answers per round — must hold at the 1x
//!   level while shed-rate absorbs the overload.
//! * **chaos** — 1x load, but every SNMP agent crashes mid-run. The
//!   circuit breaker opens and the degradation ladder serves stale
//!   snapshots; goodput must stay within 10% of the healthy 1x baseline.
//!
//! The 4x run executes twice and its admission/shed decision digest must
//! be bit-identical — overload behavior is deterministic, not luck.
//!
//! Flags: `--quick` shrinks the round count for CI smoke runs (warn-only
//! gate); `--out <path>` overrides the JSON destination.

use remos_bench::churn::pod_network;
use remos_core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos_core::collector::SimClock;
use remos_core::{Query, Remos, RemosConfig, RemosError};
use remos_net::{SimDuration, Simulator};
use remos_serve::{
    BreakerCollector, BreakerConfig, CircuitBreaker, Rung, ServeRequest, Server, ServerConfig,
};
use remos_snmp::fault::FaultPlan;
use remos_snmp::sim::{register_all_agents_with_faults, share};
use remos_snmp::{FaultDirector, SimTransport};
use std::sync::Arc;

struct Config {
    pods: usize,
    hosts_per_pod: usize,
    /// Simulated rounds per run; each advances measured time by `GAP`.
    rounds: usize,
    /// Requests served per round — the serving capacity. 1x offered load
    /// submits exactly this many per round.
    base: usize,
    tenants: usize,
}

const GAP: SimDuration = SimDuration::from_millis(250);
const ALLOWANCE: SimDuration = SimDuration::from_secs(8);
const QUEUE_DEPTH: usize = 16;

fn stack(cfg: &Config) -> (Server, remos_snmp::sim::SharedSim, Arc<FaultDirector>) {
    let sim = share(
        Simulator::new(pod_network(cfg.pods, cfg.hosts_per_pod)).expect("simulator"),
    );
    let transport = Arc::new(SimTransport::new());
    let director = FaultDirector::new();
    let agents = register_all_agents_with_faults(&transport, &sim, "public", &director);
    let mut collector =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    let breaker = CircuitBreaker::new(BreakerConfig::default());
    collector.set_retry_observer(Arc::clone(&breaker) as _);
    let collector = BreakerCollector::wrap(collector, breaker);
    let remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );
    let server_cfg = ServerConfig {
        max_queue_depth: QUEUE_DEPTH,
        max_tenant_depth: QUEUE_DEPTH,
        default_allowance: Some(ALLOWANCE),
        // The load ladder probes the queue-bound admission path; quotas
        // are exercised by the serve chaos tests and the CLI.
        quota: remos_serve::QuotaConfig { rate_milli_per_sec: 0, ..Default::default() },
        ..ServerConfig::default()
    };
    (Server::new(remos, server_cfg), sim, director)
}

fn host_name(cfg: &Config, k: usize) -> String {
    let (p, j) = (k % cfg.pods, (k / cfg.pods) % cfg.hosts_per_pod);
    format!("h{p}x{j}")
}

#[derive(Default)]
struct LoadStats {
    offered: usize,
    admitted: usize,
    shed_admission: usize,
    answered: usize,
    deadline_shed: usize,
    rejected: usize,
    max_depth: usize,
    latencies_ns: Vec<u64>,
    digest: u64,
}

impl LoadStats {
    fn goodput_per_round(&self, rounds: usize) -> f64 {
        self.answered as f64 / rounds as f64
    }

    fn shed_rate(&self) -> f64 {
        (self.shed_admission + self.deadline_shed) as f64 / self.offered as f64
    }

    /// Quantile over the latency samples; `run_load` sorts them once.
    fn quantile_us(&self, q: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_ns.len() - 1) as f64 * q).round() as usize;
        self.latencies_ns[idx] as f64 / 1e3
    }
}

/// Run `cfg.rounds` rounds at `multiplier`× offered load. When
/// `kill_at_round` fires, every agent crashes for the rest of the run.
fn run_load(cfg: &Config, multiplier: usize, kill_at_round: Option<usize>) -> LoadStats {
    let (mut server, sim, director) = stack(cfg);
    let mut stats = LoadStats::default();
    let mut next = 0usize;
    for round in 0..cfg.rounds {
        if kill_at_round == Some(round) {
            let now = sim.lock().now();
            let n = cfg.pods * cfg.hosts_per_pod;
            for k in 0..n {
                director.set_plan(
                    &host_name(cfg, k),
                    FaultPlan::new().crash(now, SimDuration::from_secs(1_000_000)),
                    7,
                );
            }
            // Router/switch agents go down too.
            let names: Vec<String> = {
                let s = sim.lock();
                let t = s.topology_arc();
                t.network_nodes().iter().map(|&n| t.node(n).name.clone()).collect()
            };
            for name in names {
                director.set_plan(
                    &name,
                    FaultPlan::new().crash(now, SimDuration::from_secs(1_000_000)),
                    7,
                );
            }
        }
        for _ in 0..cfg.base * multiplier {
            let tenant = format!("t{}", next % cfg.tenants);
            let a = host_name(cfg, next);
            let b = host_name(cfg, next + 1 + (next % 3));
            next += 1;
            stats.offered += 1;
            let req = ServeRequest::new(tenant, Query::graph([a, b]));
            match server.submit(req) {
                Ok(_) => stats.admitted += 1,
                Err(RemosError::Overloaded { .. }) => stats.shed_admission += 1,
                Err(e) => panic!("untyped admission failure: {e}"),
            }
            stats.max_depth = stats.max_depth.max(server.queue_depth());
        }
        for _ in 0..cfg.base {
            match server.serve_next() {
                None => break,
                Some(o) => note(&mut stats, o),
            }
        }
        sim.lock().run_for(GAP).expect("advance sim");
    }
    for o in server.drain() {
        note(&mut stats, o);
    }
    assert!(
        stats.max_depth <= QUEUE_DEPTH,
        "queue depth {} exceeded the admission bound {QUEUE_DEPTH}",
        stats.max_depth
    );
    stats.latencies_ns.sort_unstable();
    stats.digest = server.decision_digest();
    stats
}

fn note(stats: &mut LoadStats, o: remos_serve::ServeOutcome) {
    match &o.result {
        Ok(_) => {
            debug_assert!(o.rung != Rung::Rejected);
            stats.answered += 1;
            stats.latencies_ns.push(o.latency().as_nanos());
        }
        Err(RemosError::DeadlineExceeded { .. }) => stats.deadline_shed += 1,
        Err(_) => stats.rejected += 1,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_serve.json", |s| s.as_str());

    let cfg = if quick {
        Config { pods: 4, hosts_per_pod: 2, rounds: 40, base: 4, tenants: 4 }
    } else {
        Config { pods: 8, hosts_per_pod: 4, rounds: 160, base: 4, tenants: 4 }
    };
    println!(
        "serve benchmark: {} pods x {} hosts, {} rounds, capacity {}/round{}",
        cfg.pods,
        cfg.hosts_per_pod,
        cfg.rounds,
        cfg.base,
        if quick { " (quick)" } else { "" }
    );

    let x1 = run_load(&cfg, 1, None);
    let x2 = run_load(&cfg, 2, None);
    let x4 = run_load(&cfg, 4, None);
    let x4_again = run_load(&cfg, 4, None);
    assert_eq!(
        x4.digest, x4_again.digest,
        "overload decisions are not reproducible: 4x digests diverged"
    );
    let chaos = run_load(&cfg, 1, Some(cfg.rounds / 2));

    let report = |label: &str, s: &LoadStats, rounds: usize| {
        println!(
            "  {:<6} offered {:>5}, answered {:>5}, shed {:>5} ({:>5.1}%), goodput {:>5.2}/round, p50 {:>8.1} us, p99 {:>8.1} us, max depth {:>2}",
            label,
            s.offered,
            s.answered,
            s.shed_admission + s.deadline_shed,
            s.shed_rate() * 100.0,
            s.goodput_per_round(rounds),
            s.quantile_us(0.5),
            s.quantile_us(0.99),
            s.max_depth
        );
    };
    report("1x", &x1, cfg.rounds);
    report("2x", &x2, cfg.rounds);
    report("4x", &x4, cfg.rounds);
    report("chaos", &chaos, cfg.rounds);

    let base_goodput = x1.goodput_per_round(cfg.rounds);
    let x4_ratio = x4.goodput_per_round(cfg.rounds) / base_goodput;
    let chaos_ratio = chaos.goodput_per_round(cfg.rounds) / base_goodput;
    println!("  goodput vs 1x: 4x overload {:.2}, chaos {:.2}", x4_ratio, chaos_ratio);

    let load_json = |s: &LoadStats, rounds: usize| {
        serde_json::json!({
            "offered": s.offered,
            "admitted": s.admitted,
            "answered": s.answered,
            "shed_admission": s.shed_admission,
            "deadline_shed": s.deadline_shed,
            "rejected": s.rejected,
            "shed_rate": s.shed_rate(),
            "goodput_per_round": s.goodput_per_round(rounds),
            "latency_p50_us": s.quantile_us(0.5),
            "latency_p99_us": s.quantile_us(0.99),
            "max_queue_depth": s.max_depth,
        })
    };
    let doc = serde_json::json!({
        "benchmark": "serve_front_end",
        "quick": quick,
        "scenario": {
            "pods": cfg.pods,
            "hosts_per_pod": cfg.hosts_per_pod,
            "rounds": cfg.rounds,
            "capacity_per_round": cfg.base,
            "tenants": cfg.tenants,
            "queue_depth": QUEUE_DEPTH,
            "allowance_secs": 2,
            "gap_ms": 250,
        },
        "load_1x": load_json(&x1, cfg.rounds),
        "load_2x": load_json(&x2, cfg.rounds),
        "load_4x": load_json(&x4, cfg.rounds),
        "chaos": load_json(&chaos, cfg.rounds),
        "goodput_ratio_4x": x4_ratio,
        "goodput_ratio_chaos": chaos_ratio,
        "decision_digest_4x": format!("{:016x}", x4.digest),
        "digests_match": true,
    });
    std::fs::write(out, format!("{:#}\n", doc)).expect("write BENCH_serve.json");
    println!("wrote {out}");

    // Acceptance: goodput at 4x overload and under fault injection must
    // hold within 10% of the healthy 1x baseline — admission control
    // sheds load, it must not shed capacity. Quick mode only warns.
    let mut failed = false;
    for (label, ratio) in [("4x overload", x4_ratio), ("chaos", chaos_ratio)] {
        if ratio < 0.9 {
            let msg = format!(
                "{label} goodput is {:.1}% of the 1x baseline (bar: 90%)",
                ratio * 100.0
            );
            if quick {
                println!("WARN (quick): {msg}");
            } else {
                eprintln!("FAIL: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
