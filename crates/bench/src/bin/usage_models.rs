//! The §2 usage models, end to end.
//!
//! The paper's introduction lists five ways applications can exploit
//! Remos. Tables 1–3 cover the first two (node selection, migration);
//! this binary demonstrates the remaining three plus the §6-cited
//! pipeline-depth adaptation, each as a prediction-vs-execution
//! experiment:
//!
//! * **Optimization of communication** — broadcast strategy selection;
//! * **Application quality metrics** — adaptive video frame rate;
//! * **Function and data shipping** — local vs remote execution;
//! * **Pipeline depth** (Siegell & Steenkiste, ref \[21\], via §6) — pipelined
//!   SOR depth selection.

use remos_apps::bcast::{execute_broadcast, select_strategy, BroadcastStrategy};
use remos_apps::shipping::{decide, execute, Job};
use remos_apps::sor::{execute_sweep, select_depth, SorConfig};
use remos_apps::synthetic::add_greedy_traffic;
use remos_apps::testbed::star;
use remos_apps::video::{VideoConfig, VideoStream};
use remos_apps::TestbedHarness;
use remos_core::Query;
use remos_net::{NodeId, SimDuration, SimTime};

fn broadcast_demo() {
    println!("== Optimization of communication: broadcast strategy ==");
    let mut h = TestbedHarness::new(star(8));
    let members: Vec<String> = (0..8).map(|i| format!("h{i}")).collect();
    let g = h
        .adapter
        .remos_mut()
        .run(Query::graph(members.iter().cloned()))
        .and_then(remos_core::QueryResult::into_graph)
        .expect("graph");
    let bytes = 1_250_000u64;
    let ids: Vec<NodeId> = {
        let s = h.sim.lock();
        let t = s.topology_arc();
        members.iter().map(|m| t.lookup(m).expect("host")).collect()
    };
    for strat in BroadcastStrategy::all() {
        let predicted =
            remos_apps::bcast::predict_broadcast_secs(&g, &members, bytes, strat).expect("predict");
        let measured = execute_broadcast(&h.sim, &ids, bytes, strat).expect("execute");
        println!("  {strat:?}: predicted {predicted:.3} s, measured {measured:.3} s");
    }
    let (best, t) = select_strategy(&g, &members, bytes).expect("select");
    println!("  Remos selects {best:?} (predicted {t:.3} s) for a 10 Mbit broadcast on 8 hosts");
}

fn video_demo() {
    println!("\n== Application quality metrics: adaptive video ==");
    let mut h = TestbedHarness::cmu();
    add_greedy_traffic(&h.sim, "m-2", "m-7", 20, SimTime::from_secs(20), None).expect("traffic");
    let stream = VideoStream::new("m-1", "m-8", VideoConfig::default());
    let rep = stream
        .run(&h.sim, h.adapter.remos_mut(), SimDuration::from_secs(60))
        .expect("stream");
    println!("  60 s stream m-1 -> m-8, congestion arrives at t=20 s:");
    for (t, fps) in &rep.rate_changes {
        println!("    t={t:>5.1} s: {fps:>4.0} fps");
    }
    println!(
        "  delivered {:.0} frames (mean {:.1} fps); a non-adaptive 30 fps sender would have dropped {:.0} frames",
        rep.frames_delivered, rep.mean_fps, rep.frames_lost_without_adaptation
    );
}

fn shipping_demo() {
    println!("\n== Function and data shipping ==");
    // A slow client and a 10x compute server behind one router.
    let mut b = remos_net::TopologyBuilder::new();
    let c = b.compute_with_speed("client", 50e6);
    let v = b.compute_with_speed("server", 500e6);
    let r = b.network("r");
    b.link(c, r, remos_net::mbps(100.0), SimDuration::from_micros(100)).expect("link");
    b.link(r, v, remos_net::mbps(100.0), SimDuration::from_micros(100)).expect("link");
    let mut h2 = TestbedHarness::new(b.build().expect("builds"));

    for (label, job) in [
        ("large compute, small data", Job { work_flops: 500e6, input_bytes: 1_000_000, output_bytes: 1_000_000 }),
        ("small compute, large data", Job { work_flops: 50e6, input_bytes: 100_000_000, output_bytes: 1_000 }),
    ] {
        let d = decide(h2.adapter.remos_mut(), "client", "server", &job).expect("decide");
        let measured = execute(&h2.sim, "client", "server", &job, &d).expect("execute");
        println!(
            "  {label}: local {:.2} s vs remote {:.2} s -> {} (measured {:.2} s)",
            d.local_secs,
            d.remote_secs,
            if d.ship { "SHIP" } else { "LOCAL" },
            measured
        );
    }
}

fn sor_demo() {
    println!("\n== Pipeline depth selection (pipelined SOR, ref [21]) ==");
    let mut h = TestbedHarness::new(star(5));
    let chain: Vec<String> = (0..5).map(|i| format!("h{i}")).collect();
    let cfg = SorConfig::default();
    let (d_star, predicted) = select_depth(h.adapter.remos_mut(), &chain, &cfg).expect("select");
    let ids: Vec<NodeId> = {
        let s = h.sim.lock();
        let t = s.topology_arc();
        chain.iter().map(|n| t.lookup(n).expect("host")).collect()
    };
    println!("  Remos-selected depth: {d_star} (predicted sweep {predicted:.3} s)");
    for d in [1, d_star, cfg.max_depth] {
        let t = execute_sweep(&h.sim, &ids, &cfg, d).expect("sweep");
        println!("  depth {d:>2}: measured sweep {t:.3} s");
    }
}

fn main() {
    broadcast_demo();
    video_demo();
    shipping_demo();
    sor_demo();
}
