//! Table 1 — "Performance of programs on nodes selected using Remos on
//! our IP based testbed": node selection in a *static* (unloaded)
//! environment.
//!
//! For each program/size, the program runs on the Remos-selected node set
//! (greedy clustering from start node m-4, exactly §8.1's procedure) and
//! on the same two "other representative node sets" the paper lists; the
//! table reports execution times and the percent increase of each
//! alternative over the Remos-selected set. Shared definitions live in
//! `remos_bench::experiments`; the `report` binary renders the same runs
//! as Markdown with the paper's numbers side by side.

use remos_bench::experiments::run_table1;
use remos_bench::{emit, nodeset, pct_increase, Cell};

fn main() {
    println!("Table 1: node selection in a static (unloaded) environment");
    println!("(paper: Remos-selected generally lowest, but only by small amounts)\n");
    println!(
        "{:<11} {:>3}  {:<14} {:>8}   {:<14} {:>8} {:>6}   {:<14} {:>8} {:>6}",
        "Program", "N", "Remos set", "time(s)", "other set 1", "time(s)", "+%", "other set 2",
        "time(s)", "+%"
    );
    for r in run_table1() {
        emit(&Cell {
            experiment: "table1",
            row: format!("{} x{}", r.label, r.nodes),
            column: "remos-selected".into(),
            nodes: r.remos.0.clone(),
            seconds: r.remos.1,
            migrations: 0,
        });
        let mut cols = String::new();
        for (i, (names, t)) in r.others.iter().enumerate() {
            emit(&Cell {
                experiment: "table1",
                row: format!("{} x{}", r.label, r.nodes),
                column: format!("other-{}", i + 1),
                nodes: names.clone(),
                seconds: *t,
                migrations: 0,
            });
            cols.push_str(&format!(
                "{:<14} {:>8.3} {:>5.1}%   ",
                nodeset(names),
                t,
                pct_increase(r.remos.1, *t)
            ));
        }
        println!(
            "{:<11} {:>3}  {:<14} {:>8.3}   {}",
            r.label,
            r.nodes,
            nodeset(&r.remos.0),
            r.remos.1,
            cols
        );
    }
}
