//! Table 3 — "Execution times of adaptive version of Airshed executing on
//! a fixed set of nodes and on dynamically selected nodes": runtime
//! adaptation.
//!
//! "The program was compiled for 8 nodes but only 5 nodes effectively
//! participated in the computation." The fixed version stays on
//! {m-4..m-8}; the adaptive version re-selects nodes at every outer
//! iteration through the adaptation module. Four traffic patterns:
//! none, non-interfering, and two interfering placements.
//!
//! Paper shape: adaptation costs a moderate overhead when it buys nothing
//! (941 vs 862 with no traffic) but flattens the interfering columns
//! (1045/955 adaptive vs 1680/1826 fixed). The non-adaptive 5-rank run
//! takes ~650 s (Table 1).

use remos_apps::airshed::airshed_program;
use remos_apps::synthetic::{install_scenario, TrafficScenario};
use remos_apps::testbed::TESTBED_HOSTS;
use remos_bench::{emit, fresh_harness, Cell};
use remos_net::SimDuration;

/// Ranks the adaptive Airshed is compiled for.
const COMPILED_RANKS: usize = 8;
/// Nodes that actually participate.
const ACTIVE_NODES: [&str; 5] = ["m-4", "m-5", "m-6", "m-7", "m-8"];

fn run_cell(scenario: TrafficScenario, adaptive: bool) -> (f64, usize) {
    let mut h = fresh_harness();
    install_scenario(&h.sim, scenario).expect("scenario installs");
    h.sim.lock().run_for(SimDuration::from_secs(1)).expect("warmup");
    let prog = {
        let mut p = airshed_program(COMPILED_RANKS);
        p.name = "Airshed (8 ranks on 5 nodes)".into();
        p
    };
    let rep = if adaptive {
        h.run_adaptive(&prog, &TESTBED_HOSTS, &ACTIVE_NODES).expect("adaptive run")
    } else {
        h.run_fixed(&prog, &ACTIVE_NODES).expect("fixed run")
    };
    emit(&Cell::from_report(
        "table3",
        if adaptive { "Adaptive" } else { "Fixed" },
        scenario.label(),
        &rep.final_mapping,
        &rep,
    ));
    (rep.elapsed, rep.migrations.len())
}

fn main() {
    println!("Table 3: adaptive Airshed (compiled for 8 ranks, run on 5 nodes)");
    println!("(paper: Fixed 862/866/1680/1826 s; Adaptive 941/974/1045/955 s;");
    println!(" the plain non-adaptive 5-node Airshed runs in ~650 s)\n");
    print!("{:<10}", "Node Set");
    for s in TrafficScenario::all() {
        print!(" {:>26}", s.label());
    }
    println!();
    for adaptive in [false, true] {
        print!("{:<10}", if adaptive { "Adaptive" } else { "Fixed" });
        for scenario in TrafficScenario::all() {
            let (t, migs) = run_cell(scenario, adaptive);
            if adaptive {
                print!(" {:>18.0}s ({:>3} mig)", t, migs);
            } else {
                print!(" {:>26.0}", t);
            }
        }
        println!();
    }
}
