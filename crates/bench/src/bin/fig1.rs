//! Figure 1 — "Remos graph representing the structure of a simple
//! network": the logical-topology example with node internal bandwidth.
//!
//! The figure's two readings are exercised against the live system:
//!
//! * switches A/B with 100 Mbps internal bandwidth — "the links
//!   connecting the compute nodes to the network nodes restrict
//!   bandwidth, and all nodes can send and receive messages at up to
//!   10 Mbps simultaneously";
//! * switches with 10 Mbps internal bandwidth — "these two network nodes
//!   are the bottleneck and the aggregate bandwidth of nodes 1-4 and 5-8
//!   will be limited to 10 Mbps".
//!
//! Both claims are demonstrated with simultaneous flow queries (fast
//! switches: every flow gets its full 10 Mbps; slow switches: four
//! same-switch flows share 10 Mbps) and verified against the simulator's
//! actual max-min allocation.

use remos_core::collector::oracle::OracleCollector;
use remos_core::collector::SimClock;
use remos_core::{FlowInfoRequest, Query, Remos, RemosConfig};
use remos_apps::testbed::fig1_network;
use remos_net::flow::FlowParams;
use remos_net::{mbps, Simulator};
use remos_snmp::sim::share;
use std::sync::Arc;

fn remos_over(internal_bw: Option<f64>) -> (Remos, remos_snmp::sim::SharedSim) {
    let sim = share(Simulator::new(fig1_network(internal_bw)).expect("fig1 builds"));
    // The oracle collector is used because switch internal bandwidth is
    // not exposed through any MIB (see DESIGN.md).
    let collector = OracleCollector::new(Arc::clone(&sim));
    let remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );
    (remos, sim)
}

/// Four simultaneous same-switch variable flows: n1->n2, n2->n3, n3->n4,
/// n4->n1 (all through switch A).
fn four_flow_query() -> FlowInfoRequest {
    FlowInfoRequest::new()
        .variable("n1", "n2", 1.0)
        .variable("n2", "n3", 1.0)
        .variable("n3", "n4", 1.0)
        .variable("n4", "n1", 1.0)
}

fn print_case(label: &str, internal_bw: Option<f64>) {
    println!("-- {label} --");
    let (mut remos, sim) = remos_over(internal_bw);

    // The logical topology as an application sees it.
    let nodes: Vec<String> = (1..=8).map(|i| format!("n{i}")).collect();
    let g = remos.run(Query::graph(nodes)).expect("graph query").into_graph().expect("graph");
    println!(
        "  graph: {} nodes ({} hosts), {} links",
        g.nodes.len(),
        g.compute_names().len(),
        g.links.len()
    );
    let n1 = g.index_of("n1").expect("n1");
    let n5 = g.index_of("n5").expect("n5");
    println!(
        "  path n1 -> n5: avail {:.1} Mbps (per-pair view)",
        g.path_avail_bw(n1, n5).expect("path") / 1e6
    );

    // Simultaneous flow query through switch A.
    let resp = remos
        .run(Query::flows(four_flow_query()))
        .expect("flow query")
        .into_flows()
        .expect("flows");
    print!("  4 simultaneous A-switch flows:");
    for grant in &resp.variable {
        print!(
            " {}->{}: {:.1} Mbps",
            grant.endpoints.src,
            grant.endpoints.dst,
            grant.bandwidth.median / 1e6
        );
    }
    println!();

    // Ground truth from the simulator.
    let mut s = sim.lock();
    let topo = s.topology_arc();
    let mut handles = Vec::new();
    for (a, b) in [("n1", "n2"), ("n2", "n3"), ("n3", "n4"), ("n4", "n1")] {
        let f = s
            .start_flow(FlowParams::greedy(
                topo.lookup(a).expect("host"),
                topo.lookup(b).expect("host"),
            ))
            .expect("flow starts");
        handles.push(f);
    }
    let total: f64 = handles.iter().map(|&h| s.flow_rate(h).expect("rate")).sum();
    println!("  simulator ground truth: aggregate through A = {:.1} Mbps\n", total / 1e6);
}

fn main() {
    println!("Figure 1: logical topology with switch internal bandwidth\n");
    print_case("switches with 100 Mbps internal bandwidth (links limit)", Some(mbps(100.0)));
    print_case("switches with 10 Mbps internal bandwidth (switches limit)", Some(mbps(10.0)));
    print_case("switches with unbounded backplane", None);
}
