//! Figure 4 — "Selection of nodes on the testbed with busy communication
//! links".
//!
//! "Traffic Route: m-6 -> timberline -> whiteface -> m-8. Start Node:
//! m-4. Selected Nodes: m-1, m-2, m-4, m-5." This binary prints the
//! testbed (Fig 3), installs the traffic, runs the exact §7.3 selection
//! pipeline (remos_get_graph → distance matrix → greedy clustering) and
//! checks the selection against the figure.

use remos_apps::synthetic::{install_scenario, TrafficScenario};
use remos_apps::testbed::{TESTBED_HOSTS, TESTBED_ROUTERS};
use remos_bench::fresh_harness;
use remos_core::Query;
use remos_net::SimDuration;

fn main() {
    println!("Figure 4: node selection on the testbed with busy links\n");
    let mut h = fresh_harness();

    // Fig 3: print the discovered topology through Remos itself.
    let g = h
        .adapter
        .remos_mut()
        .run(Query::graph(TESTBED_HOSTS))
        .and_then(remos_core::QueryResult::into_graph)
        .expect("graph query");
    println!("Testbed (as discovered via SNMP):");
    for l in &g.links {
        println!(
            "  {:<12} -- {:<12} {:>5.0} Mbps, {:?}",
            g.nodes[l.a].name,
            g.nodes[l.b].name,
            l.capacity / 1e6,
            l.latency
        );
    }
    assert!(TESTBED_ROUTERS
        .iter()
        .all(|r| g.nodes.iter().any(|n| &n.name == r)));

    println!("\nTraffic route: m-6 -> timberline -> whiteface -> m-8");
    install_scenario(&h.sim, TrafficScenario::Interfering1).expect("traffic installs");
    h.sim.lock().run_for(SimDuration::from_secs(1)).expect("warmup");

    println!("Start node: m-4");
    let selected = h.select_nodes(&TESTBED_HOSTS, "m-4", 4).expect("selection");
    println!("Selected nodes: {}", selected.join(", "));

    let mut sorted = selected.clone();
    sorted.sort();
    if sorted == ["m-1", "m-2", "m-4", "m-5"] {
        println!("\nMATCH: identical to the paper's Fig 4 selection (m-1, m-2, m-4, m-5).");
    } else {
        println!("\nMISMATCH vs the paper's selection (m-1, m-2, m-4, m-5) — investigate.");
        std::process::exit(1);
    }

    // Also show what static-only selection would have done.
    let mut h2 = fresh_harness();
    let static_sel = h2.select_nodes(&TESTBED_HOSTS, "m-4", 4).expect("selection");
    println!(
        "For contrast, selection without traffic information: {}",
        static_sel.join(", ")
    );
}
