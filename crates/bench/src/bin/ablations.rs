//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Graph query vs O(n²) flow queries** — §7.3: "the information to
//!    compute available bandwidth between pairs of nodes could have been
//!    obtained with flow queries also, but O(nodes²) queries would have
//!    been needed, implying a much higher overhead". Measured in SNMP
//!    datagrams and bytes.
//! 2. **Self-traffic discounting** — §8.3's fallacy: an adaptive run with
//!    no external traffic should not migrate at all; the naive adapter
//!    flees its own flows.
//! 3. **Greedy vs exhaustive clustering** — quality gap of the §7.2
//!    heuristic on random loaded networks.
//! 4. **Prediction policy** — last-value / window-mean / EWMA / trend
//!    error against the oracle under bursty cross-traffic.

use remos_apps::airshed::airshed_program_iters;
use remos_apps::synthetic::add_bursty_traffic;
use remos_apps::testbed::{cmu_testbed, TESTBED_HOSTS};
use remos_apps::TestbedHarness;
use remos_bench::fresh_harness;
use remos_core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos_core::collector::SimClock;
use remos_core::modeler::predict::{predict, PredictorKind};
use remos_core::{FlowInfoRequest, Query, Remos, RemosConfig};
use remos_fx::{exhaustive_cluster, greedy_cluster, set_comm_cost, SelfTraffic};
use remos_net::topology::DirLink;
use remos_net::{SimDuration, SimTime, Simulator};
use remos_snmp::sim::{register_all_agents, share};
use remos_snmp::SimTransport;
use std::sync::Arc;

fn ablation_graph_vs_flow_queries() {
    println!("== Ablation 1: graph query vs O(n^2) flow queries ==");
    let sim = share(Simulator::new(cmu_testbed()).expect("testbed"));
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");
    let collector = SnmpCollector::new(
        Arc::clone(&transport),
        agents,
        SnmpCollectorConfig::default(),
    );
    let mut remos = Remos::new(
        Box::new(collector),
        Box::new(SimClock(Arc::clone(&sim))),
        RemosConfig::default(),
    );

    // Warm up discovery, then measure marginal query costs.
    remos.run(Query::graph(TESTBED_HOSTS)).expect("warmup");
    transport.reset_stats();
    remos.run(Query::graph(TESTBED_HOSTS)).expect("graph query");
    let graph_stats = transport.stats();

    transport.reset_stats();
    let mut pair_queries = 0;
    for (i, a) in TESTBED_HOSTS.iter().enumerate() {
        for b in TESTBED_HOSTS.iter().skip(i + 1) {
            let req = FlowInfoRequest::new().independent(a, b);
            remos.run(Query::flows(req)).expect("flow query");
            pair_queries += 1;
        }
    }
    let flow_stats = transport.stats();
    println!(
        "  one graph query over 8 nodes : {:>5} datagrams, {:>7} bytes",
        graph_stats.requests,
        graph_stats.request_bytes + graph_stats.response_bytes
    );
    println!(
        "  {} pairwise flow queries     : {:>5} datagrams, {:>7} bytes  ({:.1}x)",
        pair_queries,
        flow_stats.requests,
        flow_stats.request_bytes + flow_stats.response_bytes,
        flow_stats.requests as f64 / graph_stats.requests as f64
    );
}

fn ablation_self_traffic() {
    println!("\n== Ablation 2: self-traffic discounting (the §8.3 fallacy) ==");
    for mode in [SelfTraffic::Ignore, SelfTraffic::Subtract] {
        let mut h = fresh_harness();
        h.adapter.cfg.self_traffic = mode;
        let prog = airshed_program_iters(8, 20);
        let rep = h
            .run_adaptive(&prog, &TESTBED_HOSTS, &["m-4", "m-5", "m-6", "m-7", "m-8"])
            .expect("adaptive run");
        println!(
            "  {:<22} {:>7.0} s, {:>3} migrations (no external traffic!)",
            format!("{mode:?}:"),
            rep.elapsed,
            rep.migrations.len()
        );
    }
}

#[allow(clippy::needless_range_loop)]
fn ablation_clustering_quality() {
    println!("\n== Ablation 3: greedy vs exhaustive clustering quality ==");
    // Random symmetric distance matrices standing for loaded networks.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 31) as f64
    };
    let n = 10;
    let trials = 200;
    let mut worst_ratio = 1.0f64;
    let mut sum_ratio = 0.0;
    let mut optimal_hits = 0;
    for _ in 0..trials {
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..i {
                let d = 0.1 + next();
                m[i][j] = d;
                m[j][i] = d;
            }
        }
        let g = greedy_cluster(&m, 0, 5);
        let e = exhaustive_cluster(&m, 0, 5);
        let (cg, ce) = (set_comm_cost(&m, &g), set_comm_cost(&m, &e));
        let ratio = cg / ce;
        worst_ratio = worst_ratio.max(ratio);
        sum_ratio += ratio;
        if ratio < 1.0 + 1e-9 {
            optimal_hits += 1;
        }
    }
    println!(
        "  {} random 10-node pools, k=5: greedy optimal in {}/{} trials,",
        trials, optimal_hits, trials
    );
    println!(
        "  mean cost ratio {:.3}, worst {:.3}  (1.0 = optimal)",
        sum_ratio / trials as f64,
        worst_ratio
    );
}

fn ablation_predictors() {
    println!("\n== Ablation 4: predictors vs oracle under bursty traffic ==");
    // Bursty m-6 -> m-8 traffic; sample the loaded link once a second for
    // 120 s, then at each step predict 5 s ahead and compare with truth.
    let sim = share(Simulator::new(cmu_testbed()).expect("testbed"));
    add_bursty_traffic(
        &sim,
        "m-6",
        "m-8",
        SimDuration::from_secs(4),
        SimDuration::from_secs(4),
        1234,
    )
    .expect("traffic");
    let link = {
        let s = sim.lock();
        let topo = s.topology_arc();
        let m6 = topo.lookup("m-6").expect("m-6");
        let (link, _) = topo.neighbors(m6)[0];
        DirLink { link, dir: topo.link(link).direction_from(m6) }
    };
    // Collect a ground-truth utilization series via the oracle view.
    let mut series: Vec<(SimTime, f64)> = Vec::new();
    for _ in 0..120 {
        let mut s = sim.lock();
        let t = s.now() + SimDuration::from_secs(1);
        s.run_until(t).expect("advance");
        let rate = s.dirlink_rate(link);
        series.push((s.now(), rate));
    }
    let horizon = SimDuration::from_secs(5);
    let kinds = [
        ("last-value", PredictorKind::LastValue),
        ("window-mean", PredictorKind::WindowMean),
        ("ewma(0.3)", PredictorKind::Ewma(0.3)),
        ("linear-trend", PredictorKind::LinearTrend),
    ];
    for (name, kind) in kinds {
        let mut err = 0.0;
        let mut count = 0;
        for t in 20..(series.len() - 5) {
            let window = &series[t.saturating_sub(20)..=t];
            let p = predict(kind, window, horizon);
            let truth = series[t + 5].1;
            err += (p - truth).abs();
            count += 1;
        }
        println!("  {:<13} mean abs error {:>6.1} Mbps", name, err / count as f64 / 1e6);
    }
}

fn ablation_collector_intrusiveness() {
    println!("\n== Ablation 5: passive SNMP polling vs active benchmark probing ==");
    // One measurement round over the 8 testbed hosts: what does it cost
    // the network? SNMP polling is out-of-band (management traffic only);
    // benchmark probing injects real transfers and consumes real time —
    // the §5 trade-off behind "where the use of SNMP is not possible or
    // practical".
    use remos_core::collector::benchmark::{BenchmarkCollector, BenchmarkCollectorConfig};
    use remos_core::collector::Collector;

    // SNMP round.
    let sim = share(Simulator::new(cmu_testbed()).expect("testbed"));
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");
    let mut snmp =
        SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
    snmp.refresh_topology().expect("discovery");
    snmp.poll().expect("baseline");
    transport.reset_stats();
    let t0 = sim.lock().now();
    sim.lock().run_for(SimDuration::from_millis(250)).expect("gap");
    snmp.poll().expect("sample");
    let snmp_time = sim.lock().now().since(t0).as_secs_f64() - 0.25; // minus the gap itself
    let s = transport.stats();
    println!(
        "  SNMP poll:      {:>9} data-plane bytes, {:>6} mgmt bytes, {:>7.3} s of testbed time",
        0,
        s.request_bytes + s.response_bytes,
        snmp_time
    );

    // Benchmark round.
    let sim2 = share(Simulator::new(cmu_testbed()).expect("testbed"));
    let hosts: Vec<String> = TESTBED_HOSTS.iter().map(|s| s.to_string()).collect();
    let mut probe =
        BenchmarkCollector::new(Arc::clone(&sim2), hosts, BenchmarkCollectorConfig::default());
    probe.refresh_topology().expect("clique");
    let t0 = sim2.lock().now();
    probe.poll().expect("probe round");
    let elapsed = sim2.lock().now().since(t0).as_secs_f64();
    let injected: f64 = {
        let mut s = sim2.lock();
        s.take_finished().iter().map(|r| r.bytes).sum()
    };
    println!(
        "  benchmark poll: {:>9.0} data-plane bytes, {:>6} mgmt bytes, {:>7.3} s of testbed time",
        injected, 0, elapsed
    );
    println!("  (active probing measures paths SNMP cannot see, at real cost)");
}

fn main() {
    ablation_graph_vs_flow_queries();
    ablation_self_traffic();
    ablation_clustering_quality();
    ablation_predictors();
    ablation_collector_intrusiveness();
    let _ = TestbedHarness::cmu; // keep the facade exercised in docs
}
