//! Fabric-scale hot-path benchmark: per-event engine cost and warm
//! query cost on a generated 1k+-node k-ary fat-tree, written to
//! `BENCH_fabric.json`.
//!
//! Scenario (see `remos_net::fabric`): a k=16 fat-tree (1024 hosts, 320
//! switches, 3072 duplex links) under seeded steady-state churn — a
//! constant population of 2048 persistent flows, 80% intra-pod, each
//! event retiring one flow and admitting a replacement. Both solver
//! modes run the same seeded schedule; their rates/event digests must
//! match each other *and* the golden digests captured on the pre-rewrite
//! engine (commit 89f5e74), which is the machine-independent proof that
//! the CSR/arena core is a pure layout change.
//!
//! The wall-clock gate is the ISSUE 8 acceptance bar: median ns per
//! flow-event must beat the recorded pre-rewrite baseline by >=2x, and
//! stay within the explicit ns/flow-event and ns/query budgets. Quick
//! mode (CI smoke) shrinks the scenario and only warns on wall-clock
//! bars — shared runners are too noisy — but still hard-fails on any
//! digest mismatch.
//!
//! Flags: `--quick` shrinks the scenario; `--out <path>` overrides the
//! JSON destination.

use remos_bench::fold_digests;
use remos_core::collector::oracle::OracleCollector;
use remos_core::collector::Collector;
use remos_core::modeler::{Modeler, ModelerConfig, QueryWorkspace};
use remos_core::prelude::*;
use remos_net::{FabricChurn, FatTree, SimDuration, Simulator, SolverMode};
use remos_snmp::sim::{share, SharedSim};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    k: usize,
    flows: usize,
    seed: u64,
    locality_pct: u32,
    warmup_events: usize,
    events: usize,
    /// Warm graph-query repetitions for the ns/query measurement.
    query_repeats: usize,
    /// Hosts per pod included in the query target set.
    query_hosts_per_pod: usize,
}

/// Pre-rewrite baselines, measured on the dev machine at commit 89f5e74
/// (the last commit before the CSR/arena core) with this binary's
/// default (non-quick) configuration. The >=2x gate compares against
/// these; the golden digests below are machine-independent and must
/// hold everywhere.
const PRE_REWRITE_MEDIAN_NS_PER_EVENT: u64 = 10_274_319;
const PRE_REWRITE_MEDIAN_NS_PER_QUERY: u64 = 125_874;

/// Golden scenario digests (rates, events) per (quick, mode) — captured
/// on the pre-rewrite engine and required to survive the rewrite
/// bit-for-bit.
const GOLDEN_FULL: (u64, u64) = (0x86e1_3d0d_0500_449b, 0x1f45_b3f1_cabe_973f);
const GOLDEN_INCREMENTAL: (u64, u64) = GOLDEN_FULL;
const GOLDEN_QUICK_FULL: (u64, u64) = (0xf26f_cba5_ab82_90cf, 0x457e_efe5_76a4_13b2);
const GOLDEN_QUICK_INCREMENTAL: (u64, u64) = GOLDEN_QUICK_FULL;

/// Explicit post-rewrite budgets (non-quick config, dev machine): the
/// hot path regresses the moment either median crosses these. The event
/// budget is exactly half the pre-rewrite median — i.e. the 2x bar —
/// and the post-rewrite engine clears it with ~20% headroom (measured
/// ~4.1M ns/event in both modes, ~77k ns/query through the reused
/// workspace).
const BUDGET_NS_PER_EVENT: u64 = 5_137_159;
const BUDGET_NS_PER_QUERY: u64 = 250_000;

struct ModeStats {
    label: &'static str,
    live_flows: usize,
    events: usize,
    wall_ns: u64,
    median_ns_per_event: u64,
    p90_ns_per_event: u64,
    events_per_sec: f64,
    full_recomputes: u64,
    scoped_recomputes: u64,
    rates_digest: u64,
    event_digest: u64,
}

fn percentiles(samples: &mut [u64]) -> (u64, u64) {
    samples.sort_unstable();
    (samples[samples.len() / 2], samples[samples.len() * 9 / 10])
}

fn run_mode(mode: SolverMode, label: &'static str, cfg: &Config) -> ModeStats {
    let mut bench = FabricChurn::new(cfg.k, cfg.flows, cfg.seed, cfg.locality_pct, mode)
        .expect("fabric churn builds");
    for _ in 0..cfg.warmup_events {
        bench.step().expect("warmup event");
    }
    let mut samples: Vec<u64> = Vec::with_capacity(cfg.events);
    let start = Instant::now();
    for _ in 0..cfg.events {
        let t0 = Instant::now();
        bench.step().expect("churn event");
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let (median_ns_per_event, p90_ns_per_event) = percentiles(&mut samples);
    ModeStats {
        label,
        live_flows: bench.live_flows(),
        events: cfg.events,
        wall_ns,
        median_ns_per_event,
        p90_ns_per_event,
        events_per_sec: cfg.events as f64 / (wall_ns as f64 / 1e9),
        full_recomputes: bench.sim.full_recomputes(),
        scoped_recomputes: bench.sim.scoped_recomputes(),
        rates_digest: bench.sim.rates_digest(),
        event_digest: bench.sim.event_digest(),
    }
}

struct QueryStats {
    repeats: usize,
    targets: usize,
    median_ns: u64,
    p90_ns: u64,
    digest: u64,
}

/// Warm cached graph queries against the fabric: one OracleCollector
/// polling the fat-tree simulator, one modeler with the default plan
/// cache, the same multi-pod host set queried repeatedly.
fn run_queries(cfg: &Config) -> QueryStats {
    let tree = FatTree::build(cfg.k).expect("fat tree builds");
    let mut names = Vec::new();
    for p in 0..tree.pods() {
        for i in 0..cfg.query_hosts_per_pod {
            names.push(tree.topology().node(tree.host(p, i)).name.clone());
        }
    }
    let sim: SharedSim =
        share(Simulator::new(tree.into_parts().0).expect("fabric simulator"));
    let mut col = OracleCollector::new(Arc::clone(&sim));
    for _ in 0..4 {
        sim.lock().run_for(SimDuration::from_millis(250)).expect("advance sim");
        col.poll().expect("poll oracle");
    }
    let modeler = Modeler::new(ModelerConfig::default());
    let tf = Timeframe::Window(SimDuration::from_secs(2));
    let reference = modeler.get_graph(&col, &names, tf).expect("graph query");
    let digest = reference.digest();

    // Warm repeats go through the reused workspace — the allocation-free
    // steady-state query path this file's ns/query budget gates.
    let mut ws = QueryWorkspace::new();
    let mut samples = Vec::with_capacity(cfg.query_repeats);
    for _ in 0..cfg.query_repeats {
        let t0 = Instant::now();
        let g = modeler.get_graph_in(&col, &names, tf, &mut ws).expect("graph query");
        samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(g.digest(), digest, "warm fabric query drifted");
    }
    let (median_ns, p90_ns) = percentiles(&mut samples);
    QueryStats { repeats: cfg.query_repeats, targets: names.len(), median_ns, p90_ns, digest }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_fabric.json", |s| s.as_str());

    let cfg = if quick {
        Config {
            k: 8,
            flows: 256,
            seed: 0xFA_B51C,
            locality_pct: 80,
            warmup_events: 20,
            events: 80,
            query_repeats: 30,
            query_hosts_per_pod: 4,
        }
    } else {
        Config {
            k: 16,
            flows: 2048,
            seed: 0xFA_B51C,
            locality_pct: 80,
            warmup_events: 50,
            events: 300,
            query_repeats: 100,
            query_hosts_per_pod: 4,
        }
    };
    let nodes = {
        let half = cfg.k / 2;
        cfg.k * half * half + cfg.k * cfg.k + half * half
    };
    println!(
        "fabric benchmark: k={} fat-tree ({} nodes), {} flows, {}% intra-pod, {} events{}",
        cfg.k,
        nodes,
        cfg.flows,
        cfg.locality_pct,
        cfg.events,
        if quick { " (quick)" } else { "" }
    );

    let full = run_mode(SolverMode::Full, "full", &cfg);
    let inc = run_mode(SolverMode::Incremental, "incremental", &cfg);
    for s in [&full, &inc] {
        println!(
            "  {:<12} {:>10} ns/event median, {:>10} ns p90, {:>8.0} events/s \
             ({} full + {} scoped solves) rates={:#x} events={:#x}",
            s.label,
            s.median_ns_per_event,
            s.p90_ns_per_event,
            s.events_per_sec,
            s.full_recomputes,
            s.scoped_recomputes,
            s.rates_digest,
            s.event_digest,
        );
    }

    // Digest gates are machine-independent: hard-fail even in quick mode.
    assert_eq!(
        (full.rates_digest, full.event_digest),
        (inc.rates_digest, inc.event_digest),
        "solver modes diverged on the fabric churn scenario"
    );
    let (golden_full, golden_inc) = if quick {
        (GOLDEN_QUICK_FULL, GOLDEN_QUICK_INCREMENTAL)
    } else {
        (GOLDEN_FULL, GOLDEN_INCREMENTAL)
    };
    let digests_match = (full.rates_digest, full.event_digest) == golden_full
        && (inc.rates_digest, inc.event_digest) == golden_inc;
    assert!(
        digests_match,
        "fabric digests diverged from the pre-rewrite goldens: \
         got rates={:#x} events={:#x}, want rates={:#x} events={:#x}",
        full.rates_digest, full.event_digest, golden_full.0, golden_full.1
    );

    let queries = run_queries(&cfg);
    println!(
        "  {:<12} {:>10} ns/query median, {:>10} ns p90 ({} targets, {} repeats)",
        "warm query", queries.median_ns, queries.p90_ns, queries.targets, queries.repeats
    );

    let speedup = PRE_REWRITE_MEDIAN_NS_PER_EVENT as f64 / inc.median_ns_per_event as f64;
    let query_speedup = PRE_REWRITE_MEDIAN_NS_PER_QUERY as f64 / queries.median_ns as f64;
    println!("  speedup vs pre-rewrite (median ns/event): {speedup:.2}x");
    println!("  speedup vs pre-rewrite (median ns/query): {query_speedup:.2}x");

    let mode_json = |s: &ModeStats| {
        serde_json::json!({
            "events": s.events,
            "live_flows": s.live_flows,
            "wall_ns": s.wall_ns,
            "median_ns_per_event": s.median_ns_per_event,
            "p90_ns_per_event": s.p90_ns_per_event,
            "events_per_sec": s.events_per_sec,
            "full_recomputes": s.full_recomputes,
            "scoped_recomputes": s.scoped_recomputes,
            "rates_digest": s.rates_digest,
            "event_digest": s.event_digest,
        })
    };
    let doc = serde_json::json!({
        "benchmark": "fabric_churn",
        "quick": quick,
        "scenario": {
            "k": cfg.k,
            "nodes": nodes,
            "flows": cfg.flows,
            "seed": cfg.seed,
            "locality_pct": cfg.locality_pct,
            "events": cfg.events,
        },
        "modes": { "full": mode_json(&full), "incremental": mode_json(&inc) },
        "warm_query": {
            "targets": queries.targets,
            "repeats": queries.repeats,
            "median_ns": queries.median_ns,
            "p90_ns": queries.p90_ns,
            "digest": fold_digests(&[queries.digest]),
        },
        "baseline": {
            "pre_rewrite_median_ns_per_event": PRE_REWRITE_MEDIAN_NS_PER_EVENT,
            "pre_rewrite_median_ns_per_query": PRE_REWRITE_MEDIAN_NS_PER_QUERY,
            "commit": "89f5e74",
        },
        "budget_ns_per_event": BUDGET_NS_PER_EVENT,
        "budget_ns_per_query": BUDGET_NS_PER_QUERY,
        "speedup_vs_prerewrite": speedup,
        "query_speedup_vs_prerewrite": query_speedup,
        "digests_match": true,
    });
    std::fs::write(out, format!("{:#}\n", doc)).expect("write BENCH_fabric.json");
    println!("wrote {out}");

    // Wall-clock gates: >=2x over the pre-rewrite baseline and within
    // the explicit budgets. Quick mode (CI smoke) only warns — shared
    // runners are too noisy for hard wall-clock bars — and its shrunken
    // scenario is not what the baseline was measured on.
    if quick {
        if speedup < 2.0 {
            eprintln!(
                "WARN: quick-mode speedup {speedup:.2}x below 2x (not comparable to the \
                 full-size baseline; informational only)"
            );
        }
        return;
    }
    let mut failed = false;
    if speedup < 2.0 {
        eprintln!("FAIL: speedup {speedup:.2}x vs pre-rewrite is below the 2x acceptance bar");
        failed = true;
    }
    if inc.median_ns_per_event > BUDGET_NS_PER_EVENT {
        eprintln!(
            "FAIL: {} ns/event median exceeds the {} ns budget",
            inc.median_ns_per_event, BUDGET_NS_PER_EVENT
        );
        failed = true;
    }
    if queries.median_ns > BUDGET_NS_PER_QUERY {
        eprintln!(
            "FAIL: {} ns/query median exceeds the {} ns budget",
            queries.median_ns, BUDGET_NS_PER_QUERY
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
