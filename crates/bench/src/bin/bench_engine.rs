//! Engine hot-path benchmark: per-event cost of rate recomputation under
//! ≥1k-flow churn, full vs incremental solver, written to
//! `BENCH_engine.json` so future changes have a recorded perf baseline.
//!
//! Scenario (see `remos_bench::churn`): a pod network with all traffic
//! intra-pod. Each event retires one flow and admits another, then
//! advances simulated time so the engine re-solves rates once. The full
//! solver re-solves every flow per event; the incremental solver only
//! the affected pod's component — the contrast this binary measures.
//!
//! Flags: `--quick` shrinks the scenario for CI smoke runs; the default
//! is the 1k-flow configuration the ISSUE's ≥3× acceptance bar refers
//! to. `--out <path>` overrides the JSON destination.

use remos_bench::churn::ChurnBench;
use remos_net::SolverMode;
use std::time::Instant;

struct Config {
    pods: usize,
    hosts_per_pod: usize,
    flows_per_pod: usize,
    warmup_events: usize,
    events: usize,
}

struct ModeStats {
    label: &'static str,
    live_flows: usize,
    events: usize,
    wall_ns: u64,
    median_ns_per_event: u64,
    p90_ns_per_event: u64,
    events_per_sec: f64,
    full_recomputes: u64,
    scoped_recomputes: u64,
    rates_digest: u64,
}

fn run_mode(mode: SolverMode, label: &'static str, cfg: &Config) -> ModeStats {
    let mut bench = ChurnBench::new(cfg.pods, cfg.hosts_per_pod, cfg.flows_per_pod, mode);
    for i in 0..cfg.warmup_events {
        bench.step(i);
    }
    let mut samples: Vec<u64> = Vec::with_capacity(cfg.events);
    let start = Instant::now();
    for i in 0..cfg.events {
        let t0 = Instant::now();
        bench.step(cfg.warmup_events + i);
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    samples.sort_unstable();
    let median_ns_per_event = samples[samples.len() / 2];
    let p90_ns_per_event = samples[samples.len() * 9 / 10];
    ModeStats {
        label,
        live_flows: bench.live_flows(),
        events: cfg.events,
        wall_ns,
        median_ns_per_event,
        p90_ns_per_event,
        events_per_sec: cfg.events as f64 / (wall_ns as f64 / 1e9),
        full_recomputes: bench.sim.full_recomputes(),
        scoped_recomputes: bench.sim.scoped_recomputes(),
        rates_digest: bench.sim.rates_digest(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_engine.json", |s| s.as_str());

    let cfg = if quick {
        Config { pods: 25, hosts_per_pod: 4, flows_per_pod: 10, warmup_events: 25, events: 100 }
    } else {
        Config { pods: 100, hosts_per_pod: 4, flows_per_pod: 10, warmup_events: 100, events: 500 }
    };
    let flows = cfg.pods * cfg.flows_per_pod;
    println!(
        "engine churn benchmark: {} pods x {} flows = {} concurrent flows, {} events{}",
        cfg.pods,
        cfg.flows_per_pod,
        flows,
        cfg.events,
        if quick { " (quick)" } else { "" }
    );

    let full = run_mode(SolverMode::Full, "full", &cfg);
    let inc = run_mode(SolverMode::Incremental, "incremental", &cfg);
    assert_eq!(
        full.rates_digest, inc.rates_digest,
        "solver modes diverged on the benchmark scenario"
    );

    for s in [&full, &inc] {
        println!(
            "  {:<12} {:>10} ns/event median, {:>10} ns p90, {:>10.0} events/s \
             ({} full + {} scoped solves)",
            s.label,
            s.median_ns_per_event,
            s.p90_ns_per_event,
            s.events_per_sec,
            s.full_recomputes,
            s.scoped_recomputes,
        );
    }
    let speedup = full.median_ns_per_event as f64 / inc.median_ns_per_event as f64;
    println!("  speedup (median ns/event, full / incremental): {speedup:.2}x");

    let mode_json = |s: &ModeStats| {
        serde_json::json!({
            "events": s.events,
            "live_flows": s.live_flows,
            "wall_ns": s.wall_ns,
            "median_ns_per_event": s.median_ns_per_event,
            "p90_ns_per_event": s.p90_ns_per_event,
            "events_per_sec": s.events_per_sec,
            "full_recomputes": s.full_recomputes,
            "scoped_recomputes": s.scoped_recomputes,
        })
    };
    let doc = serde_json::json!({
        "benchmark": "engine_churn",
        "quick": quick,
        "scenario": {
            "pods": cfg.pods,
            "hosts_per_pod": cfg.hosts_per_pod,
            "flows_per_pod": cfg.flows_per_pod,
            "concurrent_flows": flows,
            "events": cfg.events,
        },
        "modes": { "full": mode_json(&full), "incremental": mode_json(&inc) },
        "speedup_median": speedup,
        "digests_match": true,
    });
    std::fs::write(out, format!("{:#}\n", doc)).expect("write BENCH_engine.json");
    println!("wrote {out}");

    // The acceptance bar: incremental must beat full by >=3x on the
    // 1k-flow scenario. Quick mode (CI smoke) only warns, since shared
    // runners make wall-clock ratios noisy.
    if !quick && speedup < 3.0 {
        eprintln!("FAIL: speedup {speedup:.2}x is below the 3x acceptance bar");
        std::process::exit(1);
    }
}
