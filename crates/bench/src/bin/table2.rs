//! Table 2 — "Performance implications of node selection using Remos in
//! the presence of external traffic": node selection in a *dynamic*
//! environment.
//!
//! A synthetic traffic program loads the m-6 → m-8 route (via
//! timberline → whiteface, Fig 4). Each program runs on (a) the nodes
//! Remos selects from current dynamic measurements, (b) the node set the
//! paper lists as the static-capacities-only selection, and (c) the
//! Remos-selected nodes with no traffic at all (the last column). The
//! paper's headline: static selection is 79–194% slower; dynamic
//! selection degrades only marginally versus the unloaded run. Shared
//! definitions live in `remos_bench::experiments`.

use remos_bench::experiments::run_table2;
use remos_bench::{emit, nodeset, pct_increase, Cell};

fn main() {
    println!("Table 2: node selection with external m-6 -> m-8 traffic");
    println!("(paper: static selection 79-194% slower; dynamic near the unloaded time)\n");
    println!(
        "{:<11} {:>3}  {:<12} {:>8}   {:<14} {:>9} {:>6}   {:>10}",
        "Program", "N", "Remos set", "time(s)", "static set", "time(s)", "+%", "no-traf(s)"
    );
    for r in run_table2() {
        for (column, nodes, seconds) in [
            ("remos-dynamic", &r.dynamic.0, r.dynamic.1),
            ("static-selection", &r.static_sel.0, r.static_sel.1),
            ("no-traffic", &r.dynamic.0, r.no_traffic),
        ] {
            emit(&Cell {
                experiment: "table2",
                row: format!("{} x{}", r.label, r.nodes),
                column: column.into(),
                nodes: nodes.clone(),
                seconds,
                migrations: 0,
            });
        }
        println!(
            "{:<11} {:>3}  {:<12} {:>8.3}   {:<14} {:>9.3} {:>5.0}%   {:>10.3}",
            r.label,
            r.nodes,
            nodeset(&r.dynamic.0),
            r.dynamic.1,
            nodeset(&r.static_sel.0),
            r.static_sel.1,
            pct_increase(r.dynamic.1, r.static_sel.1),
            r.no_traffic
        );
    }
}
