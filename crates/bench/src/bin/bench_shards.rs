//! Sharded-collection benchmark: federation poll+merge cost vs a
//! monolithic single collector on the same fabric, written to
//! `BENCH_shards.json`.
//!
//! Scenario: a k=16 fat-tree (1024 hosts, 6144 directed interfaces)
//! carrying a seeded population of 2048 persistent flows, 80%
//! intra-pod. The monolithic side is an `OracleCollector` — one
//! exclusive lock, one per-link flow-table scan per directed interface.
//! The sharded side is the PR 10 coordinator: `shard_fabric` splits the
//! fabric into 7 pod-group shards plus a WAN/spine shard (8 children),
//! the federation polls them concurrently on the shared scoped pool,
//! each shard issues one region-batched settled read
//! (`dirlink_rates_settled_into`), and the dirty-shard merge re-applies
//! the results into the persistent merged buffers.
//!
//! Measured polls run against a settled simulator (no time advance
//! between polls), so ns/poll isolates collection + merge cost from
//! solver cost. The acceptance gate is a >=3x median ns/poll speedup,
//! and — machine-independently — the merged view must be *bit-identical*
//! to the monolithic collector in both solver modes: same snapshot
//! bits, and a `RemosGraph::digest` pinned against the goldens below.
//!
//! Flags: `--quick` shrinks the scenario; `--out <path>` overrides the
//! JSON destination.

use remos_core::collector::multi::MultiCollector;
use remos_core::collector::oracle::OracleCollector;
use remos_core::collector::shard::shard_fabric;
use remos_core::collector::Collector;
use remos_core::modeler::Modeler;
use remos_core::Timeframe;
use remos_net::flow::FlowParams;
use remos_net::{mbps, FatTree, SimDuration, Simulator, SolverMode};
use remos_snmp::sim::{share, SharedSim};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    k: usize,
    flows: usize,
    seed: u64,
    locality_pct: u64,
    pod_groups: usize,
    warmup_polls: usize,
    polls: usize,
    query_hosts_per_pod: usize,
}

/// Golden merged-view `RemosGraph::digest` per configuration, captured
/// from the monolithic collector (the sharded federation must match it
/// bit-for-bit, in both solver modes). Machine-independent: hard-fails
/// even in quick mode.
const GOLDEN_GRAPH_DIGEST: u64 = 0x2d28_57c1_10ad_d31b;
const GOLDEN_QUICK_GRAPH_DIGEST: u64 = 0x9c50_b06c_3cf1_7ebb;

/// The acceptance bar: sharded median ns/poll must beat monolithic by
/// at least this factor (hard gate in the full-size run only; quick
/// mode warns — shared CI runners are too noisy for wall-clock bars).
const SPEEDUP_GATE: f64 = 3.0;

fn percentiles(samples: &mut [u64]) -> (u64, u64) {
    samples.sort_unstable();
    (samples[samples.len() / 2], samples[samples.len() * 9 / 10])
}

/// Seeded persistent cross-section: `locality_pct`% of flows stay
/// intra-pod, the rest cross the spine; a mix of greedy and fixed-rate.
fn seed_flows(tree: &FatTree, sim: &SharedSim, cfg: &Config) {
    let mut state = cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move |bound: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let pods = tree.pods() as u64;
    let per_pod = (tree.topology().compute_nodes().len() / tree.pods()) as u64;
    let mut s = sim.lock();
    for _ in 0..cfg.flows {
        let (sp, si) = (next(pods) as usize, next(per_pod) as usize);
        let mut di = next(per_pod) as usize;
        let dp = if next(100) < cfg.locality_pct {
            sp
        } else {
            (sp + 1 + next(pods - 1) as usize) % tree.pods()
        };
        if dp == sp && di == si {
            di = (di + 1) % per_pod as usize;
        }
        let (src, dst) = (tree.host(sp, si), tree.host(dp, di));
        let params = if next(2) == 0 {
            FlowParams::greedy(src, dst)
        } else {
            FlowParams::cbr(src, dst, mbps(5.0 + next(45) as f64))
        };
        s.start_flow(params).expect("seed flow");
    }
}

struct SideStats {
    describe: String,
    median_ns_per_poll: u64,
    p90_ns_per_poll: u64,
    polls_per_sec: f64,
}

/// Warm then measure `cfg.polls` polls of `col` against a settled
/// simulator: pure collection + merge cost, no solver time.
fn measure_polls(col: &mut dyn Collector, cfg: &Config) -> SideStats {
    for _ in 0..cfg.warmup_polls {
        assert!(col.poll().expect("warmup poll"), "warmup poll produced nothing");
    }
    let mut samples = Vec::with_capacity(cfg.polls);
    for _ in 0..cfg.polls {
        let t0 = Instant::now();
        assert!(col.poll().expect("measured poll"), "measured poll produced nothing");
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    let (median_ns_per_poll, p90_ns_per_poll) = percentiles(&mut samples);
    SideStats {
        describe: col.describe(),
        median_ns_per_poll,
        p90_ns_per_poll,
        polls_per_sec: 1e9 / median_ns_per_poll.max(1) as f64,
    }
}

struct ModeResult {
    label: &'static str,
    mono: SideStats,
    fed: SideStats,
    speedup: f64,
    graph_digest: u64,
}

fn run_mode(mode: SolverMode, label: &'static str, cfg: &Config) -> ModeResult {
    let tree = FatTree::build(cfg.k).expect("fat tree builds");
    let mut sim = Simulator::new(FatTree::build(cfg.k).expect("fat tree builds").into_parts().0)
        .expect("fabric simulator");
    sim.set_solver_mode(mode);
    let sim: SharedSim = share(sim);
    seed_flows(&tree, &sim, cfg);
    sim.lock().run_for(SimDuration::from_millis(500)).expect("advance sim");

    let mut mono = OracleCollector::new(Arc::clone(&sim));
    let shards = shard_fabric(&tree, &sim, cfg.pod_groups).expect("shard fabric");
    assert_eq!(shards.len(), cfg.pod_groups + 1, "pod groups + spine");
    let children: Vec<Box<dyn Collector>> =
        shards.into_iter().map(|s| Box::new(s) as Box<dyn Collector>).collect();
    let mut fed = MultiCollector::new(children);
    fed.refresh_topology().expect("federation discovery");

    let mono_stats = measure_polls(&mut mono, cfg);
    let fed_stats = measure_polls(&mut fed, cfg);

    // Bit-identity, sample level: the merged snapshot equals the
    // monolithic one bit-for-bit.
    let (ms, fs) =
        (mono.history().latest().expect("mono snapshot"), fed.history().latest().expect("fed snapshot"));
    assert_eq!(ms.t, fs.t, "{label}: sample time diverged");
    assert_eq!(ms.util.len(), fs.util.len(), "{label}: sample width diverged");
    for (i, (a, b)) in ms.util.iter().zip(fs.util.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: util[{i}] diverged: {a} vs {b}");
    }
    assert_eq!(ms.quality, fs.quality, "{label}: quality diverged");

    // Bit-identity, query level: graph digests through the modeler.
    let names: Vec<String> = (0..tree.pods())
        .flat_map(|p| (0..cfg.query_hosts_per_pod).map(move |i| (p, i)))
        .map(|(p, i)| tree.topology().node(tree.host(p, i)).name.clone())
        .collect();
    let modeler = Modeler::default();
    let gm = modeler.get_graph(&mono, &names, Timeframe::Current).expect("mono graph");
    let gf = modeler.get_graph(&fed, &names, Timeframe::Current).expect("fed graph");
    assert_eq!(gm.digest(), gf.digest(), "{label}: merged graph digest diverged from monolithic");

    ModeResult {
        label,
        speedup: mono_stats.median_ns_per_poll as f64 / fed_stats.median_ns_per_poll.max(1) as f64,
        mono: mono_stats,
        fed: fed_stats,
        graph_digest: gm.digest(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_shards.json", |s| s.as_str());

    let cfg = if quick {
        Config {
            k: 8,
            flows: 256,
            seed: 0x5AAD_5EED,
            locality_pct: 80,
            pod_groups: 7,
            warmup_polls: 3,
            polls: 30,
            query_hosts_per_pod: 2,
        }
    } else {
        Config {
            k: 16,
            flows: 2048,
            seed: 0x5AAD_5EED,
            locality_pct: 80,
            pod_groups: 7,
            warmup_polls: 3,
            polls: 50,
            query_hosts_per_pod: 2,
        }
    };
    let dirlinks = {
        let half = cfg.k / 2;
        // host-edge, edge-agg, and agg-core tiers are k*(k/2)^2 duplex
        // links each; two directions per link.
        6 * cfg.k * half * half
    };
    println!(
        "shard benchmark: k={} fat-tree ({} directed interfaces), {} flows, {}% intra-pod, \
         {}+1 shards, {} polls{}",
        cfg.k,
        dirlinks,
        cfg.flows,
        cfg.locality_pct,
        cfg.pod_groups,
        cfg.polls,
        if quick { " (quick)" } else { "" }
    );

    let full = run_mode(SolverMode::Full, "full", &cfg);
    let inc = run_mode(SolverMode::Incremental, "incremental", &cfg);
    for r in [&full, &inc] {
        println!(
            "  {:<12} monolithic {:>12} ns/poll median ({:>10} p90) | sharded {:>10} ns/poll \
             median ({:>9} p90) | {:>6.1}x | graph digest {:#x}",
            r.label,
            r.mono.median_ns_per_poll,
            r.mono.p90_ns_per_poll,
            r.fed.median_ns_per_poll,
            r.fed.p90_ns_per_poll,
            r.speedup,
            r.graph_digest,
        );
    }

    // Machine-independent gates: hard-fail even in quick mode.
    assert_eq!(
        full.graph_digest, inc.graph_digest,
        "solver modes diverged on the sharded fabric scenario"
    );
    let golden = if quick { GOLDEN_QUICK_GRAPH_DIGEST } else { GOLDEN_GRAPH_DIGEST };
    assert_eq!(
        full.graph_digest, golden,
        "merged graph digest diverged from the golden (got {:#x}, want {:#x})",
        full.graph_digest, golden
    );

    let doc = serde_json::json!({
        "benchmark": "shard_poll_merge",
        "quick": quick,
        "scenario": {
            "k": cfg.k,
            "dir_links": dirlinks,
            "flows": cfg.flows,
            "seed": cfg.seed,
            "locality_pct": cfg.locality_pct,
            "shards": cfg.pod_groups + 1,
            "polls": cfg.polls,
        },
        "modes": {
            "full": mode_json(&full),
            "incremental": mode_json(&inc),
        },
        "graph_digest": full.graph_digest,
        "golden_graph_digest": golden,
        "speedup_gate": SPEEDUP_GATE,
        "digests_match": true,
    });
    std::fs::write(out, format!("{:#}\n", doc)).expect("write BENCH_shards.json");
    println!("wrote {out}");

    // Wall-clock gate: >=3x in the full-size run; quick mode only warns
    // (shared runners are too noisy, and the shrunken fabric gives the
    // monolithic side a smaller handicap).
    let worst = full.speedup.min(inc.speedup);
    if quick {
        if worst < SPEEDUP_GATE {
            eprintln!(
                "WARN: quick-mode speedup {worst:.2}x below {SPEEDUP_GATE}x \
                 (informational only at quick scale)"
            );
        }
        return;
    }
    if worst < SPEEDUP_GATE {
        eprintln!(
            "FAIL: sharded poll speedup {worst:.2}x is below the {SPEEDUP_GATE}x acceptance bar"
        );
        std::process::exit(1);
    }
}

fn mode_json(r: &ModeResult) -> serde_json::Value {
    serde_json::json!({
        "monolithic": {
            "collector": r.mono.describe.clone(),
            "median_ns_per_poll": r.mono.median_ns_per_poll,
            "p90_ns_per_poll": r.mono.p90_ns_per_poll,
            "polls_per_sec": r.mono.polls_per_sec,
        },
        "sharded": {
            "collector": r.fed.describe.clone(),
            "median_ns_per_poll": r.fed.median_ns_per_poll,
            "p90_ns_per_poll": r.fed.p90_ns_per_poll,
            "polls_per_sec": r.fed.polls_per_sec,
        },
        "speedup": r.speedup,
        "graph_digest": r.graph_digest,
    })
}
