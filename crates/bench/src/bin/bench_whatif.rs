//! What-if FCT estimation benchmark: fluid kernel throughput vs. the
//! ground-truth event-driven simulator on a fat-tree workload, written
//! to `BENCH_whatif.json`.
//!
//! Scenario (see `remos_net::whatif` / `remos_net::fabric`): a seeded
//! synthetic workload of hypothetical flows (empirical flow-size ECDF,
//! lognormal inter-arrivals calibrated to a target access-link load,
//! skewed ToR-to-ToR spatial matrix) over a k=16 fat-tree (1024 hosts,
//! 320 switches). The same flow set is estimated four ways — the
//! [`WhatIfEngine`] kernel and a ground-truth [`Simulator`] replay, each
//! in both [`SolverMode`]s — and all four FCT digests must agree
//! bit-for-bit, plus match the golden digests pinned below. That is the
//! machine-independent proof that the fluid kernel is exactly as right
//! as the full event engine, not approximately.
//!
//! The wall-clock gate is the ISSUE 9 acceptance bar: the kernel must
//! estimate >= 5x more flows/sec than the Full-mode ground-truth replay.
//! Quick mode (CI smoke) shrinks the scenario and only warns on the
//! wall-clock bar — shared runners are too noisy — but still hard-fails
//! on any digest mismatch.
//!
//! Flags: `--quick` shrinks the scenario; `--out <path>` overrides the
//! JSON destination.

use remos_net::fabric::{synth_fabric_workload, FatTree, FlowSizeEcdf, WorkloadSpec};
use remos_net::whatif::{replay_ground_truth, WhatIfEngine, WhatIfFlow, WhatIfReport};
use remos_net::SolverMode;
use std::time::Instant;

struct Config {
    k: usize,
    flows: usize,
    seed: u64,
    target_load: f64,
    /// Kernel estimation repeats (amortizes timer noise; ground truth
    /// runs once — it is the slow side by construction).
    kernel_repeats: usize,
}

/// Golden FCT digests per (quick, default-vs-quick scenario) — captured
/// on the kernel at the commit introducing it, reproduced by the
/// ground-truth simulator replay, and required to hold on every machine.
const GOLDEN: u64 = 0xcb00_2cad_73e6_65b4;
const GOLDEN_QUICK: u64 = 0x97a0_76b9_de24_548b;

/// The acceptance bar: kernel flows/sec over the Full-mode ground-truth
/// replay's flows/sec — the canonical event-engine baseline. The
/// incremental-mode replay (itself an optimized artifact of this repo)
/// is measured and reported alongside for context.
const SPEEDUP_BAR: f64 = 5.0;

struct KernelStats {
    label: &'static str,
    wall_ns: u64,
    flows_per_sec: f64,
    replay_steps: u64,
    solves: u64,
    fct_digest: u64,
}

fn run_kernel(
    mode: SolverMode,
    label: &'static str,
    tree: &FatTree,
    flows: &[WhatIfFlow],
    repeats: usize,
) -> KernelStats {
    let mut engine = WhatIfEngine::from_topology(tree.topology().clone());
    engine.set_mode(mode);
    // One warmup pass populates the scratch arenas.
    let reference = engine.estimate(flows).expect("what-if estimate");
    let start = Instant::now();
    let mut report: Option<WhatIfReport> = None;
    for _ in 0..repeats {
        report = Some(engine.estimate(flows).expect("what-if estimate"));
    }
    let wall_ns = (start.elapsed().as_nanos() as u64).max(1) / repeats as u64;
    let report = report.unwrap_or(reference);
    KernelStats {
        label,
        wall_ns,
        flows_per_sec: flows.len() as f64 / (wall_ns as f64 / 1e9),
        replay_steps: report.replay_steps,
        solves: report.solves,
        fct_digest: report.fct_digest,
    }
}

struct TruthStats {
    label: &'static str,
    wall_ns: u64,
    flows_per_sec: f64,
    fct_digest: u64,
}

fn run_truth(
    mode: SolverMode,
    label: &'static str,
    tree: &FatTree,
    flows: &[WhatIfFlow],
) -> TruthStats {
    let start = Instant::now();
    let report =
        replay_ground_truth(tree.topology().clone(), flows, mode).expect("ground-truth replay");
    let wall_ns = (start.elapsed().as_nanos() as u64).max(1);
    TruthStats {
        label,
        wall_ns,
        flows_per_sec: flows.len() as f64 / (wall_ns as f64 / 1e9),
        fct_digest: report.fct_digest,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_whatif.json", |s| s.as_str());

    let cfg = if quick {
        Config { k: 8, flows: 1_000, seed: 0x0FC7, target_load: 0.3, kernel_repeats: 3 }
    } else {
        Config { k: 16, flows: 10_000, seed: 0x0FC7, target_load: 0.3, kernel_repeats: 5 }
    };
    let nodes = {
        let half = cfg.k / 2;
        cfg.k * half * half + cfg.k * cfg.k + half * half
    };

    let tree = FatTree::build(cfg.k).expect("fat tree builds");
    let ecdf = FlowSizeEcdf::web_search();
    let spec = WorkloadSpec::new(cfg.seed, cfg.flows, cfg.target_load);
    let flows = synth_fabric_workload(&tree, &ecdf, &spec).expect("workload synthesis");
    println!(
        "what-if benchmark: k={} fat-tree ({} nodes), {} hypothetical flows, \
         {:.0}% target load{}",
        cfg.k,
        nodes,
        flows.len(),
        cfg.target_load * 100.0,
        if quick { " (quick)" } else { "" }
    );

    let kern_inc =
        run_kernel(SolverMode::Incremental, "kernel/incr", &tree, &flows, cfg.kernel_repeats);
    let kern_full =
        run_kernel(SolverMode::Full, "kernel/full", &tree, &flows, cfg.kernel_repeats);
    let truth_inc = run_truth(SolverMode::Incremental, "truth/incr", &tree, &flows);
    let truth_full = run_truth(SolverMode::Full, "truth/full", &tree, &flows);

    for s in [&kern_inc, &kern_full] {
        println!(
            "  {:<12} {:>12} ns/batch, {:>10.0} flows/s, {} steps, {} solves, digest {:#018x}",
            s.label, s.wall_ns, s.flows_per_sec, s.replay_steps, s.solves, s.fct_digest
        );
    }
    for s in [&truth_inc, &truth_full] {
        println!(
            "  {:<12} {:>12} ns/batch, {:>10.0} flows/s, digest {:#018x}",
            s.label, s.wall_ns, s.flows_per_sec, s.fct_digest
        );
    }

    // Digest gates are machine-independent: hard-fail even in quick mode.
    let digests =
        [kern_inc.fct_digest, kern_full.fct_digest, truth_inc.fct_digest, truth_full.fct_digest];
    assert!(
        digests.iter().all(|&d| d == digests[0]),
        "what-if kernel and ground-truth replays diverged: {digests:#018x?}"
    );
    let golden = if quick { GOLDEN_QUICK } else { GOLDEN };
    assert_eq!(
        digests[0], golden,
        "what-if FCT digest drifted from the pinned golden ({:#018x} != {golden:#018x})",
        digests[0]
    );

    let speedup = kern_inc.flows_per_sec / truth_full.flows_per_sec;
    let speedup_vs_inc = kern_inc.flows_per_sec / truth_inc.flows_per_sec;
    println!("  speedup vs ground-truth replay (flows/s): {speedup:.1}x full, {speedup_vs_inc:.1}x incremental");

    let kernel_json = |s: &KernelStats| {
        serde_json::json!({
            "wall_ns_per_batch": s.wall_ns,
            "flows_per_sec": s.flows_per_sec,
            "replay_steps": s.replay_steps,
            "solves": s.solves,
            "fct_digest": format!("{:#018x}", s.fct_digest),
        })
    };
    let truth_json = |s: &TruthStats| {
        serde_json::json!({
            "wall_ns_per_batch": s.wall_ns,
            "flows_per_sec": s.flows_per_sec,
            "fct_digest": format!("{:#018x}", s.fct_digest),
        })
    };
    let doc = serde_json::json!({
        "benchmark": "whatif_fct",
        "quick": quick,
        "scenario": {
            "k": cfg.k,
            "nodes": nodes,
            "flows": flows.len(),
            "seed": cfg.seed,
            "target_load": cfg.target_load,
            "ecdf": "web_search",
            "kernel_repeats": cfg.kernel_repeats,
        },
        "kernel": {
            "incremental": kernel_json(&kern_inc),
            "full": kernel_json(&kern_full),
        },
        "ground_truth": {
            "incremental": truth_json(&truth_inc),
            "full": truth_json(&truth_full),
        },
        "speedup_vs_ground_truth": speedup,
        "speedup_vs_incremental_ground_truth": speedup_vs_inc,
        "speedup_bar": SPEEDUP_BAR,
        "golden_fct_digest": format!("{golden:#018x}"),
        "digests_match": true,
    });
    std::fs::write(out, format!("{:#}\n", doc)).expect("write BENCH_whatif.json");
    println!("wrote {out}");

    // Wall-clock gate: quick mode (CI smoke) only warns — shared runners
    // are too noisy for hard wall-clock bars.
    if speedup < SPEEDUP_BAR {
        if quick {
            eprintln!(
                "WARN: quick-mode speedup {speedup:.1}x below {SPEEDUP_BAR}x (informational)"
            );
        } else {
            eprintln!(
                "FAIL: kernel speedup {speedup:.1}x over ground truth is below the \
                 {SPEEDUP_BAR}x acceptance bar"
            );
            std::process::exit(1);
        }
    }
}
