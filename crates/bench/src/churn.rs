//! Shared churn scenario for the engine hot-path benchmark.
//!
//! A pod/leaf-spine style network: `pods` switches hang off one core
//! router, each pod serving `hosts_per_pod` hosts. All traffic is
//! intra-pod, so flows in different pods share no resources — the shape
//! the incremental solver is built for: one arrival or departure dirties
//! a single pod's component, not the whole fabric. The full solver must
//! still re-solve every flow on every event, which is exactly the
//! before/after contrast `BENCH_engine.json` records.
//!
//! Used by both the `bench_engine` binary (wall-clock measurement lives
//! there; library code is lint-banned from `std::time`) and the criterion
//! `engine` bench.

use remos_net::flow::FlowParams;
use remos_net::{gbps, mbps, FlowHandle, SimDuration, Simulator, SolverMode, Topology,
    TopologyBuilder};
use std::collections::VecDeque;

/// Build the pod network: `pods` switches off a core router, each with
/// `hosts_per_pod` 100 Mbps hosts.
pub fn pod_network(pods: usize, hosts_per_pod: usize) -> Topology {
    let mut b = TopologyBuilder::new();
    let core = b.network("core");
    let lat = SimDuration::from_micros(10);
    for p in 0..pods {
        let s = b.network(&format!("s{p}"));
        b.link(s, core, gbps(10.0), lat).expect("core uplink");
        for j in 0..hosts_per_pod {
            let h = b.compute(&format!("h{p}x{j}"));
            b.link(h, s, mbps(100.0), lat).expect("host link");
        }
    }
    b.build().expect("pod network builds")
}

/// Steady-state churn driver: a constant population of persistent flows,
/// with each step retiring the oldest flow of one pod and admitting a
/// replacement — one departure plus one arrival, coalesced by the engine
/// into a single rate recomputation.
pub struct ChurnBench {
    /// The simulator under test.
    pub sim: Simulator,
    /// Per-pod live flows, oldest first.
    queues: Vec<VecDeque<FlowHandle>>,
    hosts_per_pod: usize,
    /// Monotone counter varying the src/dst pairs and weights over time.
    spawned: u64,
}

impl ChurnBench {
    /// Build the scenario and bring it to steady state: `flows_per_pod`
    /// persistent flows in every pod, rates computed once.
    pub fn new(
        pods: usize,
        hosts_per_pod: usize,
        flows_per_pod: usize,
        mode: SolverMode,
    ) -> ChurnBench {
        let mut sim = Simulator::new(pod_network(pods, hosts_per_pod)).expect("simulator");
        sim.set_solver_mode(mode);
        let mut bench = ChurnBench {
            sim,
            queues: (0..pods).map(|_| VecDeque::new()).collect(),
            hosts_per_pod,
            spawned: 0,
        };
        for _ in 0..flows_per_pod {
            for pod in 0..pods {
                bench.spawn(pod);
            }
        }
        // Settle the initial allocation outside the measured window.
        bench.sim.run_for(SimDuration::from_millis(1)).expect("warmup run");
        bench
    }

    fn spawn(&mut self, pod: usize) {
        let k = self.spawned;
        self.spawned += 1;
        let hpp = self.hosts_per_pod as u64;
        let src_i = k % hpp;
        let dst_i = (src_i + 1 + k / hpp % (hpp - 1)) % hpp;
        let t = self.sim.topology();
        let src = t.lookup(&format!("h{pod}x{src_i}")).expect("src host");
        let dst = t.lookup(&format!("h{pod}x{dst_i}")).expect("dst host");
        let weight = 1.0 + (k % 4) as f64;
        let h = self
            .sim
            .start_flow(FlowParams::greedy(src, dst).with_weight(weight))
            .expect("flow starts");
        self.queues[pod].push_back(h);
    }

    /// One churn event on pod `i % pods`: retire its oldest flow, admit a
    /// replacement, and advance time so the engine recomputes rates (the
    /// departure and arrival coalesce into one solve).
    pub fn step(&mut self, i: usize) {
        let pod = i % self.queues.len();
        if let Some(h) = self.queues[pod].pop_front() {
            self.sim.stop_flow(h).expect("flow stops");
        }
        self.spawn(pod);
        self.sim.run_for(SimDuration::from_micros(100)).expect("advance");
    }

    /// Current live-flow count.
    pub fn live_flows(&self) -> usize {
        self.sim.active_flow_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_holds_population_and_audits_clean() {
        let mut b = ChurnBench::new(8, 4, 3, SolverMode::Incremental);
        b.sim.enable_audit();
        assert_eq!(b.live_flows(), 8 * 3);
        for i in 0..32 {
            b.step(i);
        }
        assert_eq!(b.live_flows(), 8 * 3);
        assert!(b.sim.audit_violations().is_empty(), "{:?}", b.sim.audit_violations());
        assert!(b.sim.scoped_recomputes() > 0);
        assert_eq!(b.sim.full_recomputes(), 0);
    }

    #[test]
    fn both_modes_agree_on_the_churn_scenario() {
        let run = |mode: SolverMode| {
            let mut b = ChurnBench::new(4, 4, 2, mode);
            for i in 0..16 {
                b.step(i);
            }
            (b.sim.rates_digest(), b.sim.event_digest())
        };
        assert_eq!(run(SolverMode::Full), run(SolverMode::Incremental));
    }
}
