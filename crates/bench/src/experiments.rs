//! Shared experiment definitions: the table binaries and the `report`
//! generator run the same code.

use crate::fresh_harness;
use remos_apps::airshed::airshed_program;
use remos_apps::fft::fft_program;
use remos_apps::synthetic::{install_scenario, TrafficScenario};
use remos_apps::testbed::TESTBED_HOSTS;
use remos_fx::Program;
use remos_net::SimDuration;
use serde::Serialize;

/// The six program/size rows shared by Tables 1 and 2.
pub struct ProgramRow {
    /// Display label ("FFT (512)").
    pub label: &'static str,
    /// Node count.
    pub nodes: usize,
    /// The program model.
    pub program: Program,
    /// Table 1's "other representative node sets".
    pub table1_others: [&'static [&'static str]; 2],
    /// Table 2's static-capacities-only selection.
    pub table2_static: &'static [&'static str],
    /// Paper values: (t1 remos, t1 other1, t1 other2, t2 dynamic,
    /// t2 static, t2 no-traffic).
    pub paper: [f64; 6],
}

/// The rows, in paper order.
pub fn program_rows() -> Vec<ProgramRow> {
    vec![
        ProgramRow {
            label: "FFT (512)",
            nodes: 2,
            program: fft_program(512, 2),
            table1_others: [&["m-1", "m-4"], &["m-4", "m-8"]],
            table2_static: &["m-4", "m-6"],
            paper: [0.462, 0.468, 0.481, 0.475, 1.40, 0.462],
        },
        ProgramRow {
            label: "FFT (512)",
            nodes: 4,
            program: fft_program(512, 4),
            table1_others: [&["m-1", "m-2", "m-4", "m-5"], &["m-1", "m-4", "m-6", "m-7"]],
            table2_static: &["m-4", "m-5", "m-6", "m-7"],
            paper: [0.266, 0.287, 0.268, 0.322, 0.893, 0.266],
        },
        ProgramRow {
            label: "FFT (1K)",
            nodes: 2,
            program: fft_program(1024, 2),
            table1_others: [&["m-1", "m-4"], &["m-4", "m-8"]],
            table2_static: &["m-4", "m-6"],
            paper: [2.63, 2.66, 2.68, 2.68, 7.38, 2.63],
        },
        ProgramRow {
            label: "FFT (1K)",
            nodes: 4,
            program: fft_program(1024, 4),
            table1_others: [&["m-1", "m-2", "m-4", "m-5"], &["m-1", "m-4", "m-6", "m-7"]],
            table2_static: &["m-4", "m-5", "m-6", "m-7"],
            paper: [1.51, 1.62, 1.61, 2.07, 3.71, 1.51],
        },
        ProgramRow {
            label: "Airshed",
            nodes: 3,
            program: airshed_program(3),
            table1_others: [&["m-4", "m-6", "m-8"], &["m-1", "m-4", "m-7"]],
            table2_static: &["m-4", "m-5", "m-6"],
            paper: [908.0, 907.0, 917.0, 905.0, 2113.0, 908.0],
        },
        ProgramRow {
            label: "Airshed",
            nodes: 5,
            program: airshed_program(5),
            table1_others: [
                &["m-1", "m-2", "m-3", "m-4", "m-5"],
                &["m-1", "m-2", "m-4", "m-5", "m-7"],
            ],
            table2_static: &["m-4", "m-5", "m-6", "m-7", "m-8"],
            paper: [650.0, 647.0, 657.0, 674.0, 1726.0, 650.0],
        },
    ]
}

/// One measured Table 1 row.
#[derive(Debug, Serialize)]
pub struct Table1Result {
    /// Row label.
    pub label: String,
    /// Node count.
    pub nodes: usize,
    /// The Remos-selected set and its execution time.
    pub remos: (Vec<String>, f64),
    /// The two alternative sets and their times.
    pub others: [(Vec<String>, f64); 2],
    /// Paper values (remos, other1, other2).
    pub paper: [f64; 3],
}

/// Run a program on explicit nodes, with an optional traffic scenario.
pub fn run_on(program: &Program, nodes: &[String], scenario: TrafficScenario) -> f64 {
    let mut h = fresh_harness();
    install_scenario(&h.sim, scenario).expect("scenario installs");
    if scenario != TrafficScenario::None {
        h.sim.lock().run_for(SimDuration::from_secs(1)).expect("warmup");
    }
    let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
    h.run_fixed(program, &refs).expect("run succeeds").elapsed
}

/// Remos-driven selection under a scenario, then execution.
pub fn select_and_run(
    program: &Program,
    k: usize,
    scenario: TrafficScenario,
) -> (Vec<String>, f64) {
    let mut h = fresh_harness();
    install_scenario(&h.sim, scenario).expect("scenario installs");
    if scenario != TrafficScenario::None {
        h.sim.lock().run_for(SimDuration::from_secs(1)).expect("warmup");
    }
    let selected = h.select_nodes(&TESTBED_HOSTS, "m-4", k).expect("selection");
    let refs: Vec<&str> = selected.iter().map(String::as_str).collect();
    let elapsed = h.run_fixed(program, &refs).expect("run succeeds").elapsed;
    (selected, elapsed)
}

/// Execute all of Table 1.
pub fn run_table1() -> Vec<Table1Result> {
    program_rows()
        .into_iter()
        .map(|row| {
            let remos = select_and_run(&row.program, row.nodes, TrafficScenario::None);
            let others = row.table1_others.map(|set| {
                let names: Vec<String> = set.iter().map(|s| s.to_string()).collect();
                let t = run_on(&row.program, &names, TrafficScenario::None);
                (names, t)
            });
            Table1Result {
                label: row.label.to_string(),
                nodes: row.nodes,
                remos,
                others,
                paper: [row.paper[0], row.paper[1], row.paper[2]],
            }
        })
        .collect()
}

/// One measured Table 2 row.
#[derive(Debug, Serialize)]
pub struct Table2Result {
    /// Row label.
    pub label: String,
    /// Node count.
    pub nodes: usize,
    /// Dynamic (Remos) selection under traffic: set and time.
    pub dynamic: (Vec<String>, f64),
    /// Static selection under traffic: set and time.
    pub static_sel: (Vec<String>, f64),
    /// The dynamic set with no traffic.
    pub no_traffic: f64,
    /// Paper values (dynamic, static, no-traffic).
    pub paper: [f64; 3],
}

/// Execute all of Table 2.
pub fn run_table2() -> Vec<Table2Result> {
    program_rows()
        .into_iter()
        .map(|row| {
            let dynamic =
                select_and_run(&row.program, row.nodes, TrafficScenario::Interfering1);
            let static_names: Vec<String> =
                row.table2_static.iter().map(|s| s.to_string()).collect();
            let t_static =
                run_on(&row.program, &static_names, TrafficScenario::Interfering1);
            let no_traffic = run_on(&row.program, &dynamic.0, TrafficScenario::None);
            Table2Result {
                label: row.label.to_string(),
                nodes: row.nodes,
                dynamic,
                static_sel: (static_names, t_static),
                no_traffic,
                paper: [row.paper[3], row.paper[4], row.paper[5]],
            }
        })
        .collect()
}

/// One measured Table 3 cell.
#[derive(Debug, Serialize)]
pub struct Table3Cell {
    /// Scenario label.
    pub scenario: &'static str,
    /// Adaptive or fixed.
    pub adaptive: bool,
    /// Execution time.
    pub seconds: f64,
    /// Migrations performed.
    pub migrations: usize,
    /// The paper's value for this cell.
    pub paper: f64,
}

/// Paper values for Table 3: (fixed, adaptive) per scenario column.
pub const TABLE3_PAPER: [(f64, f64); 4] =
    [(862.0, 941.0), (866.0, 974.0), (1680.0, 1045.0), (1826.0, 955.0)];

/// Execute all of Table 3 (adaptive Airshed, 8 ranks on 5 nodes).
pub fn run_table3() -> Vec<Table3Cell> {
    let active = ["m-4", "m-5", "m-6", "m-7", "m-8"];
    let mut out = Vec::new();
    for adaptive in [false, true] {
        for (i, scenario) in TrafficScenario::all().into_iter().enumerate() {
            let mut h = fresh_harness();
            install_scenario(&h.sim, scenario).expect("scenario installs");
            h.sim.lock().run_for(SimDuration::from_secs(1)).expect("warmup");
            let prog = airshed_program(8);
            let rep = if adaptive {
                h.run_adaptive(&prog, &TESTBED_HOSTS, &active).expect("adaptive run")
            } else {
                h.run_fixed(&prog, &active).expect("fixed run")
            };
            out.push(Table3Cell {
                scenario: scenario.label(),
                adaptive,
                seconds: rep.elapsed,
                migrations: rep.migrations.len(),
                paper: if adaptive { TABLE3_PAPER[i].1 } else { TABLE3_PAPER[i].0 },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_well_formed() {
        let rows = program_rows();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.program.ranks, r.nodes);
            assert_eq!(r.table2_static.len(), r.nodes);
            for o in r.table1_others {
                assert_eq!(o.len(), r.nodes);
            }
            assert!(r.paper.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn select_and_run_smoke() {
        // The cheapest row end-to-end (FFT 512 x2, unloaded).
        let rows = program_rows();
        let (sel, t) = select_and_run(&rows[0].program, 2, TrafficScenario::None);
        assert_eq!(sel.len(), 2);
        assert!(t > 0.1 && t < 1.0, "{t}");
    }
}
