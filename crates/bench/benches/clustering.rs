//! Clustering cost: the greedy §7.2 heuristic vs the exhaustive optimum,
//! over growing pool sizes — relevant because "the problem of determining
//! the optimal set of nodes is computationally hard … which is especially
//! a cause for concern for runtime migration".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use remos_fx::{exhaustive_cluster, greedy_cluster};

#[allow(clippy::needless_range_loop)]
fn matrix(n: usize) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0; n]; n];
    let mut state = 42u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 31) as f64
    };
    for i in 0..n {
        for j in 0..i {
            let d = 0.1 + next();
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

fn bench_clustering(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy");
    for &n in &[8usize, 32, 128, 512] {
        let m = matrix(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| greedy_cluster(m, 0, n / 2))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("exhaustive");
    for &n in &[8usize, 12, 16] {
        let m = matrix(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| exhaustive_cluster(m, 0, n / 2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
