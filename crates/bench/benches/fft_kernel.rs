//! The real FFT kernel: sequential vs rayon 2-D transforms — grounding
//! the flop model the program model uses, and showing the shared-memory
//! speedup the hpc-parallel guides center on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use remos_apps::fft::{fft, fft2d, fft2d_parallel, Complex};

fn input(n: usize) -> Vec<Complex> {
    (0..n * n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    c.bench_function("fft1d/1024", |b| {
        let row: Vec<Complex> = input(32); // 1024 points
        b.iter(|| {
            let mut d = row.clone();
            fft(&mut d, false);
            d
        })
    });

    let mut g = c.benchmark_group("fft2d");
    for &n in &[128usize, 256, 512] {
        let data = input(n);
        g.bench_with_input(BenchmarkId::new("seq", n), &data, |b, data| {
            b.iter(|| {
                let mut d = data.clone();
                fft2d(&mut d, n, false);
                d
            })
        });
        g.bench_with_input(BenchmarkId::new("rayon", n), &data, |b, data| {
            b.iter(|| {
                let mut d = data.clone();
                fft2d_parallel(&mut d, n, false);
                d
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
