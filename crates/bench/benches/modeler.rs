//! Modeler query latency — the paper's overhead claim: "the cost that an
//! application pays in terms of runtime overhead is low and directly
//! related to the depth and frequency of its requests".
//!
//! Measured per wall-clock (host) time: one `get_graph` and one
//! `flow_info` over pre-collected history, on the CMU testbed and on a
//! larger random network.

use criterion::{criterion_group, criterion_main, Criterion};
use remos_apps::testbed::{cmu_testbed, random_network, TESTBED_HOSTS};
use remos_core::collector::oracle::OracleCollector;
use remos_core::modeler::Modeler;
use remos_core::{FlowInfoRequest, Timeframe};
use remos_net::{SimDuration, Simulator};
use remos_snmp::sim::share;

fn primed_collector(topo: remos_net::Topology, polls: usize) -> OracleCollector {
    use remos_core::collector::Collector;
    let sim = share(Simulator::new(topo).expect("topology"));
    let mut col = OracleCollector::new(sim.clone());
    for _ in 0..polls {
        sim.lock().run_for(SimDuration::from_millis(250)).expect("advance");
        col.poll().expect("poll");
    }
    col
}

fn bench_modeler(c: &mut Criterion) {
    let modeler = Modeler::default();

    let col = primed_collector(cmu_testbed(), 16);
    let names: Vec<String> = TESTBED_HOSTS.iter().map(|s| s.to_string()).collect();
    c.bench_function("get_graph/testbed8", |b| {
        b.iter(|| modeler.get_graph(&col, &names, Timeframe::Current).unwrap())
    });
    c.bench_function("get_graph/testbed8_window", |b| {
        b.iter(|| {
            modeler
                .get_graph(&col, &names, Timeframe::Window(SimDuration::from_secs(3)))
                .unwrap()
        })
    });

    let req = FlowInfoRequest::new()
        .fixed("m-1", "m-5", 1e6)
        .variable("m-2", "m-6", 1.0)
        .variable("m-3", "m-7", 2.0)
        .independent("m-4", "m-8");
    c.bench_function("flow_info/testbed8_4flows", |b| {
        b.iter(|| modeler.flow_info(&col, &req, Timeframe::Current).unwrap())
    });

    // Larger network: 60 hosts, 12 routers.
    let big = random_network(60, 12, 8, 7).expect("random network");
    let col_big = primed_collector(big, 8);
    let big_names: Vec<String> = (0..60).map(|i| format!("h{i}")).collect();
    c.bench_function("get_graph/random60", |b| {
        b.iter(|| modeler.get_graph(&col_big, &big_names, Timeframe::Current).unwrap())
    });

    // Flow-query cost scaling with query size: 2, 8, 32 flows over the
    // testbed ("the cost … is directly related to the depth of its
    // requests").
    for n_flows in [2usize, 8, 32] {
        let mut req = FlowInfoRequest::new();
        for k in 0..n_flows {
            let src = format!("m-{}", k % 4 + 1);
            let dst = format!("m-{}", k % 4 + 5);
            req = req.variable(&src, &dst, 1.0 + k as f64);
        }
        c.bench_function(&format!("flow_info/testbed8_{n_flows}flows"), |b| {
            b.iter(|| modeler.flow_info(&col, &req, Timeframe::Current).unwrap())
        });
    }
}

criterion_group!(benches, bench_modeler);
criterion_main!(benches);
