//! Collector costs: SNMP topology discovery and one counter poll over the
//! CMU testbed (11 agents), in host wall-clock time.

use criterion::{criterion_group, criterion_main, Criterion};
use remos_apps::testbed::cmu_testbed;
use remos_core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos_core::collector::Collector;
use remos_net::{SimDuration, Simulator};
use remos_snmp::sim::{register_all_agents, share};
use remos_snmp::SimTransport;
use std::sync::Arc;

fn stack() -> (SnmpCollector<SimTransport>, remos_snmp::sim::SharedSim) {
    let sim = share(Simulator::new(cmu_testbed()).expect("testbed"));
    let transport = Arc::new(SimTransport::new());
    let agents = register_all_agents(&transport, &sim, "public");
    (
        SnmpCollector::new(transport, agents, SnmpCollectorConfig::default()),
        sim,
    )
}

fn bench_collector(c: &mut Criterion) {
    c.bench_function("snmp/discover_testbed", |b| {
        let (mut col, _sim) = stack();
        b.iter(|| col.refresh_topology().unwrap())
    });

    c.bench_function("snmp/poll_testbed", |b| {
        let (mut col, sim) = stack();
        col.refresh_topology().unwrap();
        col.poll().unwrap();
        b.iter(|| {
            sim.lock().run_for(SimDuration::from_millis(100)).unwrap();
            col.poll().unwrap()
        })
    });
}

criterion_group!(benches, bench_collector);
criterion_main!(benches);
