//! Fluid-engine throughput: simulated seconds per host second under churn
//! (Poisson transfer arrivals), and flow start/complete cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use remos_apps::testbed::random_network;
use remos_bench::churn::ChurnBench;
use remos_net::flow::FlowParams;
use remos_net::traffic::PoissonTransfers;
use remos_net::{SimDuration, SimTime, Simulator, SolverMode};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/bulk_transfer_roundtrip", |b| {
        let topo = random_network(8, 3, 1, 1).expect("net");
        let mut sim = Simulator::new(topo).expect("sim");
        let t = sim.topology_arc();
        let h0 = t.lookup("h0").expect("h0");
        let h1 = t.lookup("h1").expect("h1");
        b.iter(|| {
            let f = sim.start_flow(FlowParams::bulk(h0, h1, 1_000_000)).unwrap();
            sim.run_until_flows_complete(&[f]).unwrap()
        })
    });

    let mut g = c.benchmark_group("engine/churn_60s");
    g.sample_size(20); // each iteration simulates a full minute
    for &hosts in &[8usize, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| {
                let topo = random_network(hosts, hosts / 4, 2, 3).expect("net");
                let mut sim = Simulator::new(topo).expect("sim");
                let t = sim.topology_arc();
                // A few competing arrival processes.
                for k in 0..4 {
                    let src = t.lookup(&format!("h{}", k)).unwrap();
                    let dst = t.lookup(&format!("h{}", hosts - 1 - k)).unwrap();
                    sim.add_process(
                        SimTime::ZERO,
                        Box::new(PoissonTransfers::new(
                            src,
                            dst,
                            SimDuration::from_millis(50),
                            500_000.0,
                            None,
                            k as u64,
                        )),
                    );
                }
                sim.run_until(SimTime::from_secs(60)).unwrap();
                sim.take_finished().len()
            })
        });
    }
    g.finish();

    // Steady-state churn with 1000 concurrent flows (100 pods x 10): the
    // engine hot path this PR optimises. One iteration = one departure +
    // one arrival + one rate recomputation. The full mode re-solves every
    // flow; incremental only the affected pod (see remos_bench::churn and
    // the bench_engine binary for the recorded BENCH_engine.json numbers).
    let mut g = c.benchmark_group("engine/churn_1k_flows");
    g.sample_size(20);
    for (label, mode) in [("full", SolverMode::Full), ("incremental", SolverMode::Incremental)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            let mut bench = ChurnBench::new(100, 4, 10, mode);
            let mut i = 0usize;
            b.iter(|| {
                bench.step(i);
                i += 1;
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
