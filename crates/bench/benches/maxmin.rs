//! Max-min fair solver scaling: flows × resources.
//!
//! The solver runs at every flow arrival/departure in the engine and once
//! per history sample in every flow query, so its cost bounds both
//! simulation throughput and Modeler query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use remos_net::maxmin::{solve, solve_scoped, FlowSpec};

fn problem(n_resources: usize, n_flows: usize) -> (Vec<f64>, Vec<FlowSpec>) {
    let capacities: Vec<f64> = (0..n_resources)
        .map(|i| 1e8 * (1.0 + (i % 7) as f64 / 7.0))
        .collect();
    let flows = (0..n_flows)
        .map(|i| {
            // Deterministic pseudo-random 1-4 hop paths.
            let len = 1 + (i * 2654435761) % 4;
            let resources: Vec<usize> =
                (0..len).map(|k| (i * 31 + k * 17) % n_resources).collect();
            FlowSpec {
                weight: 1.0 + (i % 3) as f64,
                cap: if i % 4 == 0 { Some(5e7) } else { None },
                resources,
            }
        })
        .collect();
    (capacities, flows)
}

fn bench_maxmin(c: &mut Criterion) {
    let mut g = c.benchmark_group("maxmin");
    for &(r, f) in &[(10usize, 10usize), (20, 100), (100, 1000), (500, 5000)] {
        let (caps, flows) = problem(r, f);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}res_{f}flows")),
            &(caps, flows),
            |b, (caps, flows)| b.iter(|| solve(caps, flows)),
        );
    }
    g.finish();

    // Scoped re-solve after retuning one flow, against the full re-solve
    // of the identical problem: the per-event contrast the engine's
    // incremental mode exploits.
    let mut g = c.benchmark_group("maxmin/rescope_one_flow");
    for &(r, f) in &[(100usize, 1000usize), (500, 5000)] {
        let (caps, mut flows) = problem(r, f);
        let prev = solve(&caps, &flows);
        flows[0].weight += 1.0;
        let touched = flows[0].resources.clone();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("full_{r}res_{f}flows")),
            &(caps.clone(), flows.clone()),
            |b, (caps, flows)| b.iter(|| solve(caps, flows)),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("scoped_{r}res_{f}flows")),
            &(caps, flows, touched, prev),
            |b, (caps, flows, touched, prev)| {
                b.iter(|| solve_scoped(caps, flows, touched, prev))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_maxmin);
criterion_main!(benches);
