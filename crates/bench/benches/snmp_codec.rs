//! SNMP codec and agent throughput: encode/decode of a bulk response and
//! a full GETBULK walk through the in-process transport.

use criterion::{criterion_group, criterion_main, Criterion};
use remos_snmp::agent::{Agent, StaticMib};
use remos_snmp::codec::{decode, encode};
use remos_snmp::mib::{Mib, SERVICES_ROUTER};
use remos_snmp::oid::well_known;
use remos_snmp::transport::SimTransport;
use remos_snmp::{Manager, Pdu, Value, VarBind};
use std::sync::Arc;

fn big_mib() -> Mib {
    let mut m = Mib::new();
    m.set_system_group("bench", "router", 0, SERVICES_ROUTER);
    m.set_if_number(64);
    for i in 1..=64 {
        m.set_interface_row(i, &format!("if{i}"), 100_000_000, true, i * 1000, i * 2000);
        m.set_neighbor_row(i, &format!("peer{i}"), 1);
    }
    m
}

fn bench_codec(c: &mut Criterion) {
    let req = Pdu::get_bulk("public", 7, vec![well_known::if_out_octets()], 64);
    let bindings: Vec<VarBind> = (1..=64)
        .map(|i| VarBind {
            oid: well_known::if_out_octets().child([i]),
            value: Value::Counter32(i * 1000),
        })
        .collect();
    let resp = Pdu::response(&req, bindings);

    c.bench_function("codec/encode_64row_response", |b| b.iter(|| encode(&resp)));
    let wire = encode(&resp);
    c.bench_function("codec/decode_64row_response", |b| {
        b.iter(|| decode(wire.clone()).unwrap())
    });

    let transport = Arc::new(SimTransport::new());
    transport.register(Agent::new("bench", "public", Box::new(StaticMib(big_mib()))));
    let mgr = Manager::new(Arc::clone(&transport), "public");
    c.bench_function("agent/bulk_walk_iftable_64", |b| {
        b.iter(|| mgr.bulk_walk("bench", &well_known::interfaces()).unwrap())
    });
    c.bench_function("agent/get_single", |b| {
        b.iter(|| mgr.get("bench", &well_known::sys_name()).unwrap())
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
