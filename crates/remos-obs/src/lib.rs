//! `remos-obs`: hand-rolled observability for the Remos reproduction.
//!
//! Three facilities, all dependency-free and embeddable from the bottom
//! of the workspace's dependency graph (`remos-net`) upward:
//!
//! * **Metrics** — a [`MetricsRegistry`] of counters, gauges and
//!   histograms. Handles are resolved once and updated with single
//!   atomic operations, so hot paths (the engine's rate solver) pay one
//!   `fetch_add` per event. Snapshots render to JSON (round-trippable)
//!   and Prometheus exposition text.
//! * **Traces** — a [`TraceRecorder`] ring buffer of [`Span`] boundaries
//!   and events. Timestamps are injected by the caller (simulated time
//!   in-repo), so traces are deterministic: two identical runs produce
//!   bit-identical trace digests.
//! * **Clock injection** — latency measurement only happens when a
//!   top-level binary installs a [`ClockSource`] ([`WallClock`]);
//!   library code never reads wall-clock time (see `remos-audit`).
//!
//! The [`Obs`] handle bundles all three and is `Clone` (shared
//! internals), so one handle can be threaded through the simulator, the
//! SNMP manager, the collector, the Remos facade and the adaptation
//! layer — producing a single unified snapshot.

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::{ClockSource, ManualClock, WallClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{TraceKind, TraceRecord, TraceRecorder, DEFAULT_TRACE_CAPACITY};

use std::sync::{Arc, Mutex};

/// Shared observability handle: metrics + traces + optional clock.
#[derive(Clone)]
pub struct Obs {
    metrics: Arc<MetricsRegistry>,
    trace: Arc<Mutex<TraceRecorder>>,
    clock: Arc<Mutex<Option<Box<dyn ClockSource>>>>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

/// Lock tolerating poisoning (observability must not amplify a panic).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Obs {
    /// Fresh handle with the default trace capacity.
    pub fn new() -> Obs {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Fresh handle keeping at most `capacity` trace records.
    pub fn with_trace_capacity(capacity: usize) -> Obs {
        Obs {
            metrics: Arc::new(MetricsRegistry::default()),
            trace: Arc::new(Mutex::new(TraceRecorder::new(capacity))),
            clock: Arc::new(Mutex::new(None)),
        }
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics.counter(name)
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.metrics.gauge(name)
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.metrics.histogram(name)
    }

    /// Point-in-time copy of every metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Record an instantaneous event at injected time `t_nanos`.
    pub fn event(&self, name: &'static str, t_nanos: u64, attrs: &[(&'static str, u64)]) {
        lock(&self.trace).record(TraceKind::Event, name, t_nanos, attrs);
    }

    /// Open a span at injected time `t_nanos`. Close it with
    /// [`Span::end`]; an unclosed span simply never records its end
    /// (spans are not RAII on purpose — ends carry attributes and an
    /// explicit timestamp).
    pub fn span(&self, name: &'static str, t_nanos: u64) -> Span {
        lock(&self.trace).record(TraceKind::SpanStart, name, t_nanos, &[]);
        Span { obs: self.clone(), name }
    }

    /// Order-sensitive digest over every trace record so far.
    pub fn trace_digest(&self) -> u64 {
        lock(&self.trace).digest()
    }

    /// Total trace records ever appended (including evicted ones).
    pub fn trace_recorded(&self) -> u64 {
        lock(&self.trace).recorded()
    }

    /// Copy of the records currently held by the ring buffer.
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        lock(&self.trace).records().cloned().collect()
    }

    /// Install a latency clock. Until one is installed,
    /// [`Obs::clock_nanos`] returns `None` and latency histograms stay
    /// empty — the deterministic default.
    pub fn set_clock(&self, clock: Box<dyn ClockSource>) {
        *lock(&self.clock) = Some(clock);
    }

    /// Read the injected clock, if any.
    pub fn clock_nanos(&self) -> Option<u64> {
        lock(&self.clock).as_ref().map(|c| c.nanos())
    }
}

/// An open span; close it with [`Span::end`].
pub struct Span {
    obs: Obs,
    name: &'static str,
}

impl Span {
    /// Close the span at injected time `t_nanos` with attributes.
    pub fn end(self, t_nanos: u64, attrs: &[(&'static str, u64)]) {
        lock(&self.obs.trace).record(TraceKind::SpanEnd, self.name, t_nanos, attrs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_handle_shares_state() {
        let obs = Obs::new();
        let other = obs.clone();
        obs.counter("x").inc();
        other.counter("x").add(2);
        assert_eq!(obs.metrics_snapshot().counters["x"], 3);
        obs.event("e", 1, &[]);
        assert_eq!(other.trace_recorded(), 1);
    }

    #[test]
    fn spans_record_both_ends() {
        let obs = Obs::new();
        let span = obs.span("solve", 100);
        span.end(100, &[("flows", 7)]);
        let recs = obs.trace_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, TraceKind::SpanStart);
        assert_eq!(recs[1].kind, TraceKind::SpanEnd);
        assert_eq!(recs[1].attrs(), &[("flows", 7)]);
    }

    #[test]
    fn clock_is_absent_by_default() {
        let obs = Obs::new();
        assert_eq!(obs.clock_nanos(), None);
        let manual = ManualClock::new();
        manual.set(42);
        obs.set_clock(Box::new(manual));
        assert_eq!(obs.clock_nanos(), Some(42));
    }

    #[test]
    fn identical_runs_identical_digests() {
        let run = || {
            let obs = Obs::new();
            for i in 0..20u64 {
                let s = obs.span("tick", i * 10);
                s.end(i * 10, &[("i", i)]);
                obs.event("mark", i * 10 + 5, &[("v", i * i)]);
            }
            obs.trace_digest()
        };
        assert_eq!(run(), run());
    }
}
