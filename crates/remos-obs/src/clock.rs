//! Explicitly-injected clock sources for latency measurement.
//!
//! Nothing in this workspace may read wall-clock time implicitly — the
//! determinism contract (enforced by `remos-audit`) forbids it. Latency
//! histograms therefore run off a [`ClockSource`] that a *top-level*
//! caller injects deliberately: the CLI's `obs` command installs
//! [`WallClock`] for real measurements; tests install [`ManualClock`];
//! library code installs nothing, and latency observation is skipped
//! entirely.
//!
//! This file is the single audited home of wall-clock reads
//! (`remos-audit` carries a `wall-clock` exemption for exactly this
//! path — see `crates/remos-audit`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonic nanosecond source.
pub trait ClockSource: Send {
    /// Nanoseconds since an arbitrary fixed origin.
    fn nanos(&self) -> u64;
}

/// Real monotonic time, anchored at construction. Only ever constructed
/// by top-level binaries that *want* wall-clock latency numbers.
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A wall clock starting at zero now.
    pub fn new() -> WallClock {
        WallClock { origin: std::time::Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockSource for WallClock {
    fn nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-driven clock for tests: shared, settable, deterministic.
#[derive(Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A manual clock at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Set the current reading.
    pub fn set(&self, nanos: u64) {
        self.0.store(nanos, Ordering::Relaxed);
    }

    /// Advance the reading.
    pub fn advance(&self, nanos: u64) {
        self.0.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl ClockSource for ManualClock {
    fn nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_settable() {
        let c = ManualClock::new();
        assert_eq!(c.nanos(), 0);
        c.set(5);
        c.advance(7);
        assert_eq!(c.nanos(), 12);
        // Clones share state.
        let d = c.clone();
        d.advance(1);
        assert_eq!(c.nanos(), 13);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.nanos();
        let b = c.nanos();
        assert!(b >= a);
    }
}
