//! Structured traces: spans and events in a bounded ring buffer with a
//! running order-sensitive digest.
//!
//! Timestamps are **injected** by the caller as raw nanoseconds — in the
//! simulator they are `SimTime` values, so two identical runs record
//! bit-identical traces (the determinism contract extends to
//! observability; see `docs/OBSERVABILITY.md`). The recorder never reads
//! a clock itself.
//!
//! The ring buffer bounds memory: old records are evicted, but the
//! digest folds **every** record at append time, so it fingerprints the
//! complete trace regardless of eviction.

use std::collections::VecDeque;

/// Default ring-buffer capacity (records kept for inspection).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// What a trace record marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A span was entered.
    SpanStart,
    /// A span was closed.
    SpanEnd,
    /// An instantaneous event.
    Event,
}

impl TraceKind {
    fn tag(self) -> u64 {
        match self {
            TraceKind::SpanStart => 0x10,
            TraceKind::SpanEnd => 0x11,
            TraceKind::Event => 0x12,
        }
    }

    /// Short label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::SpanStart => "span-start",
            TraceKind::SpanEnd => "span-end",
            TraceKind::Event => "event",
        }
    }
}

/// Most attributes a single record keeps (extras are dropped, and
/// excluded from the digest, so stored and fingerprinted attributes
/// always agree). Inline storage keeps the hot recording path — one
/// span per rate recomputation — free of heap allocation.
pub const MAX_TRACE_ATTRS: usize = 4;

/// One recorded span boundary or event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global sequence number (0-based, never reused).
    pub seq: u64,
    /// Record kind.
    pub kind: TraceKind,
    /// Static name, e.g. `"engine.solve.scoped"`.
    pub name: &'static str,
    /// Injected timestamp in nanoseconds (simulated time in-repo).
    pub t_nanos: u64,
    attrs: [(&'static str, u64); MAX_TRACE_ATTRS],
    attrs_len: u8,
}

impl TraceRecord {
    /// Structured attributes (static keys, integer values).
    pub fn attrs(&self) -> &[(&'static str, u64)] {
        &self.attrs[..usize::from(self.attrs_len)]
    }
}

/// Bounded trace sink with an incremental FNV-1a digest.
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    next_seq: u64,
    digest: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRecorder {
    /// Recorder keeping at most `capacity` records (digest is unbounded).
    /// The ring is allocated up front so recording never touches the
    /// heap — spans are emitted from the engine's steady-state hot path.
    pub fn new(capacity: usize) -> TraceRecorder {
        let capacity = capacity.max(1);
        TraceRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            next_seq: 0,
            digest: FNV_OFFSET,
        }
    }

    fn fold_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.digest ^= u64::from(b);
            self.digest = self.digest.wrapping_mul(FNV_PRIME);
        }
    }

    fn fold_u64(&mut self, v: u64) {
        self.fold_bytes(&v.to_le_bytes());
    }

    /// Append one record; returns its sequence number.
    pub fn record(
        &mut self,
        kind: TraceKind,
        name: &'static str,
        t_nanos: u64,
        attrs: &[(&'static str, u64)],
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let attrs = &attrs[..attrs.len().min(MAX_TRACE_ATTRS)];
        self.fold_u64(kind.tag());
        self.fold_bytes(name.as_bytes());
        self.fold_u64(t_nanos);
        for (k, v) in attrs {
            self.fold_bytes(k.as_bytes());
            self.fold_u64(*v);
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        let mut stored = [("", 0u64); MAX_TRACE_ATTRS];
        stored[..attrs.len()].copy_from_slice(attrs);
        self.buf.push_back(TraceRecord {
            seq,
            kind,
            name,
            t_nanos,
            attrs: stored,
            attrs_len: attrs.len() as u8,
        });
        seq
    }

    /// Records still held (oldest first; earlier ones may be evicted).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Total records ever appended (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Order-sensitive digest over **all** records ever appended. Two
    /// identical runs must agree on this bit-for-bit.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let run = |order: &[u64]| {
            let mut t = TraceRecorder::new(8);
            for &x in order {
                t.record(TraceKind::Event, "e", x, &[("k", x)]);
            }
            t.digest()
        };
        assert_eq!(run(&[1, 2, 3]), run(&[1, 2, 3]));
        assert_ne!(run(&[1, 2, 3]), run(&[3, 2, 1]));
    }

    #[test]
    fn ring_evicts_but_digest_remembers() {
        let mut a = TraceRecorder::new(2);
        let mut b = TraceRecorder::new(1024);
        for i in 0..10 {
            a.record(TraceKind::Event, "x", i, &[]);
            b.record(TraceKind::Event, "x", i, &[]);
        }
        assert_eq!(a.records().count(), 2);
        assert_eq!(a.recorded(), 10);
        // Different capacities, same history: same digest.
        assert_eq!(a.digest(), b.digest());
        // Held records are the most recent, in order.
        let seqs: Vec<u64> = a.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![8, 9]);
    }

    #[test]
    fn span_kinds_differ_from_events() {
        let mut a = TraceRecorder::default();
        a.record(TraceKind::SpanStart, "s", 5, &[]);
        let mut b = TraceRecorder::default();
        b.record(TraceKind::Event, "s", 5, &[]);
        assert_ne!(a.digest(), b.digest());
    }
}
