//! Counters, gauges and histograms with lock-free hot paths.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! over atomics: instrumented code resolves a metric by name **once**
//! (registration takes a registry lock) and then updates it with plain
//! atomic operations, so per-event instrumentation costs one
//! `fetch_add` — cheap enough for the engine's solver hot path.
//!
//! A [`MetricsSnapshot`] is a point-in-time copy that renders to JSON
//! (machine consumption; round-trips through [`MetricsSnapshot::from_json`])
//! and to Prometheus-style exposition text (the CLI's `obs` dump).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (stored as `f64` bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of finite histogram bucket bounds: powers of 4 from 4^0 to
/// 4^15 (≈1.07e9), covering both small cardinalities (batch sizes, scope
/// sizes) and nanosecond latencies up to about a second. Everything
/// larger lands in the overflow (`+Inf`) bucket.
const HISTOGRAM_BOUNDS: usize = 16;

/// Upper bound of finite bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    4u64.saturating_pow(i as u32)
}

struct HistogramCore {
    /// `HISTOGRAM_BOUNDS` finite buckets plus one overflow bucket.
    buckets: [AtomicU64; HISTOGRAM_BOUNDS + 1],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram of `u64` observations.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = (0..HISTOGRAM_BOUNDS)
            .find(|&i| v <= bucket_bound(i))
            .unwrap_or(HISTOGRAM_BOUNDS);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counts (for quantile estimates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: (0..HISTOGRAM_BOUNDS).map(bucket_bound).collect(),
            buckets: self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds (an implicit `+Inf` bucket follows).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`): the
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Returns `None` for an empty histogram. Values
    /// that overflowed every finite bucket report the largest finite
    /// bound (the power-of-two buckets make this a ≤2x overestimate for
    /// in-range values — good enough for latency SLO gates).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(match self.bounds.get(i) {
                    Some(&b) => b,
                    None => self.bounds.last().copied().unwrap_or(u64::MAX),
                });
            }
        }
        Some(self.bounds.last().copied().unwrap_or(u64::MAX))
    }
}

/// A named family of counters, gauges and histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Lock a mutex, tolerating poisoning: metrics must never add a second
/// failure to a panicking thread's unwinding.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MetricsRegistry {
    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        lock(&self.counters).entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        lock(&self.gauges).entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        lock(&self.histograms).entry(name.to_string()).or_default().clone()
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Sanitize a metric name for Prometheus exposition.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

impl MetricsSnapshot {
    /// Render as a single JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, k);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, k);
            // `{}` on f64 prints the shortest representation that parses
            // back to the same bits, so the round-trip is exact (NaN and
            // infinities are not representable in JSON; clamp to 0).
            let v = if v.is_finite() { *v } else { 0.0 };
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, k);
            out.push_str("\":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("],\"buckets\":[");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str(&format!("],\"count\":{},\"sum\":{}}}", h.count, h.sum));
        }
        out.push_str("}}");
        out
    }

    /// Parse a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(s: &str) -> Result<MetricsSnapshot, String> {
        let mut p = JsonParser { bytes: s.as_bytes(), pos: 0 };
        let snap = p.parse_snapshot()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(snap)
    }

    /// Render in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(256);
        for (k, v) in &self.counters {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, b) in h.bounds.iter().enumerate() {
                cum += h.buckets.get(i).copied().unwrap_or(0);
                out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cum}\n"));
            }
            cum += h.buckets.last().copied().unwrap_or(0);
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// Minimal recursive-descent parser for the exact JSON subset
/// [`MetricsSnapshot::to_json`] emits (string keys, u64/f64 numbers,
/// arrays of u64). Kept in-crate so the JSON round-trip contract has no
/// external dependency.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err("unsupported escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| format!("bad integer at byte {start}: {e}"))
    }

    fn parse_u64_array(&mut self) -> Result<Vec<u64>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.parse_u64()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    /// Parse `{"k": V, ...}` with `V` supplied by `value`.
    fn parse_map<T>(
        &mut self,
        mut value: impl FnMut(&mut Self) -> Result<T, String>,
    ) -> Result<BTreeMap<String, T>, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            out.insert(key, value(self)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_histogram(&mut self) -> Result<HistogramSnapshot, String> {
        let mut bounds = None;
        let mut buckets = None;
        let mut count = None;
        let mut sum = None;
        self.expect(b'{')?;
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "bounds" => bounds = Some(self.parse_u64_array()?),
                "buckets" => buckets = Some(self.parse_u64_array()?),
                "count" => count = Some(self.parse_u64()?),
                "sum" => sum = Some(self.parse_u64()?),
                other => return Err(format!("unknown histogram field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        Ok(HistogramSnapshot {
            bounds: bounds.ok_or("histogram missing bounds")?,
            buckets: buckets.ok_or("histogram missing buckets")?,
            count: count.ok_or("histogram missing count")?,
            sum: sum.ok_or("histogram missing sum")?,
        })
    }

    fn parse_snapshot(&mut self) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        self.expect(b'{')?;
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "counters" => snap.counters = self.parse_map(|p| p.parse_u64())?,
                "gauges" => snap.gauges = self.parse_map(|p| p.parse_number())?,
                "histograms" => snap.histograms = self.parse_map(|p| p.parse_histogram())?,
                other => return Err(format!("unknown snapshot field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(snap);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = MetricsRegistry::default();
        let c = r.counter("hits");
        c.inc();
        c.add(2);
        // A second handle to the same name shares state.
        assert_eq!(r.counter("hits").get(), 3);
        r.gauge("load").set(0.75);
        assert_eq!(r.gauge("load").get(), 0.75);
    }

    #[test]
    fn histogram_buckets() {
        let r = MetricsRegistry::default();
        let h = r.histogram("sizes");
        h.observe(1);
        h.observe(4);
        h.observe(5);
        h.observe(u64::MAX);
        let s = r.snapshot().histograms["sizes"].clone();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 1); // 1 <= 4^0
        assert_eq!(s.buckets[1], 1); // 4 <= 4^1
        assert_eq!(s.buckets[2], 1); // 5 <= 4^2
        assert_eq!(*s.buckets.last().unwrap(), 1); // u64::MAX overflows
    }

    #[test]
    fn histogram_quantiles() {
        let r = MetricsRegistry::default();
        let h = r.histogram("lat");
        assert_eq!(h.snapshot().quantile(0.5), None, "empty histogram has no quantiles");
        for _ in 0..99 {
            h.observe(3); // bucket bound 4
        }
        h.observe(1000); // bucket bound 1024
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(4));
        assert_eq!(s.quantile(0.99), Some(4));
        assert_eq!(s.quantile(1.0), Some(1024));
        assert_eq!(s.quantile(0.0), Some(4), "q=0 clamps to the first observation");
    }

    #[test]
    fn json_round_trips() {
        let r = MetricsRegistry::default();
        r.counter("a_total").add(7);
        r.gauge("frac").set(0.1 + 0.2); // not exactly 0.3 in binary64
        r.gauge("weird \"name\"\n").set(-1.5);
        let h = r.histogram("lat");
        h.observe(3);
        h.observe(1_000_000_000_000);
        let snap = r.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_render_shape() {
        let r = MetricsRegistry::default();
        r.counter("hits total").inc();
        r.histogram("lat").observe(2);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_count 1"));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(MetricsSnapshot::from_json("").is_err());
        assert!(MetricsSnapshot::from_json("{\"counters\":{}}trailing").is_err());
        assert!(MetricsSnapshot::from_json("{\"nope\":{}}").is_err());
    }
}
