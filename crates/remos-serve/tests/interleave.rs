//! Deterministic interleaving exhaustion for the serving crate's two
//! concurrency-sensitive state machines.
//!
//! Real thread schedules cannot be enumerated from a unit test, but both
//! `FairQueue` (used under the server's queue mutex) and `CircuitBreaker`
//! (a `Mutex<Inner>` shared across collector and observer threads) are
//! linearizable: every concurrent history is equivalent to SOME sequential
//! order of their operations. So we enumerate *every* merge order of
//! small per-thread operation scripts — preserving each thread's program
//! order, the way a loom-style model checker explores schedules — and
//! check the invariants after every single step of every order. A bug
//! that depends on operation ordering (lost accounting on a refused push,
//! a breaker that can re-close without a probe, a non-monotone trip
//! counter) has nowhere to hide in an exhaustive enumeration.
//!
//! A final test hammers the breaker from real threads as a smoke check —
//! that one is also the target of the nightly TSan job in
//! `.github/workflows/sanitizers.yml`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use remos_core::Query;
use remos_net::{SimDuration, SimTime};
use remos_serve::{
    BreakerConfig, BreakerState, CircuitBreaker, FairQueue, QueueFull, QueueLimits, Queued,
};
use std::collections::BTreeMap;

/// All merge orders of the per-thread scripts, preserving each thread's
/// internal order. For scripts of lengths (a, b, ...) this yields the
/// multinomial (a+b+...)! / (a! b! ...) orders.
fn interleavings<T: Clone>(threads: &[Vec<T>]) -> Vec<Vec<T>> {
    fn rec<T: Clone>(
        threads: &[Vec<T>],
        idx: &mut [usize],
        cur: &mut Vec<T>,
        out: &mut Vec<Vec<T>>,
    ) {
        let mut done = true;
        for t in 0..threads.len() {
            if idx[t] < threads[t].len() {
                done = false;
                cur.push(threads[t][idx[t]].clone());
                idx[t] += 1;
                rec(threads, idx, cur, out);
                idx[t] -= 1;
                cur.pop();
            }
        }
        if done {
            out.push(cur.clone());
        }
    }
    let mut out = Vec::new();
    rec(threads, &mut vec![0; threads.len()], &mut Vec::new(), &mut out);
    out
}

#[test]
fn interleavings_are_exhaustive() {
    // 3+3 ops → C(6,3) = 20 merge orders; 2+2+2 → 6!/(2!2!2!) = 90.
    let two = interleavings(&[vec![1, 2, 3], vec![4, 5, 6]]);
    assert_eq!(two.len(), 20);
    let three = interleavings(&[vec![1, 2], vec![3, 4], vec![5, 6]]);
    assert_eq!(three.len(), 90);
    // Program order is preserved in every merge.
    for order in &two {
        let pos = |x: i32| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(1) < pos(2) && pos(2) < pos(3));
        assert!(pos(4) < pos(5) && pos(5) < pos(6));
    }
    // No duplicate orders.
    let mut sorted = two.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), 20);
}

// ---------------------------------------------------------------------------
// FairQueue: bounds and accounting hold in every operation order.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum QOp {
    Push { id: u64, tenant: &'static str, cost: u64 },
    Pop,
}

/// Independent mirror of the queue's admission contract: same bound
/// checks in the same order (total depth, then cost, then tenant lane),
/// plain FIFO lanes. The real queue must agree with this model at every
/// step — and on a refused push it must be left bit-for-bit unchanged.
#[derive(Default)]
struct MirrorQueue {
    lanes: BTreeMap<&'static str, Vec<(u64, u64)>>,
}

impl MirrorQueue {
    fn len(&self) -> usize {
        self.lanes.values().map(|l| l.len()).sum()
    }

    fn cost(&self) -> u64 {
        self.lanes.values().flatten().map(|&(_, c)| c).sum()
    }

    fn push(&mut self, id: u64, tenant: &'static str, cost: u64, lim: &QueueLimits) -> Result<(), QueueFull> {
        if self.len() >= lim.max_depth {
            return Err(QueueFull::Total);
        }
        if self.cost().saturating_add(cost) > lim.max_cost {
            return Err(QueueFull::Cost);
        }
        if self.lanes.get(tenant).map(|l| l.len()).unwrap_or(0) >= lim.max_tenant_depth {
            return Err(QueueFull::Tenant);
        }
        self.lanes.entry(tenant).or_default().push((id, cost));
        Ok(())
    }

    /// Remove and return the FIFO head of `tenant`'s lane.
    fn take_front(&mut self, tenant: &str) -> Option<(u64, u64)> {
        let lane = self.lanes.get_mut(tenant)?;
        if lane.is_empty() {
            return None;
        }
        let head = lane.remove(0);
        if lane.is_empty() {
            self.lanes.retain(|_, l| !l.is_empty());
        }
        Some(head)
    }
}

fn queued(id: u64, tenant: &str, cost: u64) -> Queued {
    Queued {
        id,
        tenant: tenant.to_string(),
        spec: Query::graph(["m-1"]).into(),
        deadline: None,
        enqueued_at: SimTime::ZERO,
        cost,
    }
}

fn check_queue_agrees(q: &FairQueue, m: &MirrorQueue, lim: &QueueLimits, ctx: &str) {
    assert_eq!(q.len(), m.len(), "{ctx}: depth accounting diverged");
    assert_eq!(q.queued_cost(), m.cost(), "{ctx}: cost accounting diverged");
    assert!(q.len() <= lim.max_depth, "{ctx}: depth bound violated");
    assert!(q.queued_cost() <= lim.max_cost, "{ctx}: cost bound violated");
    for tenant in ["a", "b", "c"] {
        let want = m.lanes.get(tenant).map(|l| l.len()).unwrap_or(0);
        assert_eq!(q.depth_of(tenant), want, "{ctx}: lane depth diverged for {tenant}");
        assert!(want <= lim.max_tenant_depth, "{ctx}: tenant bound violated for {tenant}");
    }
}

#[test]
fn fair_queue_bounds_hold_in_every_interleaving() {
    // Two producers and one consumer, scripted to collide with every
    // bound: tenant "a" overruns its lane, "b"'s second push overruns
    // the cost budget in most orders, and the total-depth bound trips
    // whenever pops land late. 3+3+2 ops → 8!/(3!3!2!) = 560 orders.
    let threads: Vec<Vec<QOp>> = vec![
        vec![
            QOp::Push { id: 0, tenant: "a", cost: 2 },
            QOp::Push { id: 1, tenant: "a", cost: 2 },
            QOp::Push { id: 2, tenant: "a", cost: 1 },
        ],
        vec![
            QOp::Push { id: 10, tenant: "b", cost: 3 },
            QOp::Push { id: 11, tenant: "b", cost: 4 },
            QOp::Push { id: 12, tenant: "c", cost: 1 },
        ],
        vec![QOp::Pop, QOp::Pop],
    ];
    let lim = QueueLimits { max_depth: 4, max_tenant_depth: 2, max_cost: 8 };

    let orders = interleavings(&threads);
    assert_eq!(orders.len(), 560);
    for (n, order) in orders.iter().enumerate() {
        let mut q = FairQueue::new();
        let mut m = MirrorQueue::default();
        // The lottery RNG varies per order; fairness is statistical, the
        // invariants must hold for any draw sequence.
        let mut rng = StdRng::seed_from_u64(n as u64);
        for (step, op) in order.iter().enumerate() {
            let ctx = format!("order {n} step {step} ({op:?})");
            match *op {
                QOp::Push { id, tenant, cost } => {
                    let got = q.push(queued(id, tenant, cost), &lim);
                    let want = m.push(id, tenant, cost, &lim);
                    assert_eq!(got, want, "{ctx}: admission decision diverged");
                }
                QOp::Pop => {
                    match q.pop_weighted(&mut rng, |_| 1) {
                        Some(item) => {
                            // Whichever lane won the lottery, the item
                            // must be that lane's FIFO head.
                            let (id, cost) = m
                                .take_front(&item.tenant)
                                .unwrap_or_else(|| panic!("{ctx}: popped from empty mirror lane"));
                            assert_eq!(item.id, id, "{ctx}: not the FIFO head");
                            assert_eq!(item.cost, cost, "{ctx}: cost mismatch");
                        }
                        None => assert_eq!(m.len(), 0, "{ctx}: spurious empty pop"),
                    }
                }
            }
            check_queue_agrees(&q, &m, &lim, &ctx);
        }
        // Drain: everything admitted must come back out exactly once.
        while let Some(item) = q.pop_weighted(&mut rng, |_| 1) {
            let (id, _) = m.take_front(&item.tenant).expect("drain: mirror empty");
            assert_eq!(item.id, id, "drain order {n}: not the FIFO head");
        }
        assert_eq!(m.len(), 0, "order {n}: items stranded in the queue");
        assert_eq!(q.queued_cost(), 0, "order {n}: cost accounting leaked");
    }
}

// ---------------------------------------------------------------------------
// CircuitBreaker: state-machine legality in every operation order.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum BOp {
    Fail(SimTime),
    Success,
    Allow(SimTime),
    NoteTime(SimTime),
}

/// Independent mirror of the breaker contract. Written from the
/// documented semantics, not the implementation: `Closed` counts
/// consecutive failures and trips at the threshold; `Open` fast-fails
/// until `until`, then one `allow` moves to `HalfOpen`; a half-open
/// probe's outcome decides `Closed` vs `Open`; failures are stamped with
/// the latest time the breaker has seen.
struct MirrorBreaker {
    cfg: BreakerConfig,
    state: MState,
    last_now: SimTime,
    opened: u64,
}

enum MState {
    Closed { fails: u32 },
    Open { until: SimTime },
    HalfOpen,
}

impl MirrorBreaker {
    fn new(cfg: BreakerConfig) -> MirrorBreaker {
        MirrorBreaker { cfg, state: MState::Closed { fails: 0 }, last_now: SimTime::ZERO, opened: 0 }
    }

    fn public(&self) -> BreakerState {
        match self.state {
            MState::Closed { .. } => BreakerState::Closed,
            MState::Open { .. } => BreakerState::Open,
            MState::HalfOpen => BreakerState::HalfOpen,
        }
    }

    fn note(&mut self, now: SimTime) {
        if now > self.last_now {
            self.last_now = now;
        }
    }

    fn allow(&mut self, now: SimTime) -> bool {
        self.note(now);
        match self.state {
            MState::Closed { .. } | MState::HalfOpen => true,
            MState::Open { until } => {
                if now >= until {
                    self.state = MState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn success(&mut self) {
        match self.state {
            MState::Closed { .. } | MState::HalfOpen => self.state = MState::Closed { fails: 0 },
            MState::Open { .. } => {}
        }
    }

    fn fail(&mut self, now: SimTime) {
        self.note(now);
        let until = self.last_now + self.cfg.open_for;
        match self.state {
            MState::Closed { fails } => {
                if fails + 1 >= self.cfg.failure_threshold {
                    self.state = MState::Open { until };
                    self.opened += 1;
                } else {
                    self.state = MState::Closed { fails: fails + 1 };
                }
            }
            MState::HalfOpen => {
                self.state = MState::Open { until };
                self.opened += 1;
            }
            MState::Open { .. } => {}
        }
    }
}

fn run_breaker_orders(threads: Vec<Vec<BOp>>, cfg: BreakerConfig, expect_orders: usize) {
    let orders = interleavings(&threads);
    assert_eq!(orders.len(), expect_orders);
    for (n, order) in orders.iter().enumerate() {
        let b = CircuitBreaker::new(cfg);
        let mut m = MirrorBreaker::new(cfg);
        let mut prev_opened = 0u64;
        for (step, op) in order.iter().enumerate() {
            let ctx = format!("order {n} step {step} ({op:?})");
            match *op {
                BOp::Fail(t) => {
                    b.record_failure(t);
                    m.fail(t);
                }
                BOp::Success => {
                    b.record_success();
                    m.success();
                }
                BOp::Allow(t) => {
                    let got = b.allow(t);
                    let want = m.allow(t);
                    assert_eq!(got, want, "{ctx}: admission decision diverged");
                }
                BOp::NoteTime(t) => {
                    b.note_time(t);
                    m.note(t);
                }
            }
            assert_eq!(b.state(), m.public(), "{ctx}: state diverged");
            let opened = b.times_opened();
            assert_eq!(opened, m.opened, "{ctx}: trip count diverged");
            assert!(opened >= prev_opened, "{ctx}: times_opened went backwards");
            assert!(
                opened - prev_opened <= 1,
                "{ctx}: one operation tripped the breaker twice"
            );
            prev_opened = opened;
        }
    }
}

#[test]
fn breaker_trip_and_probe_hold_in_every_interleaving() {
    // Collector thread reports failures while the SNMP retry observer
    // reports a success and a late failure, and a server thread keeps
    // asking `allow`. 3+2+3 ops → 8!/(3!2!3!) = 560 orders, covering
    // streak-reset races, trip-at-threshold races, and probe admission
    // before/after the open window.
    let t = |s: u64| SimTime::from_secs(s);
    let cfg = BreakerConfig {
        failure_threshold: 3,
        open_for: SimDuration::from_secs(5),
        all_missing_is_failure: true,
    };
    run_breaker_orders(
        vec![
            vec![BOp::Fail(t(10)), BOp::Fail(t(11)), BOp::Fail(t(12))],
            vec![BOp::Success, BOp::Fail(t(13))],
            vec![BOp::Allow(t(12)), BOp::Allow(t(16)), BOp::Allow(t(20))],
        ],
        cfg,
        560,
    );
}

#[test]
fn breaker_half_open_probe_races_hold_in_every_interleaving() {
    // Start from a tripped breaker (threshold 1) and race the probe's
    // verdict against more failures and admission checks. Covers: a
    // stray success while open must NOT close the breaker; a half-open
    // failure re-opens with a fresh window; `note_time` from the retry
    // observer path advances the stamp used by clockless failures.
    let t = |s: u64| SimTime::from_secs(s);
    let cfg = BreakerConfig {
        failure_threshold: 1,
        open_for: SimDuration::from_secs(5),
        all_missing_is_failure: true,
    };
    run_breaker_orders(
        vec![
            vec![BOp::Fail(t(1)), BOp::Allow(t(6)), BOp::Success],
            vec![BOp::NoteTime(t(8)), BOp::Fail(t(2)), BOp::Allow(t(14))],
            vec![BOp::Allow(t(3)), BOp::Allow(t(7))],
        ],
        cfg,
        560,
    );
}

// ---------------------------------------------------------------------------
// Real threads: the breaker is Sync; hammer it and check global bounds.
// This is the test the nightly TSan job runs under -Zsanitizer=thread.
// ---------------------------------------------------------------------------

#[test]
fn breaker_survives_concurrent_hammering() {
    const THREADS: usize = 4;
    const OPS: u64 = 500;
    let cfg = BreakerConfig {
        failure_threshold: 2,
        open_for: SimDuration::from_secs(1),
        all_missing_is_failure: true,
    };
    let b = CircuitBreaker::new(cfg);
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let b = std::sync::Arc::clone(&b);
            std::thread::spawn(move || {
                let mut failure_ops = 0u64;
                for i in 0..OPS {
                    let now = SimTime::from_secs(i);
                    match (tid + i as usize) % 3 {
                        0 => {
                            b.record_failure(now);
                            failure_ops += 1;
                        }
                        1 => b.record_success(),
                        _ => {
                            b.allow(now);
                        }
                    }
                    let _state = b.state();
                }
                failure_ops
            })
        })
        .collect();
    let failure_ops: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("worker panicked"))
        .sum();
    // Each trip consumes at least one failure report, so the trip count
    // is bounded by the number of failure ops issued across all threads.
    assert!(b.times_opened() <= failure_ops);
    assert!(matches!(
        b.state(),
        BreakerState::Closed | BreakerState::Open | BreakerState::HalfOpen
    ));
}
