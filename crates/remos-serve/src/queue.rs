//! Bounded, tenant-fair request queue.
//!
//! One FIFO lane per tenant (`BTreeMap`, so iteration order — and every
//! digest derived from it — is deterministic), global depth and cost
//! bounds enforced *on push* so queue memory stays bounded no matter the
//! offered load, and a seeded weighted lottery on dequeue so a heavy
//! tenant cannot starve light ones.
//!
//! This module is the one sanctioned `VecDeque` home in the serving crate
//! (see remos-audit's `unbounded-queue` rule): every enqueue goes through
//! [`FairQueue::push`], which refuses work past the configured bounds
//! instead of growing.

use rand::rngs::StdRng;
use rand::Rng;
use remos_core::QuerySpec;
use remos_net::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// One admitted request waiting to be served.
#[derive(Clone, Debug)]
pub struct Queued {
    /// Monotone admission id, assigned by the server.
    pub id: u64,
    /// Quota/fairness accounting key.
    pub tenant: String,
    /// The query to execute.
    pub spec: QuerySpec,
    /// Absolute deadline on the measured clock, if the request has one.
    pub deadline: Option<SimTime>,
    /// Measured time at admission (latency accounting).
    pub enqueued_at: SimTime,
    /// Admission cost in poll-gap units: how much measurement time the
    /// request is expected to consume.
    pub cost: u64,
}

/// Why a push was refused (the caller turns this into a typed shed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueFull {
    /// Global depth bound hit.
    Total,
    /// The tenant's own lane is full.
    Tenant,
    /// Total queued measurement cost bound hit.
    Cost,
}

/// Bounds enforced by [`FairQueue::push`].
#[derive(Clone, Copy, Debug)]
pub struct QueueLimits {
    /// Requests queued across all tenants.
    pub max_depth: usize,
    /// Requests queued for any single tenant.
    pub max_tenant_depth: usize,
    /// Sum of queued request costs (poll-gap units).
    pub max_cost: u64,
}

/// The bounded multi-lane queue.
#[derive(Debug, Default)]
pub struct FairQueue {
    lanes: BTreeMap<String, VecDeque<Queued>>,
    len: usize,
    cost: u64,
}

impl FairQueue {
    /// An empty queue.
    pub fn new() -> FairQueue {
        FairQueue::default()
    }

    /// Total queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of queued request costs (poll-gap units).
    pub fn queued_cost(&self) -> u64 {
        self.cost
    }

    /// Requests queued for one tenant.
    pub fn depth_of(&self, tenant: &str) -> usize {
        self.lanes.get(tenant).map(|l| l.len()).unwrap_or(0)
    }

    /// Enqueue within bounds. A refusal means the caller must shed the
    /// request — nothing is ever queued past the limits, which is what
    /// keeps serving memory bounded under overload.
    pub fn push(&mut self, q: Queued, limits: &QueueLimits) -> Result<(), QueueFull> {
        if self.len >= limits.max_depth {
            return Err(QueueFull::Total);
        }
        if self.cost.saturating_add(q.cost) > limits.max_cost {
            return Err(QueueFull::Cost);
        }
        if self.depth_of(&q.tenant) >= limits.max_tenant_depth {
            return Err(QueueFull::Tenant);
        }
        self.len += 1;
        self.cost = self.cost.saturating_add(q.cost);
        self.lanes.entry(q.tenant.clone()).or_default().push_back(q);
        Ok(())
    }

    /// Weighted-fair dequeue: a lottery over non-empty lanes with tickets
    /// proportional to tenant weight (floored at 1), drawn from the
    /// caller's seeded RNG. Within a lane, FIFO. Deterministic for a
    /// given RNG state and queue content.
    pub fn pop_weighted(
        &mut self,
        rng: &mut StdRng,
        weight_of: impl Fn(&str) -> u64,
    ) -> Option<Queued> {
        let total: u64 = self
            .lanes
            .iter()
            .filter(|(_, lane)| !lane.is_empty())
            .map(|(t, _)| weight_of(t).max(1))
            .sum();
        if total == 0 {
            return None;
        }
        let mut ticket = rng.gen_range(0..total);
        let mut winner = None;
        for (t, lane) in &self.lanes {
            if lane.is_empty() {
                continue;
            }
            let w = weight_of(t).max(1);
            if ticket < w {
                winner = Some(t.clone());
                break;
            }
            ticket -= w;
        }
        let tenant = winner?;
        let lane = self.lanes.get_mut(&tenant)?;
        let q = lane.pop_front()?;
        if lane.is_empty() {
            self.lanes.remove(&tenant);
        }
        self.len -= 1;
        self.cost = self.cost.saturating_sub(q.cost);
        Some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use remos_core::Query;

    fn req(id: u64, tenant: &str, cost: u64) -> Queued {
        Queued {
            id,
            tenant: tenant.to_string(),
            spec: Query::graph(["m-1"]).into(),
            deadline: None,
            enqueued_at: SimTime::ZERO,
            cost,
        }
    }

    const LIMITS: QueueLimits = QueueLimits { max_depth: 4, max_tenant_depth: 2, max_cost: 10 };

    #[test]
    fn bounds_are_enforced_per_axis() {
        let mut q = FairQueue::new();
        assert!(q.push(req(0, "a", 1), &LIMITS).is_ok());
        assert!(q.push(req(1, "a", 1), &LIMITS).is_ok());
        // Tenant lane full.
        assert_eq!(q.push(req(2, "a", 1), &LIMITS), Err(QueueFull::Tenant));
        // Cost bound: 2 queued, adding cost 9 would exceed 10.
        assert_eq!(q.push(req(3, "b", 9), &LIMITS), Err(QueueFull::Cost));
        assert!(q.push(req(4, "b", 1), &LIMITS).is_ok());
        assert!(q.push(req(5, "c", 1), &LIMITS).is_ok());
        // Global depth bound.
        assert_eq!(q.push(req(6, "d", 1), &LIMITS), Err(QueueFull::Total));
        assert_eq!(q.len(), 4);
        assert_eq!(q.queued_cost(), 4);
    }

    #[test]
    fn pop_is_fifo_within_a_lane_and_updates_accounting() {
        let mut q = FairQueue::new();
        q.push(req(0, "a", 2), &LIMITS).unwrap();
        q.push(req(1, "a", 3), &LIMITS).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let first = q.pop_weighted(&mut rng, |_| 1).unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.queued_cost(), 3);
        assert_eq!(q.pop_weighted(&mut rng, |_| 1).unwrap().id, 1);
        assert!(q.pop_weighted(&mut rng, |_| 1).is_none());
        assert_eq!(q.queued_cost(), 0);
    }

    #[test]
    fn weights_bias_the_lottery() {
        // Tenant "heavy" has weight 9, "light" weight 1: over many
        // independent draws, heavy should win the large majority.
        let mut heavy_wins = 0;
        for seed in 0..200u64 {
            let mut q = FairQueue::new();
            let limits = QueueLimits { max_depth: 8, max_tenant_depth: 4, max_cost: 100 };
            q.push(req(0, "heavy", 1), &limits).unwrap();
            q.push(req(1, "light", 1), &limits).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let first = q
                .pop_weighted(&mut rng, |t| if t == "heavy" { 9 } else { 1 })
                .unwrap();
            if first.tenant == "heavy" {
                heavy_wins += 1;
            }
        }
        assert!(heavy_wins > 140, "heavy won only {heavy_wins}/200 draws");
    }

    #[test]
    fn equal_weights_do_not_starve_any_tenant() {
        let limits = QueueLimits { max_depth: 64, max_tenant_depth: 32, max_cost: 1000 };
        let mut q = FairQueue::new();
        for i in 0..10 {
            q.push(req(i, "a", 1), &limits).unwrap();
            q.push(req(100 + i, "b", 1), &limits).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(42);
        let mut first_b_position = None;
        for pos in 0.. {
            let Some(item) = q.pop_weighted(&mut rng, |_| 1) else { break };
            if item.tenant == "b" && first_b_position.is_none() {
                first_b_position = Some(pos);
            }
        }
        // With equal weights "b" must get service well before "a" drains.
        assert!(first_b_position.unwrap() < 10);
    }

    #[test]
    fn dequeue_order_is_seed_deterministic() {
        let order = |seed: u64| {
            let limits = QueueLimits { max_depth: 64, max_tenant_depth: 32, max_cost: 1000 };
            let mut q = FairQueue::new();
            for i in 0..8 {
                q.push(req(i, ["a", "b", "c"][i as usize % 3], 1), &limits).unwrap();
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ids = Vec::new();
            while let Some(item) = q.pop_weighted(&mut rng, |_| 1) {
                ids.push(item.id);
            }
            ids
        };
        assert_eq!(order(1998), order(1998));
        // Different seed, (almost surely) different interleaving — but
        // always a permutation of the same set.
        let mut a = order(1998);
        let mut b = order(7);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
