//! Per-tenant token-bucket quotas.
//!
//! Buckets refill on the *measured* (simulated) clock in integer
//! millitokens — no floating point anywhere, so refill arithmetic is
//! exact and admission decisions are bit-reproducible across runs. A
//! tenant that drains its bucket gets a typed
//! [`RemosError::Overloaded`](remos_core::RemosError::Overloaded) from
//! the server, whose `retry_after` hint is the exact simulated time
//! until the bucket covers one more request.

use remos_net::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Millitokens per whole token.
pub const MILLI: u64 = 1_000;

const NANOS_PER_SEC: u128 = 1_000_000_000;

/// Token-bucket parameters, shared by every tenant.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Sustained refill rate in millitokens per second of measured time.
    /// Zero disables quota enforcement entirely.
    pub rate_milli_per_sec: u64,
    /// Bucket capacity (burst headroom) in millitokens.
    pub burst_milli: u64,
    /// Millitokens charged per admitted request.
    pub cost_milli: u64,
}

impl Default for QuotaConfig {
    /// 4 requests/s sustained, bursts of 8, one token per request.
    fn default() -> Self {
        QuotaConfig { rate_milli_per_sec: 4 * MILLI, burst_milli: 8 * MILLI, cost_milli: MILLI }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    level_milli: u64,
    /// Sub-millitoken refill remainder in millitoken-nanoseconds, carried
    /// forward so no refill credit is ever rounded away.
    carry: u128,
    last_refill: SimTime,
}

/// One token bucket per tenant. `BTreeMap` keeps iteration (and therefore
/// any derived digests) deterministic.
#[derive(Debug)]
pub struct TokenBuckets {
    cfg: QuotaConfig,
    buckets: BTreeMap<String, Bucket>,
}

impl TokenBuckets {
    /// Empty registry; tenants materialize with a full bucket on first use.
    pub fn new(cfg: QuotaConfig) -> TokenBuckets {
        TokenBuckets { cfg, buckets: BTreeMap::new() }
    }

    /// Charge one request to `tenant` at measured time `now`. `Ok` admits;
    /// `Err(wait)` is the exact simulated time until the bucket would
    /// cover the charge again (the `retry_after` hint).
    pub fn admit(&mut self, tenant: &str, now: SimTime) -> Result<(), SimDuration> {
        if self.cfg.rate_milli_per_sec == 0 {
            return Ok(());
        }
        let cfg = self.cfg;
        let b = self.buckets.entry(tenant.to_string()).or_insert(Bucket {
            level_milli: cfg.burst_milli,
            carry: 0,
            last_refill: now,
        });
        if now > b.last_refill {
            let elapsed = now.saturating_since(b.last_refill).as_nanos() as u128;
            let acc = elapsed * cfg.rate_milli_per_sec as u128 + b.carry;
            let add = acc / NANOS_PER_SEC;
            b.carry = acc % NANOS_PER_SEC;
            b.level_milli = b
                .level_milli
                .saturating_add(add.min(u64::MAX as u128) as u64)
                .min(cfg.burst_milli);
            if b.level_milli == cfg.burst_milli {
                // A full bucket accrues nothing.
                b.carry = 0;
            }
            b.last_refill = now;
        }
        if b.level_milli >= cfg.cost_milli {
            b.level_milli -= cfg.cost_milli;
            Ok(())
        } else {
            let deficit = (cfg.cost_milli - b.level_milli) as u128;
            let need_nanos = (deficit * NANOS_PER_SEC).saturating_sub(b.carry);
            let wait = need_nanos.div_ceil(cfg.rate_milli_per_sec as u128);
            Err(SimDuration::from_nanos(wait.min(u64::MAX as u128) as u64))
        }
    }

    /// Current bucket level for a tenant (full burst if never seen).
    pub fn level_milli(&self, tenant: &str) -> u64 {
        self.buckets.get(tenant).map(|b| b.level_milli).unwrap_or(self.cfg.burst_milli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: u64, burst: u64) -> QuotaConfig {
        QuotaConfig { rate_milli_per_sec: rate, burst_milli: burst, cost_milli: MILLI }
    }

    #[test]
    fn burst_admits_then_rejects_with_exact_retry_hint() {
        let mut q = TokenBuckets::new(cfg(MILLI, 2 * MILLI)); // 1 req/s, burst 2
        let t0 = SimTime::from_secs(10);
        assert!(q.admit("a", t0).is_ok());
        assert!(q.admit("a", t0).is_ok());
        let wait = q.admit("a", t0).unwrap_err();
        // Empty bucket, 1000 millitokens needed at 1000/s: exactly 1 s.
        assert_eq!(wait, SimDuration::from_secs(1));
        // After exactly that wait the next request is admitted.
        assert!(q.admit("a", t0 + wait).is_ok());
        // ... and the bucket is empty again immediately after.
        assert!(q.admit("a", t0 + wait).is_err());
    }

    #[test]
    fn fractional_refill_carries_without_loss() {
        let mut q = TokenBuckets::new(cfg(3 * MILLI, MILLI)); // 3 req/s
        let t0 = SimTime::ZERO;
        assert!(q.admit("a", t0).is_ok());
        // 1/3 s refills exactly one request at 3 req/s, despite the
        // period (333_333_333.33.. ns) not dividing evenly.
        let wait = q.admit("a", t0).unwrap_err();
        assert_eq!(wait, SimDuration::from_nanos(333_333_334));
        let t1 = t0 + wait;
        assert!(q.admit("a", t1).is_ok());
        let wait2 = q.admit("a", t1).unwrap_err();
        // Carry keeps long-run throughput exact: three admissions never
        // cost more than 1s + rounding in total.
        let t2 = t1 + wait2;
        assert!(q.admit("a", t2).is_ok());
        let wait3 = q.admit("a", t2).unwrap_err();
        let total = wait + wait2 + wait3;
        assert!(
            total >= SimDuration::from_nanos(999_999_999)
                && total <= SimDuration::from_nanos(1_000_000_002),
            "three refills took {total:?}"
        );
    }

    #[test]
    fn tenants_are_isolated() {
        let mut q = TokenBuckets::new(cfg(MILLI, MILLI));
        let t0 = SimTime::ZERO;
        assert!(q.admit("heavy", t0).is_ok());
        assert!(q.admit("heavy", t0).is_err());
        // A different tenant still has a full bucket.
        assert!(q.admit("light", t0).is_ok());
        assert_eq!(q.level_milli("heavy"), 0);
        assert_eq!(q.level_milli("unseen"), MILLI);
    }

    #[test]
    fn zero_rate_disables_enforcement() {
        let mut q = TokenBuckets::new(cfg(0, 0));
        for _ in 0..1000 {
            assert!(q.admit("a", SimTime::ZERO).is_ok());
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut q = TokenBuckets::new(QuotaConfig::default());
            let mut admitted = 0u64;
            for i in 0..200u64 {
                let t = SimTime::from_millis(i * 37);
                if q.admit(if i % 3 == 0 { "a" } else { "b" }, t).is_ok() {
                    admitted += 1;
                }
            }
            admitted
        };
        assert_eq!(run(), run());
    }
}
