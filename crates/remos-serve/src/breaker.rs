//! Circuit breakers around collector I/O.
//!
//! A breaker is `Closed` while the measurement substrate looks healthy.
//! After `failure_threshold` consecutive failures it trips `Open`:
//! collector calls fast-fail with a typed error instead of spending a
//! retry budget against a dead substrate, and the serving layer answers
//! from the last good snapshot via its degradation ladder. Once
//! `open_for` has elapsed on the measured clock, the next call runs
//! `HalfOpen` — one probe: success closes the breaker, failure re-opens
//! it for another `open_for`.
//!
//! Health signals feed in from two directions:
//! * the outcomes of the collector calls themselves (`poll` /
//!   `refresh_topology` errors, and polls whose sample came back entirely
//!   [`DataQuality::Missing`] — a "success" with no usable data);
//! * individual SNMP request outcomes inside the manager retry loop, via
//!   the [`remos_snmp::RetryObserver`] implementation — wire it with
//!   `SnmpCollector::set_retry_observer(breaker.clone())` so the breaker
//!   sees failures as they happen rather than once per poll.

use parking_lot::Mutex;
use remos_core::collector::{Collector, SampleHistory};
use remos_core::{CoreResult, DataQuality, HostInfo, RemosError};
use remos_net::topology::Topology;
use remos_net::{SimDuration, SimTime};
use remos_obs::{Counter, Obs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip `Closed` → `Open`.
    pub failure_threshold: u32,
    /// How long an open breaker fast-fails before allowing a half-open
    /// probe, on the measured clock.
    pub open_for: SimDuration,
    /// Count a poll whose appended sample is entirely
    /// [`DataQuality::Missing`] as a failure.
    pub all_missing_is_failure: bool,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(5),
            all_missing_is_failure: true,
        }
    }
}

/// Public view of the breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Substrate healthy; calls pass through.
    Closed,
    /// Tripped; calls fast-fail until `open_for` elapses.
    Open,
    /// Probation: one probe decides between `Closed` and `Open`.
    HalfOpen,
}

enum State {
    Closed { consecutive_failures: u32 },
    Open { until: SimTime },
    HalfOpen,
}

struct BreakerMetrics {
    opened: Counter,
    closed: Counter,
    fast_fail: Counter,
}

struct Inner {
    state: State,
    /// Latest measured time the breaker has seen; failure reports from
    /// the SNMP retry observer (which has no clock) are stamped with it.
    last_now: SimTime,
    opened_total: u64,
    metrics: Option<BreakerMetrics>,
}

/// The breaker itself. `Arc`-shared between the decorated collector and
/// whoever wants to inspect or wire it (server, SNMP retry observer).
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Arc<CircuitBreaker> {
        Arc::new(CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: State::Closed { consecutive_failures: 0 },
                last_now: SimTime::ZERO,
                opened_total: 0,
                metrics: None,
            }),
        })
    }

    /// Route state transitions into `obs` counters
    /// (`breaker_opened_total`, `breaker_closed_total`,
    /// `breaker_fast_fail_total`).
    pub fn set_obs(&self, obs: &Obs) {
        self.inner.lock().metrics = Some(BreakerMetrics {
            opened: obs.counter("breaker_opened_total"),
            closed: obs.counter("breaker_closed_total"),
            fast_fail: obs.counter("breaker_fast_fail_total"),
        });
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        match self.inner.lock().state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// How many times the breaker has tripped open.
    pub fn times_opened(&self) -> u64 {
        self.inner.lock().opened_total
    }

    /// Advance the breaker's notion of measured time (monotone). Failure
    /// reports arriving via [`remos_snmp::RetryObserver`] are stamped
    /// with the latest time noted here.
    pub fn note_time(&self, now: SimTime) {
        let mut i = self.inner.lock();
        if now > i.last_now {
            i.last_now = now;
        }
    }

    /// May a collector call proceed at measured time `now`? `Open`
    /// fast-fails (returns `false`) until `open_for` has elapsed, at
    /// which point the breaker moves to `HalfOpen` and admits one probe.
    pub fn allow(&self, now: SimTime) -> bool {
        let mut i = self.inner.lock();
        if now > i.last_now {
            i.last_now = now;
        }
        match i.state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { until } => {
                if now >= until {
                    i.state = State::HalfOpen;
                    true
                } else {
                    if let Some(m) = &i.metrics {
                        m.fast_fail.inc();
                    }
                    false
                }
            }
        }
    }

    /// A call against the substrate succeeded.
    pub fn record_success(&self) {
        let mut i = self.inner.lock();
        match i.state {
            State::Closed { .. } => i.state = State::Closed { consecutive_failures: 0 },
            State::HalfOpen => {
                i.state = State::Closed { consecutive_failures: 0 };
                if let Some(m) = &i.metrics {
                    m.closed.inc();
                }
            }
            // A stray success while open (e.g. a late response) does not
            // close the breaker — the half-open probe decides that.
            State::Open { .. } => {}
        }
    }

    /// A call against the substrate failed at measured time `now`.
    pub fn record_failure(&self, now: SimTime) {
        let mut i = self.inner.lock();
        if now > i.last_now {
            i.last_now = now;
        }
        let stamped = i.last_now;
        match i.state {
            State::Closed { consecutive_failures } => {
                let f = consecutive_failures + 1;
                if f >= self.cfg.failure_threshold {
                    i.state = State::Open { until: stamped + self.cfg.open_for };
                    i.opened_total += 1;
                    if let Some(m) = &i.metrics {
                        m.opened.inc();
                    }
                } else {
                    i.state = State::Closed { consecutive_failures: f };
                }
            }
            State::HalfOpen => {
                i.state = State::Open { until: stamped + self.cfg.open_for };
                i.opened_total += 1;
                if let Some(m) = &i.metrics {
                    m.opened.inc();
                }
            }
            State::Open { .. } => {}
        }
    }
}

/// Per-request health straight from the SNMP manager's retry loop: each
/// exhausted retry budget or hard agent error is a failure, each answered
/// request a success. Timestamps come from the last measured time the
/// breaker saw (the observer callback itself has no clock).
impl remos_snmp::RetryObserver for CircuitBreaker {
    fn on_success(&self, _agent: &str) {
        self.record_success();
    }

    fn on_failure(&self, _agent: &str) {
        let now = self.inner.lock().last_now;
        self.record_failure(now);
    }
}

/// Collector decorator that fast-fails behind an open breaker.
///
/// * `poll` and `refresh_topology` are gated: when the breaker is open
///   they return a typed [`RemosError::Collector`] immediately instead of
///   burning a retry budget against a dead substrate.
/// * `now()` keeps working while open by answering from the last measured
///   time seen, so deadline budgets still tick and admission decisions
///   stay well-defined during an outage.
/// * Pure reads (`topology`, `history`, `host_info`) always pass through:
///   the last good snapshot *is* the degraded answer source.
pub struct BreakerCollector<C: Collector> {
    inner: C,
    breaker: Arc<CircuitBreaker>,
    cached_now: AtomicU64,
}

impl<C: Collector> BreakerCollector<C> {
    /// Wrap `inner` behind `breaker`.
    pub fn wrap(inner: C, breaker: Arc<CircuitBreaker>) -> BreakerCollector<C> {
        BreakerCollector { inner, breaker, cached_now: AtomicU64::new(0) }
    }

    /// The shared breaker (inspect state, wire observers).
    pub fn breaker(&self) -> &Arc<CircuitBreaker> {
        &self.breaker
    }

    /// The wrapped collector.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    fn known_now(&self) -> SimTime {
        SimTime::from_nanos(self.cached_now.load(Ordering::Relaxed))
    }

    fn note_now(&self, t: SimTime) {
        self.cached_now.fetch_max(t.as_nanos(), Ordering::Relaxed);
        self.breaker.note_time(t);
    }

    fn fast_fail(what: &str) -> RemosError {
        RemosError::Collector(format!("circuit open: {what} fast-failed"))
    }
}

impl<C: Collector> Collector for BreakerCollector<C> {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        let now = self.known_now();
        if !self.breaker.allow(now) {
            return Err(Self::fast_fail("topology refresh"));
        }
        match self.inner.refresh_topology() {
            Ok(()) => {
                self.breaker.record_success();
                Ok(())
            }
            Err(e) => {
                self.breaker.record_failure(now);
                Err(e)
            }
        }
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        self.inner.topology()
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        self.inner.host_info(name)
    }

    fn poll(&mut self) -> CoreResult<bool> {
        let now = self.known_now();
        if !self.breaker.allow(now) {
            return Err(Self::fast_fail("poll"));
        }
        match self.inner.poll() {
            Ok(appended) => {
                if let Ok(t) = self.inner.now() {
                    self.note_now(t);
                }
                // A sample with no usable measurement in it is a failure
                // in success clothing: the agents answered nothing.
                let unusable = appended
                    && self.breaker.cfg.all_missing_is_failure
                    && self
                        .inner
                        .history()
                        .latest()
                        .map(|s| {
                            !s.quality.is_empty()
                                && s.quality.iter().all(|q| matches!(q, DataQuality::Missing))
                        })
                        .unwrap_or(false);
                if unusable {
                    self.breaker.record_failure(self.known_now());
                } else {
                    self.breaker.record_success();
                }
                Ok(appended)
            }
            Err(e) => {
                self.breaker.record_failure(now);
                Err(e)
            }
        }
    }

    fn history(&self) -> &SampleHistory {
        self.inner.history()
    }

    fn topology_epoch(&self) -> u64 {
        self.inner.topology_epoch()
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn now(&self) -> CoreResult<SimTime> {
        let known = self.known_now();
        if !self.breaker.allow(known) {
            return Ok(known);
        }
        match self.inner.now() {
            Ok(t) => {
                self.note_now(t);
                Ok(t)
            }
            // Clock failure with a cached time: serve the cached time so
            // budgets and admission keep working through the outage.
            Err(_) if self.cached_now.load(Ordering::Relaxed) > 0 => Ok(known),
            Err(e) => Err(e),
        }
    }

    fn set_obs(&mut self, obs: &Obs) {
        self.breaker.set_obs(obs);
        self.inner.set_obs(obs);
    }

    fn describe(&self) -> String {
        let state = match self.breaker.state() {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        format!("{} [breaker {state}]", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(5),
            all_missing_is_failure: true,
        }
    }

    #[test]
    fn trips_after_threshold_and_recovers_via_half_open() {
        let b = CircuitBreaker::new(cfg());
        let t0 = SimTime::from_secs(100);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(t0));
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);
        // Fast-fails while open...
        assert!(!b.allow(t0 + SimDuration::from_secs(1)));
        // ...until open_for elapses: one half-open probe is admitted.
        assert!(b.allow(t0 + SimDuration::from_secs(5)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new(cfg());
        let t0 = SimTime::from_secs(10);
        for _ in 0..3 {
            b.record_failure(t0);
        }
        let t1 = t0 + SimDuration::from_secs(5);
        assert!(b.allow(t1));
        b.record_failure(t1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
        assert!(!b.allow(t1 + SimDuration::from_secs(4)));
        assert!(b.allow(t1 + SimDuration::from_secs(5)));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(cfg());
        let t0 = SimTime::ZERO;
        b.record_failure(t0);
        b.record_failure(t0);
        b.record_success();
        b.record_failure(t0);
        b.record_failure(t0);
        // Only 2 consecutive failures since the success: still closed.
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn retry_observer_failures_use_last_noted_time() {
        use remos_snmp::RetryObserver;
        let b = CircuitBreaker::new(cfg());
        b.note_time(SimTime::from_secs(42));
        b.on_failure("agent-1");
        b.on_failure("agent-1");
        b.on_failure("agent-2");
        assert_eq!(b.state(), BreakerState::Open);
        // Opened at t=42s, so the probe window starts at 47s.
        assert!(!b.allow(SimTime::from_secs(46)));
        assert!(b.allow(SimTime::from_secs(47)));
    }
}
