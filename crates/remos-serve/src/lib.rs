//! # remos-serve — overload-safe serving front end
//!
//! The paper positions Remos as a shared *service*: one collector/modeler
//! pair answering queries for many network-aware applications at once
//! (§5 — "a single Collector can support multiple Modelers", and the
//! Remos API is explicitly a multi-user interface). This crate is that
//! serving layer, built for the bad day: more offered load than
//! capacity, dead SNMP agents, requests with deadlines.
//!
//! * [`Server`] — bounded admission queue with per-tenant token-bucket
//!   quotas ([`quota`]) and a weighted-fair seeded dequeue ([`queue`]).
//!   Past the bounds, callers get a typed
//!   [`RemosError::Overloaded`](remos_core::RemosError::Overloaded) with
//!   an honest `retry_after` — never unbounded queueing.
//! * **Deadline budgets** — each admitted request carries an absolute
//!   deadline threaded through the facade as a
//!   [`QueryBudget`](remos_core::QueryBudget); the pipeline sheds at
//!   every stage boundary with a typed
//!   [`DeadlineExceeded`](remos_core::RemosError::DeadlineExceeded).
//! * [`breaker`] — circuit breakers around collector I/O. After repeated
//!   failures the breaker opens and collector calls fast-fail instead of
//!   burning retry budgets against a dead substrate; health signals come
//!   from call outcomes, all-`Missing` samples, and the SNMP manager's
//!   per-request retry loop (via [`remos_snmp::RetryObserver`]).
//! * **Degradation ladder** — full answer → stale snapshot →
//!   topology-only → typed rejection, the rung picked per request by its
//!   `min_quality` floor. Degraded answers are stamped in their
//!   [`Provenance`](remos_core::Provenance) (`degraded: true`, `source`
//!   naming the collector that produced the data).
//!
//! Everything runs on the measured (simulated) clock with seeded RNGs:
//! under a pinned seed and arrival sequence, every admission and shed
//! decision is bit-reproducible ([`Server::decision_digest`]).
//!
//! ```
//! use remos_core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
//! use remos_core::collector::SimClock;
//! use remos_core::{Query, Remos, RemosConfig};
//! use remos_net::{mbps, SimDuration, Simulator, TopologyBuilder};
//! use remos_serve::{ServeRequest, Server, ServerConfig};
//! use remos_snmp::sim::{register_all_agents, share};
//! use remos_snmp::SimTransport;
//! use std::sync::Arc;
//!
//! // Two hosts behind a router, agents on every node.
//! let mut b = TopologyBuilder::new();
//! let h1 = b.compute("h1");
//! let h2 = b.compute("h2");
//! let r = b.network("r");
//! b.link(h1, r, mbps(100.0), SimDuration::from_micros(100)).unwrap();
//! b.link(r, h2, mbps(100.0), SimDuration::from_micros(100)).unwrap();
//! let sim = share(Simulator::new(b.build().unwrap()).unwrap());
//! let transport = Arc::new(SimTransport::new());
//! let agents = register_all_agents(&transport, &sim, "public");
//! let collector = SnmpCollector::new(transport, agents, SnmpCollectorConfig::default());
//! let remos = Remos::new(
//!     Box::new(collector),
//!     Box::new(SimClock(Arc::clone(&sim))),
//!     RemosConfig::default(),
//! );
//!
//! // Serve through admission control, deadlines, and the ladder.
//! let mut server = Server::new(remos, ServerConfig::default());
//! let req = ServeRequest::new("tenant-a", Query::graph(["h1", "h2"]))
//!     .with_allowance(SimDuration::from_secs(5));
//! let id = server.submit(req).unwrap();
//! let outcome = server.serve_next().unwrap();
//! assert_eq!(outcome.id, id);
//! let graph = outcome.result.unwrap().into_graph().unwrap();
//! assert!(graph.provenance.unwrap().source.unwrap().starts_with("snmp("));
//! ```

pub mod breaker;
pub mod queue;
pub mod quota;
pub mod server;

pub use breaker::{BreakerCollector, BreakerConfig, BreakerState, CircuitBreaker};
pub use queue::{FairQueue, Queued, QueueFull, QueueLimits};
pub use quota::{QuotaConfig, TokenBuckets};
pub use server::{Rung, ServeOutcome, ServeRequest, Server, ServerConfig};
