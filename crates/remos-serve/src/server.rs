//! The serving front end.
//!
//! [`Server`] wraps a [`Remos`] facade with everything a shared query
//! service needs on a bad day:
//!
//! * **Admission control** — [`Server::submit`] charges the tenant's
//!   token bucket and enforces the bounded queue; past either limit the
//!   caller gets a typed [`RemosError::Overloaded`] with an honest
//!   `retry_after`, and *no* state is queued. Memory stays bounded at any
//!   offered load.
//! * **Deadlines** — each request carries an absolute deadline on the
//!   measured clock. The budget is threaded through the facade
//!   ([`QueryBudget`]), which sheds at every stage boundary: before
//!   measuring, after measuring, before solving. A request that waited
//!   out its deadline in the queue is shed without spending anything.
//! * **Weighted-fair dequeue** — a seeded lottery over tenant lanes
//!   ([`FairQueue`]); pinned seed + pinned arrival sequence ⇒
//!   bit-identical scheduling, auditable via [`Server::decision_digest`].
//! * **Degradation ladder** — full answer → stale snapshot →
//!   topology-only → typed rejection. The rung is chosen per request by
//!   its `min_quality` floor; degraded answers are marked in their
//!   [`Provenance`](remos_core::Provenance) (`degraded`, `source`).
//!
//! Time passes only through the measurements the served queries take;
//! there is no wall clock anywhere, so every test and benchmark over this
//! layer is reproducible.

use crate::quota::{QuotaConfig, TokenBuckets};
use crate::queue::{FairQueue, Queued, QueueLimits};
use rand::rngs::StdRng;
use rand::SeedableRng;
use remos_core::{
    CoreResult, DataQuality, QueryBudget, QueryResult, QuerySpec, Remos, RemosError,
};
use remos_net::{SimDuration, SimTime};
use remos_obs::{Counter, Gauge, Histogram, Obs};
use std::collections::BTreeMap;

/// Serving-layer tuning.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Queued requests across all tenants.
    pub max_queue_depth: usize,
    /// Queued requests for any single tenant.
    pub max_tenant_depth: usize,
    /// Total queued measurement cost, in poll-gap units.
    pub max_queued_cost: u64,
    /// Deadline allowance granted to requests that do not bring their
    /// own; `None` means such requests run unlimited.
    pub default_allowance: Option<SimDuration>,
    /// Poll gap used to price a request's measurement cost. Keep in sync
    /// with the facade's `RemosConfig::poll_gap`.
    pub poll_gap: SimDuration,
    /// Per-tenant token-bucket quota.
    pub quota: QuotaConfig,
    /// Dequeue lottery weights per tenant.
    pub weights: BTreeMap<String, u64>,
    /// Weight for tenants not listed in `weights`.
    pub default_weight: u64,
    /// Seed for the weighted-fair dequeue lottery.
    pub fair_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_queue_depth: 64,
            max_tenant_depth: 16,
            max_queued_cost: 256,
            default_allowance: Some(SimDuration::from_secs(10)),
            poll_gap: SimDuration::from_millis(250),
            quota: QuotaConfig::default(),
            weights: BTreeMap::new(),
            default_weight: 1,
            fair_seed: 0x5e11_e5e1,
        }
    }
}

/// One request presented for admission.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    /// Quota/fairness accounting key.
    pub tenant: String,
    /// The query to execute.
    pub spec: QuerySpec,
    /// Deadline allowance measured from admission; `None` takes the
    /// server's `default_allowance`.
    pub allowance: Option<SimDuration>,
}

impl ServeRequest {
    /// A request with the server's default deadline allowance.
    pub fn new(tenant: impl Into<String>, spec: impl Into<QuerySpec>) -> ServeRequest {
        ServeRequest { tenant: tenant.into(), spec: spec.into(), allowance: None }
    }

    /// Give the request its own deadline allowance.
    pub fn with_allowance(mut self, allowance: SimDuration) -> ServeRequest {
        self.allowance = Some(allowance);
        self
    }
}

/// Which rung of the degradation ladder produced an outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Fresh measurement, within budget.
    Full,
    /// Answered from existing history, quality re-aged to now.
    StaleSnapshot,
    /// Static topology only; every dynamic quantity `Missing`.
    TopologyOnly,
    /// No rung could satisfy the request; the result holds the typed
    /// error (`DeadlineExceeded`, the original substrate failure, or a
    /// semantic rejection).
    Rejected,
}

/// The served (or shed) fate of one admitted request.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Admission id from [`Server::submit`].
    pub id: u64,
    /// The requesting tenant.
    pub tenant: String,
    /// Ladder rung that produced the result.
    pub rung: Rung,
    /// The answer, or the typed error explaining exactly why not.
    pub result: CoreResult<QueryResult>,
    /// Measured time at admission.
    pub enqueued_at: SimTime,
    /// Measured time when serving finished.
    pub finished_at: SimTime,
}

impl ServeOutcome {
    /// Queue wait plus service time, on the measured clock.
    pub fn latency(&self) -> SimDuration {
        self.finished_at.saturating_since(self.enqueued_at)
    }
}

struct ServeMetrics {
    submitted: Counter,
    admitted: Counter,
    shed_quota: Counter,
    shed_overload: Counter,
    shed_deadline: Counter,
    answered_full: Counter,
    answered_stale: Counter,
    answered_topology: Counter,
    rejected: Counter,
    queue_depth: Gauge,
    latency: Histogram,
}

impl ServeMetrics {
    fn new(obs: &Obs) -> ServeMetrics {
        ServeMetrics {
            submitted: obs.counter("serve_submitted_total"),
            admitted: obs.counter("serve_admitted_total"),
            shed_quota: obs.counter("serve_quota_shed_total"),
            shed_overload: obs.counter("serve_overload_shed_total"),
            shed_deadline: obs.counter("serve_deadline_shed_total"),
            answered_full: obs.counter("serve_answered_full_total"),
            answered_stale: obs.counter("serve_answered_stale_total"),
            answered_topology: obs.counter("serve_answered_topology_total"),
            rejected: obs.counter("serve_rejected_total"),
            queue_depth: obs.gauge("serve_queue_depth"),
            latency: obs.histogram("serve_latency_nanos"),
        }
    }
}

// FNV-1a over every admission and serving decision: two runs with the
// same seed and arrival sequence must fold to the same digest.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

const DECISION_ADMIT: u64 = 1;
const DECISION_SHED_QUOTA: u64 = 2;
const DECISION_SHED_QUEUE: u64 = 3;
const DECISION_FULL: u64 = 4;
const DECISION_STALE: u64 = 5;
const DECISION_TOPOLOGY: u64 = 6;
const DECISION_REJECT: u64 = 7;
const DECISION_SHED_DEADLINE: u64 = 8;

/// The overload-safe serving front end over one [`Remos`] facade.
pub struct Server {
    remos: Remos,
    cfg: ServerConfig,
    queue: FairQueue,
    quotas: TokenBuckets,
    rng: StdRng,
    next_id: u64,
    digest: u64,
    metrics: ServeMetrics,
}

impl Server {
    /// Wrap a facade. The server reports into the facade's observability
    /// handle (`serve_*` counters, `serve_queue_depth`,
    /// `serve_latency_nanos`, `serve_request` spans).
    pub fn new(remos: Remos, cfg: ServerConfig) -> Server {
        let metrics = ServeMetrics::new(remos.obs());
        let rng = StdRng::seed_from_u64(cfg.fair_seed);
        let quotas = TokenBuckets::new(cfg.quota);
        Server {
            remos,
            cfg,
            queue: FairQueue::new(),
            quotas,
            rng,
            next_id: 0,
            digest: FNV_OFFSET,
            metrics,
        }
    }

    /// Direct access to the wrapped facade (harnesses, tests).
    pub fn remos(&mut self) -> &mut Remos {
        &mut self.remos
    }

    /// The observability handle the server reports into.
    pub fn obs(&self) -> &Obs {
        self.remos.obs()
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// FNV-1a fold of every admission and serving decision so far. Two
    /// runs with the same configuration, seed, and arrival sequence must
    /// report the same digest — the bit-reproducibility contract for shed
    /// decisions.
    pub fn decision_digest(&self) -> u64 {
        self.digest
    }

    fn now(&self) -> SimTime {
        self.remos.collector().now().unwrap_or(SimTime::ZERO)
    }

    fn fold(&mut self, decision: u64, id: u64) {
        for v in [decision, id] {
            for b in v.to_le_bytes() {
                self.digest ^= b as u64;
                self.digest = self.digest.wrapping_mul(FNV_PRIME);
            }
        }
    }

    /// Admission control: charge the tenant's token bucket and reserve a
    /// bounded-queue slot. `Ok(id)` queues the request. `Err` is a typed
    /// shed decision made *before* any measurement time is spent:
    /// [`RemosError::Overloaded`] with a `retry_after` hint — exact
    /// bucket-refill time for quota sheds, estimated backlog-drain time
    /// for queue sheds.
    pub fn submit(&mut self, req: ServeRequest) -> CoreResult<u64> {
        self.metrics.submitted.inc();
        let now = self.now();
        if let Err(wait) = self.quotas.admit(&req.tenant, now) {
            self.metrics.shed_quota.inc();
            let id = self.next_id;
            self.fold(DECISION_SHED_QUOTA, id);
            return Err(RemosError::Overloaded { retry_after: wait });
        }
        let cost = cost_of(&req.spec, self.cfg.poll_gap);
        let limits = QueueLimits {
            max_depth: self.cfg.max_queue_depth,
            max_tenant_depth: self.cfg.max_tenant_depth,
            max_cost: self.cfg.max_queued_cost,
        };
        // Computed before the push so a refusal can still hint at how
        // long the backlog ahead will take to drain (one poll gap per
        // queued cost unit).
        let backlog_drain = self
            .cfg
            .poll_gap
            .mul_u64(self.queue.queued_cost().saturating_add(cost).max(1));
        let id = self.next_id;
        let deadline = req
            .allowance
            .or(self.cfg.default_allowance)
            .map(|allowance| now + allowance);
        let q = Queued {
            id,
            tenant: req.tenant,
            spec: req.spec,
            deadline,
            enqueued_at: now,
            cost,
        };
        match self.queue.push(q, &limits) {
            Ok(()) => {
                self.next_id += 1;
                self.metrics.admitted.inc();
                self.metrics.queue_depth.set(self.queue.len() as f64);
                self.fold(DECISION_ADMIT, id);
                Ok(id)
            }
            Err(_full) => {
                self.metrics.shed_overload.inc();
                self.fold(DECISION_SHED_QUEUE, id);
                Err(RemosError::Overloaded { retry_after: backlog_drain })
            }
        }
    }

    /// Serve one queued request through the degradation ladder. Returns
    /// `None` when the queue is empty. Simulated time passes only through
    /// the measurements the served query takes.
    pub fn serve_next(&mut self) -> Option<ServeOutcome> {
        let q = {
            let weights = &self.cfg.weights;
            let default_weight = self.cfg.default_weight;
            self.queue.pop_weighted(&mut self.rng, |t| {
                weights.get(t).copied().unwrap_or(default_weight)
            })?
        };
        self.metrics.queue_depth.set(self.queue.len() as f64);
        let started = self.now();
        let span = self.remos.obs().span("serve_request", started.as_nanos());
        let budget = match q.deadline {
            Some(d) => QueryBudget::until(d),
            None => QueryBudget::UNLIMITED,
        };
        let (rung, result) = self.ladder(&q, budget);
        let finished = self.now();
        span.end(finished.as_nanos(), &[("id", q.id)]);
        let decision = match (rung, &result) {
            (Rung::Full, _) => {
                self.metrics.answered_full.inc();
                DECISION_FULL
            }
            (Rung::StaleSnapshot, _) => {
                self.metrics.answered_stale.inc();
                DECISION_STALE
            }
            (Rung::TopologyOnly, _) => {
                self.metrics.answered_topology.inc();
                DECISION_TOPOLOGY
            }
            (Rung::Rejected, Err(RemosError::DeadlineExceeded { .. })) => {
                self.metrics.shed_deadline.inc();
                DECISION_SHED_DEADLINE
            }
            (Rung::Rejected, _) => {
                self.metrics.rejected.inc();
                DECISION_REJECT
            }
        };
        self.fold(decision, q.id);
        self.metrics
            .latency
            .observe(finished.saturating_since(q.enqueued_at).as_nanos());
        Some(ServeOutcome {
            id: q.id,
            tenant: q.tenant,
            rung,
            result,
            enqueued_at: q.enqueued_at,
            finished_at: finished,
        })
    }

    /// Serve everything queued, in weighted-fair order.
    pub fn drain(&mut self) -> Vec<ServeOutcome> {
        let mut out = Vec::new();
        while let Some(o) = self.serve_next() {
            out.push(o);
        }
        out
    }

    fn ladder(&mut self, q: &Queued, budget: QueryBudget) -> (Rung, CoreResult<QueryResult>) {
        // Shed before spending anything if the deadline already passed
        // while the request sat in the queue.
        if let Err(e) = budget.check(self.now()) {
            return (Rung::Rejected, Err(e));
        }
        match self.remos.run_within(q.spec.clone(), budget) {
            Ok(r) => (Rung::Full, Ok(r)),
            // A blown deadline is final: a degraded answer would still be
            // late, and late answers teach callers to distrust deadlines.
            Err(e @ RemosError::DeadlineExceeded { .. }) => (Rung::Rejected, Err(e)),
            Err(e) if degradable(&e) => self.degrade(q, e),
            Err(e) => (Rung::Rejected, Err(e)),
        }
    }

    fn degrade(&mut self, q: &Queued, original: RemosError) -> (Rung, CoreResult<QueryResult>) {
        let floor = floor_of(&q.spec);
        // Rung 2: answer from the last good snapshot, re-aged — unless
        // the request demands Fresh, in which case staleness is exactly
        // what it asked not to get.
        if !matches!(floor, Some(DataQuality::Fresh)) {
            if let Some(ans) = self.stale_snapshot_answer(q, floor) {
                return (Rung::StaleSnapshot, Ok(ans));
            }
        }
        // Rung 3: static topology, dynamics Missing — graph queries only,
        // and only when the floor (if any) accepts Missing.
        if let QuerySpec::Graph(g) = &q.spec {
            let missing_ok = floor.is_none_or(|f| DataQuality::Missing.meets(f));
            if missing_ok {
                if let Ok(graph) = self.remos.topology_only(&g.nodes) {
                    return (Rung::TopologyOnly, Ok(QueryResult::Graph(graph)));
                }
            }
        }
        (Rung::Rejected, Err(original))
    }

    fn stale_snapshot_answer(
        &mut self,
        q: &Queued,
        floor: Option<DataQuality>,
    ) -> Option<QueryResult> {
        // How stale would the answer be? Quality floors are enforced
        // against the *re-aged* worst quality — what the inputs are worth
        // now, not when they were measured.
        let latest = self.remos.collector().history().latest()?.t;
        let lag = self.now().saturating_since(latest);
        let ans = self.remos.run_from_history(strip_floor(q.spec.clone())).ok()?;
        let aged = worst_of(&ans).worst(if lag.is_zero() {
            DataQuality::Fresh
        } else {
            DataQuality::Stale { age: lag }
        });
        match floor {
            Some(f) if !aged.meets(f) => None,
            _ => Some(ans),
        }
    }
}

/// Failures that mean "the measurement substrate is unhealthy", where a
/// degraded answer beats an error. Semantic rejections (unknown nodes,
/// malformed queries) and blown deadlines are final.
fn degradable(e: &RemosError) -> bool {
    matches!(
        e,
        RemosError::Collector(_)
            | RemosError::Snmp(_)
            | RemosError::Net(_)
            | RemosError::InsufficientHistory { .. }
    )
}

fn floor_of(spec: &QuerySpec) -> Option<DataQuality> {
    match spec {
        QuerySpec::Graph(g) => g.min_quality,
        QuerySpec::Flows(f) => f.min_quality,
        QuerySpec::WhatIf(w) => w.min_quality,
        QuerySpec::Reachable(_) => None,
    }
}

fn strip_floor(mut spec: QuerySpec) -> QuerySpec {
    match &mut spec {
        QuerySpec::Graph(g) => g.min_quality = None,
        QuerySpec::Flows(f) => f.min_quality = None,
        QuerySpec::WhatIf(w) => w.min_quality = None,
        QuerySpec::Reachable(_) => {}
    }
    spec
}

fn worst_of(r: &QueryResult) -> DataQuality {
    match r {
        QueryResult::Graph(g) => g.worst_quality(),
        QueryResult::Flows(f) => f.worst_quality(),
        QueryResult::Fcts(r) => r
            .provenance
            .as_ref()
            .map(|p| p.worst_quality)
            .unwrap_or(DataQuality::Fresh),
        QueryResult::Peers(_) => DataQuality::Fresh,
    }
}

/// Measurement cost of a request in poll-gap units: how many polls the
/// facade will take to answer it. This is what the queue's cost bound
/// and the overload `retry_after` hints are denominated in.
fn cost_of(spec: &QuerySpec, poll_gap: SimDuration) -> u64 {
    let tf = match spec {
        QuerySpec::Graph(g) => g.timeframe,
        QuerySpec::Flows(f) => f.timeframe,
        QuerySpec::WhatIf(w) => w.timeframe,
        QuerySpec::Reachable(_) => return 1,
    };
    tf.min_samples(poll_gap).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerCollector, BreakerConfig, BreakerState, CircuitBreaker};
    use remos_core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
    use remos_core::collector::SimClock;
    use remos_core::{Query, RemosConfig, Timeframe};
    use remos_net::{mbps, Simulator, TopologyBuilder};
    use remos_snmp::fault::FaultPlan;
    use remos_snmp::sim::{register_all_agents_with_faults, share, SharedSim};
    use remos_snmp::{FaultDirector, SimTransport};
    use std::sync::Arc;

    /// m-1, m-2 — aspen === timberline — m-3, m-4, with SNMP agents on
    /// every node and a transport we can kill for fault injection.
    fn stack() -> (Server, SharedSim, Arc<FaultDirector>, Arc<CircuitBreaker>) {
        stack_with(ServerConfig::default())
    }

    fn stack_with(
        cfg: ServerConfig,
    ) -> (Server, SharedSim, Arc<FaultDirector>, Arc<CircuitBreaker>) {
        let mut b = TopologyBuilder::new();
        let m1 = b.compute("m-1");
        let m2 = b.compute("m-2");
        let m3 = b.compute("m-3");
        let m4 = b.compute("m-4");
        let aspen = b.network("aspen");
        let timberline = b.network("timberline");
        let lat = SimDuration::from_micros(100);
        b.link(m1, aspen, mbps(100.0), lat).unwrap();
        b.link(m2, aspen, mbps(100.0), lat).unwrap();
        b.link(aspen, timberline, mbps(100.0), lat).unwrap();
        b.link(timberline, m3, mbps(100.0), lat).unwrap();
        b.link(timberline, m4, mbps(100.0), lat).unwrap();
        let sim = share(Simulator::new(b.build().unwrap()).unwrap());
        let transport = Arc::new(SimTransport::new());
        let director = FaultDirector::new();
        let agents = register_all_agents_with_faults(&transport, &sim, "public", &director);
        let mut collector =
            SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
        // Full breaker wiring: per-request health from the manager retry
        // loop, call-level health from the decorator.
        let breaker = CircuitBreaker::new(BreakerConfig::default());
        collector.set_retry_observer(Arc::clone(&breaker) as _);
        let collector = BreakerCollector::wrap(collector, Arc::clone(&breaker));
        let remos = Remos::new(
            Box::new(collector),
            Box::new(SimClock(Arc::clone(&sim))),
            RemosConfig::default(),
        );
        let server = Server::new(remos, cfg);
        (server, sim, director, breaker)
    }

    /// Crash every agent forever, starting now: all polls time out.
    fn kill_all_agents(server: &Server, director: &FaultDirector) {
        let now = server.remos.collector().now().unwrap_or(SimTime::ZERO);
        for node in ["m-1", "m-2", "m-3", "m-4", "aspen", "timberline"] {
            director.set_plan(
                node,
                FaultPlan::new().crash(now, SimDuration::from_secs(1_000_000)),
                7,
            );
        }
    }

    fn graph_req(tenant: &str) -> ServeRequest {
        ServeRequest::new(tenant, Query::graph(["m-1", "m-3"]))
    }

    #[test]
    fn submit_serve_answers_fully() {
        let (mut server, _sim, _d, _b) = stack();
        let id = server.submit(graph_req("a")).unwrap();
        let out = server.serve_next().unwrap();
        assert_eq!(out.id, id);
        assert_eq!(out.rung, Rung::Full);
        let g = out.result.unwrap().into_graph().unwrap();
        let p = g.provenance.unwrap();
        assert!(!p.degraded);
        assert!(p.source.unwrap().starts_with("snmp("));
        assert!(server.serve_next().is_none());
    }

    #[test]
    fn quota_sheds_with_retry_hint() {
        let (mut server, _sim, _d, _b) = stack();
        // Default quota: burst of 8 at t=0.
        let mut shed = 0;
        for _ in 0..12 {
            match server.submit(graph_req("greedy")) {
                Ok(_) => {}
                Err(RemosError::Overloaded { retry_after }) => {
                    assert!(retry_after > SimDuration::ZERO);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(shed, 4);
        // A different tenant is unaffected.
        assert!(server.submit(graph_req("patient")).is_ok());
    }

    #[test]
    fn queue_bounds_shed_past_burst() {
        let mut cfg = ServerConfig { max_queue_depth: 3, ..ServerConfig::default() };
        cfg.quota.rate_milli_per_sec = 0; // isolate the queue bound
        let (mut server, _sim, _d, _b) = stack_with(cfg);
        for i in 0..3 {
            assert!(server.submit(graph_req(&format!("t{i}"))).is_ok());
        }
        match server.submit(graph_req("t9")) {
            Err(RemosError::Overloaded { retry_after }) => {
                assert!(retry_after > SimDuration::ZERO)
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(server.queue_depth(), 3);
    }

    #[test]
    fn expired_deadline_sheds_without_measuring() {
        let (mut server, _sim, _d, _b) = stack();
        // Zero allowance: the deadline passes the moment it is admitted.
        server
            .submit(graph_req("a").with_allowance(SimDuration::ZERO))
            .unwrap();
        // Prime the clock past t=0 so the ZERO-allowance deadline (t=0,
        // admission time before any measurement) is behind "now".
        server.remos().run(Query::graph(["m-1", "m-2"])).unwrap();
        server
            .submit(graph_req("b").with_allowance(SimDuration::ZERO))
            .unwrap();
        let outs = server.drain();
        let b_out = outs.iter().find(|o| o.tenant == "b").unwrap();
        assert_eq!(b_out.rung, Rung::Rejected);
        assert!(matches!(
            b_out.result,
            Err(RemosError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn dead_substrate_trips_breaker_and_degrades_to_stale() {
        let (mut server, _sim, director, breaker) = stack();
        // Prime: one full answer builds topology + history.
        server.submit(graph_req("a")).unwrap();
        assert_eq!(server.drain().pop().unwrap().rung, Rung::Full);
        assert_eq!(breaker.state(), BreakerState::Closed);
        // Kill every agent. Dead agents answer nothing: polls "succeed"
        // with all-Missing samples, each of which the breaker counts as
        // a failure — along with the per-request timeouts the retry
        // observer reports — until it trips open. Once open, serving
        // fast-fails into the stale-snapshot rung.
        kill_all_agents(&server, &director);
        let mut stale = None;
        for i in 0..8 {
            server.submit(graph_req(&format!("t{i}"))).unwrap();
            let out = server.drain().pop().unwrap();
            if out.rung == Rung::StaleSnapshot {
                stale = Some(out);
                break;
            }
            assert_eq!(out.rung, Rung::Full);
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(breaker.times_opened() >= 1);
        let out = stale.expect("breaker never tripped into the stale rung");
        let g = out.result.unwrap().into_graph().unwrap();
        let p = g.provenance.unwrap();
        assert!(p.degraded);
        assert!(p.source.unwrap().contains("[breaker open]"));
        // A Fresh floor refuses the stale rung, and Missing does not meet
        // Fresh either, so topology-only is refused too: typed rejection.
        let strict = ServeRequest::new(
            "fresh-demander",
            Query::graph(["m-1", "m-3"]).min_quality(DataQuality::Fresh),
        );
        server.submit(strict).unwrap();
        let out = server.drain().pop().unwrap();
        assert_eq!(out.rung, Rung::Rejected);
        assert!(out.result.is_err());
    }

    #[test]
    fn floorless_queries_survive_empty_history_via_topology_rung() {
        let (mut server, _sim, _director, breaker) = stack();
        // Discover the topology but take no measurements: history is
        // empty, so the stale-snapshot rung has nothing to serve from.
        server.remos().refresh_topology().unwrap();
        // Force the breaker open so polls fast-fail.
        let now = server.remos.collector().now().unwrap_or(SimTime::ZERO);
        for _ in 0..3 {
            breaker.record_failure(now);
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        // The floorless graph query still gets the static topology with
        // Missing dynamics — the last rung before rejection.
        server.submit(graph_req("b")).unwrap();
        let out = server.drain().pop().unwrap();
        assert_eq!(out.rung, Rung::TopologyOnly);
        let g = out.result.unwrap().into_graph().unwrap();
        let p = g.provenance.unwrap();
        assert!(p.degraded);
        assert_eq!(p.solver, "topology-only");
    }

    #[test]
    fn decision_digest_is_reproducible() {
        let run = || {
            let (mut server, _sim, director, _breaker) = stack();
            for i in 0..20 {
                let tenant = ["a", "b", "c"][i % 3];
                let _ = server.submit(graph_req(tenant));
                if i == 9 {
                    kill_all_agents(&server, &director);
                }
                if i % 4 == 3 {
                    let _ = server.serve_next();
                }
            }
            let _ = server.drain();
            server.decision_digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn window_queries_cost_more_than_current() {
        let gap = SimDuration::from_millis(250);
        let current: QuerySpec = Query::graph(["m-1"]).into();
        let window: QuerySpec = Query::graph(["m-1"])
            .timeframe(Timeframe::Window(SimDuration::from_secs(5)))
            .into();
        assert_eq!(cost_of(&current, gap), 1);
        assert_eq!(cost_of(&window, gap), 20);
    }
}
