//! `remos-sim serve` and `remos-sim loadgen` — the overload-safe serving
//! front end (`remos-serve`) from the command line.
//!
//! Both commands build the full protected stack over the chosen
//! scenario: SNMP collector behind a circuit breaker (with the manager's
//! retry loop feeding it), admission queue with per-tenant token-bucket
//! quotas, deadline budgets, and the degradation ladder. `serve` replays
//! a request file; `loadgen` synthesizes a seeded workload and reports
//! shed rates, rung counts, latency quantiles, and the decision digest.
//!
//! With `--shards N` the agents are split over N collectors, each behind
//! its own circuit breaker and federated through a `MultiCollector`, so
//! one faulty region trips one breaker instead of the whole stack.

use crate::args::Parsed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remos_core::collector::multi::MultiCollector;
use remos_core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
use remos_core::collector::{Collector, SimClock};
use remos_core::{Query, Remos, RemosConfig, RemosError};
use remos_net::{SimDuration, SimTime, Simulator};
use remos_serve::quota::MILLI;
use remos_serve::{
    BreakerCollector, BreakerConfig, CircuitBreaker, Rung, ServeOutcome, ServeRequest, Server,
    ServerConfig,
};
use remos_snmp::fault::FaultPlan;
use remos_snmp::sim::{register_all_agents_with_faults, share, SharedSim};
use remos_snmp::{FaultDirector, SimTransport};
use std::io::Write;
use std::sync::Arc;

type CmdResult = Result<(), String>;

/// Per-shard circuit breakers, labelled for the summary printout. One
/// entry (labelled `all`) when the stack is monolithic.
type ShardBreakers = Vec<(String, Arc<CircuitBreaker>)>;

fn io_err(e: std::io::Error) -> String {
    format!("output error: {e}")
}

/// Build the protected serving stack for the scenario: simulator,
/// fault-aware agents, breaker-wrapped collector(s), `Server` on top.
///
/// `--shards N` splits the agents into N contiguous chunks, each polled
/// by its own SNMP collector behind its *own* circuit breaker, federated
/// through a [`MultiCollector`]. A misbehaving shard then trips only its
/// breaker — its region of the merged view degrades to stale/missing
/// while the other shards keep answering Fresh.
fn serve_stack(p: &Parsed) -> Result<(Server, SharedSim, ShardBreakers), String> {
    let sc = crate::commands::load_scenario(p)?;
    let topo = sc.build_topology().map_err(|e| e.to_string())?;
    let sim = share(Simulator::new(topo).map_err(|e| e.to_string())?);
    sc.install_traffic(&sim).map_err(|e| e.to_string())?;
    let warmup = p.get_f64("--warmup", 1.0)?;
    if warmup > 0.0 {
        sim.lock()
            .run_for(SimDuration::from_secs_f64(warmup))
            .map_err(|e| e.to_string())?;
    }

    let transport = Arc::new(SimTransport::new());
    let director = FaultDirector::new();
    let agents = register_all_agents_with_faults(&transport, &sim, "public", &director);
    // `--kill node:T` crashes that node's agent at T seconds, for good.
    for spec in p.get_all("--kill") {
        let (node, at) = spec
            .rsplit_once(':')
            .ok_or_else(|| format!("--kill: expected node:seconds, got {spec:?}"))?;
        let at: f64 = at.parse().map_err(|_| format!("--kill: bad time in {spec:?}"))?;
        director.set_plan(
            node,
            FaultPlan::new()
                .crash(SimTime::from_secs_f64(at), SimDuration::from_secs(1_000_000)),
            7,
        );
    }

    let shards: usize = match p.get("--shards") {
        None => 1,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => return Err("--shards: expected an integer >= 1".into()),
        },
    };
    let shards = shards.min(agents.len().max(1));
    let mut breakers = Vec::with_capacity(shards);
    let collector: Box<dyn Collector> = if shards <= 1 {
        let mut collector =
            SnmpCollector::new(Arc::clone(&transport), agents, SnmpCollectorConfig::default());
        let breaker = CircuitBreaker::new(BreakerConfig::default());
        collector.set_retry_observer(Arc::clone(&breaker) as _);
        breakers.push(("all".to_string(), Arc::clone(&breaker)));
        Box::new(BreakerCollector::wrap(collector, breaker))
    } else {
        let chunk = agents.len().div_ceil(shards);
        let mut children: Vec<Box<dyn Collector>> = Vec::with_capacity(shards);
        for (i, group) in agents.chunks(chunk).enumerate() {
            let mut collector = SnmpCollector::new(
                Arc::clone(&transport),
                group.to_vec(),
                SnmpCollectorConfig::default(),
            );
            let breaker = CircuitBreaker::new(BreakerConfig::default());
            collector.set_retry_observer(Arc::clone(&breaker) as _);
            children.push(Box::new(BreakerCollector::wrap(collector, Arc::clone(&breaker))));
            breakers.push((format!("shard{i}"), breaker));
        }
        Box::new(MultiCollector::new(children))
    };
    let remos =
        Remos::new(collector, Box::new(SimClock(Arc::clone(&sim))), RemosConfig::default());

    let mut cfg = ServerConfig::default();
    if let Some(d) = p.get("--queue-depth") {
        cfg.max_queue_depth =
            d.parse().map_err(|_| "--queue-depth: not an integer".to_string())?;
    }
    let rate = p.get_f64("--rate", cfg.quota.rate_milli_per_sec as f64 / MILLI as f64)?;
    cfg.quota.rate_milli_per_sec = (rate * MILLI as f64) as u64;
    let burst = p.get_f64("--burst", cfg.quota.burst_milli as f64 / MILLI as f64)?;
    cfg.quota.burst_milli = (burst * MILLI as f64) as u64;
    let deadline = p.get_f64("--deadline", 5.0)?;
    cfg.default_allowance = if deadline > 0.0 {
        Some(SimDuration::from_secs_f64(deadline))
    } else {
        None
    };
    if let Some(seed) = p.get("--seed") {
        cfg.fair_seed = seed.parse().map_err(|_| "--seed: not an integer".to_string())?;
    }
    Ok((Server::new(remos, cfg), sim, breakers))
}

/// Summary line(s) for the stack's breaker(s): the legacy single
/// `breaker:` line when the stack is monolithic, one labelled line per
/// shard when `--shards` split it.
fn write_breakers(
    breakers: &[(String, Arc<CircuitBreaker>)],
    out: &mut dyn Write,
) -> CmdResult {
    if let [(_, b)] = breakers {
        return writeln!(out, "breaker: {:?}, opened {} time(s)", b.state(), b.times_opened())
            .map_err(io_err);
    }
    for (label, b) in breakers {
        writeln!(out, "breaker[{label}]: {:?}, opened {} time(s)", b.state(), b.times_opened())
            .map_err(io_err)?;
    }
    Ok(())
}

/// How a submission was refused, for summary accounting.
fn shed_kind(e: &RemosError) -> &'static str {
    match e {
        RemosError::Overloaded { .. } => "overloaded",
        RemosError::DeadlineExceeded { .. } => "deadline",
        _ => "error",
    }
}

fn rung_name(r: Rung) -> &'static str {
    match r {
        Rung::Full => "full",
        Rung::StaleSnapshot => "stale",
        Rung::TopologyOnly => "topology",
        Rung::Rejected => "rejected",
    }
}

/// Counts and latency quantiles over a batch of outcomes.
struct Tally {
    by_rung: [usize; 4],
    deadline_shed: usize,
    latencies: Vec<u64>,
}

impl Tally {
    fn new() -> Tally {
        Tally { by_rung: [0; 4], deadline_shed: 0, latencies: Vec::new() }
    }

    fn note(&mut self, o: &ServeOutcome) {
        let idx = match o.rung {
            Rung::Full => 0,
            Rung::StaleSnapshot => 1,
            Rung::TopologyOnly => 2,
            Rung::Rejected => 3,
        };
        self.by_rung[idx] += 1;
        if matches!(o.result, Err(RemosError::DeadlineExceeded { .. })) {
            self.deadline_shed += 1;
        }
        if o.result.is_ok() {
            self.latencies.push(o.latency().as_nanos());
        }
    }

    fn answered(&self) -> usize {
        self.by_rung[0] + self.by_rung[1] + self.by_rung[2]
    }

    fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        self.latencies.sort_unstable();
        let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        Some(self.latencies[idx] as f64 / 1e3)
    }

    fn write_summary(&mut self, server: &Server, out: &mut dyn Write) -> CmdResult {
        writeln!(
            out,
            "rungs: {} full, {} stale, {} topology-only, {} rejected ({} deadline-shed)",
            self.by_rung[0], self.by_rung[1], self.by_rung[2], self.by_rung[3],
            self.deadline_shed
        )
        .map_err(io_err)?;
        if let (Some(p50), Some(p99)) = (self.quantile(0.5), self.quantile(0.99)) {
            writeln!(out, "admitted latency: p50 {p50:.1} us, p99 {p99:.1} us")
                .map_err(io_err)?;
        }
        writeln!(out, "decision digest: {:016x}", server.decision_digest()).map_err(io_err)
    }
}

/// `remos-sim serve --requests FILE`
///
/// Request file: one request per line — `tenant node,node[,...] [deadline_s]`
/// — with `#` comments. Requests are admitted in file order and served
/// with the weighted-fair dequeue; every outcome is printed.
pub fn serve(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let path = p.require("--requests")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read requests {path:?}: {e}"))?;
    let (mut server, _sim, breakers) = serve_stack(p)?;

    let mut submitted = 0usize;
    let mut shed = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(tenant), Some(nodes)) = (parts.next(), parts.next()) else {
            return Err(format!("{path}:{}: expected `tenant node,node [deadline_s]`", lineno + 1));
        };
        let nodes: Vec<String> =
            nodes.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
        if nodes.is_empty() {
            return Err(format!("{path}:{}: empty node list", lineno + 1));
        }
        let mut req = ServeRequest::new(tenant, Query::graph(nodes));
        if let Some(d) = parts.next() {
            let d: f64 =
                d.parse().map_err(|_| format!("{path}:{}: bad deadline", lineno + 1))?;
            req = req.with_allowance(SimDuration::from_secs_f64(d));
        }
        submitted += 1;
        match server.submit(req) {
            Ok(id) => writeln!(out, "[{id}] {tenant}: admitted").map_err(io_err)?,
            Err(e) => {
                shed += 1;
                writeln!(out, "[-] {tenant}: shed ({}): {e}", shed_kind(&e)).map_err(io_err)?;
            }
        }
    }

    let mut tally = Tally::new();
    for o in server.drain() {
        tally.note(&o);
        match &o.result {
            Ok(_) => writeln!(
                out,
                "[{}] {}: answered ({}) in {}",
                o.id,
                o.tenant,
                rung_name(o.rung),
                o.latency()
            )
            .map_err(io_err)?,
            Err(e) => {
                writeln!(out, "[{}] {}: {} ({})", o.id, o.tenant, e, rung_name(o.rung))
                    .map_err(io_err)?
            }
        }
    }
    writeln!(out, "\n{} submitted, {} shed at admission", submitted, shed).map_err(io_err)?;
    tally.write_summary(&server, out)?;
    write_breakers(&breakers, out)
}

/// `remos-sim loadgen`
///
/// Seeded synthetic workload: `--count` graph requests spread over
/// `--tenants` tenants, node pairs drawn from the scenario's hosts,
/// submitted in per-tenant rounds with `--gap` seconds of simulated time
/// between them. Prints the admission/shed/rung summary and the decision
/// digest — same seed, same scenario, same digest.
pub fn loadgen(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let tenants: usize = match p.get("--tenants") {
        None => 4,
        Some(v) => v.parse().map_err(|_| "--tenants: not an integer".to_string())?,
    };
    let count: usize = match p.get("--count") {
        None => 32,
        Some(v) => v.parse().map_err(|_| "--count: not an integer".to_string())?,
    };
    if tenants == 0 || count == 0 {
        return Err("--tenants and --count must be >= 1".into());
    }
    let seed: u64 = match p.get("--seed") {
        None => 7,
        Some(v) => v.parse().map_err(|_| "--seed: not an integer".to_string())?,
    };
    let gap = p.get_f64("--gap", 0.25)?;

    let (mut server, sim, breakers) = serve_stack(p)?;
    let hosts: Vec<String> = {
        let s = sim.lock();
        let t = s.topology_arc();
        t.compute_nodes().iter().map(|&n| t.node(n).name.clone()).collect()
    };
    if hosts.len() < 2 {
        return Err("scenario has fewer than two hosts".into());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut submitted = 0usize;
    let mut quota_shed = 0usize;
    let mut overload_shed = 0usize;
    let mut tally = Tally::new();
    for i in 0..count {
        let tenant = format!("t{}", i % tenants);
        let a = rng.gen_range(0..hosts.len());
        let b = (a + 1 + rng.gen_range(0..hosts.len() - 1)) % hosts.len();
        let req = ServeRequest::new(
            tenant.as_str(),
            Query::graph([hosts[a].as_str(), hosts[b].as_str()]),
        );
        submitted += 1;
        match server.submit(req) {
            Ok(_) => {}
            Err(RemosError::Overloaded { retry_after }) => {
                // Admission distinguishes quota (per-tenant) from queue
                // pressure only via the hint source; count both honestly.
                if server.queue_depth() == 0 {
                    quota_shed += 1;
                } else {
                    overload_shed += 1;
                }
                let _ = retry_after;
            }
            Err(e) => return Err(format!("submit failed: {e}")),
        }
        // Serve one request per round and let measured time advance so
        // quotas refill and the collector sees fresh samples.
        if let Some(o) = server.serve_next() {
            tally.note(&o);
        }
        if gap > 0.0 {
            sim.lock()
                .run_for(SimDuration::from_secs_f64(gap))
                .map_err(|e| e.to_string())?;
        }
    }
    for o in server.drain() {
        tally.note(&o);
    }

    writeln!(
        out,
        "{} requests over {} tenant(s), seed {}: {} answered, {} quota-shed, {} queue-shed",
        submitted,
        tenants,
        seed,
        tally.answered(),
        quota_shed,
        overload_shed
    )
    .map_err(io_err)?;
    tally.write_summary(&server, out)?;
    write_breakers(&breakers, out)
}
