//! # remos-cli — the `remos-sim` command
//!
//! A self-contained front end over the whole stack: load (or pick) a
//! scenario, then query it the way a network-aware application would.
//!
//! ```text
//! remos-sim topology --scenario cmu
//! remos-sim graph    --scenario cmu --nodes m-1,m-4,m-8 --warmup 2
//! remos-sim flows    --scenario cmu --fixed m-1:m-8:2 --independent m-2:m-7
//! remos-sim whatif   --scenario fig4 --synth 7,64,0.2 --window 1
//! remos-sim select   --scenario fig4 --pool m-1,...,m-8 --start m-4 -k 4
//! remos-sim run      --scenario cmu --app fft:512:4 --nodes m-4,m-5,m-6,m-7
//! remos-sim run      --scenario fig4 --app airshed:8:10 --nodes m-4,m-5,m-6,m-7,m-8 --adaptive
//! remos-sim watch    --scenario fig4 --pair m-4:m-8 --interval 1 --duration 10
//! remos-sim obs      --scenario cmu --nodes m-1,m-8 --format prometheus --trace
//! remos-sim example  > my-scenario.json   # then: --scenario my-scenario.json
//! ```
//!
//! Built-in scenarios: `cmu` (the idle Fig 3 testbed) and `fig4` (the
//! testbed with the synthetic m-6 → m-8 traffic).

mod args;
mod commands;
mod serve;

use std::io::Write;

pub use args::{parse_pair, parse_pair_value, Parsed};

/// Top-level dispatch. Writes human-readable output to `out`; errors are
/// returned as strings.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), String> {
    let parsed = args::Parsed::parse(argv)?;
    match parsed.command.as_str() {
        "topology" => commands::topology(&parsed, out),
        "graph" => commands::graph(&parsed, out),
        "query" => commands::query(&parsed, out),
        "flows" => commands::flows(&parsed, out),
        "whatif" => commands::whatif(&parsed, out),
        "select" => commands::select(&parsed, out),
        "run" => commands::run_app(&parsed, out),
        "watch" => commands::watch(&parsed, out),
        "obs" => commands::obs(&parsed, out),
        "serve" => serve::serve(&parsed, out),
        "loadgen" => serve::loadgen(&parsed, out),
        "example" => commands::example(out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", HELP).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown command {other:?} (try `remos-sim help`)")),
    }
}

/// Usage text.
pub const HELP: &str = "\
remos-sim — Remos (HPDC'98) reproduction CLI

USAGE: remos-sim <command> [options]

COMMANDS:
  topology  print the scenario's topology as the SNMP collector discovers it
  graph     remos_get_graph over a node set
  query     repeated / batched graph queries with plan-cache statistics
  flows     remos_flow_info (fixed/variable/independent flow classes)
  whatif    estimate flow completion times for a hypothetical workload
  select    Remos-driven node selection (greedy clustering, §7.2)
  run       execute an application model on chosen nodes
  watch     sample available bandwidth of a pair over time
  obs       dump observability state (metrics, optionally traces)
  serve     replay a request file through the overload-safe front end
  loadgen   seeded synthetic load against the front end; shed/rung summary
  example   print an example scenario JSON to stdout
  help      this text

COMMON OPTIONS:
  --scenario <cmu|fig4|file.json>   the network + traffic (default: cmu)
  --warmup <seconds>                let traffic run before measuring (default 1)
  --json                            machine-readable output where supported

COMMAND OPTIONS:
  graph:   --nodes a,b,c            [--window S | --future S] [--dot]
  query:   --nodes a,b,c [--repeat N] | --batch FILE [--repeat N]
           (batch file: one comma-separated node list per line, # comments;
            answered in a single run_batch call; prints plan-cache stats)
  flows:   --fixed src:dst:MBPS     (repeatable)
           --variable src:dst:WEIGHT (repeatable)
           --independent src:dst
  whatif:  --flows FILE.json | --synth SEED,N,LOAD
           [--window S | --future S] [--horizon S] [--json]
           (flow file: JSON array of {src, dst, size_bytes[, arrival]};
            --synth draws N flows at fractional load LOAD, seeded)
  select:  --pool a,b,c --start a -k N
  run:     --app fft:N:P | airshed:P[:ITERS]
           --nodes a,b,...          [--adaptive [--pool a,b,...]]
  watch:   --pair src:dst --interval S --duration S [--window S]
  obs:     [--nodes a,b,...] [--format json|prometheus] [--trace]
  serve:   --requests FILE           (lines: tenant node,node [deadline_s])
  loadgen: [--tenants N] [--count N] [--seed S] [--gap S]
  serve/loadgen also take: --deadline S (0 = none), --rate TOKENS_PER_S,
           --burst TOKENS, --queue-depth N, --kill node:T (repeatable),
           --shards N (split agents over N collectors, one breaker each)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&argv, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints() {
        let out = call(&["help"]).unwrap();
        assert!(out.contains("remos-sim"));
        assert!(out.contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(call(&["frobnicate"]).is_err());
        assert!(call(&[]).is_err());
    }

    #[test]
    fn topology_cmu() {
        let out = call(&["topology", "--scenario", "cmu"]).unwrap();
        assert!(out.contains("timberline"));
        assert!(out.contains("m-8"));
        assert!(out.contains("100 Mbps"));
    }

    #[test]
    fn graph_query() {
        let out =
            call(&["graph", "--scenario", "fig4", "--nodes", "m-1,m-4,m-8"]).unwrap();
        // The m-6->m-8 traffic loads the path toward m-8.
        assert!(out.contains("m-1"), "{out}");
        assert!(out.contains("avail"), "{out}");
    }

    #[test]
    fn graph_dot_mode() {
        let out = call(&[
            "graph", "--scenario", "cmu", "--nodes", "m-1,m-8", "--dot",
        ])
        .unwrap();
        assert!(out.starts_with("graph remos {"), "{out}");
        assert!(out.contains("\"m-1\" -- \"m-8\"") || out.contains("\"m-8\" -- \"m-1\""));
    }

    #[test]
    fn graph_json_mode() {
        let out = call(&[
            "graph", "--scenario", "cmu", "--nodes", "m-1,m-2", "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert!(v.get("nodes").is_some());
        assert!(v.get("links").is_some());
    }

    #[test]
    fn query_repeat_reports_cache_hits() {
        let out = call(&[
            "query", "--scenario", "cmu", "--nodes", "m-1,m-8", "--repeat", "3",
            "--window", "1",
        ])
        .unwrap();
        assert!(out.contains("digest"), "{out}");
        assert!(out.contains("later median"), "{out}");
        // One cold plan build, then cache hits on the repeats.
        assert!(out.contains("2 hit(s), 1 miss(es), 0 eviction(s)"), "{out}");
    }

    #[test]
    fn query_batch_file() {
        let path = std::env::temp_dir().join("remos_cli_test_batch.txt");
        std::fs::write(&path, "# two graph queries\nm-1,m-8\nm-2, m-3\n").unwrap();
        let out = call(&[
            "query", "--scenario", "cmu", "--batch", path.to_str().unwrap(),
        ])
        .unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(out.contains("batch round 1: 2 queries"), "{out}");
        assert!(out.contains("[0]"), "{out}");
        assert!(out.contains("[1]"), "{out}");
        assert!(out.contains("plan cache:"), "{out}");
    }

    #[test]
    fn query_bad_options() {
        assert!(call(&["query", "--scenario", "cmu"]).is_err());
        assert!(call(&[
            "query", "--scenario", "cmu", "--nodes", "m-1,m-8", "--batch", "x",
        ])
        .is_err());
        assert!(call(&[
            "query", "--scenario", "cmu", "--nodes", "m-1,m-8", "--repeat", "0",
        ])
        .is_err());
        assert!(call(&["query", "--scenario", "cmu", "--batch", "/nonexistent.txt"]).is_err());
    }

    #[test]
    fn flows_query() {
        let out = call(&[
            "flows",
            "--scenario",
            "cmu",
            "--fixed",
            "m-1:m-8:2",
            "--variable",
            "m-2:m-8:1",
            "--independent",
            "m-3:m-8",
        ])
        .unwrap();
        assert!(out.contains("fixed"), "{out}");
        assert!(out.contains("satisfied"), "{out}");
        assert!(out.contains("independent"), "{out}");
    }

    #[test]
    fn whatif_synth_is_seed_deterministic() {
        let args = ["whatif", "--scenario", "cmu", "--synth", "7,16,0.2"];
        let a = call(&args).unwrap();
        let b = call(&args).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("what-if: 16 flow(s), 16 completed"), "{a}");
        assert!(a.contains("fct ms: p50"), "{a}");
        assert!(a.contains("fct digest:"), "{a}");
        assert!(a.contains("solver whatif-replay/epoch"), "{a}");
    }

    #[test]
    fn whatif_background_traffic_slows_flows() {
        // fig4's greedy m-6 -> m-8 traffic saturates the backbone, so
        // the same seeded workload must lose flows to the horizon that
        // complete easily on the idle testbed.
        let idle = call(&[
            "whatif", "--scenario", "cmu", "--synth", "3,8,0.1", "--horizon", "100",
        ])
        .unwrap();
        let busy = call(&[
            "whatif", "--scenario", "fig4", "--synth", "3,8,0.1", "--horizon", "100",
        ])
        .unwrap();
        assert!(idle.contains("what-if: 8 flow(s), 8 completed"), "{idle}");
        assert!(busy.contains("what-if: 8 flow(s), 4 completed"), "{busy}");
        let digest = |s: &str| {
            s.lines()
                .find(|l| l.contains("fct digest:"))
                .map(str::to_string)
                .expect("digest line")
        };
        assert_ne!(digest(&idle), digest(&busy));
    }

    #[test]
    fn whatif_horizon_cuts_flows_off() {
        // A vanishingly small horizon leaves every flow incomplete.
        let out = call(&[
            "whatif", "--scenario", "cmu", "--synth", "7,16,0.2", "--horizon", "0.000001",
        ])
        .unwrap();
        assert!(out.contains("what-if: 16 flow(s), 0 completed"), "{out}");
    }

    #[test]
    fn whatif_bad_inputs_error() {
        // Needs exactly one of --flows / --synth.
        assert!(call(&["whatif", "--scenario", "cmu"]).is_err());
        assert!(call(&[
            "whatif", "--scenario", "cmu", "--flows", "x.json", "--synth", "1,2,0.5",
        ])
        .is_err());
        assert!(call(&["whatif", "--scenario", "cmu", "--flows", "/nonexistent.json"]).is_err());
        // Malformed --synth triples.
        assert!(call(&["whatif", "--scenario", "cmu", "--synth", "1,2"]).is_err());
        assert!(call(&["whatif", "--scenario", "cmu", "--synth", "1,0,0.5"]).is_err());
        assert!(call(&["whatif", "--scenario", "cmu", "--synth", "1,2,-1"]).is_err());
        assert!(call(&["whatif", "--scenario", "cmu", "--synth", "a,b,c"]).is_err());
    }

    #[test]
    fn select_reproduces_fig4() {
        let out = call(&[
            "select",
            "--scenario",
            "fig4",
            "--pool",
            "m-1,m-2,m-3,m-4,m-5,m-6,m-7,m-8",
            "--start",
            "m-4",
            "-k",
            "4",
        ])
        .unwrap();
        for n in ["m-1", "m-2", "m-4", "m-5"] {
            assert!(out.contains(n), "{out}");
        }
        assert!(!out.contains("m-6"), "{out}");
    }

    #[test]
    fn run_fft() {
        let out = call(&[
            "run", "--scenario", "cmu", "--app", "fft:512:2", "--nodes", "m-4,m-5",
        ])
        .unwrap();
        assert!(out.contains("elapsed"), "{out}");
        // Near the calibrated 0.467 s.
        assert!(out.contains("0.4"), "{out}");
    }

    #[test]
    fn run_adaptive_airshed() {
        let out = call(&[
            "run",
            "--scenario",
            "fig4",
            "--app",
            "airshed:5:4",
            "--nodes",
            "m-4,m-5,m-6,m-7,m-8",
            "--adaptive",
        ])
        .unwrap();
        assert!(out.contains("migrations"), "{out}");
    }

    #[test]
    fn watch_produces_series() {
        let out = call(&[
            "watch",
            "--scenario",
            "fig4",
            "--pair",
            "m-4:m-8",
            "--interval",
            "1",
            "--duration",
            "5",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().filter(|l| l.contains("Mbps")).collect();
        assert!(lines.len() >= 5, "{out}");
    }

    #[test]
    fn watch_with_window_shows_quartiles() {
        let out = call(&[
            "watch",
            "--scenario",
            "fig4",
            "--pair",
            "m-4:m-8",
            "--interval",
            "1",
            "--duration",
            "4",
            "--window",
            "3",
        ])
        .unwrap();
        assert!(out.contains("[min|q1|median|q3|max]"), "{out}");
        let quartile_lines = out.lines().filter(|l| l.contains("] n=")).count();
        assert!(quartile_lines >= 4, "{out}");
    }

    #[test]
    fn obs_metrics_json() {
        let out = call(&["obs", "--scenario", "cmu", "--nodes", "m-1,m-8"]).unwrap();
        // The graph query bumps the facade counter; collector polls ran.
        assert!(out.contains("\"remos_graph_queries_total\""), "{out}");
        assert!(out.contains("\"collector_polls_total\""), "{out}");
    }

    #[test]
    fn obs_metrics_prometheus_and_trace() {
        let out = call(&[
            "obs", "--scenario", "cmu", "--nodes", "m-1,m-8", "--format", "prometheus",
            "--trace",
        ])
        .unwrap();
        assert!(out.contains("# TYPE remos_graph_queries_total counter"), "{out}");
        assert!(out.contains("# trace digest="), "{out}");
        assert!(call(&["obs", "--scenario", "cmu", "--format", "xml"]).is_err());
    }

    #[test]
    fn serve_replays_request_file() {
        let path = std::env::temp_dir().join("remos_cli_test_requests.txt");
        std::fs::write(&path, "# two tenants\nalice m-1,m-8 5\nbob m-2,m-7\n").unwrap();
        let out = call(&["serve", "--scenario", "cmu", "--requests", path.to_str().unwrap()])
            .unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(out.contains("alice: admitted"), "{out}");
        assert!(out.contains("bob: admitted"), "{out}");
        assert!(out.contains("answered (full)"), "{out}");
        assert!(out.contains("2 submitted, 0 shed"), "{out}");
        assert!(out.contains("decision digest:"), "{out}");
        assert!(out.contains("breaker: Closed"), "{out}");
    }

    #[test]
    fn serve_bad_inputs_error() {
        assert!(call(&["serve", "--scenario", "cmu"]).is_err()); // missing --requests
        assert!(call(&["serve", "--scenario", "cmu", "--requests", "/nonexistent.txt"])
            .is_err());
        let path = std::env::temp_dir().join("remos_cli_test_requests_bad.txt");
        std::fs::write(&path, "only-a-tenant\n").unwrap();
        let res = call(&["serve", "--scenario", "cmu", "--requests", path.to_str().unwrap()]);
        let _ = std::fs::remove_file(&path);
        assert!(res.is_err());
    }

    #[test]
    fn loadgen_summary_is_seed_deterministic() {
        let args = ["loadgen", "--scenario", "cmu", "--count", "12", "--seed", "42"];
        let a = call(&args).unwrap();
        let b = call(&args).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("12 requests"), "{a}");
        assert!(a.contains("decision digest:"), "{a}");
        // Shed counters and the rung breakdown are always reported.
        assert!(a.contains("quota-shed"), "{a}");
        assert!(a.contains("rungs:"), "{a}");
    }

    #[test]
    fn loadgen_overload_sheds_with_typed_outcomes() {
        // A tiny queue and no quota refill force admission shedding.
        let out = call(&[
            "loadgen", "--scenario", "cmu", "--count", "24", "--tenants", "1",
            "--queue-depth", "2", "--rate", "0.5", "--burst", "2", "--gap", "0",
        ])
        .unwrap();
        assert!(out.contains("quota-shed") || out.contains("queue-shed"), "{out}");
        // Some requests must have been refused, and none lost.
        assert!(!out.contains("0 quota-shed, 0 queue-shed"), "{out}");
    }

    #[test]
    fn loadgen_kill_degrades_but_keeps_answering() {
        let out = call(&[
            "loadgen", "--scenario", "cmu", "--count", "16", "--kill", "aspen:2",
            "--kill", "timberline:2", "--kill", "whiteface:2", "--kill", "m-1:2",
            "--kill", "m-2:2", "--kill", "m-3:2", "--kill", "m-4:2", "--kill", "m-5:2",
            "--kill", "m-6:2", "--kill", "m-7:2", "--kill", "m-8:2",
        ])
        .unwrap();
        // The breaker must have tripped and requests degraded past Full.
        assert!(out.contains("opened"), "{out}");
        assert!(!out.contains("opened 0 time(s)"), "{out}");
    }

    #[test]
    fn loadgen_sharded_prints_per_shard_breakers() {
        let args = [
            "loadgen", "--scenario", "cmu", "--count", "12", "--seed", "42", "--shards", "3",
        ];
        let a = call(&args).unwrap();
        let b = call(&args).unwrap();
        assert_eq!(a, b, "sharded loadgen must stay seed-deterministic");
        for shard in ["shard0", "shard1", "shard2"] {
            assert!(a.contains(&format!("breaker[{shard}]:")), "{a}");
        }
        // The legacy single-breaker line is replaced, not duplicated.
        assert!(!a.contains("\nbreaker: "), "{a}");
        assert!(a.contains("decision digest:"), "{a}");
        assert!(call(&["loadgen", "--scenario", "cmu", "--shards", "0"]).is_err());
    }

    #[test]
    fn loadgen_sharded_kill_trips_only_that_shard() {
        // Agents chunk in node order (m-1..m-8, then the routers): with
        // two shards, m-1..m-6 form shard0. Killing exactly those agents
        // must open shard0's breaker while shard1 — which still has its
        // routers and hosts — keeps serving with a Closed breaker.
        let out = call(&[
            "loadgen", "--scenario", "cmu", "--count", "16", "--shards", "2",
            "--kill", "m-1:2", "--kill", "m-2:2", "--kill", "m-3:2",
            "--kill", "m-4:2", "--kill", "m-5:2", "--kill", "m-6:2",
        ])
        .unwrap();
        let s0 = out.lines().find(|l| l.starts_with("breaker[shard0]")).expect("shard0 line");
        let s1 = out.lines().find(|l| l.starts_with("breaker[shard1]")).expect("shard1 line");
        assert!(!s0.contains("opened 0 time(s)"), "shard0 breaker never tripped: {out}");
        assert!(s1.contains("Closed, opened 0 time(s)"), "shard1 breaker disturbed: {out}");
        // The healthy shard kept the stack answering.
        assert!(out.contains("answered"), "{out}");
    }

    #[test]
    fn example_roundtrips_as_scenario() {
        let out = call(&["example"]).unwrap();
        let sc: remos_apps::scenario::Scenario =
            serde_json::from_str(&out).expect("example is a valid scenario");
        sc.build_topology().expect("example topology builds");
    }

    #[test]
    fn scenario_file_loading() {
        let out = call(&["example"]).unwrap();
        let path = std::env::temp_dir().join("remos_cli_test_scenario.json");
        std::fs::write(&path, &out).unwrap();
        let got = call(&["topology", "--scenario", path.to_str().unwrap()]).unwrap();
        assert!(got.contains("Mbps"));
        let _ = std::fs::remove_file(&path);
        assert!(call(&["topology", "--scenario", "/nonexistent.json"]).is_err());
    }

    #[test]
    fn bad_options_error_cleanly() {
        assert!(call(&["graph", "--scenario", "cmu"]).is_err()); // missing --nodes
        assert!(call(&["flows", "--scenario", "cmu"]).is_err()); // no flows at all
        assert!(call(&["run", "--scenario", "cmu", "--app", "doom:3"]).is_err());
        assert!(call(&["select", "--scenario", "cmu", "--pool", "m-1", "--start", "m-9", "-k", "1"]).is_err());
        assert!(call(&["watch", "--scenario", "cmu", "--pair", "m-1m-2"]).is_err());
    }
}
