//! `remos-sim` — command-line front end.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match remos_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("remos-sim: {e}");
            ExitCode::FAILURE
        }
    }
}
