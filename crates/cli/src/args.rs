//! Minimal argument parsing (no external dependency): `--key value`
//! options, repeatable keys, and a leading subcommand.

use std::collections::HashMap;

/// Parsed command line.
#[derive(Debug, Default)]
pub struct Parsed {
    /// The subcommand.
    pub command: String,
    /// Option values, last occurrence wins except for repeatable keys.
    options: HashMap<String, Vec<String>>,
    /// Bare flags present (e.g. `--json`).
    flags: Vec<String>,
}

/// Option keys that take a value.
const VALUED: &[&str] = &[
    "--scenario", "--nodes", "--window", "--future", "--warmup", "--fixed", "--variable",
    "--independent", "--pool", "--start", "-k", "--app", "--pair", "--interval",
    "--duration", "--format", "--repeat", "--batch",
    "--requests", "--tenants", "--count", "--seed", "--deadline", "--kill", "--gap",
    "--rate", "--burst", "--queue-depth", "--shards",
    "--flows", "--synth", "--horizon",
];

/// Bare flags.
const FLAGS: &[&str] = &["--json", "--adaptive", "--dot", "--trace"];

impl Parsed {
    /// Parse `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut it = argv.iter();
        let command = it
            .next()
            .ok_or_else(|| "missing command (try `remos-sim help`)".to_string())?
            .clone();
        let mut parsed = Parsed { command, ..Parsed::default() };
        while let Some(arg) = it.next() {
            if FLAGS.contains(&arg.as_str()) {
                parsed.flags.push(arg.clone());
            } else if VALUED.contains(&arg.as_str()) {
                let v = it
                    .next()
                    .ok_or_else(|| format!("option {arg} expects a value"))?;
                parsed.options.entry(arg.clone()).or_default().push(v.clone());
            } else {
                return Err(format!("unknown option {arg:?}"));
            }
        }
        Ok(parsed)
    }

    /// Last value of a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).and_then(|v| v.last()).map(String::as_str)
    }

    /// All values of a repeatable key.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.options.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Required value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option {key}"))
    }

    /// Flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parse a float option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{key}: not a number: {v:?}")),
        }
    }

    /// Parse a usize option.
    pub fn require_usize(&self, key: &str) -> Result<usize, String> {
        self.require(key)?
            .parse()
            .map_err(|_| format!("{key}: not an integer"))
    }

    /// Comma-separated list option.
    pub fn get_list(&self, key: &str) -> Result<Vec<String>, String> {
        let v = self.require(key)?;
        let items: Vec<String> =
            v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
        if items.is_empty() {
            return Err(format!("{key}: empty list"));
        }
        Ok(items)
    }
}

/// Parse `src:dst` pairs.
pub fn parse_pair(s: &str) -> Result<(String, String), String> {
    let mut it = s.split(':');
    match (it.next(), it.next(), it.next()) {
        (Some(a), Some(b), None) if !a.is_empty() && !b.is_empty() => {
            Ok((a.to_string(), b.to_string()))
        }
        _ => Err(format!("expected src:dst, got {s:?}")),
    }
}

/// Parse `src:dst:value` triples.
pub fn parse_pair_value(s: &str) -> Result<(String, String, f64), String> {
    let mut it = s.split(':');
    match (it.next(), it.next(), it.next(), it.next()) {
        (Some(a), Some(b), Some(v), None) if !a.is_empty() && !b.is_empty() => {
            let val: f64 = v.parse().map_err(|_| format!("bad number in {s:?}"))?;
            Ok((a.to_string(), b.to_string(), val))
        }
        _ => Err(format!("expected src:dst:value, got {s:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Parsed, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&argv)
    }

    #[test]
    fn basic_parsing() {
        let p = parse(&["graph", "--scenario", "cmu", "--nodes", "a,b", "--json"]).unwrap();
        assert_eq!(p.command, "graph");
        assert_eq!(p.get("--scenario"), Some("cmu"));
        assert_eq!(p.get_list("--nodes").unwrap(), vec!["a", "b"]);
        assert!(p.flag("--json"));
        assert!(!p.flag("--adaptive"));
    }

    #[test]
    fn repeatable_options() {
        let p = parse(&["flows", "--fixed", "a:b:1", "--fixed", "c:d:2"]).unwrap();
        assert_eq!(p.get_all("--fixed").len(), 2);
        // get() returns the last.
        assert_eq!(p.get("--fixed"), Some("c:d:2"));
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["graph", "--bogus"]).is_err());
        assert!(parse(&["graph", "--nodes"]).is_err());
        let p = parse(&["graph"]).unwrap();
        assert!(p.require("--nodes").is_err());
        assert!(p.get_f64("--warmup", 1.0).unwrap() == 1.0);
    }

    #[test]
    fn pair_parsers() {
        assert_eq!(parse_pair("a:b").unwrap(), ("a".into(), "b".into()));
        assert!(parse_pair("a").is_err());
        assert!(parse_pair("a:b:c").is_err());
        assert!(parse_pair(":b").is_err());
        let (a, b, v) = parse_pair_value("x:y:2.5").unwrap();
        assert_eq!((a.as_str(), b.as_str(), v), ("x", "y", 2.5));
        assert!(parse_pair_value("x:y").is_err());
        assert!(parse_pair_value("x:y:z").is_err());
    }
}
