//! Command implementations.

use crate::args::{parse_pair, parse_pair_value, Parsed};
use remos_apps::scenario::{Scenario, TrafficSpec};
use remos_apps::TestbedHarness;
use remos_core::{FlowInfoRequest, HypotheticalFlow, Query, QueryResult, QuerySpec, Timeframe};
use remos_net::fabric::{synth_workload_over, FlowSizeEcdf, WorkloadSpec};
use remos_net::{mbps, SimDuration, SimTime};
use std::io::Write;
use std::time::Instant;

type CmdResult = Result<(), String>;

fn io_err(e: std::io::Error) -> String {
    format!("output error: {e}")
}

/// Resolve `--scenario`: a built-in name or a JSON file path.
pub(crate) fn load_scenario(p: &Parsed) -> Result<Scenario, String> {
    match p.get("--scenario").unwrap_or("cmu") {
        "cmu" => Ok(Scenario::cmu(vec![])),
        "fig4" => Ok(Scenario::cmu(vec![TrafficSpec::Greedy {
            src: "m-6".into(),
            dst: "m-8".into(),
            streams: remos_apps::synthetic::DEFAULT_TRAFFIC_STREAMS,
            start_s: 0.0,
            stop_s: None,
        }])),
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read scenario {path:?}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("bad scenario {path:?}: {e}"))
        }
    }
}

/// Build the harness and let the scenario's traffic warm up.
fn harness(p: &Parsed) -> Result<TestbedHarness, String> {
    let sc = load_scenario(p)?;
    let h = sc.build_harness().map_err(|e| e.to_string())?;
    let warmup = p.get_f64("--warmup", 1.0)?;
    if warmup > 0.0 {
        h.sim
            .lock()
            .run_for(SimDuration::from_secs_f64(warmup))
            .map_err(|e| e.to_string())?;
    }
    Ok(h)
}

fn timeframe(p: &Parsed) -> Result<Timeframe, String> {
    match (p.get("--window"), p.get("--future")) {
        (Some(_), Some(_)) => Err("--window and --future are mutually exclusive".into()),
        (Some(w), None) => {
            let s: f64 = w.parse().map_err(|_| "--window: not a number".to_string())?;
            Ok(Timeframe::Window(SimDuration::from_secs_f64(s)))
        }
        (None, Some(f)) => {
            let s: f64 = f.parse().map_err(|_| "--future: not a number".to_string())?;
            Ok(Timeframe::Future(SimDuration::from_secs_f64(s)))
        }
        (None, None) => Ok(Timeframe::Current),
    }
}

/// `remos-sim topology`
pub fn topology(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    h.adapter.remos_mut().refresh_topology().map_err(|e| e.to_string())?;
    let topo = h.adapter.remos_mut().collector().topology().map_err(|e| e.to_string())?;
    writeln!(
        out,
        "{} nodes ({} hosts, {} routers), {} links:",
        topo.node_count(),
        topo.compute_nodes().len(),
        topo.network_nodes().len(),
        topo.link_count()
    )
    .map_err(io_err)?;
    for l in topo.link_ids() {
        let link = topo.link(l);
        writeln!(
            out,
            "  {:<12} -- {:<12} {:>6.0} Mbps  {:>4.0} us",
            topo.node(link.a).name,
            topo.node(link.b).name,
            link.capacity / 1e6,
            link.latency.as_secs_f64() * 1e6
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// `remos-sim graph`
pub fn graph(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    let nodes = p.get_list("--nodes")?;
    let tf = timeframe(p)?;
    let g = h
        .adapter
        .remos_mut()
        .run(Query::graph(nodes.iter().cloned()).timeframe(tf))
        .and_then(QueryResult::into_graph)
        .map_err(|e| e.to_string())?;
    if p.flag("--dot") {
        write!(out, "{}", g.to_dot()).map_err(io_err)?;
        return Ok(());
    }
    if p.flag("--json") {
        let json = serde_json::to_string_pretty(&g).map_err(|e| e.to_string())?;
        writeln!(out, "{json}").map_err(io_err)?;
        return Ok(());
    }
    writeln!(out, "logical topology ({} nodes, {} links):", g.nodes.len(), g.links.len())
        .map_err(io_err)?;
    if let Some(prov) = &g.provenance {
        writeln!(
            out,
            "  provenance: {} snapshot(s), worst quality {:?}, solver {}",
            prov.snapshots, prov.worst_quality, prov.solver
        )
        .map_err(io_err)?;
    }
    for l in &g.links {
        writeln!(
            out,
            "  {:<12} -- {:<12} cap {:>6.1} Mbps   avail {:>6.1} / {:>6.1} Mbps (median, each direction)",
            g.nodes[l.a].name,
            g.nodes[l.b].name,
            l.capacity / 1e6,
            l.avail[0].median / 1e6,
            l.avail[1].median / 1e6,
        )
        .map_err(io_err)?;
    }
    writeln!(out, "pairwise available bandwidth (median, Mbps):").map_err(io_err)?;
    for a in &nodes {
        for b in &nodes {
            if a >= b {
                continue;
            }
            let ia = g.index_of(a).map_err(|e| e.to_string())?;
            let ib = g.index_of(b).map_err(|e| e.to_string())?;
            let fwd = g.path_avail_bw(ia, ib).map_err(|e| e.to_string())?;
            let rev = g.path_avail_bw(ib, ia).map_err(|e| e.to_string())?;
            writeln!(out, "  {a} <-> {b}: {:.1} / {:.1}", fwd / 1e6, rev / 1e6)
                .map_err(io_err)?;
        }
    }
    if let Some((a, b, bw)) = g.best_connected_pair() {
        writeln!(
            out,
            "best-connected pair: {} -> {} at {:.1} Mbps",
            g.nodes[a].name,
            g.nodes[b].name,
            bw / 1e6
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// `remos-sim flows`
pub fn flows(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    let mut req = FlowInfoRequest::new();
    for f in p.get_all("--fixed") {
        let (src, dst, rate) = parse_pair_value(f)?;
        req = req.fixed(&src, &dst, mbps(rate));
    }
    for v in p.get_all("--variable") {
        let (src, dst, w) = parse_pair_value(v)?;
        req = req.variable(&src, &dst, w);
    }
    if let Some(i) = p.get("--independent") {
        let (src, dst) = parse_pair(i)?;
        req = req.independent(&src, &dst);
    }
    if req.flow_count() == 0 {
        return Err("no flows given (use --fixed/--variable/--independent)".into());
    }
    let tf = timeframe(p)?;
    let resp = h
        .adapter
        .remos_mut()
        .run(Query::flows(req).timeframe(tf))
        .and_then(QueryResult::into_flows)
        .map_err(|e| e.to_string())?;
    for g in &resp.fixed {
        writeln!(
            out,
            "fixed       {} -> {}: {:.2} Mbps (satisfied: {})",
            g.endpoints.src,
            g.endpoints.dst,
            g.bandwidth.median / 1e6,
            g.fully_satisfied
        )
        .map_err(io_err)?;
    }
    for g in &resp.variable {
        writeln!(
            out,
            "variable    {} -> {}: {:.2} Mbps {}",
            g.endpoints.src,
            g.endpoints.dst,
            g.bandwidth.median / 1e6,
            g.bandwidth
        )
        .map_err(io_err)?;
    }
    if let Some(g) = &resp.independent {
        writeln!(
            out,
            "independent {} -> {}: {:.2} Mbps {}",
            g.endpoints.src,
            g.endpoints.dst,
            g.bandwidth.median / 1e6,
            g.bandwidth
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// Parse a `--batch` file: one graph query per non-empty line, each a
/// comma-separated node list; `#` starts a comment line.
fn load_batch(path: &str, tf: Timeframe) -> Result<Vec<QuerySpec>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read batch {path:?}: {e}"))?;
    let mut specs: Vec<QuerySpec> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let nodes: Vec<String> = line
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if nodes.is_empty() {
            return Err(format!("{path}:{}: empty node list", lineno + 1));
        }
        specs.push(Query::graph(nodes).timeframe(tf).into());
    }
    if specs.is_empty() {
        return Err(format!(
            "{path}: no queries (one comma-separated node list per line)"
        ));
    }
    Ok(specs)
}

/// `remos-sim query`
///
/// Plan-cache-aware query serving: repeat one graph query (`--nodes`
/// with `--repeat N`) or answer a whole file of queries in one
/// `run_batch` call (`--batch`), then report the modeler's plan-cache
/// counters from the observability registry.
pub fn query(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    let tf = timeframe(p)?;
    let repeat = match p.get("--repeat") {
        None => 1usize,
        Some(v) => v.parse().map_err(|_| "--repeat: not an integer".to_string())?,
    };
    if repeat == 0 {
        return Err("--repeat must be >= 1".into());
    }

    match (p.get("--batch"), p.get("--nodes")) {
        (Some(_), Some(_)) => {
            return Err("--batch and --nodes are mutually exclusive".into())
        }
        (None, None) => return Err("query needs --nodes or --batch".into()),
        (Some(path), None) => {
            let specs = load_batch(path, tf)?;
            let n = specs.len();
            for round in 0..repeat {
                let t0 = Instant::now();
                let results = h.adapter.remos_mut().run_batch(specs.clone());
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                writeln!(out, "batch round {}: {n} queries in {ms:.3} ms", round + 1)
                    .map_err(io_err)?;
                if round == 0 {
                    for (i, r) in results.iter().enumerate() {
                        match r {
                            Ok(QueryResult::Graph(g)) => writeln!(
                                out,
                                "  [{i}] {} nodes, {} links, digest {:016x}",
                                g.nodes.len(),
                                g.links.len(),
                                g.digest()
                            )
                            .map_err(io_err)?,
                            Ok(other) => {
                                writeln!(out, "  [{i}] {other:?}").map_err(io_err)?
                            }
                            Err(e) => writeln!(out, "  [{i}] error: {e}").map_err(io_err)?,
                        }
                    }
                }
            }
        }
        (None, Some(_)) => {
            let nodes = p.get_list("--nodes")?;
            let mut times_us: Vec<f64> = Vec::with_capacity(repeat);
            let mut last = None;
            for _ in 0..repeat {
                let t0 = Instant::now();
                let g = h
                    .adapter
                    .remos_mut()
                    .run(Query::graph(nodes.iter().cloned()).timeframe(tf))
                    .and_then(QueryResult::into_graph)
                    .map_err(|e| e.to_string())?;
                times_us.push(t0.elapsed().as_secs_f64() * 1e6);
                last = Some(g);
            }
            let g = last.ok_or_else(|| "no query ran".to_string())?;
            writeln!(
                out,
                "graph over {} node(s): {} nodes, {} links, digest {:016x}",
                nodes.len(),
                g.nodes.len(),
                g.links.len(),
                g.digest()
            )
            .map_err(io_err)?;
            let first = times_us[0];
            let mut rest: Vec<f64> = times_us[1..].to_vec();
            rest.sort_by(f64::total_cmp);
            match rest.get(rest.len() / 2) {
                Some(median) if repeat > 1 => writeln!(
                    out,
                    "{repeat} run(s): first {first:.1} us, later median {median:.1} us"
                )
                .map_err(io_err)?,
                _ => writeln!(out, "1 run: {first:.1} us").map_err(io_err)?,
            }
        }
    }

    let snap = h.obs.metrics_snapshot();
    let c = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    writeln!(
        out,
        "plan cache: {} hit(s), {} miss(es), {} eviction(s)",
        c("modeler_plan_cache_hits_total"),
        c("modeler_plan_cache_misses_total"),
        c("modeler_plan_cache_evictions_total")
    )
    .map_err(io_err)?;
    Ok(())
}

/// Parse `--synth seed,n,load`.
fn parse_synth(s: &str) -> Result<(u64, usize, f64), String> {
    let parts: Vec<&str> = s.split(',').map(str::trim).collect();
    match parts.as_slice() {
        [seed, n, load] => {
            let seed: u64 = seed.parse().map_err(|_| "--synth: bad seed".to_string())?;
            let n: usize = n.parse().map_err(|_| "--synth: bad flow count".to_string())?;
            let load: f64 = load.parse().map_err(|_| "--synth: bad load".to_string())?;
            if n == 0 {
                return Err("--synth: flow count must be >= 1".into());
            }
            if !(load > 0.0 && load.is_finite()) {
                return Err("--synth: load must be positive".into());
            }
            Ok((seed, n, load))
        }
        _ => Err(format!("--synth: expected seed,n,load, got {s:?}")),
    }
}

/// `remos-sim whatif`
///
/// Estimate flow completion times for a hypothetical workload against
/// the live snapshot: flows come from a JSON file (`--flows`, an array
/// of `{src, dst, size_bytes[, arrival]}`) or are synthesized
/// deterministically over the scenario's hosts (`--synth seed,n,load`).
pub fn whatif(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    let flows: Vec<HypotheticalFlow> = match (p.get("--flows"), p.get("--synth")) {
        (Some(_), Some(_)) => return Err("--flows and --synth are mutually exclusive".into()),
        (None, None) => {
            return Err("whatif needs --flows FILE.json or --synth seed,n,load".into())
        }
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read flows {path:?}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("bad flow file {path:?}: {e}"))?
        }
        (None, Some(spec)) => {
            let (seed, n, load) = parse_synth(spec)?;
            h.adapter.remos_mut().refresh_topology().map_err(|e| e.to_string())?;
            let topo =
                h.adapter.remos_mut().collector().topology().map_err(|e| e.to_string())?;
            let hosts = topo.compute_nodes();
            // Calibrate the offered load against the slowest access link
            // in the pool so `load` reads as a fraction of line rate.
            let access = hosts
                .iter()
                .flat_map(|&hid| {
                    topo.neighbors(hid).iter().map(|&(l, _)| topo.link(l).capacity)
                })
                .fold(f64::INFINITY, f64::min);
            let ecdf = FlowSizeEcdf::web_search();
            let spec = WorkloadSpec::new(seed, n, load);
            synth_workload_over(&hosts, 1, 1, access, &ecdf, &spec)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(|w| {
                    HypotheticalFlow::new(
                        topo.node(w.src).name.clone(),
                        topo.node(w.dst).name.clone(),
                        w.size_bytes,
                    )
                    .at(w.arrival)
                })
                .collect()
        }
    };

    let tf = timeframe(p)?;
    let mut q = Query::estimate_fcts(flows).timeframe(tf);
    if let Some(hz) = p.get("--horizon") {
        let s: f64 = hz.parse().map_err(|_| "--horizon: not a number".to_string())?;
        q = q.horizon(SimTime::from_secs_f64(s));
    }
    let report = h
        .adapter
        .remos_mut()
        .run(q)
        .and_then(QueryResult::into_fcts)
        .map_err(|e| e.to_string())?;

    if p.flag("--json") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        writeln!(out, "{json}").map_err(io_err)?;
        return Ok(());
    }
    writeln!(
        out,
        "what-if: {} flow(s), {} completed",
        report.flows.len(),
        report.completed_count()
    )
    .map_err(io_err)?;
    if let Some(prov) = &report.provenance {
        writeln!(
            out,
            "  provenance: {} snapshot(s), worst quality {:?}, solver {}",
            prov.snapshots, prov.worst_quality, prov.solver
        )
        .map_err(io_err)?;
    }
    let ms = |d: Option<SimDuration>| d.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
    writeln!(
        out,
        "  fct ms: p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}",
        ms(report.fct_quantile(0.5)),
        ms(report.fct_quantile(0.9)),
        ms(report.fct_quantile(0.99)),
        ms(report.fct_quantile(1.0)),
    )
    .map_err(io_err)?;
    if let Some(s) = report.mean_slowdown() {
        writeln!(out, "  mean slowdown: {s:.3}").map_err(io_err)?;
    }
    writeln!(out, "  replay: {} step(s), {} solve(s)", report.replay_steps, report.solves)
        .map_err(io_err)?;
    writeln!(out, "  fct digest: {:016x}", report.fct_digest).map_err(io_err)?;
    Ok(())
}

/// `remos-sim select`
pub fn select(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    let pool = p.get_list("--pool")?;
    let start = p.require("--start")?.to_string();
    let k = p.require_usize("-k")?;
    if k == 0 || k > pool.len() {
        return Err(format!("-k {k} out of range for a pool of {}", pool.len()));
    }
    let selected = h.adapter.select_nodes(&pool, &start, k).map_err(|e| e.to_string())?;
    writeln!(out, "selected nodes: {}", selected.join(", ")).map_err(io_err)?;
    Ok(())
}

/// Parse `--app fft:N:P` / `--app airshed:P[:ITERS]`.
fn parse_app(spec: &str) -> Result<remos_fx::Program, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["fft", n, pr] => {
            let n: usize = n.parse().map_err(|_| "fft: bad size".to_string())?;
            let pr: usize = pr.parse().map_err(|_| "fft: bad rank count".to_string())?;
            if !n.is_power_of_two() || pr == 0 {
                return Err("fft: size must be a power of two, ranks >= 1".into());
            }
            Ok(remos_apps::fft::fft_program(n, pr))
        }
        ["airshed", pr] => {
            let pr: usize = pr.parse().map_err(|_| "airshed: bad rank count".to_string())?;
            Ok(remos_apps::airshed::airshed_program(pr))
        }
        ["airshed", pr, iters] => {
            let pr: usize = pr.parse().map_err(|_| "airshed: bad rank count".to_string())?;
            let iters: usize =
                iters.parse().map_err(|_| "airshed: bad iteration count".to_string())?;
            Ok(remos_apps::airshed::airshed_program_iters(pr, iters))
        }
        _ => Err(format!(
            "unknown app {spec:?} (expected fft:N:P or airshed:P[:ITERS])"
        )),
    }
}

/// `remos-sim run`
pub fn run_app(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    let prog = parse_app(p.require("--app")?)?;
    let nodes = p.get_list("--nodes")?;
    let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
    let rep = if p.flag("--adaptive") {
        let pool: Vec<String> = match p.get("--pool") {
            Some(_) => p.get_list("--pool")?,
            None => remos_apps::testbed::TESTBED_HOSTS.iter().map(|s| s.to_string()).collect(),
        };
        let pool_refs: Vec<&str> = pool.iter().map(String::as_str).collect();
        h.run_adaptive(&prog, &pool_refs, &refs).map_err(|e| e.to_string())?
    } else {
        h.run_fixed(&prog, &refs).map_err(|e| e.to_string())?
    };
    writeln!(out, "{}: elapsed {:.3} s", rep.program, rep.elapsed).map_err(io_err)?;
    writeln!(
        out,
        "  compute {:.3} s, comm {:.3} s, sync {:.3} s, decisions {:.3} s, migration {:.3} s",
        rep.breakdown.compute,
        rep.breakdown.comm,
        rep.breakdown.sync,
        rep.breakdown.decision,
        rep.breakdown.migration
    )
    .map_err(io_err)?;
    writeln!(out, "  bytes sent: {}", rep.bytes_sent).map_err(io_err)?;
    writeln!(out, "  migrations: {}", rep.migrations.len()).map_err(io_err)?;
    for (it, set) in &rep.migrations {
        writeln!(out, "    iteration {it}: -> {}", set.join(", ")).map_err(io_err)?;
    }
    writeln!(out, "  final nodes: {}", rep.final_mapping.join(", ")).map_err(io_err)?;
    Ok(())
}

/// `remos-sim watch`
pub fn watch(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    let (src, dst) = parse_pair(p.require("--pair")?)?;
    let interval = p.get_f64("--interval", 1.0)?;
    let duration = p.get_f64("--duration", 10.0)?;
    if interval <= 0.0 || duration <= 0.0 {
        return Err("--interval and --duration must be positive".into());
    }
    // With --window W each line also summarizes the trailing W seconds
    // as quartiles (the paper's statistical reporting, §4.4).
    let window = match p.get("--window") {
        None => None,
        Some(w) => {
            let s: f64 = w.parse().map_err(|_| "--window: not a number".to_string())?;
            Some(SimDuration::from_secs_f64(s))
        }
    };
    let steps = (duration / interval).ceil() as usize;
    match window {
        None => writeln!(out, "available bandwidth {src} -> {dst} (median):"),
        Some(_) => writeln!(
            out,
            "available bandwidth {src} -> {dst}: current, then trailing-window [min|q1|median|q3|max]:"
        ),
    }
    .map_err(io_err)?;
    for _ in 0..steps {
        h.sim
            .lock()
            .run_for(SimDuration::from_secs_f64(interval))
            .map_err(|e| e.to_string())?;
        let g = h
            .adapter
            .remos_mut()
            .run(Query::graph([src.as_str(), dst.as_str()]))
            .and_then(QueryResult::into_graph)
            .map_err(|e| e.to_string())?;
        let a = g.index_of(&src).map_err(|e| e.to_string())?;
        let b = g.index_of(&dst).map_err(|e| e.to_string())?;
        let bw = g.path_avail_bw(a, b).map_err(|e| e.to_string())?;
        let t = h.sim.lock().now().as_secs_f64();
        match window {
            None => {
                writeln!(out, "  t={t:>8.2}s  {:>7.2} Mbps", bw / 1e6).map_err(io_err)?;
            }
            Some(w) => {
                let gw = h
                    .adapter
                    .remos_mut()
                    .run(Query::graph([src.as_str(), dst.as_str()])
                        .timeframe(Timeframe::Window(w)))
                    .and_then(QueryResult::into_graph)
                    .map_err(|e| e.to_string())?;
                let a = gw.index_of(&src).map_err(|e| e.to_string())?;
                // The two-node logical graph is a single link; summarize
                // the direction leaving `src`.
                let q = gw.links[gw.neighbors(a)[0].0].avail_from(a);
                writeln!(
                    out,
                    "  t={t:>8.2}s  {:>7.2} Mbps   [{:.1}|{:.1}|{:.1}|{:.1}|{:.1}] n={}",
                    bw / 1e6,
                    q.min / 1e6,
                    q.q1 / 1e6,
                    q.median / 1e6,
                    q.q3 / 1e6,
                    q.max / 1e6,
                    q.samples
                )
                .map_err(io_err)?;
            }
        }
    }
    Ok(())
}

/// `remos-sim obs`
///
/// Exercise the stack (warmup plus an optional graph query over
/// `--nodes`), then dump the shared observability state: the metrics
/// registry as JSON (default) or Prometheus text, and with `--trace`
/// the structured trace digest and records.
pub fn obs(p: &Parsed, out: &mut dyn Write) -> CmdResult {
    let mut h = harness(p)?;
    if p.get("--nodes").is_some() {
        let nodes = p.get_list("--nodes")?;
        let tf = timeframe(p)?;
        h.adapter
            .remos_mut()
            .run(Query::graph(nodes.iter().cloned()).timeframe(tf))
            .map_err(|e| e.to_string())?;
    }
    let snap = h.obs.metrics_snapshot();
    match p.get("--format").unwrap_or("json") {
        "json" => writeln!(out, "{}", snap.to_json()).map_err(io_err)?,
        "prometheus" | "prom" => {
            write!(out, "{}", snap.render_prometheus()).map_err(io_err)?
        }
        other => return Err(format!("--format: expected json or prometheus, got {other:?}")),
    }
    if p.flag("--trace") {
        writeln!(
            out,
            "# trace digest={:016x} recorded={}",
            h.obs.trace_digest(),
            h.obs.trace_recorded()
        )
        .map_err(io_err)?;
        for r in h.obs.trace_records() {
            let attrs: Vec<String> =
                r.attrs().iter().map(|(k, v)| format!("{k}={v}")).collect();
            writeln!(out, "# {:?} {} t={}ns {}", r.kind, r.name, r.t_nanos, attrs.join(" "))
                .map_err(io_err)?;
        }
    }
    Ok(())
}

/// `remos-sim example`
pub fn example(out: &mut dyn Write) -> CmdResult {
    let sc = Scenario::cmu(vec![
        TrafficSpec::Greedy {
            src: "m-6".into(),
            dst: "m-8".into(),
            streams: 8,
            start_s: 0.0,
            stop_s: Some(120.0),
        },
        TrafficSpec::Bursty {
            src: "m-1".into(),
            dst: "m-3".into(),
            mean_on_s: 2.0,
            mean_off_s: 2.0,
            seed: 7,
        },
        TrafficSpec::LinkDown {
            a: "timberline".into(),
            b: "whiteface".into(),
            at_s: 200.0,
            restore_s: Some(260.0),
        },
    ]);
    let json = serde_json::to_string_pretty(&sc).map_err(|e| e.to_string())?;
    writeln!(out, "{json}").map_err(io_err)?;
    Ok(())
}
