//! Variable-timescale queries (§4.4).
//!
//! "Relevant queries in the Remos interface accept a timeframe parameter
//! which allows the user to request data collected and averaged for a
//! specific time window", covering three regimes: the most recent
//! measurement, a historical window, and a prediction of expected future
//! availability.

use remos_net::SimDuration;
use serde::{Deserialize, Serialize};

/// The timescale a query refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Timeframe {
    /// Most recent measurements only ("current traffic conditions" — what
    /// the paper's experiments use: `timeframe = current`).
    Current,
    /// Statistics over the trailing window of the given length.
    Window(SimDuration),
    /// Expected availability over the coming horizon, produced by a
    /// predictor from historical samples.
    Future(SimDuration),
}

impl Timeframe {
    /// How many history samples a query in this timeframe needs at
    /// minimum, given the collector's polling period.
    pub fn min_samples(&self, poll_period: SimDuration) -> usize {
        match self {
            Timeframe::Current => 1,
            Timeframe::Window(w) | Timeframe::Future(w) => {
                let p = poll_period.as_secs_f64().max(1e-9);
                ((w.as_secs_f64() / p).ceil() as usize).max(2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_requirements() {
        let p = SimDuration::from_secs(1);
        assert_eq!(Timeframe::Current.min_samples(p), 1);
        assert_eq!(Timeframe::Window(SimDuration::from_secs(10)).min_samples(p), 10);
        assert_eq!(Timeframe::Future(SimDuration::from_secs(3)).min_samples(p), 3);
        // Even a tiny window needs two points to say anything dynamic.
        assert_eq!(Timeframe::Window(SimDuration::from_millis(1)).min_samples(p), 2);
    }
}
