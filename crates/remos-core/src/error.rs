//! Error type for the Remos API.

use std::fmt;

/// Errors surfaced by Remos queries.
#[derive(Debug, Clone, PartialEq)]
pub enum RemosError {
    /// A queried node name is not known to the collector.
    UnknownNode(String),
    /// The collector could not discover or refresh its view.
    Collector(String),
    /// The underlying SNMP substrate failed.
    Snmp(String),
    /// The underlying simulator failed.
    Net(String),
    /// A query was malformed (empty node set, negative bandwidth, ...).
    InvalidQuery(String),
    /// Not enough history to answer a windowed/predictive query.
    InsufficientHistory {
        /// Samples required.
        needed: usize,
        /// Samples available.
        available: usize,
    },
    /// Two queried nodes have no connecting path.
    Disconnected(String, String),
    /// An internal invariant was broken (corrupt graph, inconsistent
    /// modeler state, ...). Reaching this is a bug; it is surfaced as an
    /// error rather than a panic so callers degrade instead of aborting.
    Internal(String),
}

/// Convenience alias.
pub type CoreResult<T> = Result<T, RemosError>;

impl fmt::Display for RemosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemosError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            RemosError::Collector(m) => write!(f, "collector error: {m}"),
            RemosError::Snmp(m) => write!(f, "snmp error: {m}"),
            RemosError::Net(m) => write!(f, "network error: {m}"),
            RemosError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            RemosError::InsufficientHistory { needed, available } => write!(
                f,
                "insufficient history: need {needed} samples, have {available}"
            ),
            RemosError::Disconnected(a, b) => write!(f, "no path between {a:?} and {b:?}"),
            RemosError::Internal(m) => write!(f, "internal invariant broken: {m}"),
        }
    }
}

impl std::error::Error for RemosError {}

impl From<remos_snmp::SnmpError> for RemosError {
    fn from(e: remos_snmp::SnmpError) -> Self {
        RemosError::Snmp(e.to_string())
    }
}

impl From<remos_net::NetError> for RemosError {
    fn from(e: remos_net::NetError) -> Self {
        RemosError::Net(e.to_string())
    }
}
