//! Error type for the Remos API.

use crate::quality::DataQuality;
use remos_net::SimDuration;
use std::fmt;

/// Why a query was rejected as malformed, with the offending values as
/// structured fields (callers can match on the shape instead of parsing
/// a message string).
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidQueryKind {
    /// `get_graph` was asked about zero nodes.
    EmptyNodeSet,
    /// `flow_info` was asked about zero flows.
    EmptyFlowRequest,
    /// A fixed flow requested a non-positive or non-finite bandwidth.
    BadFixedBandwidth {
        /// The rejected bandwidth, bits/s.
        value: f64,
    },
    /// A variable flow carried a non-positive or non-finite weight.
    BadVariableWeight {
        /// The rejected weight.
        value: f64,
    },
    /// A flow's source and destination are the same node.
    IdenticalEndpoints {
        /// The node named as both endpoints.
        node: String,
    },
    /// A query named a network node where a compute host is required.
    NotAHost {
        /// The offending node name.
        node: String,
    },
    /// An adaptation query's current set cannot fit its pool.
    BadSetSize {
        /// Size of the current node set.
        current: usize,
        /// Size of the candidate pool.
        pool: usize,
    },
    /// An adaptive application was configured with an empty rate
    /// ladder, so there is no rate to run at.
    EmptyRateLadder,
    /// `estimate_fcts` was asked about zero hypothetical flows.
    EmptyFlowSet,
}

impl InvalidQueryKind {
    /// The node name this rejection is about, if any.
    pub fn offending_node(&self) -> Option<&str> {
        match self {
            InvalidQueryKind::IdenticalEndpoints { node }
            | InvalidQueryKind::NotAHost { node } => Some(node),
            _ => None,
        }
    }

    /// Was the query rejected for naming an empty set (of nodes or flows)?
    pub fn is_empty_set(&self) -> bool {
        matches!(
            self,
            InvalidQueryKind::EmptyNodeSet
                | InvalidQueryKind::EmptyFlowRequest
                | InvalidQueryKind::EmptyRateLadder
                | InvalidQueryKind::EmptyFlowSet
        )
    }
}

impl fmt::Display for InvalidQueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidQueryKind::EmptyNodeSet => write!(f, "empty node set"),
            InvalidQueryKind::EmptyFlowRequest => write!(f, "empty flow_info request"),
            InvalidQueryKind::BadFixedBandwidth { value } => {
                write!(f, "fixed flow bandwidth {value}")
            }
            InvalidQueryKind::BadVariableWeight { value } => {
                write!(f, "variable flow weight {value}")
            }
            InvalidQueryKind::IdenticalEndpoints { node } => {
                write!(f, "flow with identical endpoints {node:?}")
            }
            InvalidQueryKind::NotAHost { node } => write!(f, "{node} is not a host"),
            InvalidQueryKind::BadSetSize { current, pool } => {
                write!(f, "current set size {current} vs pool {pool}")
            }
            InvalidQueryKind::EmptyRateLadder => write!(f, "empty rate ladder"),
            InvalidQueryKind::EmptyFlowSet => write!(f, "empty what-if flow set"),
        }
    }
}

/// Errors surfaced by Remos queries.
#[derive(Debug, Clone, PartialEq)]
pub enum RemosError {
    /// A queried node name is not known to the collector.
    UnknownNode(String),
    /// The collector could not discover or refresh its view.
    Collector(String),
    /// The underlying SNMP substrate failed.
    Snmp(String),
    /// The underlying simulator failed.
    Net(String),
    /// A query was malformed; the kind carries the offending values.
    InvalidQuery(InvalidQueryKind),
    /// Not enough history to answer a windowed/predictive query.
    InsufficientHistory {
        /// Samples required.
        needed: usize,
        /// Samples available.
        available: usize,
    },
    /// Two queried nodes have no connecting path.
    Disconnected(String, String),
    /// The answer's measurement quality fell below the floor the query
    /// demanded (see `GraphQuery::min_quality`).
    QualityTooLow {
        /// The floor the query demanded.
        required: DataQuality,
        /// The worst quality actually backing the answer.
        actual: DataQuality,
    },
    /// A serving front end refused to accept the request: its queue (or
    /// in-flight cost budget) is full. The caller should back off for at
    /// least `retry_after` of measured time before resubmitting.
    Overloaded {
        /// Suggested back-off before resubmitting.
        retry_after: SimDuration,
    },
    /// The request's deadline budget expired before an answer could be
    /// produced; the remaining work was shed rather than computed and
    /// discarded.
    DeadlineExceeded {
        /// How far past the deadline the request was when it was shed.
        late_by: SimDuration,
    },
    /// An internal invariant was broken (corrupt graph, inconsistent
    /// modeler state, ...). Reaching this is a bug; it is surfaced as an
    /// error rather than a panic so callers degrade instead of aborting.
    Internal(String),
}

/// Convenience alias.
pub type CoreResult<T> = Result<T, RemosError>;

impl fmt::Display for RemosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemosError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            RemosError::Collector(m) => write!(f, "collector error: {m}"),
            RemosError::Snmp(m) => write!(f, "snmp error: {m}"),
            RemosError::Net(m) => write!(f, "network error: {m}"),
            RemosError::InvalidQuery(k) => write!(f, "invalid query: {k}"),
            RemosError::InsufficientHistory { needed, available } => write!(
                f,
                "insufficient history: need {needed} samples, have {available}"
            ),
            RemosError::Disconnected(a, b) => write!(f, "no path between {a:?} and {b:?}"),
            RemosError::QualityTooLow { required, actual } => write!(
                f,
                "answer quality {actual:?} below required floor {required:?}"
            ),
            RemosError::Overloaded { retry_after } => {
                write!(f, "server overloaded: retry after {retry_after}")
            }
            RemosError::DeadlineExceeded { late_by } => {
                write!(f, "deadline exceeded: {late_by} past budget when shed")
            }
            RemosError::Internal(m) => write!(f, "internal invariant broken: {m}"),
        }
    }
}

impl std::error::Error for RemosError {}

impl From<remos_snmp::SnmpError> for RemosError {
    fn from(e: remos_snmp::SnmpError) -> Self {
        RemosError::Snmp(e.to_string())
    }
}

impl From<remos_net::NetError> for RemosError {
    fn from(e: remos_net::NetError) -> Self {
        RemosError::Net(e.to_string())
    }
}

impl From<InvalidQueryKind> for RemosError {
    fn from(k: InvalidQueryKind) -> Self {
        RemosError::InvalidQuery(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_query_kinds_render_and_classify() {
        let e = RemosError::InvalidQuery(InvalidQueryKind::EmptyNodeSet);
        assert_eq!(e.to_string(), "invalid query: empty node set");
        assert!(matches!(
            &e,
            RemosError::InvalidQuery(k) if k.is_empty_set()
        ));
        let k = InvalidQueryKind::IdenticalEndpoints { node: "m-1".into() };
        assert_eq!(k.offending_node(), Some("m-1"));
        assert!(!k.is_empty_set());
        assert_eq!(
            InvalidQueryKind::BadSetSize { current: 9, pool: 6 }.to_string(),
            "current set size 9 vs pool 6"
        );
    }

    #[test]
    fn overload_and_deadline_errors_render() {
        let e = RemosError::Overloaded { retry_after: SimDuration::from_millis(250) };
        assert!(e.to_string().contains("overloaded"));
        assert!(matches!(
            e,
            RemosError::Overloaded { retry_after } if retry_after == SimDuration::from_millis(250)
        ));
        let e = RemosError::DeadlineExceeded { late_by: SimDuration::from_millis(5) };
        assert!(e.to_string().contains("deadline exceeded"));
    }

    #[test]
    fn quality_floor_error_renders() {
        let e = RemosError::QualityTooLow {
            required: DataQuality::Fresh,
            actual: DataQuality::Missing,
        };
        assert!(e.to_string().contains("below required floor"));
    }
}
