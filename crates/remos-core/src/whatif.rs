//! Typed answers for what-if flow-completion-time queries.
//!
//! [`Query::estimate_fcts`](crate::query::Query::estimate_fcts) asks the
//! admission/placement question the paper's interface leaves open: *what
//! would happen if I launched these flows?* The Modeler answers it by
//! replaying a fluid max-min schedule over the query plan's frozen
//! topology snapshot (see `remos_net::whatif`), never touching live
//! collector or engine state. This module holds the typed input
//! ([`HypotheticalFlow`]) and output ([`FctReport`] / [`FlowFct`]) the
//! query builder family exposes.

use crate::provenance::Provenance;
use remos_net::{Bps, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One hypothetical flow in an `estimate_fcts` query: named endpoints
/// (resolved against the query plan's topology), a transfer size, and an
/// arrival offset on the replay clock (`SimTime::ZERO` = "launched
/// immediately").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HypotheticalFlow {
    /// Source host name.
    pub src: String,
    /// Destination host name.
    pub dst: String,
    /// Bytes the flow would transfer.
    pub size_bytes: u64,
    /// When the flow would start, on the replay's virtual clock.
    #[serde(default)]
    pub arrival: SimTime,
}

impl HypotheticalFlow {
    /// A flow launched at replay time zero.
    pub fn new(src: impl Into<String>, dst: impl Into<String>, size_bytes: u64) -> Self {
        HypotheticalFlow {
            src: src.into(),
            dst: dst.into(),
            size_bytes,
            arrival: SimTime::ZERO,
        }
    }

    /// Set the arrival offset (builder-style).
    pub fn at(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }
}

/// The estimated fate of one hypothetical flow, in input order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowFct {
    /// Source host name, echoed from the query.
    pub src: String,
    /// Destination host name, echoed from the query.
    pub dst: String,
    /// Transfer size, echoed from the query.
    pub size_bytes: u64,
    /// When the flow entered the replay schedule.
    pub started: SimTime,
    /// When its last byte drained (or the horizon, if cut off).
    pub finished: SimTime,
    /// False when an `horizon` expired before the flow drained.
    pub completed: bool,
    /// Estimated flow completion time (`finished - started`).
    pub fct: SimDuration,
    /// FCT divided by the ideal FCT at the path's bottleneck line rate
    /// with zero contention; `INFINITY` for flows the horizon cut off.
    pub slowdown: f64,
    /// Resource index of the path's capacity bottleneck (directed-link
    /// index, or a backplane slot past the link prefix).
    pub bottleneck: usize,
    /// Capacity of that bottleneck resource, bits/s.
    pub bottleneck_capacity: Bps,
}

/// The typed answer to an `estimate_fcts` query: per-flow completion
/// estimates plus the replay's determinism digest and work counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FctReport {
    /// Per-flow estimates, in the order the query listed the flows.
    pub flows: Vec<FlowFct>,
    /// FNV-1a digest over `(index, endpoints, size, started, finished,
    /// completed)` for every flow — bit-identical runs produce identical
    /// digests (see `docs/DETERMINISM.md`).
    pub fct_digest: u64,
    /// Discrete event steps the replay executed.
    pub replay_steps: u64,
    /// Max-min solver invocations (full or scoped) the replay needed.
    pub solves: u64,
    /// How the answer was derived: snapshot epoch and solver mode are
    /// stamped into `solver`; `None` when the query opted out.
    pub provenance: Option<Provenance>,
}

impl FctReport {
    /// How many flows drained before the horizon (all of them, when no
    /// horizon was set).
    pub fn completed_count(&self) -> usize {
        self.flows.iter().filter(|f| f.completed).count()
    }

    /// Nearest-rank quantile (`q` in `0.0..=1.0`) over the FCTs of
    /// *completed* flows; `None` when nothing completed.
    pub fn fct_quantile(&self, q: f64) -> Option<SimDuration> {
        let mut fcts: Vec<SimDuration> =
            self.flows.iter().filter(|f| f.completed).map(|f| f.fct).collect();
        if fcts.is_empty() {
            return None;
        }
        fcts.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * fcts.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(fcts.len() - 1);
        Some(fcts[rank])
    }

    /// Mean slowdown over completed flows; `None` when nothing completed.
    pub fn mean_slowdown(&self) -> Option<f64> {
        let (mut sum, mut n) = (0.0, 0usize);
        for f in self.flows.iter().filter(|f| f.completed) {
            sum += f.slowdown;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fct(ms: u64, completed: bool) -> FlowFct {
        FlowFct {
            src: "a".into(),
            dst: "b".into(),
            size_bytes: 1000,
            started: SimTime::ZERO,
            finished: SimTime::from_millis(ms),
            completed,
            fct: SimDuration::from_millis(ms),
            slowdown: if completed { 2.0 } else { f64::INFINITY },
            bottleneck: 0,
            bottleneck_capacity: 1e8,
        }
    }

    #[test]
    fn builder_defaults_and_at() {
        let f = HypotheticalFlow::new("a", "b", 42);
        assert_eq!(f.arrival, SimTime::ZERO);
        let f = f.at(SimTime::from_secs(3));
        assert_eq!(f.arrival, SimTime::from_secs(3));
        assert_eq!(f.size_bytes, 42);
    }

    #[test]
    fn quantiles_skip_incomplete_flows() {
        let report = FctReport {
            flows: vec![fct(10, true), fct(20, true), fct(30, true), fct(999, false)],
            fct_digest: 0,
            replay_steps: 0,
            solves: 0,
            provenance: None,
        };
        assert_eq!(report.completed_count(), 3);
        assert_eq!(report.fct_quantile(0.5), Some(SimDuration::from_millis(20)));
        assert_eq!(report.fct_quantile(1.0), Some(SimDuration::from_millis(30)));
        assert_eq!(report.fct_quantile(0.0), Some(SimDuration::from_millis(10)));
        assert_eq!(report.mean_slowdown(), Some(2.0));
    }

    #[test]
    fn empty_report_has_no_quantiles() {
        let report = FctReport {
            flows: vec![fct(5, false)],
            fct_digest: 0,
            replay_steps: 0,
            solves: 0,
            provenance: None,
        };
        assert_eq!(report.completed_count(), 0);
        assert_eq!(report.fct_quantile(0.5), None);
        assert_eq!(report.mean_slowdown(), None);
    }
}
