//! Flow-based queries (§4.2).
//!
//! "A general flow query has the following form:
//! `remos_flow_info(fixed_flows, variable_flows, independent_flow,
//! timeframe)`. Remos tries to satisfy the fixed_flows, then the
//! variable_flows simultaneously, and finally the independent_flow."
//!
//! All flows in one request are solved *simultaneously* over the same
//! logical topology, so internal sharing between an application's own
//! connections is taken into account — the feature the paper singles out
//! as "particularly important for parallel applications that use
//! collective communication".

use crate::provenance::Provenance;
use crate::quality::DataQuality;
use crate::stats::Quartiles;
use remos_net::{Bps, SimDuration};
use serde::{Deserialize, Serialize};

/// An application-level connection between two named compute nodes.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowEndpoints {
    /// Sending node name.
    pub src: String,
    /// Receiving node name.
    pub dst: String,
}

impl FlowEndpoints {
    /// Convenience constructor.
    pub fn new(src: &str, dst: &str) -> Self {
        FlowEndpoints { src: src.to_string(), dst: dst.to_string() }
    }
}

/// A fixed flow: needs `requested` bits/s, no more ("fixed and inherently
/// low bandwidth needs (e.g. audio)").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FixedFlowReq {
    /// Endpoints.
    pub endpoints: FlowEndpoints,
    /// Required bandwidth, bits/s.
    pub requested: Bps,
}

/// A variable flow: scales with available bandwidth, proportionally to its
/// `relative_bw` weight ("the bandwidths of the flows are linked in the
/// sense that they will share available bandwidth proportionally").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VariableFlowReq {
    /// Endpoints.
    pub endpoints: FlowEndpoints,
    /// Relative bandwidth weight (e.g. 3, 4.5 and 9 in the paper's §4.2
    /// example).
    pub relative_bw: f64,
}

/// The complete query: fixed flows, then variable flows, then one optional
/// independent flow absorbing whatever is left.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlowInfoRequest {
    /// Satisfied first, in order.
    pub fixed: Vec<FixedFlowReq>,
    /// Satisfied second, simultaneously and proportionally.
    pub variable: Vec<VariableFlowReq>,
    /// Satisfied last from residual bandwidth ("lower priority flows").
    pub independent: Option<FlowEndpoints>,
}

impl FlowInfoRequest {
    /// Empty request builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fixed flow.
    pub fn fixed(mut self, src: &str, dst: &str, requested: Bps) -> Self {
        self.fixed.push(FixedFlowReq { endpoints: FlowEndpoints::new(src, dst), requested });
        self
    }

    /// Add a variable flow.
    pub fn variable(mut self, src: &str, dst: &str, relative_bw: f64) -> Self {
        self.variable
            .push(VariableFlowReq { endpoints: FlowEndpoints::new(src, dst), relative_bw });
        self
    }

    /// Set the independent flow.
    pub fn independent(mut self, src: &str, dst: &str) -> Self {
        self.independent = Some(FlowEndpoints::new(src, dst));
        self
    }

    /// Total number of flows in the request.
    pub fn flow_count(&self) -> usize {
        self.fixed.len() + self.variable.len() + usize::from(self.independent.is_some())
    }

    /// All endpoints, in solve order (fixed, variable, independent).
    pub fn all_endpoints(&self) -> Vec<&FlowEndpoints> {
        self.fixed
            .iter()
            .map(|f| &f.endpoints)
            .chain(self.variable.iter().map(|v| &v.endpoints))
            .chain(self.independent.iter())
            .collect()
    }
}

/// Per-flow answer: granted bandwidth statistics plus path latency.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowGrant {
    /// Endpoints echoed from the request.
    pub endpoints: FlowEndpoints,
    /// Granted bandwidth over the queried timeframe.
    pub bandwidth: Quartiles,
    /// One-way path latency (fixed per-hop model, §5).
    pub latency: SimDuration,
    /// For fixed flows: whether the full request was satisfiable in every
    /// sampled network state.
    pub fully_satisfied: bool,
    /// Quality of the measurements this estimate is derived from: the
    /// worst quality of any directed link on the flow's path. Non-`Fresh`
    /// grants have their `bandwidth` spread widened accordingly.
    #[serde(default)]
    pub estimate_quality: DataQuality,
    /// How this grant was derived (snapshots consumed, solver, path
    /// scope). `None` when the query opted out with `without_provenance()`.
    #[serde(default)]
    pub provenance: Option<Provenance>,
}

/// The complete answer to a [`FlowInfoRequest`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowInfoResponse {
    /// Grants for the fixed flows, in request order.
    pub fixed: Vec<FlowGrant>,
    /// Grants for the variable flows, in request order.
    pub variable: Vec<FlowGrant>,
    /// Grant for the independent flow, if requested.
    pub independent: Option<FlowGrant>,
}

impl FlowInfoResponse {
    /// Iterate all grants in solve order.
    pub fn all_grants(&self) -> impl Iterator<Item = &FlowGrant> {
        self.fixed
            .iter()
            .chain(self.variable.iter())
            .chain(self.independent.iter())
    }

    /// Worst measurement quality behind any grant in this response.
    pub fn worst_quality(&self) -> DataQuality {
        self.all_grants()
            .map(|g| g.estimate_quality)
            .fold(DataQuality::Fresh, DataQuality::worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let req = FlowInfoRequest::new()
            .fixed("m-1", "m-2", 1e6)
            .variable("m-1", "m-3", 3.0)
            .variable("m-2", "m-3", 4.5)
            .independent("m-4", "m-5");
        assert_eq!(req.flow_count(), 4);
        assert_eq!(req.fixed.len(), 1);
        assert_eq!(req.variable.len(), 2);
        assert!(req.independent.is_some());
        let eps = req.all_endpoints();
        assert_eq!(eps.len(), 4);
        assert_eq!(eps[0].src, "m-1");
        assert_eq!(eps[3].dst, "m-5");
    }

    #[test]
    fn empty_request() {
        let req = FlowInfoRequest::new();
        assert_eq!(req.flow_count(), 0);
        assert!(req.all_endpoints().is_empty());
    }
}
