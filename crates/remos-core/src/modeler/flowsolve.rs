//! The flow-query solver (§4.2): fixed, then variable, then independent.
//!
//! All flows of one request share a single resource model, so internal
//! sharing between the application's own connections is captured
//! ("Remos resolves this problem by supporting queries … simultaneously
//! for a set of flows"). Resources are the logical directed links plus
//! capped switch backplanes; the solver runs once per history sample, and
//! the caller summarizes grants into quartiles.

use crate::error::{CoreResult, RemosError};
use crate::graph::RemosGraph;
use crate::modeler::sharing::SharingPolicy;
use remos_net::maxmin::{self, FlowRef};
use remos_net::Bps;

/// The static resource model extracted from a logical graph: per-resource
/// capacities and per-flow resource paths.
pub struct ResourceModel {
    /// Capacity of each resource (2 per logical link, then one per capped
    /// switch backplane).
    pub capacities: Vec<Bps>,
    /// For each logical dir-link resource, the logical link index and
    /// direction slot (0 = a→b, 1 = b→a); backplane resources map to the
    /// node index.
    pub n_dir_links: usize,
}

impl ResourceModel {
    /// Build the model from a logical graph. Dir-link resource `2*l + s`
    /// covers link `l` direction slot `s`.
    pub fn from_graph(g: &RemosGraph) -> ResourceModel {
        let n_dir_links = g.links.len() * 2;
        let mut capacities: Vec<Bps> = Vec::with_capacity(n_dir_links + 4);
        for l in &g.links {
            capacities.push(l.capacity);
            capacities.push(l.capacity);
        }
        for n in &g.nodes {
            if let Some(bw) = n.internal_bw {
                capacities.push(bw);
            }
        }
        ResourceModel { capacities, n_dir_links }
    }

    /// Resource indices crossed by the routed path `src → dst` in `g`
    /// (node-table indices). Includes backplane resources of interior
    /// capped switches.
    pub fn path_resources(
        &self,
        g: &RemosGraph,
        src: usize,
        dst: usize,
    ) -> CoreResult<Vec<usize>> {
        let steps = g.path(src, dst)?;
        let mut res = Vec::with_capacity(steps.len() + 2);
        // Backplane resource index of node i = n_dir_links + rank of i
        // among capped nodes.
        let backplane_rank = |node: usize| -> Option<usize> {
            g.nodes[node].internal_bw?;
            let rank = g.nodes[..node]
                .iter()
                .filter(|n| n.internal_bw.is_some())
                .count();
            Some(self.n_dir_links + rank)
        };
        for (k, &(li, from, to)) in steps.iter().enumerate() {
            let slot = if from == g.links[li].a { 0 } else { 1 };
            res.push(li * 2 + slot);
            let is_last = k == steps.len() - 1;
            if !is_last {
                if let Some(r) = backplane_rank(to) {
                    res.push(r);
                }
            }
        }
        Ok(res)
    }
}

/// One flow class to solve in a stage.
pub struct StageFlow {
    /// Resource indices (from [`ResourceModel::path_resources`]).
    pub resources: Vec<usize>,
    /// Max-min weight.
    pub weight: f64,
    /// Optional cap (fixed flows' requested bandwidth).
    pub cap: Option<Bps>,
}

/// Per-sample solver state: capacities shrink as stages grant bandwidth.
pub struct SampleSolver {
    /// Remaining capacity per resource.
    residual: Vec<Bps>,
    /// External elastic competitors' remaining caps per resource
    /// (fair-share policy only).
    external_caps: Option<Vec<Bps>>,
    /// Reused fill solver; scratch buffers persist across stages.
    solver: maxmin::Solver,
    /// Identity table `ext_ids[r] == r`, so each external competitor's
    /// single-resource path can be borrowed as `&ext_ids[r..=r]` instead
    /// of allocating a one-element `Vec` per resource per stage.
    ext_ids: Vec<usize>,
}

impl SampleSolver {
    /// Initialize from static capacities and one utilization sample
    /// (`util[r]` = measured external traffic on resource `r`; resources
    /// beyond the measured set — e.g. backplanes — carry zero).
    pub fn new(
        model: &ResourceModel,
        util: &[Bps],
        policy: SharingPolicy,
    ) -> CoreResult<SampleSolver> {
        if util.len() > model.capacities.len() {
            return Err(RemosError::Collector(format!(
                "sample has {} entries for {} resources",
                util.len(),
                model.capacities.len()
            )));
        }
        let take = |r: usize| -> Bps { util.get(r).copied().unwrap_or(0.0) };
        let ext_ids: Vec<usize> = (0..model.capacities.len()).collect();
        match policy {
            SharingPolicy::ExternalPinned => {
                // External traffic is subtracted up front.
                let residual = model
                    .capacities
                    .iter()
                    .enumerate()
                    .map(|(r, &c)| (c - take(r)).max(0.0))
                    .collect();
                Ok(SampleSolver {
                    residual,
                    external_caps: None,
                    solver: maxmin::Solver::new(),
                    ext_ids,
                })
            }
            SharingPolicy::ExternalFairShare => {
                let external =
                    (0..model.capacities.len()).map(|r| take(r).min(model.capacities[r])).collect();
                Ok(SampleSolver {
                    residual: model.capacities.clone(),
                    external_caps: Some(external),
                    solver: maxmin::Solver::new(),
                    ext_ids,
                })
            }
        }
    }

    /// Solve one stage simultaneously, consuming capacity. Returns the
    /// granted rate per flow, in input order.
    ///
    /// Flows are handed to the solver as borrowed [`FlowRef`]s — each
    /// stage used to clone every flow's resource list (and allocate a
    /// fresh one-element `Vec` per external competitor); now nothing is
    /// copied and the solver's scratch buffers are reused across stages.
    pub fn solve_stage(&mut self, flows: &[StageFlow]) -> Vec<Bps> {
        if flows.is_empty() {
            return Vec::new();
        }
        let mut refs: Vec<FlowRef<'_>> = flows
            .iter()
            .map(|f| FlowRef { weight: f.weight, cap: f.cap, resources: &f.resources })
            .collect();
        let n_query = refs.len();
        // Under fair sharing, external aggregates compete in every stage
        // but can only shrink (their cap is last round's grant).
        if let Some(ext) = &self.external_caps {
            for (r, &cap) in ext.iter().enumerate() {
                if cap > 0.0 {
                    refs.push(FlowRef {
                        weight: 1.0,
                        cap: Some(cap),
                        resources: &self.ext_ids[r..=r],
                    });
                }
            }
        }
        let alloc = self.solver.solve_refs(&self.residual, &refs);
        // Update external caps to their granted rates.
        if let Some(ext) = &mut self.external_caps {
            let mut k = n_query;
            for cap in ext.iter_mut() {
                if *cap > 0.0 {
                    *cap = alloc.rates[k].min(*cap);
                    k += 1;
                }
            }
        }
        // Consume query-flow grants from residual capacity; external
        // grants are *not* consumed (they re-compete next stage at their
        // shrunken cap).
        for (i, f) in flows.iter().enumerate() {
            let r = alloc.rates[i];
            if r.is_finite() {
                for &res in &f.resources {
                    self.residual[res] = (self.residual[res] - r).max(0.0);
                }
            }
        }
        alloc.rates[..n_query]
            .iter()
            .map(|&r| if r.is_finite() { r } else { f64::INFINITY })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{RemosGraph, RemosLink, RemosNode};
    use crate::stats::Quartiles;
    use remos_net::topology::NodeKind;
    use remos_net::{mbps, SimDuration};

    /// h0 — sw — h1 and h2 — sw (star), 100 Mbps logical links.
    fn star_graph(internal_bw: Option<f64>) -> RemosGraph {
        let mut nodes: Vec<RemosNode> = (0..3)
            .map(|i| RemosNode {
                name: format!("h{i}"),
                kind: NodeKind::Compute,
                internal_bw: None,
                host: None,
            })
            .collect();
        nodes.push(RemosNode {
            name: "sw".into(),
            kind: NodeKind::Network,
            internal_bw,
            host: None,
        });
        let links = (0..3)
            .map(|h| RemosLink {
                a: h,
                b: 3,
                capacity: mbps(100.0),
                latency: SimDuration::from_micros(50),
                avail: [Quartiles::exact(mbps(100.0)), Quartiles::exact(mbps(100.0))],
                quality: [crate::quality::DataQuality::Fresh; 2],
            })
            .collect();
        RemosGraph::new(nodes, links)
    }

    #[test]
    fn path_resources_directional() {
        let g = star_graph(None);
        let m = ResourceModel::from_graph(&g);
        assert_eq!(m.capacities.len(), 6);
        let r01 = m.path_resources(&g, 0, 1).unwrap();
        // h0->sw on link 0 slot a->b (h0 is `a`), sw->h1 on link 1 slot b->a.
        assert_eq!(r01, vec![0, 3]);
        let r10 = m.path_resources(&g, 1, 0).unwrap();
        assert_eq!(r10, vec![2, 1]);
    }

    #[test]
    fn backplane_resource_appended() {
        let g = star_graph(Some(mbps(10.0)));
        let m = ResourceModel::from_graph(&g);
        assert_eq!(m.capacities.len(), 7);
        assert_eq!(m.capacities[6], mbps(10.0));
        let r = m.path_resources(&g, 0, 1).unwrap();
        assert_eq!(r, vec![0, 6, 3]);
    }

    #[test]
    fn pinned_policy_subtracts_external() {
        let g = star_graph(None);
        let m = ResourceModel::from_graph(&g);
        // 60 Mbps external on resource 0 (h0's uplink).
        let mut util = vec![0.0; 6];
        util[0] = mbps(60.0);
        let mut s = SampleSolver::new(&m, &util, SharingPolicy::ExternalPinned).unwrap();
        let flow = StageFlow {
            resources: m.path_resources(&g, 0, 1).unwrap(),
            weight: 1.0,
            cap: None,
        };
        let grants = s.solve_stage(&[flow]);
        assert!((grants[0] - mbps(40.0)).abs() < 1.0, "{}", grants[0]);
    }

    #[test]
    fn fair_share_policy_splits_with_external() {
        let g = star_graph(None);
        let m = ResourceModel::from_graph(&g);
        let mut util = vec![0.0; 6];
        util[0] = mbps(60.0);
        let mut s = SampleSolver::new(&m, &util, SharingPolicy::ExternalFairShare).unwrap();
        let flow = StageFlow {
            resources: m.path_resources(&g, 0, 1).unwrap(),
            weight: 1.0,
            cap: None,
        };
        let grants = s.solve_stage(&[flow]);
        // Elastic external backs off to a fair 50/50 split.
        assert!((grants[0] - mbps(50.0)).abs() < 1.0, "{}", grants[0]);
    }

    #[test]
    fn staged_grants_consume_capacity() {
        let g = star_graph(None);
        let m = ResourceModel::from_graph(&g);
        let util = vec![0.0; 6];
        let mut s = SampleSolver::new(&m, &util, SharingPolicy::ExternalPinned).unwrap();
        let path = m.path_resources(&g, 0, 1).unwrap();
        // Fixed stage: 30 Mbps.
        let fixed = StageFlow { resources: path.clone(), weight: 1.0, cap: Some(mbps(30.0)) };
        let g1 = s.solve_stage(&[fixed]);
        assert!((g1[0] - mbps(30.0)).abs() < 1.0);
        // Independent stage on the same path: gets the remaining 70.
        let indep = StageFlow { resources: path, weight: 1.0, cap: None };
        let g2 = s.solve_stage(&[indep]);
        assert!((g2[0] - mbps(70.0)).abs() < 1.0, "{}", g2[0]);
    }

    #[test]
    fn paper_variable_example_through_stage() {
        // §4.2: weights 3 : 4.5 : 9 over a 5.5 Mbps bottleneck → 1 : 1.5 : 3.
        let g = star_graph(None);
        let mut m = ResourceModel::from_graph(&g);
        // Make h2's downlink (resource 5: link 2 slot b->a) the 5.5 Mbps
        // bottleneck; all three flows converge on h2.
        m.capacities[5] = mbps(5.5);
        let util = vec![0.0; 6];
        let mut s = SampleSolver::new(&m, &util, SharingPolicy::ExternalPinned).unwrap();
        let path0 = m.path_resources(&g, 0, 2).unwrap();
        let path1 = m.path_resources(&g, 1, 2).unwrap();
        let flows = vec![
            StageFlow { resources: path0.clone(), weight: 3.0, cap: None },
            StageFlow { resources: path1, weight: 4.5, cap: None },
            StageFlow { resources: path0, weight: 9.0, cap: None },
        ];
        let grants = s.solve_stage(&flows);
        assert!((grants[0] - mbps(1.0)).abs() < 1e3, "{:?}", grants);
        assert!((grants[1] - mbps(1.5)).abs() < 1e3);
        assert!((grants[2] - mbps(3.0)).abs() < 1e3);
    }

    #[test]
    fn oversubscribed_fixed_flows_share_fairly() {
        let g = star_graph(None);
        let m = ResourceModel::from_graph(&g);
        let util = vec![0.0; 6];
        let mut s = SampleSolver::new(&m, &util, SharingPolicy::ExternalPinned).unwrap();
        let path = m.path_resources(&g, 0, 1).unwrap();
        // Two fixed flows of 80 Mbps each on a 100 Mbps path: each gets 50.
        let flows = vec![
            StageFlow { resources: path.clone(), weight: 1.0, cap: Some(mbps(80.0)) },
            StageFlow { resources: path, weight: 1.0, cap: Some(mbps(80.0)) },
        ];
        let grants = s.solve_stage(&flows);
        assert!((grants[0] - mbps(50.0)).abs() < 1.0);
        assert!((grants[1] - mbps(50.0)).abs() < 1.0);
    }
}
