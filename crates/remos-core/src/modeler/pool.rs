//! Re-export of the shared scoped worker pool.
//!
//! The implementation lives in [`remos_net::pool`] so the network
//! engine (parallel connected-component solves) and the modeler (batch
//! query serving) share one audited thread source; this module keeps
//! the historical `modeler::pool` path working.

pub(crate) use remos_net::pool::{default_workers, run_indexed};
