//! Predictors for `Timeframe::Future` queries (§4.4).
//!
//! "Remos supports queries about historical performance, as well as
//! prediction of expected future performance. Initial implementations may
//! only support historical performance, or use a simplistic model to
//! predict future performance from current and historical data." These
//! are those simplistic models; the ablation bench compares them against
//! the oracle.

use remos_net::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which prediction model to use.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// The last observed value persists.
    LastValue,
    /// Mean of the history window.
    WindowMean,
    /// Exponentially weighted moving average with the given alpha
    /// (weight of the newest sample).
    Ewma(f64),
    /// Least-squares linear trend extrapolated to the horizon midpoint,
    /// clamped to be non-negative.
    LinearTrend,
}

/// Predict the value `horizon` ahead of the last sample.
///
/// `series` is (time, value), oldest first; returns 0.0 for an empty
/// series (no observed traffic — the optimistic default a collector
/// reports for dark links).
pub fn predict(kind: PredictorKind, series: &[(SimTime, f64)], horizon: SimDuration) -> f64 {
    let Some(&(last_t, last_v)) = series.last() else { return 0.0 };
    match kind {
        PredictorKind::LastValue => last_v,
        PredictorKind::WindowMean => {
            series.iter().map(|&(_, v)| v).sum::<f64>() / series.len() as f64
        }
        PredictorKind::Ewma(alpha) => {
            let alpha = alpha.clamp(0.0, 1.0);
            let mut acc = series[0].1;
            for &(_, v) in &series[1..] {
                acc = alpha * v + (1.0 - alpha) * acc;
            }
            acc
        }
        PredictorKind::LinearTrend => {
            if series.len() < 2 {
                return last_v;
            }
            // Least squares on (t, v) with t relative to the first sample.
            let t0 = series[0].0;
            let n = series.len() as f64;
            let xs: Vec<f64> =
                series.iter().map(|&(t, _)| t.saturating_since(t0).as_secs_f64()).collect();
            let ys: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
            let sx: f64 = xs.iter().sum();
            let sy: f64 = ys.iter().sum();
            let sxx: f64 = xs.iter().map(|x| x * x).sum();
            let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
            let denom = n * sxx - sx * sx;
            if denom.abs() < 1e-12 {
                return last_v;
            }
            let slope = (n * sxy - sx * sy) / denom;
            let intercept = (sy - slope * sx) / n;
            let target = last_t.saturating_since(t0).as_secs_f64()
                + horizon.as_secs_f64() / 2.0;
            (intercept + slope * target).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> Vec<(SimTime, f64)> {
        vals.iter().enumerate().map(|(i, &v)| (SimTime::from_secs(i as u64), v)).collect()
    }

    const H: SimDuration = SimDuration::from_secs(2);

    #[test]
    fn empty_series_predicts_zero() {
        for k in [
            PredictorKind::LastValue,
            PredictorKind::WindowMean,
            PredictorKind::Ewma(0.5),
            PredictorKind::LinearTrend,
        ] {
            assert_eq!(predict(k, &[], H), 0.0);
        }
    }

    #[test]
    fn last_value() {
        let s = series(&[1.0, 2.0, 9.0]);
        assert_eq!(predict(PredictorKind::LastValue, &s, H), 9.0);
    }

    #[test]
    fn window_mean() {
        let s = series(&[1.0, 2.0, 3.0]);
        assert!((predict(PredictorKind::WindowMean, &s, H) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_weights_recent() {
        let s = series(&[0.0, 0.0, 10.0]);
        let light = predict(PredictorKind::Ewma(0.1), &s, H);
        let heavy = predict(PredictorKind::Ewma(0.9), &s, H);
        assert!(heavy > light);
        assert!(heavy <= 10.0 && light >= 0.0);
        // alpha=1 degenerates to last value.
        assert_eq!(predict(PredictorKind::Ewma(1.0), &s, H), 10.0);
    }

    #[test]
    fn linear_trend_extrapolates() {
        // Perfect ramp 0,1,2,3,... rate 1/s: prediction at last + 1s
        // (horizon midpoint of 2s) is last + 1.
        let s = series(&[0.0, 1.0, 2.0, 3.0]);
        let p = predict(PredictorKind::LinearTrend, &s, H);
        assert!((p - 4.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn linear_trend_clamps_negative() {
        let s = series(&[9.0, 6.0, 3.0, 0.0]);
        let p = predict(PredictorKind::LinearTrend, &s, SimDuration::from_secs(10));
        assert_eq!(p, 0.0);
    }

    #[test]
    fn trend_on_constant_series_is_flat() {
        let s = series(&[5.0, 5.0, 5.0]);
        assert!((predict(PredictorKind::LinearTrend, &s, H) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_trend_degenerates() {
        let s = series(&[7.0]);
        assert_eq!(predict(PredictorKind::LinearTrend, &s, H), 7.0);
    }
}
