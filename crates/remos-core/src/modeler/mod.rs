//! The Modeler: the application-oriented half of Remos (§5).
//!
//! "The Modeler is a library that can be linked with applications. It
//! satisfies application requests based on the information provided by the
//! Collector. The primary tasks of the modeler are as follows: generating
//! a logical topology, associating appropriate static and dynamic
//! information with each of the network components, and satisfying flow
//! requests based on the logical topology."
//!
//! Queries are served in two halves: a structural [`plan::QueryPlan`]
//! (routing + logicalization, cached per `(topology_epoch, target set)`)
//! and a cheap per-query annotation pass over the selected samples. See
//! `docs/PERFORMANCE.md` ("Query-path caching") for the invalidation
//! rules and the bit-equality argument.

pub mod flowsolve;
pub mod logical;
pub mod plan;
pub(crate) mod pool;
pub mod predict;
pub mod sharing;

use crate::collector::Collector;
use crate::error::{CoreResult, InvalidQueryKind, RemosError};
use crate::flows::{FlowGrant, FlowInfoRequest, FlowInfoResponse};
use crate::graph::{HostInfo, RemosGraph, RemosLink, RemosNode};
use crate::provenance::Provenance;
use crate::quality::DataQuality;
use crate::stats::Quartiles;
use crate::timeframe::Timeframe;
use flowsolve::{ResourceModel, SampleSolver, StageFlow};
use plan::{PlanCache, QueryPlan};
use predict::{predict, PredictorKind};
use remos_net::topology::Topology;
use remos_net::{Bps, SimTime};
use remos_obs::{Counter, Obs};
use sharing::SharingPolicy;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Default number of query plans the modeler keeps cached.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 32;

/// Modeler configuration.
#[derive(Clone, Copy, Debug)]
pub struct ModelerConfig {
    /// Predictor used for `Timeframe::Future` queries.
    pub predictor: PredictorKind,
    /// How external traffic competes with queried flows.
    pub sharing: SharingPolicy,
    /// Bounded plan-cache capacity, in plans. `0` disables caching
    /// entirely: every query rebuilds routing and logicalization cold —
    /// the reference behavior the cache is audited against.
    pub plan_cache_capacity: usize,
    /// Shadow-uncached audit mode: on every cache hit, rebuild the plan
    /// cold and fail the query with [`RemosError::Internal`] unless the
    /// cached and cold plans are structurally bit-identical. Intended
    /// for tests and CI, not production query serving.
    pub audit_cache: bool,
}

impl Default for ModelerConfig {
    fn default() -> Self {
        ModelerConfig {
            predictor: PredictorKind::WindowMean,
            sharing: SharingPolicy::default(),
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            audit_cache: false,
        }
    }
}

/// The Modeler.
pub struct Modeler {
    /// Configuration.
    pub cfg: ModelerConfig,
    /// Epoch-keyed LRU of structural query plans.
    cache: Mutex<PlanCache>,
    /// Plan-cache counters (hit/miss/evict), re-wired by [`Modeler::set_obs`].
    metrics: ModelerMetrics,
}

struct ModelerMetrics {
    plan_cache_hits: Counter,
    plan_cache_misses: Counter,
    plan_cache_evictions: Counter,
}

impl ModelerMetrics {
    fn new(obs: &Obs) -> ModelerMetrics {
        ModelerMetrics {
            plan_cache_hits: obs.counter("modeler_plan_cache_hits_total"),
            plan_cache_misses: obs.counter("modeler_plan_cache_misses_total"),
            plan_cache_evictions: obs.counter("modeler_plan_cache_evictions_total"),
        }
    }
}

impl fmt::Debug for Modeler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Modeler").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

impl Default for Modeler {
    fn default() -> Self {
        Modeler::new(ModelerConfig::default())
    }
}

/// A set of per-physical-dirlink utilization samples selected for a query.
#[derive(Default)]
pub(crate) struct SelectedSamples {
    /// (sample end time, utilization per physical dir-link index).
    samples: Vec<(SimTime, Vec<Bps>)>,
    /// Per physical dir-link: the worst measurement quality among the
    /// selected samples (entries the collector never measured are
    /// `Missing`).
    quality: Vec<DataQuality>,
}

impl SelectedSamples {
    /// Collector time of the newest selected sample.
    fn newest(&self) -> Option<SimTime> {
        self.samples.iter().map(|(t, _)| *t).max()
    }

    /// Collector time of the oldest selected sample.
    fn oldest(&self) -> Option<SimTime> {
        self.samples.iter().map(|(t, _)| *t).min()
    }
}

/// Reusable buffers for [`Modeler::get_graph_in`]. One workspace per
/// serving thread makes the warm cached-query path (plan-cache hit,
/// `Timeframe::Current`/`Window`, unchanged topology) allocation-free:
/// every `Vec` and `String` below settles at its high-water capacity
/// after the first few queries and is overwritten in place from then on.
#[derive(Default)]
pub struct QueryWorkspace {
    /// Canonical (sorted, deduped) target-name cache key.
    key: Vec<String>,
    /// Host table, node-slot order.
    hosts: Vec<Option<HostInfo>>,
    /// Selected utilization samples.
    selected: SelectedSamples,
    /// Per-(link, direction) availability values.
    vals: Vec<Bps>,
    /// Quartile selection scratch.
    sort_buf: Vec<f64>,
    /// The annotated graph, rebuilt in place each query.
    graph: RemosGraph,
}

impl QueryWorkspace {
    /// Empty workspace; buffers grow to steady-state size on first use.
    pub fn new() -> QueryWorkspace {
        QueryWorkspace::default()
    }

    /// The graph produced by the most recent successful
    /// [`Modeler::get_graph_in`] call through this workspace.
    pub fn graph(&self) -> &RemosGraph {
        &self.graph
    }
}

/// How much to widen an estimate derived from data `age` old: grows
/// linearly (10 s of staleness doubles the spread) and saturates at 4×.
fn stale_widen_factor(age: remos_net::SimDuration) -> f64 {
    (1.0 + age.as_secs_f64() / 10.0).min(4.0)
}

/// Degrade a quantity's summary according to the quality of the data it
/// was derived from: fresh passes through, stale widens the spread with
/// age, missing yields total uncertainty over `[0, ceiling]`.
pub(crate) fn degrade(q: &Quartiles, quality: DataQuality, ceiling: Bps) -> Quartiles {
    match quality {
        DataQuality::Fresh => *q,
        DataQuality::Stale { age } => q.widen(stale_widen_factor(age)),
        DataQuality::Missing => Quartiles {
            min: 0.0,
            q1: 0.0,
            median: q.median.clamp(0.0, ceiling),
            q3: ceiling,
            max: ceiling,
            mean: q.mean.clamp(0.0, ceiling),
            samples: q.samples,
            accuracy: 0.0,
        },
    }
}

/// Lock a mutex, tolerating poisoning (the protected state is a cache of
/// immutable `Arc`s; a panicking holder cannot leave it inconsistent).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Modeler {
    /// Modeler with explicit configuration.
    pub fn new(cfg: ModelerConfig) -> Modeler {
        Modeler {
            cfg,
            cache: Mutex::new(PlanCache::new(cfg.plan_cache_capacity)),
            metrics: ModelerMetrics::new(&Obs::new()),
        }
    }

    /// Re-wire the plan-cache counters onto `obs`.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.metrics = ModelerMetrics::new(obs);
    }

    fn resolve_names(topo: &Topology, names: &[String]) -> CoreResult<Vec<remos_net::topology::NodeId>> {
        names
            .iter()
            .map(|n| topo.lookup(n).map_err(|_| RemosError::UnknownNode(n.clone())))
            .collect()
    }

    /// Obtain the structural plan for `names`: cache hit when the
    /// collector's topology epoch and the canonical target set match a
    /// resident plan, cold build otherwise.
    pub(crate) fn plan_for(
        &self,
        col: &dyn Collector,
        names: &[String],
    ) -> CoreResult<Arc<QueryPlan>> {
        self.plan_for_in(col, names, &mut Vec::new())
    }

    /// [`Modeler::plan_for`] with a caller-owned key buffer. On a cache
    /// hit with a stable query set, the only work is name validation and
    /// rebuilding the canonical key in place (`clone_from` reuses each
    /// slot's `String` buffer), so the warm path allocates nothing.
    pub(crate) fn plan_for_in(
        &self,
        col: &dyn Collector,
        names: &[String],
        key: &mut Vec<String>,
    ) -> CoreResult<Arc<QueryPlan>> {
        let topo = col.topology()?;
        // Resolve in query order first so unknown-node errors name the
        // first offending entry as written, exactly like the cold path.
        for n in names {
            topo.lookup(n).map_err(|_| RemosError::UnknownNode(n.clone()))?;
        }
        key.truncate(names.len());
        for (i, n) in names.iter().enumerate() {
            if i < key.len() {
                key[i].clone_from(n);
            } else {
                key.push(n.clone());
            }
        }
        key.sort_unstable();
        key.dedup();
        let epoch = col.topology_epoch();
        // Plans are built from the canonical ordering (logicalization is
        // order-insensitive), so a cold rebuild reproduces a cached plan
        // bit for bit.
        if self.cfg.plan_cache_capacity == 0 {
            self.metrics.plan_cache_misses.inc();
            let targets = Self::resolve_names(&topo, key)?;
            return Ok(Arc::new(QueryPlan::build(epoch, topo, targets)?));
        }
        if let Some(cached) = lock(&self.cache).get(epoch, key) {
            // Defense in depth: an epoch match with a different topology
            // Arc means a collector swapped its view without bumping the
            // epoch — treat as a miss rather than serve a stale plan.
            if Arc::ptr_eq(&cached.topo, &topo) {
                self.metrics.plan_cache_hits.inc();
                if self.cfg.audit_cache {
                    let targets = Self::resolve_names(&topo, key)?;
                    let cold = QueryPlan::build(epoch, topo, targets)?;
                    if cold.digest() != cached.digest() {
                        return Err(RemosError::Internal(
                            "plan cache audit: cached plan diverged from a cold rebuild".into(),
                        ));
                    }
                }
                return Ok(cached);
            }
        }
        self.metrics.plan_cache_misses.inc();
        let targets = Self::resolve_names(&topo, key)?;
        let built = Arc::new(QueryPlan::build(epoch, topo, targets)?);
        if lock(&self.cache).insert(epoch, key.clone(), Arc::clone(&built)) {
            self.metrics.plan_cache_evictions.inc();
        }
        Ok(built)
    }

    /// Pick (or synthesize) the utilization samples a timeframe refers to.
    pub(crate) fn select_samples(
        &self,
        col: &dyn Collector,
        n_phys_dirlinks: usize,
        tf: Timeframe,
    ) -> CoreResult<SelectedSamples> {
        let mut out = SelectedSamples::default();
        self.select_samples_in(col, n_phys_dirlinks, tf, &mut out)?;
        Ok(out)
    }

    /// Overwrite `slot` with `(t, util padded/truncated to n)`, reusing
    /// the slot's utilization buffer.
    fn write_sample(slot: &mut (SimTime, Vec<Bps>), t: SimTime, util: &[Bps], n: usize) {
        slot.0 = t;
        slot.1.clear();
        slot.1.extend_from_slice(util);
        slot.1.resize(n, 0.0);
    }

    /// [`Modeler::select_samples`] writing into a caller-owned buffer.
    /// For `Current` and `Window` timeframes the steady state (stable
    /// history depth) reuses every sample vector in place and allocates
    /// nothing; `Future` still allocates its per-dirlink prediction
    /// series.
    pub(crate) fn select_samples_in(
        &self,
        col: &dyn Collector,
        n_phys_dirlinks: usize,
        tf: Timeframe,
        out: &mut SelectedSamples,
    ) -> CoreResult<()> {
        let n = n_phys_dirlinks;
        let history = col.history();
        match tf {
            Timeframe::Current => {
                let latest = history.latest().ok_or(RemosError::InsufficientHistory {
                    needed: 1,
                    available: 0,
                })?;
                out.samples.truncate(1);
                if out.samples.is_empty() {
                    out.samples.push((latest.t, Vec::new()));
                }
                Self::write_sample(&mut out.samples[0], latest.t, &latest.util, n);
                out.quality.clear();
                out.quality.extend_from_slice(&latest.quality);
                out.quality.resize(n, DataQuality::Missing);
                out.quality.truncate(n);
                Ok(())
            }
            Timeframe::Window(w) => {
                let latest_t = match history.latest() {
                    Some(s) => s.t,
                    None => {
                        return Err(RemosError::InsufficientHistory { needed: 1, available: 0 })
                    }
                };
                // An estimate over a window is only as good as its worst
                // constituent sample, per dir-link.
                out.quality.clear();
                out.quality.resize(n, DataQuality::Fresh);
                let mut count = 0;
                for s in history.all().filter(|s| latest_t.saturating_since(s.t) <= w) {
                    for (d, q) in out.quality.iter_mut().enumerate() {
                        *q = q.worst(s.quality.get(d).copied().unwrap_or(DataQuality::Missing));
                    }
                    if count < out.samples.len() {
                        Self::write_sample(&mut out.samples[count], s.t, &s.util, n);
                    } else {
                        let mut v = Vec::new();
                        v.extend_from_slice(&s.util);
                        v.resize(n, 0.0);
                        out.samples.push((s.t, v));
                    }
                    count += 1;
                }
                out.samples.truncate(count);
                if count == 0 {
                    return Err(RemosError::InsufficientHistory { needed: 1, available: 0 });
                }
                Ok(())
            }
            Timeframe::Future(h) => {
                if history.is_empty() {
                    return Err(RemosError::InsufficientHistory { needed: 2, available: 0 });
                }
                let latest = history.latest().ok_or(RemosError::InsufficientHistory {
                    needed: 2,
                    available: 0,
                })?;
                let t_last = latest.t;
                // A prediction inherits the quality of the newest data it
                // extrapolates from.
                out.quality.clear();
                out.quality.extend_from_slice(&latest.quality);
                out.quality.resize(n, DataQuality::Missing);
                out.quality.truncate(n);
                out.samples.truncate(1);
                if out.samples.is_empty() {
                    out.samples.push((t_last + h, Vec::new()));
                }
                out.samples[0].0 = t_last + h;
                let util = &mut out.samples[0].1;
                util.clear();
                util.resize(n, 0.0);
                for (d, u) in util.iter_mut().enumerate() {
                    let series: Vec<(SimTime, f64)> = history
                        .all()
                        .map(|s| (s.t, s.util.get(d).copied().unwrap_or(0.0)))
                        .collect();
                    *u = predict(self.cfg.predictor, &series, h);
                }
                Ok(())
            }
        }
    }

    /// Worst quality over one logical direction's physical chain.
    fn logical_quality(
        phys: &[remos_net::topology::DirLink],
        quality: &[DataQuality],
    ) -> DataQuality {
        phys.iter()
            .map(|d| quality.get(d.index()).copied().unwrap_or(DataQuality::Missing))
            .fold(DataQuality::Fresh, DataQuality::worst)
    }

    /// Per-sample *availability* of one logical direction: the minimum
    /// over its physical chain of `capacity - utilization`, clamped to 0.
    fn logical_avail(
        topo: &Topology,
        phys: &[remos_net::topology::DirLink],
        util: &[Bps],
    ) -> Bps {
        phys.iter()
            .map(|d| {
                let cap = topo.link(d.link).capacity;
                (cap - util.get(d.index()).copied().unwrap_or(0.0)).max(0.0)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Host info for each retained node of a plan, in node-table order.
    /// Collector access happens here, on the caller's thread, so the
    /// annotation pass itself is pure and parallelizable.
    pub(crate) fn host_table(col: &dyn Collector, plan: &QueryPlan) -> Vec<Option<HostInfo>> {
        let mut out = Vec::new();
        Self::host_table_in(col, plan, &mut out);
        out
    }

    /// [`Modeler::host_table`] into a caller-owned buffer. Non-compute
    /// nodes are `None` without consulting the collector — `host_info`
    /// is only defined for hosts (its switch answer is an error by
    /// contract), and skipping the call keeps the warm query path free
    /// of per-switch error-construction allocations.
    pub(crate) fn host_table_in(
        col: &dyn Collector,
        plan: &QueryPlan,
        out: &mut Vec<Option<HostInfo>>,
    ) {
        out.clear();
        out.extend(plan.structure.nodes.iter().map(|&nid| {
            let n = plan.topo.node(nid);
            if n.kind == remos_net::topology::NodeKind::Compute {
                col.host_info(&n.name).ok()
            } else {
                None
            }
        }));
    }

    /// Build the annotated logical topology for `names` — the
    /// implementation of `remos_get_graph(nodes, graph, timeframe)`.
    pub fn get_graph(
        &self,
        col: &dyn Collector,
        names: &[String],
        tf: Timeframe,
    ) -> CoreResult<RemosGraph> {
        let mut ws = QueryWorkspace::new();
        self.get_graph_in(col, names, tf, &mut ws)?;
        Ok(ws.graph)
    }

    /// [`Modeler::get_graph`] through a caller-owned [`QueryWorkspace`].
    /// Identical answer, but every buffer (cache key, host table, sample
    /// selection, and the output graph itself) is reused in place, so a
    /// warm cached query — plan-cache hit, `Current`/`Window` timeframe,
    /// unchanged topology and target set — performs zero heap
    /// allocations. The returned reference borrows the workspace's
    /// resident graph.
    pub fn get_graph_in<'ws>(
        &self,
        col: &dyn Collector,
        names: &[String],
        tf: Timeframe,
        ws: &'ws mut QueryWorkspace,
    ) -> CoreResult<&'ws RemosGraph> {
        let plan = self.plan_for_in(col, names, &mut ws.key)?;
        Self::host_table_in(col, &plan, &mut ws.hosts);
        self.select_samples_in(col, plan.topo.dir_link_count(), tf, &mut ws.selected)?;
        self.annotate_graph_into(
            &plan,
            &ws.hosts,
            &ws.selected,
            tf,
            &mut ws.vals,
            &mut ws.sort_buf,
            &mut ws.graph,
        )?;
        Ok(&ws.graph)
    }

    /// The cheap half of a graph query: annotate a plan's logical
    /// structure with the selected samples. Pure — no collector or clock
    /// access — and allocation-light: the two scratch buffers below are
    /// reused across every (link, direction) pair, so the steady path
    /// allocates nothing proportional to link count.
    pub(crate) fn annotate_graph(
        &self,
        plan: &QueryPlan,
        hosts: &[Option<HostInfo>],
        selected: &SelectedSamples,
        tf: Timeframe,
    ) -> CoreResult<RemosGraph> {
        let mut g = RemosGraph::default();
        self.annotate_graph_into(plan, hosts, selected, tf, &mut Vec::new(), &mut Vec::new(), &mut g)?;
        Ok(g)
    }

    /// [`Modeler::annotate_graph`] writing into a caller-owned graph.
    /// Node and link tables are overwritten element-wise (`clone_from`
    /// reuses each node-name `String` buffer; `RemosLink` owns no heap),
    /// and the name/adjacency indices are rebuilt only when the logical
    /// structure actually changed — so re-annotating the same plan is
    /// allocation-free.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn annotate_graph_into(
        &self,
        plan: &QueryPlan,
        hosts: &[Option<HostInfo>],
        selected: &SelectedSamples,
        tf: Timeframe,
        vals: &mut Vec<Bps>,
        sort_buf: &mut Vec<f64>,
        out: &mut RemosGraph,
    ) -> CoreResult<()> {
        let topo: &Topology = &plan.topo;
        let structure = &plan.structure;

        let mut structure_changed = out.nodes.len() != structure.nodes.len()
            || out.links.len() != structure.links.len();
        // Node table: retained physical nodes, in order.
        out.nodes.truncate(structure.nodes.len());
        for (i, &nid) in structure.nodes.iter().enumerate() {
            let n = topo.node(nid);
            let host = hosts.get(i).copied().flatten();
            if i < out.nodes.len() {
                let e = &mut out.nodes[i];
                if e.name != n.name {
                    e.name.clone_from(&n.name);
                    structure_changed = true;
                }
                e.kind = n.kind;
                e.internal_bw = n.internal_bw;
                e.host = host;
            } else {
                out.nodes.push(RemosNode {
                    name: n.name.clone(),
                    kind: n.kind,
                    internal_bw: n.internal_bw,
                    host,
                });
            }
        }
        let mut li = 0;
        for spec in &structure.links {
            let mut avail = [Quartiles::exact(0.0), Quartiles::exact(0.0)];
            let mut quality = [DataQuality::Fresh; 2];
            for (slot, a) in avail.iter_mut().enumerate() {
                vals.clear();
                vals.extend(
                    selected
                        .samples
                        .iter()
                        .map(|(_, util)| Self::logical_avail(topo, &spec.phys[slot], util)),
                );
                let raw = Quartiles::from_samples_in(vals, sort_buf)
                    .unwrap_or_else(|| Quartiles::exact(spec.capacity));
                // Degraded measurements show through the annotation: stale
                // data widens the reported spread, missing data collapses
                // to total uncertainty over [0, capacity].
                quality[slot] = Self::logical_quality(&spec.phys[slot], &selected.quality);
                *a = degrade(&raw, quality[slot], spec.capacity);
            }
            let l = RemosLink {
                a: plan.node_slot(spec.a)?,
                b: plan.node_slot(spec.b)?,
                capacity: spec.capacity,
                latency: spec.latency,
                avail,
                quality,
            };
            if li < out.links.len() {
                let e = &mut out.links[li];
                if e.a != l.a || e.b != l.b {
                    structure_changed = true;
                }
                *e = l;
            } else {
                out.links.push(l);
            }
            li += 1;
        }
        out.links.truncate(li);
        if structure_changed {
            out.rebuild_indices();
        }
        let scope = out.links.len();
        let worst_quality = out.worst_quality();
        match &mut out.provenance {
            Some(p) => {
                p.timeframe = tf;
                p.snapshots = selected.samples.len();
                p.newest_sample = selected.newest();
                p.oldest_sample = selected.oldest();
                p.worst_quality = worst_quality;
                p.solver.clear();
                let _ = fmt::Write::write_fmt(
                    &mut p.solver,
                    format_args!("logical-annotate/{:?}", self.cfg.predictor),
                );
                p.scope = scope;
                p.degraded = false;
                p.source = None;
            }
            None => {
                out.provenance = Some(Provenance {
                    timeframe: tf,
                    snapshots: selected.samples.len(),
                    newest_sample: selected.newest(),
                    oldest_sample: selected.oldest(),
                    worst_quality,
                    solver: format!("logical-annotate/{:?}", self.cfg.predictor),
                    scope,
                    degraded: false,
                    source: None,
                });
            }
        }
        Ok(())
    }

    /// Answer a flow query — the implementation of
    /// `remos_flow_info(fixed_flows, variable_flows, independent_flow,
    /// timeframe)`.
    pub fn flow_info(
        &self,
        col: &dyn Collector,
        req: &FlowInfoRequest,
        tf: Timeframe,
    ) -> CoreResult<FlowInfoResponse> {
        if req.flow_count() == 0 {
            return Ok(FlowInfoResponse { fixed: Vec::new(), variable: Vec::new(), independent: None });
        }
        for f in &req.fixed {
            if f.requested <= 0.0 || !f.requested.is_finite() {
                return Err(RemosError::InvalidQuery(InvalidQueryKind::BadFixedBandwidth {
                    value: f.requested,
                }));
            }
        }
        for v in &req.variable {
            if v.relative_bw <= 0.0 || !v.relative_bw.is_finite() {
                return Err(RemosError::InvalidQuery(InvalidQueryKind::BadVariableWeight {
                    value: v.relative_bw,
                }));
            }
        }
        // The relevant node set is every endpoint mentioned.
        let mut names: Vec<String> = req
            .all_endpoints()
            .iter()
            .flat_map(|e| [e.src.clone(), e.dst.clone()])
            .collect();
        names.sort();
        names.dedup();
        for e in req.all_endpoints() {
            if e.src == e.dst {
                return Err(RemosError::InvalidQuery(InvalidQueryKind::IdenticalEndpoints {
                    node: e.src.clone(),
                }));
            }
        }

        let plan = self.plan_for(col, &names)?;
        let selected = self.select_samples(col, plan.topo.dir_link_count(), tf)?;
        self.flow_answer(&plan, &selected, req, tf)
    }

    /// The cheap half of a flow query: solve the staged max-min problem
    /// over a plan's resource space for one sample selection. Pure — no
    /// collector or clock access. The request must already be validated
    /// (see [`Modeler::flow_info`]).
    pub(crate) fn flow_answer(
        &self,
        plan: &QueryPlan,
        selected: &SelectedSamples,
        req: &FlowInfoRequest,
        tf: Timeframe,
    ) -> CoreResult<FlowInfoResponse> {
        if req.flow_count() == 0 {
            return Ok(FlowInfoResponse { fixed: Vec::new(), variable: Vec::new(), independent: None });
        }
        let topo: &Topology = &plan.topo;
        let structure = &plan.structure;
        let logical_graph: &RemosGraph = &plan.static_graph;
        let model = ResourceModel::from_graph(logical_graph);

        // Per-resource measurement quality (link resources come from the
        // collector; node resources are structural and always fresh).
        let mut res_quality = vec![DataQuality::Fresh; model.capacities.len()];
        for (li, spec) in structure.links.iter().enumerate() {
            for slot in 0..2 {
                res_quality[li * 2 + slot] =
                    Self::logical_quality(&spec.phys[slot], &selected.quality);
            }
        }

        // Resolve per-flow paths once (routing is static).
        let resolve = |src: &str, dst: &str| -> CoreResult<(Vec<usize>, usize, usize)> {
            let s = logical_graph.index_of(src)?;
            let d = logical_graph.index_of(dst)?;
            Ok((model.path_resources(logical_graph, s, d)?, s, d))
        };
        let fixed_paths: Vec<(Vec<usize>, usize, usize)> = req
            .fixed
            .iter()
            .map(|f| resolve(&f.endpoints.src, &f.endpoints.dst))
            .collect::<CoreResult<_>>()?;
        let variable_paths: Vec<(Vec<usize>, usize, usize)> = req
            .variable
            .iter()
            .map(|f| resolve(&f.endpoints.src, &f.endpoints.dst))
            .collect::<CoreResult<_>>()?;
        let independent_path = req
            .independent
            .as_ref()
            .map(|e| resolve(&e.src, &e.dst))
            .transpose()?;

        // Solve per sample.
        let n_flows = req.flow_count();
        let mut grants: Vec<Vec<Bps>> = vec![Vec::with_capacity(selected.samples.len()); n_flows];
        for (_, util_phys) in &selected.samples {
            // Translate physical utilization into resource-space
            // utilization: util_res = cap_logical - avail_logical.
            let mut util_res = vec![0.0; model.capacities.len()];
            for (li, spec) in structure.links.iter().enumerate() {
                for slot in 0..2 {
                    let avail = Self::logical_avail(topo, &spec.phys[slot], util_phys);
                    util_res[li * 2 + slot] = (spec.capacity - avail).max(0.0);
                }
            }
            let mut solver = SampleSolver::new(&model, &util_res, self.cfg.sharing)?;
            let mut k = 0;
            // Stage 1: fixed.
            let fixed_stage: Vec<StageFlow> = req
                .fixed
                .iter()
                .zip(&fixed_paths)
                .map(|(f, (res, _, _))| StageFlow {
                    resources: res.clone(),
                    weight: 1.0,
                    cap: Some(f.requested),
                })
                .collect();
            for g in solver.solve_stage(&fixed_stage) {
                grants[k].push(g);
                k += 1;
            }
            // Stage 2: variable.
            let var_stage: Vec<StageFlow> = req
                .variable
                .iter()
                .zip(&variable_paths)
                .map(|(f, (res, _, _))| StageFlow {
                    resources: res.clone(),
                    weight: f.relative_bw,
                    cap: None,
                })
                .collect();
            for g in solver.solve_stage(&var_stage) {
                grants[k].push(g);
                k += 1;
            }
            // Stage 3: independent.
            if let Some((res, _, _)) = &independent_path {
                let stage =
                    vec![StageFlow { resources: res.clone(), weight: 1.0, cap: None }];
                grants[k].push(solver.solve_stage(&stage)[0]);
            }
        }

        // Summarize.
        let snapshots = selected.samples.len();
        let newest_sample = selected.newest();
        let oldest_sample = selected.oldest();
        let solver = format!("staged-maxmin/{:?}", self.cfg.sharing);
        let mut k = 0;
        let mut grant_for = |endpoints: &crate::flows::FlowEndpoints,
                             path: &(Vec<usize>, usize, usize),
                             requested: Option<Bps>|
         -> CoreResult<FlowGrant> {
            let bw = Quartiles::from_samples(&grants[k])
                .unwrap_or_else(|| Quartiles::exact(0.0));
            k += 1;
            let latency = logical_graph.path_latency(path.1, path.2)?;
            let fully = match requested {
                Some(r) => grants[k - 1].iter().all(|&g| g >= r * (1.0 - 1e-9)),
                None => true,
            };
            // The grant is only as trustworthy as the worst-measured
            // resource its path crosses; widen the estimate to match.
            let estimate_quality = path
                .0
                .iter()
                .map(|&r| res_quality[r])
                .fold(DataQuality::Fresh, DataQuality::worst);
            let ceiling = path
                .0
                .iter()
                .map(|&r| model.capacities[r])
                .fold(f64::INFINITY, f64::min)
                .max(bw.max);
            let bw = degrade(&bw, estimate_quality, ceiling);
            Ok(FlowGrant {
                endpoints: endpoints.clone(),
                bandwidth: bw,
                latency,
                fully_satisfied: fully,
                estimate_quality,
                provenance: Some(Provenance {
                    timeframe: tf,
                    snapshots,
                    newest_sample,
                    oldest_sample,
                    worst_quality: estimate_quality,
                    solver: solver.clone(),
                    scope: path.0.len(),
                    degraded: false,
                    source: None,
                }),
            })
        };
        let fixed = req
            .fixed
            .iter()
            .zip(&fixed_paths)
            .map(|(f, p)| grant_for(&f.endpoints, p, Some(f.requested)))
            .collect::<CoreResult<Vec<_>>>()?;
        let variable = req
            .variable
            .iter()
            .zip(&variable_paths)
            .map(|(f, p)| grant_for(&f.endpoints, p, None))
            .collect::<CoreResult<Vec<_>>>()?;
        let independent = match (&req.independent, &independent_path) {
            (Some(e), Some(p)) => Some(grant_for(e, p, None)?),
            _ => None,
        };
        Ok(FlowInfoResponse { fixed, variable, independent })
    }

    /// Answer a what-if query over one sample selection. Pure — no
    /// collector or clock access. Endpoint names resolve against the
    /// plan's frozen topology (a plan-cache hit therefore skips routing
    /// entirely), the newest selected snapshot supplies per-interface
    /// background utilization, and `remos_net::whatif` replays the fluid
    /// max-min schedule on a scratch arena.
    pub(crate) fn whatif_answer(
        &self,
        plan: &QueryPlan,
        selected: &SelectedSamples,
        q: &crate::query::WhatIfQuery,
    ) -> CoreResult<crate::whatif::FctReport> {
        use crate::whatif::{FctReport, FlowFct};
        use remos_net::topology::NodeKind;
        use remos_net::whatif::{WhatIfEngine, WhatIfFlow};

        let topo: &Topology = &plan.topo;
        // Resolve and validate endpoints up front: typed errors beat the
        // kernel's stringly NetError.
        let mut net_flows = Vec::with_capacity(q.flows.len());
        for f in &q.flows {
            if f.src == f.dst {
                return Err(InvalidQueryKind::IdenticalEndpoints { node: f.src.clone() }.into());
            }
            let src =
                topo.lookup(&f.src).map_err(|_| RemosError::UnknownNode(f.src.clone()))?;
            let dst =
                topo.lookup(&f.dst).map_err(|_| RemosError::UnknownNode(f.dst.clone()))?;
            for (id, name) in [(src, &f.src), (dst, &f.dst)] {
                if topo.node(id).kind != NodeKind::Compute {
                    return Err(InvalidQueryKind::NotAHost { node: name.clone() }.into());
                }
            }
            net_flows.push(WhatIfFlow { src, dst, size_bytes: f.size_bytes, arrival: f.arrival });
        }

        // The replay's contention structure depends on every link's
        // background load, not just the queried paths — so the answer is
        // only as trustworthy as the worst-measured interface anywhere
        // in the snapshot.
        let worst_quality = selected
            .quality
            .iter()
            .copied()
            .fold(DataQuality::Fresh, DataQuality::worst);
        if let Some(floor) = q.min_quality {
            if !worst_quality.meets(floor) {
                return Err(RemosError::QualityTooLow { required: floor, actual: worst_quality });
            }
        }

        let mut engine = WhatIfEngine::new(Arc::clone(&plan.topo), Arc::clone(&plan.routing));
        let background = selected
            .samples
            .iter()
            .max_by_key(|(t, _)| *t)
            .map(|(_, util)| util.as_slice());
        let report = engine.estimate_with(&net_flows, background, q.horizon)?;

        let provenance = q.provenance.then(|| Provenance {
            timeframe: q.timeframe,
            snapshots: selected.samples.len(),
            newest_sample: selected.newest(),
            oldest_sample: selected.oldest(),
            worst_quality,
            solver: format!("whatif-replay/epoch{}/{:?}", plan.epoch, engine.mode()),
            scope: net_flows.len(),
            degraded: false,
            source: None,
        });

        let flows = q
            .flows
            .iter()
            .zip(report.estimates.iter())
            .map(|(f, e)| FlowFct {
                src: f.src.clone(),
                dst: f.dst.clone(),
                size_bytes: f.size_bytes,
                started: e.started,
                finished: e.finished,
                completed: e.completed,
                fct: e.fct(),
                slowdown: e.slowdown,
                bottleneck: e.bottleneck,
                bottleneck_capacity: e.bottleneck_capacity,
            })
            .collect();

        Ok(FctReport {
            flows,
            fct_digest: report.fct_digest,
            replay_steps: report.replay_steps,
            solves: report.solves,
            provenance,
        })
    }
}
