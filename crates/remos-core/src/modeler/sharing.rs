//! Sharing policies (§4.2).
//!
//! "Our approach is to return the best knowledge available … In general
//! Remos will assume that, all else being equal, the bottleneck link
//! bandwidth will be shared equally by all flows (not being bottlenecked
//! elsewhere). If other better information is available, Remos can use
//! different sharing policies when estimating flow bandwidths."
//!
//! Two models of how *observed external traffic* interacts with the flows
//! being queried:
//!
//! * [`SharingPolicy::ExternalPinned`] — external traffic keeps exactly
//!   its measured bandwidth; queried flows share the residual max-min
//!   fairly. Pessimistic for aggressive queried flows, right for
//!   reservation-style traffic (ATM CBR, the paper's guaranteed-service
//!   aside).
//! * [`SharingPolicy::ExternalFairShare`] — external traffic on each link
//!   is an aggregate elastic competitor (capped at its measured rate — it
//!   never *grows* under competition, but it backs off fairly). Right for
//!   TCP-like cross-traffic; this is the "shared equally by all flows"
//!   default reading.

use serde::{Deserialize, Serialize};

/// How measured external utilization competes with queried flows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[derive(Default)]
pub enum SharingPolicy {
    /// External traffic is pinned at its measured rate.
    #[default]
    ExternalPinned,
    /// External traffic is an elastic aggregate, capped at its measured
    /// rate, sharing max-min fairly with queried flows.
    ExternalFairShare,
}

