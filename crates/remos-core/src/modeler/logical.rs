//! Logical-topology generation (§4.3).
//!
//! "Use of a logical topology graph means that the graph presented to the
//! user is intended only to represent how the network behaves as seen by
//! the user … if the routing rules imply that a physical link will not be
//! used … that information is reflected in the graph. Similarly, if two
//! sets of hosts are connected by a complex network (e.g. the Internet),
//! Remos can represent this network by a single link with appropriate
//! characteristics."
//!
//! Concretely, given the physical view and a target node set:
//! 1. keep only the links and nodes that routing actually uses between
//!    targets (information hiding);
//! 2. collapse every chain of degree-2 non-target forwarding nodes into a
//!    single logical link (capacity = min, latency = sum), remembering the
//!    underlying physical interfaces so dynamic annotations stay
//!    per-sample accurate.

use crate::error::{CoreResult, RemosError};
use remos_net::routing::Routing;
use remos_net::topology::{DirLink, LinkId, NodeId, NodeKind, Topology};
use remos_net::{Bps, SimDuration};
use std::collections::BTreeSet;

/// A logical link between two retained nodes, with its physical support.
#[derive(Clone, Debug)]
pub struct LogicalLinkSpec {
    /// Retained endpoint (physical node id).
    pub a: NodeId,
    /// Retained endpoint (physical node id).
    pub b: NodeId,
    /// Static capacity: minimum along the collapsed chain.
    pub capacity: Bps,
    /// Latency: sum along the collapsed chain.
    pub latency: SimDuration,
    /// Underlying physical directed interfaces: `[a→b order, b→a order]`.
    pub phys: [Vec<DirLink>; 2],
}

/// The structure of a logical topology, before dynamic annotation.
#[derive(Clone, Debug)]
pub struct LogicalStructure {
    /// Retained physical node ids, sorted.
    pub nodes: Vec<NodeId>,
    /// Logical links between retained nodes.
    pub links: Vec<LogicalLinkSpec>,
}

/// Compute the logical structure connecting `targets`.
///
/// Every target must be a compute node; pairs with no route produce
/// [`RemosError::Disconnected`].
pub fn logicalize(
    topo: &Topology,
    routing: &Routing,
    targets: &[NodeId],
) -> CoreResult<LogicalStructure> {
    if targets.is_empty() {
        return Err(RemosError::InvalidQuery(
            crate::error::InvalidQueryKind::EmptyNodeSet,
        ));
    }
    let mut target_set = BTreeSet::new();
    for &t in targets {
        if topo.try_node(t).is_err() {
            return Err(RemosError::Net(format!("node {t:?} out of range")));
        }
        target_set.insert(t);
    }

    // 1. Union of links used by routed paths between all target pairs.
    let mut used_links: BTreeSet<LinkId> = BTreeSet::new();
    let mut used_nodes: BTreeSet<NodeId> = target_set.clone();
    for &s in &target_set {
        for &d in &target_set {
            if s >= d {
                continue;
            }
            let path = routing.path(topo, s, d).map_err(|_| {
                RemosError::Disconnected(topo.node(s).name.clone(), topo.node(d).name.clone())
            })?;
            for h in &path.hops {
                used_links.insert(h.link);
            }
            for n in &path.nodes {
                used_nodes.insert(*n);
            }
        }
    }

    // Induced adjacency over used links.
    let mut adj: Vec<Vec<LinkId>> = vec![Vec::new(); topo.node_count()];
    for &l in &used_links {
        let link = topo.link(l);
        adj[link.a.index()].push(l);
        adj[link.b.index()].push(l);
    }

    // 2. Retained nodes: targets, compute nodes, or network nodes of
    //    induced degree != 2 (junctions). Degree-2 non-target network
    //    nodes are pure forwarders and get collapsed.
    let keep = |n: NodeId| -> bool {
        target_set.contains(&n)
            || topo.node(n).kind == NodeKind::Compute
            || adj[n.index()].len() != 2
    };
    let kept: Vec<NodeId> = used_nodes.iter().copied().filter(|&n| keep(n)).collect();

    // Walk chains from each kept node; each chain is emitted once (from
    // its lexicographically smaller traversal signature).
    let mut links = Vec::new();
    let mut visited_first_hop: BTreeSet<(NodeId, LinkId)> = BTreeSet::new();
    for &start in &kept {
        for &first in &adj[start.index()] {
            if visited_first_hop.contains(&(start, first)) {
                continue;
            }
            // Traverse to the next kept node.
            let mut fwd: Vec<DirLink> = Vec::new();
            let mut capacity = f64::INFINITY;
            let mut latency = SimDuration::ZERO;
            let mut at = start;
            let mut via = first;
            loop {
                let link = topo.link(via);
                let dir = link.direction_from(at);
                fwd.push(DirLink { link: via, dir });
                capacity = capacity.min(link.capacity);
                latency += link.latency;
                let next = link.opposite(at);
                if keep(next) {
                    // Mark both traversal entries so the chain is not
                    // emitted again from the far side.
                    visited_first_hop.insert((start, first));
                    visited_first_hop.insert((next, via));
                    let rev: Vec<DirLink> = fwd
                        .iter()
                        .rev()
                        .map(|d| DirLink { link: d.link, dir: d.dir.reverse() })
                        .collect();
                    links.push(LogicalLinkSpec {
                        a: start,
                        b: next,
                        capacity,
                        latency,
                        phys: [fwd, rev],
                    });
                    break;
                }
                // Degree-2 forwarder: continue out the other side.
                let out = adj[next.index()]
                    .iter()
                    .copied()
                    .find(|&l| l != via)
                    .ok_or_else(|| {
                        RemosError::Internal(format!(
                            "degree-2 node {next:?} lacks a second used link"
                        ))
                    })?;
                at = next;
                via = out;
            }
        }
    }

    Ok(LogicalStructure { nodes: kept, links })
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::{mbps, TopologyBuilder};

    /// h1 - r1 - r2 - r3 - h2, with a spur r2 - h3 and an unused link
    /// r1 - r4 - r3 (longer, never routed).
    fn chain_net() -> (Topology, Routing) {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let h3 = b.compute("h3");
        let r1 = b.network("r1");
        let r2 = b.network("r2");
        let r3 = b.network("r3");
        let r4 = b.network("r4");
        let lat = SimDuration::from_micros(100);
        b.link(h1, r1, mbps(100.0), lat).unwrap();
        b.link(r1, r2, mbps(40.0), lat).unwrap();
        b.link(r2, r3, mbps(100.0), lat).unwrap();
        b.link(r3, h2, mbps(100.0), lat).unwrap();
        b.link(r2, h3, mbps(100.0), lat).unwrap();
        b.link(r1, r4, mbps(100.0), lat).unwrap();
        b.link(r4, r3, mbps(100.0), lat).unwrap();
        let t = b.build().unwrap();
        let r = Routing::new(&t);
        (t, r)
    }

    #[test]
    fn two_targets_collapse_to_single_link() {
        let (t, r) = chain_net();
        let h1 = t.lookup("h1").unwrap();
        let h2 = t.lookup("h2").unwrap();
        let s = logicalize(&t, &r, &[h1, h2]).unwrap();
        // Just the two hosts, joined by one logical link.
        assert_eq!(s.nodes, vec![h1, h2]);
        assert_eq!(s.links.len(), 1);
        let l = &s.links[0];
        assert_eq!(l.capacity, mbps(40.0)); // min along the chain
        assert_eq!(l.latency, SimDuration::from_micros(400)); // 4 hops
        assert_eq!(l.phys[0].len(), 4);
        assert_eq!(l.phys[1].len(), 4);
        // Reverse support mirrors forward support.
        for (f, rv) in l.phys[0].iter().zip(l.phys[1].iter().rev()) {
            assert_eq!(f.link, rv.link);
            assert_eq!(f.dir, rv.dir.reverse());
        }
    }

    #[test]
    fn junction_is_retained() {
        let (t, r) = chain_net();
        let h1 = t.lookup("h1").unwrap();
        let h2 = t.lookup("h2").unwrap();
        let h3 = t.lookup("h3").unwrap();
        let s = logicalize(&t, &r, &[h1, h2, h3]).unwrap();
        // r2 is a junction (degree 3 in the induced graph) and survives;
        // r1 and r3 collapse.
        let r2 = t.lookup("r2").unwrap();
        assert!(s.nodes.contains(&r2));
        assert!(!s.nodes.contains(&t.lookup("r1").unwrap()));
        assert!(!s.nodes.contains(&t.lookup("r3").unwrap()));
        assert_eq!(s.nodes.len(), 4); // h1, h2, h3, r2
        assert_eq!(s.links.len(), 3); // three collapsed spokes
        // Unused detour r4 is hidden.
        assert!(s.links.iter().all(|l| {
            l.phys[0]
                .iter()
                .all(|d| t.link(d.link).a != t.lookup("r4").unwrap()
                    && t.link(d.link).b != t.lookup("r4").unwrap())
        }));
    }

    #[test]
    fn single_target_yields_no_links() {
        let (t, r) = chain_net();
        let h1 = t.lookup("h1").unwrap();
        let s = logicalize(&t, &r, &[h1]).unwrap();
        assert_eq!(s.nodes, vec![h1]);
        assert!(s.links.is_empty());
    }

    #[test]
    fn empty_targets_rejected() {
        let (t, r) = chain_net();
        assert!(matches!(
            logicalize(&t, &r, &[]),
            Err(RemosError::InvalidQuery(_))
        ));
    }

    #[test]
    fn disconnected_targets_reported() {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let t = b.build().unwrap();
        let r = Routing::new(&t);
        assert!(matches!(
            logicalize(&t, &r, &[h1, h2]),
            Err(RemosError::Disconnected(_, _))
        ));
    }

    #[test]
    fn direct_neighbors_keep_one_physical_hop() {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        b.link(h1, h2, mbps(10.0), SimDuration::from_micros(5)).unwrap();
        let t = b.build().unwrap();
        let r = Routing::new(&t);
        let s = logicalize(&t, &r, &[h1, h2]).unwrap();
        assert_eq!(s.links.len(), 1);
        assert_eq!(s.links[0].phys[0].len(), 1);
    }
}
