//! Epoch-keyed query-plan cache.
//!
//! Answering a graph or flow query splits into a slow, structural half —
//! all-pairs routing over the discovered topology plus logicalization of
//! the target set (§4.3) — and a cheap per-query half that annotates the
//! structure with the currently selected utilization samples. The
//! structural half is a pure function of `(topology, target set)`, so it
//! is computed once into a [`QueryPlan`] and shared behind `Arc`s; a
//! small bounded LRU ([`PlanCache`]) keyed by `(topology_epoch,
//! canonical target set)` lets repeated queries skip Dijkstra and
//! logicalization entirely.
//!
//! Invalidation is epoch-based: every collector bumps its
//! `topology_epoch` on rediscovery, so a plan built under an older epoch
//! can never be looked up again. The epoch need not be a counter — a
//! federated `collector::multi::MultiCollector` reports a digest over
//! its per-child structure digests, so one shard's rediscovery leaves
//! the epoch (and every cached plan) untouched unless that child's
//! structure actually changed. As defense in depth the modeler also
//! rejects a hit whose topology `Arc` is not pointer-identical to the
//! collector's current one, so a collector that swaps its topology
//! without bumping the epoch falls back to a cold rebuild instead of
//! serving a stale plan.

use crate::error::{CoreResult, RemosError};
use crate::graph::{RemosGraph, RemosLink, RemosNode};
use crate::modeler::logical::{self, LogicalStructure};
use crate::quality::DataQuality;
use crate::stats::Quartiles;
use remos_net::routing::Routing;
use remos_net::topology::{NodeId, Topology};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The reusable structural product of a query: everything about an
/// answer that does not depend on measurement samples.
pub struct QueryPlan {
    /// Topology epoch the plan was built under.
    pub epoch: u64,
    /// The physical topology the plan was derived from.
    pub topo: Arc<Topology>,
    /// Resolved target node ids (canonical order).
    pub targets: Vec<NodeId>,
    /// All-pairs routes over `topo` — the Dijkstra product.
    pub routing: Arc<Routing>,
    /// Logical structure connecting the targets.
    pub structure: Arc<LogicalStructure>,
    /// Retained physical node id -> node-table slot.
    index_of: BTreeMap<NodeId, usize>,
    /// Statically annotated logical graph (no host info, availability =
    /// capacity): the flow solver's resource space.
    pub static_graph: Arc<RemosGraph>,
}

impl QueryPlan {
    /// Build a plan cold: routing + logicalization + static graph.
    pub fn build(epoch: u64, topo: Arc<Topology>, targets: Vec<NodeId>) -> CoreResult<QueryPlan> {
        let routing = Routing::new(&topo);
        let structure = logical::logicalize(&topo, &routing, &targets)?;
        let mut index_of = BTreeMap::new();
        for (i, &nid) in structure.nodes.iter().enumerate() {
            index_of.insert(nid, i);
        }
        let nodes = structure
            .nodes
            .iter()
            .map(|&nid| {
                let n = topo.node(nid);
                RemosNode {
                    name: n.name.clone(),
                    kind: n.kind,
                    internal_bw: n.internal_bw,
                    host: None,
                }
            })
            .collect();
        let links = structure
            .links
            .iter()
            .map(|spec| {
                Ok(RemosLink {
                    a: slot_of(&index_of, spec.a)?,
                    b: slot_of(&index_of, spec.b)?,
                    capacity: spec.capacity,
                    latency: spec.latency,
                    avail: [Quartiles::exact(spec.capacity), Quartiles::exact(spec.capacity)],
                    quality: [DataQuality::Fresh; 2],
                })
            })
            .collect::<CoreResult<Vec<_>>>()?;
        let static_graph = Arc::new(RemosGraph::new(nodes, links));
        Ok(QueryPlan {
            epoch,
            topo,
            targets,
            routing: Arc::new(routing),
            structure: Arc::new(structure),
            index_of,
            static_graph,
        })
    }

    /// Node-table slot of a retained physical node.
    pub fn node_slot(&self, nid: NodeId) -> CoreResult<usize> {
        slot_of(&self.index_of, nid)
    }

    /// Structural digest: covers targets, logical structure (including
    /// the physical support chains that drive annotation), and the
    /// static graph. Two plans with equal digests produce bit-identical
    /// answers for any sample selection.
    pub fn digest(&self) -> u64 {
        // FNV-1a, matching the style of `RemosGraph::digest`.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        fold(self.epoch);
        fold(self.targets.len() as u64);
        for t in &self.targets {
            fold(t.0 as u64);
        }
        fold(self.structure.nodes.len() as u64);
        for n in &self.structure.nodes {
            fold(n.0 as u64);
        }
        fold(self.structure.links.len() as u64);
        for l in &self.structure.links {
            fold(l.a.0 as u64);
            fold(l.b.0 as u64);
            fold(l.capacity.to_bits());
            fold(l.latency.as_nanos());
            for side in &l.phys {
                fold(side.len() as u64);
                for d in side {
                    fold(d.index() as u64);
                }
            }
        }
        fold(self.static_graph.digest());
        h
    }
}

fn slot_of(index_of: &BTreeMap<NodeId, usize>, nid: NodeId) -> CoreResult<usize> {
    index_of.get(&nid).copied().ok_or_else(|| {
        RemosError::Internal(format!("logical structure references unretained node {nid:?}"))
    })
}

/// Bounded LRU over [`QueryPlan`]s keyed by `(epoch, canonical targets)`.
///
/// Capacities are tiny (tens of plans), so the store is a flat `Vec`
/// with a logical tick for recency — deterministic and allocation-light.
pub struct PlanCache {
    cap: usize,
    tick: u64,
    entries: Vec<Entry>,
}

struct Entry {
    epoch: u64,
    targets: Vec<String>,
    plan: Arc<QueryPlan>,
    last_used: u64,
}

impl PlanCache {
    /// Cache holding at most `cap` plans (`0` disables storage).
    pub fn new(cap: usize) -> PlanCache {
        PlanCache { cap, tick: 0, entries: Vec::new() }
    }

    /// Look up a plan; refreshes its recency on hit.
    pub fn get(&mut self, epoch: u64, targets: &[String]) -> Option<Arc<QueryPlan>> {
        self.tick += 1;
        let tick = self.tick;
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.epoch == epoch && e.targets.as_slice() == targets)?;
        e.last_used = tick;
        Some(Arc::clone(&e.plan))
    }

    /// Insert (or replace) a plan. Returns `true` if a resident entry
    /// was evicted to make room.
    pub fn insert(&mut self, epoch: u64, targets: Vec<String>, plan: Arc<QueryPlan>) -> bool {
        if self.cap == 0 {
            return false;
        }
        self.tick += 1;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.epoch == epoch && e.targets == targets)
        {
            e.plan = plan;
            e.last_used = self.tick;
            return false;
        }
        let mut evicted = false;
        if self.entries.len() >= self.cap {
            // Evict the least-recently-used entry. Ticks are unique, so
            // the victim is deterministic.
            if let Some(i) = (0..self.entries.len()).min_by_key(|&i| self.entries[i].last_used) {
                self.entries.swap_remove(i);
                evicted = true;
            }
        }
        self.entries.push(Entry { epoch, targets, plan, last_used: self.tick });
        evicted
    }

    /// Drop every cached plan.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::{mbps, SimDuration, TopologyBuilder};

    fn tiny_plan(epoch: u64) -> Arc<QueryPlan> {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        b.link(h1, h2, mbps(10.0), SimDuration::from_micros(5)).unwrap();
        let topo = Arc::new(b.build().unwrap());
        Arc::new(QueryPlan::build(epoch, topo, vec![h1, h2]).unwrap())
    }

    fn key(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        let p = tiny_plan(0);
        assert!(!c.insert(0, key(&["a"]), Arc::clone(&p)));
        assert!(!c.insert(0, key(&["b"]), Arc::clone(&p)));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(0, &key(&["a"])).is_some());
        assert!(c.insert(0, key(&["c"]), Arc::clone(&p)));
        assert!(c.get(0, &key(&["a"])).is_some());
        assert!(c.get(0, &key(&["b"])).is_none());
        assert!(c.get(0, &key(&["c"])).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let mut c = PlanCache::new(4);
        let p = tiny_plan(0);
        c.insert(0, key(&["a"]), Arc::clone(&p));
        assert!(c.get(1, &key(&["a"])).is_none());
        assert!(c.get(0, &key(&["a"])).is_some());
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = PlanCache::new(0);
        let p = tiny_plan(0);
        assert!(!c.insert(0, key(&["a"]), p));
        assert!(c.get(0, &key(&["a"])).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn rebuilt_plan_digest_is_stable() {
        let a = tiny_plan(3);
        let b = tiny_plan(3);
        assert_eq!(a.digest(), b.digest());
        let other_epoch = tiny_plan(4);
        assert_ne!(a.digest(), other_epoch.digest());
    }
}
