//! # remos-core — the Remos resource query interface
//!
//! Rust reproduction of the system described in *"A Resource Query
//! Interface for Network-Aware Applications"* (Lowekamp, Miller, Gross,
//! Subhlok, Steenkiste, Sutherland — CMU, HPDC 1998).
//!
//! Remos lets network-aware applications obtain information about their
//! execution environment through two queries, built with
//! [`Query`](query::Query) and executed by [`Remos::run`]:
//!
//! * [`Query::graph`](query::Query::graph) — the **logical network
//!   topology** connecting a set of nodes, annotated with static
//!   capacities and dynamic available-bandwidth statistics (§4.3);
//! * [`Query::flows`](query::Query::flows) — bandwidth/latency for a set
//!   of **flows** (fixed / variable / independent classes), solved
//!   simultaneously under max-min fair sharing (§4.2).
//!
//! All dynamic quantities are reported as quartile summaries with an
//! estimation-accuracy measure ([`stats::Quartiles`], §4.4), over a
//! caller-chosen [`Timeframe`] (current / historical window / predicted
//! future).
//!
//! The implementation mirrors the paper's split (§5, Fig 2):
//! [`collector`] retrieves raw network information (SNMP polling, active
//! benchmark probing, or federations of both), and [`modeler`] generates
//! logical topologies and satisfies flow requests on top of it.
//!
//! ```
//! use remos_core::prelude::*;
//! use remos_core::{Remos, RemosConfig};
//! use remos_core::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
//! use remos_core::collector::SimClock;
//! use remos_net::{Simulator, TopologyBuilder, mbps, SimDuration};
//! use remos_snmp::sim::{register_all_agents, share};
//! use remos_snmp::SimTransport;
//! use std::sync::Arc;
//!
//! // A two-host network with one router.
//! let mut b = TopologyBuilder::new();
//! let h1 = b.compute("h1");
//! let h2 = b.compute("h2");
//! let r = b.network("r");
//! b.link(h1, r, mbps(100.0), SimDuration::from_micros(100)).unwrap();
//! b.link(r, h2, mbps(100.0), SimDuration::from_micros(100)).unwrap();
//! let sim = share(Simulator::new(b.build().unwrap()).unwrap());
//!
//! // SNMP agents on every node, a collector over them, and Remos on top.
//! let transport = Arc::new(SimTransport::new());
//! let agents = register_all_agents(&transport, &sim, "public");
//! let collector = SnmpCollector::new(transport, agents, SnmpCollectorConfig::default());
//! let mut remos = Remos::new(
//!     Box::new(collector),
//!     Box::new(SimClock(Arc::clone(&sim))),
//!     RemosConfig::default(),
//! );
//!
//! let graph = remos.run(Query::graph(["h1", "h2"])).unwrap().into_graph().unwrap();
//! let h1 = graph.index_of("h1").unwrap();
//! let h2 = graph.index_of("h2").unwrap();
//! assert!(graph.path_avail_bw(h1, h2).unwrap() > mbps(95.0));
//! ```

// The query path shares the engine's steady-state allocation budget
// (see docs/PERFORMANCE.md); performance-smelling patterns are build
// errors, not suggestions.
#![deny(clippy::perf)]

pub mod api;
pub mod budget;
pub mod collector;
pub mod error;
pub mod flows;
pub mod graph;
pub mod modeler;
pub mod provenance;
pub mod quality;
pub mod query;
pub mod stats;
pub mod timeframe;
pub mod whatif;

pub use api::{Remos, RemosConfig};
pub use budget::QueryBudget;
pub use error::{CoreResult, InvalidQueryKind, RemosError};
pub use flows::{FlowEndpoints, FlowInfoRequest, FlowInfoResponse};
pub use graph::{HostInfo, RemosGraph, RemosLink, RemosNode};
pub use modeler::{Modeler, ModelerConfig};
pub use provenance::Provenance;
pub use quality::DataQuality;
pub use query::{Query, QueryResult, QuerySpec};
pub use stats::Quartiles;
pub use timeframe::Timeframe;
pub use whatif::{FctReport, FlowFct, HypotheticalFlow};

/// Everything a query-writing application needs, in one import:
/// `use remos_core::prelude::*;`.
pub mod prelude {
    pub use crate::budget::QueryBudget;
    pub use crate::error::{CoreResult, InvalidQueryKind, RemosError};
    pub use crate::flows::{FlowInfoRequest, FlowInfoResponse};
    pub use crate::provenance::Provenance;
    pub use crate::quality::DataQuality;
    pub use crate::query::{Query, QueryResult, QuerySpec};
    pub use crate::timeframe::Timeframe;
    pub use crate::whatif::{FctReport, FlowFct, HypotheticalFlow};
}
