//! Query provenance: where an answer's numbers came from.
//!
//! Remos answers are best-effort estimates (§4, §10). A [`Provenance`]
//! record makes the derivation inspectable: how many collector snapshots
//! the Modeler consumed, how old they were, the worst [`DataQuality`]
//! among them, which solver produced the numbers, and how large the
//! solved scope was. Provenance is attached to every
//! [`crate::RemosGraph`] and [`crate::flows::FlowGrant`] by default;
//! builders can opt out with `without_provenance()` (see
//! [`crate::query::GraphQuery`]).

use crate::quality::DataQuality;
use crate::timeframe::Timeframe;
use remos_net::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How an estimate was derived.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// The timeframe the query asked for.
    pub timeframe: Timeframe,
    /// Collector snapshots the Modeler consumed (1 for `Current` and
    /// `Future`, the window population for `Window`).
    pub snapshots: usize,
    /// Collector time of the newest snapshot consumed.
    pub newest_sample: Option<SimTime>,
    /// Collector time of the oldest snapshot consumed.
    pub oldest_sample: Option<SimTime>,
    /// Worst measurement quality among the data behind the answer. For a
    /// graph this spans every logical link; for a flow grant, the
    /// resources on that flow's path.
    pub worst_quality: DataQuality,
    /// Human-readable solver description (modeler stage + sharing policy
    /// or predictor).
    pub solver: String,
    /// Size of the solved scope: logical links annotated (graph queries)
    /// or path resources crossed (flow grants).
    pub scope: usize,
    /// True when the answer was produced by a degraded serving mode
    /// (stale-snapshot or topology-only rung of a serving front end's
    /// degradation ladder) rather than a freshly measured query.
    #[serde(default)]
    pub degraded: bool,
    /// Which collector the measurements came from (see
    /// [`crate::collector::Collector::describe`]); a federated collector
    /// reports how many of its children contributed current data, so a
    /// failover is visible in the answer itself.
    #[serde(default)]
    pub source: Option<String>,
}

impl Provenance {
    /// Span covered by the consumed snapshots (zero when one snapshot).
    pub fn sample_span(&self) -> Option<SimDuration> {
        match (self.newest_sample, self.oldest_sample) {
            (Some(n), Some(o)) => Some(n.saturating_since(o)),
            _ => None,
        }
    }

    /// Age of the newest consumed snapshot relative to `now`.
    pub fn poll_age(&self, now: SimTime) -> Option<SimDuration> {
        self.newest_sample.map(|t| now.saturating_since(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_ages() {
        let p = Provenance {
            timeframe: Timeframe::Current,
            snapshots: 3,
            newest_sample: Some(SimTime::from_secs(10)),
            oldest_sample: Some(SimTime::from_secs(7)),
            worst_quality: DataQuality::Fresh,
            solver: "test".into(),
            scope: 5,
            degraded: false,
            source: None,
        };
        assert_eq!(p.sample_span(), Some(SimDuration::from_secs(3)));
        assert_eq!(p.poll_age(SimTime::from_secs(12)), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn missing_times_yield_none() {
        let p = Provenance {
            timeframe: Timeframe::Current,
            snapshots: 0,
            newest_sample: None,
            oldest_sample: None,
            worst_quality: DataQuality::Missing,
            solver: "test".into(),
            scope: 0,
            degraded: false,
            source: None,
        };
        assert_eq!(p.sample_span(), None);
        assert_eq!(p.poll_age(SimTime::ZERO), None);
    }
}
