//! Statistical measures.
//!
//! "Remos reports all quantities as a set of probabilistic quartile
//! measures along with a measure of estimation accuracy" (§4). Variance is
//! deliberately avoided: it "is only meaningful when applied to a normally
//! distributed random variable", and available-bandwidth measurements
//! under bursty cross-traffic are typically bimodal or otherwise
//! asymmetric. Quartiles are "the best choice for an unknown data
//! distribution" [Jain 91].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A five-number quartile summary with mean, sample count and an
/// estimation-accuracy measure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quartiles {
    /// Minimum observed value.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Arithmetic mean (supplementary; quartiles are primary).
    pub mean: f64,
    /// Number of samples summarized.
    pub samples: usize,
    /// Estimation accuracy in [0, 1]: how trustworthy the summary is.
    /// Derived from sample count and relative dispersion — a single
    /// measurement, or a wildly spread one, scores low.
    pub accuracy: f64,
}

/// The pair of order-statistic ranks bracketing the R-7
/// (linear-interpolation, spreadsheet-convention) percentile `p` of `n`
/// samples, plus the fractional rank `h` used for interpolation.
fn percentile_ranks(n: usize, p: f64) -> (usize, usize, f64) {
    debug_assert!(n >= 1);
    debug_assert!((0.0..=1.0).contains(&p));
    let h = p * (n - 1) as f64;
    (h.floor() as usize, h.ceil() as usize, h)
}

impl Quartiles {
    /// Summarize a set of samples. Returns `None` for an empty set.
    pub fn from_samples(samples: &[f64]) -> Option<Quartiles> {
        Self::from_samples_in(samples, &mut Vec::new())
    }

    /// Summarize a set of samples, using `scratch` as the filter/select
    /// workspace instead of allocating one internally. Steady-state
    /// callers (the modeler's per-link annotation loop) reuse one buffer
    /// across calls, so the hot path allocates nothing. The result is
    /// bit-identical to [`Quartiles::from_samples`] on every input: both
    /// run the same finite-filter, order-statistic selection, and R-7
    /// interpolation sequence over the same values.
    ///
    /// The five-number summary needs at most eight order statistics
    /// (min, max, and the two R-7 bracketing ranks per quartile), so
    /// they are obtained by `select_nth_unstable_by` under `total_cmp`
    /// — O(n) expected per statistic instead of an O(n log n) full sort.
    /// Selection yields exactly the value a `total_cmp` sort would place
    /// at that rank, so every percentile is bit-identical to the sorted
    /// implementation it replaces. The mean is summed in input order
    /// (the sorted order no longer exists to sum in); its
    /// last-few-ulps may differ from the old sorted-order sum, which no
    /// consumer or digest depends on.
    pub fn from_samples_in(samples: &[f64], scratch: &mut Vec<f64>) -> Option<Quartiles> {
        if samples.is_empty() {
            return None;
        }
        scratch.clear();
        scratch.extend(samples.iter().copied().filter(|v| v.is_finite()));
        if scratch.is_empty() {
            return None;
        }
        let n = scratch.len();
        let mean = scratch.iter().sum::<f64>() / n as f64;
        if n == 1 {
            let v = scratch[0];
            return Some(Quartiles {
                min: v,
                q1: v,
                median: v,
                q3: v,
                max: v,
                mean,
                samples: 1,
                // One dynamic measurement: low confidence by construction.
                accuracy: 0.25,
            });
        }
        let (q1l, q1h, h1) = percentile_ranks(n, 0.25);
        let (q2l, q2h, h2) = percentile_ranks(n, 0.50);
        let (q3l, q3h, h3) = percentile_ranks(n, 0.75);
        // Ranks in ascending order; duplicates are shared below.
        let mut ranks = [0, q1l, q1h, q2l, q2h, q3l, q3h, n - 1];
        ranks.sort_unstable();
        // Select from the highest rank down. After selecting rank `k`,
        // the k smallest values all sit (unordered) left of position k,
        // so every lower rank can be selected within that prefix — the
        // working slice only shrinks.
        let mut vals = [0.0f64; 8];
        let mut upper = n;
        for j in (0..ranks.len()).rev() {
            let k = ranks[j];
            if j + 1 < ranks.len() && ranks[j + 1] == k {
                vals[j] = vals[j + 1];
                continue;
            }
            let (_, v, _) = scratch[..upper].select_nth_unstable_by(k, f64::total_cmp);
            vals[j] = *v;
            upper = k.max(1);
        }
        let value_at = |k: usize| match ranks.iter().position(|&r| r == k) {
            Some(j) => vals[j],
            // Unreachable: every rank queried below is a member of `ranks`.
            None => vals[0],
        };
        // R-7 interpolation, arithmetic unchanged from the sorted-slice
        // implementation.
        let interp = |h: f64, lo: usize, hi: usize| {
            let vlo = value_at(lo);
            if lo == hi {
                vlo
            } else {
                vlo + (h - lo as f64) * (value_at(hi) - vlo)
            }
        };
        let q1 = interp(h1, q1l, q1h);
        let median = interp(h2, q2l, q2h);
        let q3 = interp(h3, q3l, q3h);
        Some(Quartiles {
            min: value_at(0),
            q1,
            median,
            q3,
            max: value_at(n - 1),
            mean,
            samples: n,
            accuracy: Self::accuracy_for(n, q3 - q1, mean),
        })
    }

    /// Summary of a single known value (degenerate distribution, e.g. a
    /// static link capacity or a `Current` timeframe reading).
    pub fn exact(v: f64) -> Quartiles {
        Quartiles {
            min: v,
            q1: v,
            median: v,
            q3: v,
            max: v,
            mean: v,
            samples: 1,
            accuracy: 1.0,
        }
    }

    fn accuracy_for(n: usize, iqr: f64, mean: f64) -> f64 {
        debug_assert!(n >= 2, "n == 1 is summarized inline");
        let scale = mean.abs().max(f64::MIN_POSITIVE);
        let dispersion = (iqr / scale).min(1.0);
        // More samples raise confidence; relative dispersion lowers it.
        let count_term = 1.0 - 1.0 / (n as f64).sqrt();
        (count_term * (1.0 - 0.5 * dispersion)).clamp(0.0, 1.0)
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Map every quantile through a monotone non-decreasing function
    /// (e.g. convert utilization to available bandwidth, clamp at zero).
    pub fn map_monotone(&self, f: impl Fn(f64) -> f64) -> Quartiles {
        Quartiles {
            min: f(self.min),
            q1: f(self.q1),
            median: f(self.median),
            q3: f(self.q3),
            max: f(self.max),
            mean: f(self.mean),
            samples: self.samples,
            accuracy: self.accuracy,
        }
    }

    /// Widen the summary about its median by `factor` (≥ 1), clamping at
    /// zero, and reduce the accuracy correspondingly. Used when an estimate
    /// is derived from stale data: the quantities were right *once*, so the
    /// center is kept but the plausible spread grows with the data's age.
    pub fn widen(&self, factor: f64) -> Quartiles {
        debug_assert!(factor >= 1.0);
        let c = self.median;
        if self.max - self.min <= 0.0 {
            // Degenerate summary (e.g. a single Current reading): there is
            // no spread to scale, so fabricate one proportional to the
            // value itself — a stale 10 Mbps reading means "somewhere
            // around 10 Mbps by now".
            let pad = c.abs() * (factor - 1.0) * 0.5;
            return Quartiles {
                min: (c - pad).max(0.0),
                q1: (c - pad * 0.5).max(0.0),
                median: c.max(0.0),
                q3: c + pad * 0.5,
                max: c + pad,
                mean: self.mean.max(0.0),
                samples: self.samples,
                accuracy: (self.accuracy / factor).clamp(0.0, 1.0),
            };
        }
        let w = |v: f64| (c + (v - c) * factor).max(0.0);
        Quartiles {
            min: w(self.min),
            q1: w(self.q1),
            median: c.max(0.0),
            q3: w(self.q3),
            max: w(self.max),
            mean: w(self.mean),
            samples: self.samples,
            accuracy: (self.accuracy / factor).clamp(0.0, 1.0),
        }
    }

    /// Map through a monotone *decreasing* function, flipping the order of
    /// the quantiles so min stays min.
    pub fn map_antitone(&self, f: impl Fn(f64) -> f64) -> Quartiles {
        Quartiles {
            min: f(self.max),
            q1: f(self.q3),
            median: f(self.median),
            q3: f(self.q1),
            max: f(self.min),
            mean: f(self.mean),
            samples: self.samples,
            accuracy: self.accuracy,
        }
    }
}

impl fmt::Display for Quartiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3e} | {:.3e} | {:.3e} | {:.3e} | {:.3e}] (n={}, acc={:.2})",
            self.min, self.q1, self.median, self.q3, self.max, self.samples, self.accuracy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_quartiles() {
        let q = Quartiles::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.max, 5.0);
        assert_eq!(q.mean, 3.0);
        assert_eq!(q.samples, 5);
    }

    #[test]
    fn unordered_input() {
        let q = Quartiles::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(q.median, 3.0);
    }

    #[test]
    fn empty_and_nonfinite() {
        assert!(Quartiles::from_samples(&[]).is_none());
        assert!(Quartiles::from_samples(&[f64::NAN, f64::INFINITY]).is_none());
        let q = Quartiles::from_samples(&[f64::NAN, 2.0]).unwrap();
        assert_eq!(q.samples, 1);
        assert_eq!(q.median, 2.0);
    }

    #[test]
    fn single_sample_has_low_accuracy() {
        let q = Quartiles::from_samples(&[7.0]).unwrap();
        assert_eq!(q.min, 7.0);
        assert_eq!(q.max, 7.0);
        assert!(q.accuracy < 0.5);
        assert_eq!(Quartiles::exact(7.0).accuracy, 1.0);
    }

    #[test]
    fn accuracy_grows_with_samples_and_shrinks_with_spread() {
        let tight: Vec<f64> = (0..50).map(|i| 100.0 + (i % 3) as f64).collect();
        let loose: Vec<f64> = (0..50).map(|i| ((i * 37) % 100) as f64 * 2.0).collect();
        let qa = Quartiles::from_samples(&tight).unwrap();
        let qb = Quartiles::from_samples(&loose).unwrap();
        assert!(qa.accuracy > qb.accuracy, "{} vs {}", qa.accuracy, qb.accuracy);
        let few = Quartiles::from_samples(&tight[..4]).unwrap();
        assert!(qa.accuracy > few.accuracy);
    }

    #[test]
    fn bimodal_distribution_is_captured() {
        // 50/50 bursty link: 0 or 100 Mbps. Mean says 50; quartiles show
        // the truth — this is the paper's §4.4 motivating example.
        let samples: Vec<f64> =
            (0..100).map(|i| if i % 2 == 0 { 0.0 } else { 100e6 }).collect();
        let q = Quartiles::from_samples(&samples).unwrap();
        assert_eq!(q.min, 0.0);
        assert_eq!(q.max, 100e6);
        assert_eq!(q.q1, 0.0);
        assert_eq!(q.q3, 100e6);
        assert!((q.mean - 50e6).abs() < 1e3);
    }

    #[test]
    fn monotone_maps() {
        let q = Quartiles::from_samples(&[10.0, 20.0, 30.0]).unwrap();
        let doubled = q.map_monotone(|v| v * 2.0);
        assert_eq!(doubled.min, 20.0);
        assert_eq!(doubled.max, 60.0);
        // available = capacity - utilization is antitone in utilization.
        let avail = q.map_antitone(|u| 100.0 - u);
        assert_eq!(avail.min, 70.0);
        assert_eq!(avail.max, 90.0);
        assert!(avail.min <= avail.q1 && avail.q1 <= avail.median);
        assert!(avail.median <= avail.q3 && avail.q3 <= avail.max);
    }

    #[test]
    fn iqr() {
        let q = Quartiles::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q.iqr(), 2.0);
    }

    #[test]
    fn widen_scales_spread_and_cuts_accuracy() {
        let q = Quartiles::from_samples(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        let w = q.widen(2.0);
        assert_eq!(w.median, q.median);
        assert_eq!(w.iqr(), 2.0 * q.iqr());
        assert!(w.min <= w.q1 && w.q1 <= w.median && w.median <= w.q3 && w.q3 <= w.max);
        assert!(w.accuracy < q.accuracy);
        assert_eq!(q.widen(1.0), q);
        // Large factors clamp at zero rather than going negative.
        assert_eq!(q.widen(100.0).min, 0.0);
        // Degenerate summaries gain a spread proportional to the value.
        let e = Quartiles::exact(10.0).widen(2.0);
        assert_eq!(e.median, 10.0);
        assert!(e.max > e.min, "{e}");
        assert!(e.min >= 0.0 && e.accuracy < 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantiles_are_ordered(samples in prop::collection::vec(-1e9..1e9f64, 1..200)) {
                let q = Quartiles::from_samples(&samples).unwrap();
                prop_assert!(q.min <= q.q1);
                prop_assert!(q.q1 <= q.median);
                prop_assert!(q.median <= q.q3);
                prop_assert!(q.q3 <= q.max);
                prop_assert!(q.min <= q.mean && q.mean <= q.max + 1e-9);
                prop_assert!((0.0..=1.0).contains(&q.accuracy));
            }

            #[test]
            fn permutation_invariant(mut samples in prop::collection::vec(-1e6..1e6f64, 2..50)) {
                // The five quantiles are exact order statistics, so they
                // are bit-identical under any permutation. The mean is
                // summed in input order, so it (and the accuracy derived
                // from it) may differ by a few ulps.
                let q1 = Quartiles::from_samples(&samples).unwrap();
                samples.reverse();
                let q2 = Quartiles::from_samples(&samples).unwrap();
                for (a, b) in [
                    (q1.min, q2.min), (q1.q1, q2.q1), (q1.median, q2.median),
                    (q1.q3, q2.q3), (q1.max, q2.max),
                ] {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                prop_assert_eq!(q1.samples, q2.samples);
                let tol = 1e-9 * q1.mean.abs().max(1.0);
                prop_assert!((q1.mean - q2.mean).abs() <= tol, "{} vs {}", q1.mean, q2.mean);
                prop_assert!((q1.accuracy - q2.accuracy).abs() <= 1e-9);
            }

            #[test]
            fn scratch_variant_is_bit_identical(
                samples in prop::collection::vec(
                    prop_oneof![
                        -1e9..1e9f64,
                        -1e9..1e9f64,
                        -1e9..1e9f64,
                        Just(f64::NAN),
                        Just(f64::INFINITY),
                    ],
                    0..120,
                ),
            ) {
                // One scratch buffer reused across calls must never change
                // the answer — compare every f64 field by bit pattern.
                let mut scratch = Vec::new();
                let baseline = Quartiles::from_samples(&samples);
                for _ in 0..3 {
                    let reused = Quartiles::from_samples_in(&samples, &mut scratch);
                    match (baseline, reused) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            for (x, y) in [
                                (a.min, b.min), (a.q1, b.q1), (a.median, b.median),
                                (a.q3, b.q3), (a.max, b.max), (a.mean, b.mean),
                                (a.accuracy, b.accuracy),
                            ] {
                                prop_assert_eq!(x.to_bits(), y.to_bits());
                            }
                            prop_assert_eq!(a.samples, b.samples);
                        }
                        (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a, b),
                    }
                }
            }

            #[test]
            fn selection_matches_sorted_reference(
                samples in prop::collection::vec(-1e9..1e9f64, 1..200),
            ) {
                // The selection-based quartiles must be bit-identical to
                // the full-sort R-7 reference they replaced.
                let q = Quartiles::from_samples(&samples).unwrap();
                let mut sorted = samples.clone();
                sorted.sort_by(f64::total_cmp);
                let r7 = |p: f64| {
                    let (lo, hi, h) = percentile_ranks(sorted.len(), p);
                    if lo == hi {
                        sorted[lo]
                    } else {
                        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
                    }
                };
                for (got, want) in [
                    (q.min, sorted[0]),
                    (q.q1, r7(0.25)),
                    (q.median, r7(0.50)),
                    (q.q3, r7(0.75)),
                    (q.max, sorted[sorted.len() - 1]),
                ] {
                    prop_assert_eq!(got.to_bits(), want.to_bits());
                }
            }

            #[test]
            fn bounds_are_tight(samples in prop::collection::vec(-1e6..1e6f64, 1..100)) {
                let q = Quartiles::from_samples(&samples).unwrap();
                let lo = samples.iter().copied().fold(f64::MAX, f64::min);
                let hi = samples.iter().copied().fold(f64::MIN, f64::max);
                prop_assert_eq!(q.min, lo);
                prop_assert_eq!(q.max, hi);
            }
        }
    }
}
