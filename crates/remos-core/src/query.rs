//! Typed query builders for the Remos facade.
//!
//! The original entry points (`remos_get_graph`-style positional methods)
//! grew parameters — timeframe, quality floors, provenance opt-outs — that
//! positional arguments carry badly. [`Query`] is the redesigned front
//! door: build a typed spec, then execute it with
//! [`crate::api::Remos::run`]:
//!
//! ```ignore
//! let g = remos
//!     .run(Query::graph(["m-1", "m-4"])
//!         .timeframe(Timeframe::Current)
//!         .min_quality(DataQuality::Fresh))?
//!     .into_graph()?;
//! ```
//!
//! Every builder defaults to `Timeframe::Current`, no quality floor, and
//! provenance attached; each knob is an explicit named method rather than
//! a positional slot.

use crate::error::{CoreResult, RemosError};
use crate::flows::{FlowInfoRequest, FlowInfoResponse};
use crate::graph::RemosGraph;
use crate::quality::DataQuality;
use crate::timeframe::Timeframe;
use crate::whatif::{FctReport, HypotheticalFlow};
use remos_net::SimTime;

/// Entry points for building query specs.
///
/// `Query` is a namespace, not a value: each constructor returns the
/// matching typed builder.
pub struct Query;

impl Query {
    /// Start a logical-topology query over the named nodes
    /// (`remos_get_graph`).
    pub fn graph<I, S>(nodes: I) -> GraphQuery
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        GraphQuery {
            nodes: nodes.into_iter().map(Into::into).collect(),
            timeframe: Timeframe::Current,
            min_quality: None,
            provenance: true,
        }
    }

    /// Start a flow query from a built [`FlowInfoRequest`]
    /// (`remos_flow_info`).
    pub fn flows(request: FlowInfoRequest) -> FlowQuery {
        FlowQuery {
            request,
            timeframe: Timeframe::Current,
            min_quality: None,
            provenance: true,
        }
    }

    /// Start a what-if query: estimate the completion time of each
    /// hypothetical flow by replaying a fluid max-min schedule against
    /// the current topology snapshot (`remos_estimate_fcts`).
    pub fn estimate_fcts<I>(flows: I) -> WhatIfQuery
    where
        I: IntoIterator<Item = HypotheticalFlow>,
    {
        WhatIfQuery {
            flows: flows.into_iter().collect(),
            timeframe: Timeframe::Current,
            min_quality: None,
            provenance: true,
            horizon: None,
        }
    }

    /// Start a reachability query: which of `candidates` can `anchor`
    /// currently reach?
    pub fn reachable<I, S>(anchor: &str, candidates: I) -> ReachableQuery
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ReachableQuery {
            anchor: anchor.to_string(),
            candidates: candidates.into_iter().map(Into::into).collect(),
        }
    }
}

/// A typed `remos_get_graph` query.
#[derive(Clone, Debug)]
pub struct GraphQuery {
    /// Nodes the logical topology must cover.
    pub nodes: Vec<String>,
    /// Timescale of the annotations.
    pub timeframe: Timeframe,
    /// Reject the answer unless every annotation meets this floor.
    pub min_quality: Option<DataQuality>,
    /// Attach a [`crate::provenance::Provenance`] record to the graph.
    pub provenance: bool,
}

impl GraphQuery {
    /// Set the timeframe (default `Current`).
    pub fn timeframe(mut self, tf: Timeframe) -> Self {
        self.timeframe = tf;
        self
    }

    /// Demand a measurement-quality floor: if the worst annotation behind
    /// the answer does not [`DataQuality::meets`] `floor`, the query fails
    /// with [`RemosError::QualityTooLow`] instead of returning numbers the
    /// caller would silently trust.
    pub fn min_quality(mut self, floor: DataQuality) -> Self {
        self.min_quality = Some(floor);
        self
    }

    /// Attach provenance to the answer (the default).
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// Strip provenance from the answer (smaller payloads for callers
    /// that only consume the numbers).
    pub fn without_provenance(mut self) -> Self {
        self.provenance = false;
        self
    }
}

/// A typed `remos_flow_info` query.
#[derive(Clone, Debug)]
pub struct FlowQuery {
    /// The flows to solve for, in the paper's three classes.
    pub request: FlowInfoRequest,
    /// Timescale of the grants.
    pub timeframe: Timeframe,
    /// Reject the answer unless every grant meets this floor.
    pub min_quality: Option<DataQuality>,
    /// Attach a [`crate::provenance::Provenance`] record to each grant.
    pub provenance: bool,
}

impl FlowQuery {
    /// Set the timeframe (default `Current`).
    pub fn timeframe(mut self, tf: Timeframe) -> Self {
        self.timeframe = tf;
        self
    }

    /// Demand a measurement-quality floor (see
    /// [`GraphQuery::min_quality`]).
    pub fn min_quality(mut self, floor: DataQuality) -> Self {
        self.min_quality = Some(floor);
        self
    }

    /// Attach provenance to each grant (the default).
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// Strip provenance from the grants.
    pub fn without_provenance(mut self) -> Self {
        self.provenance = false;
        self
    }
}

/// A typed `remos_estimate_fcts` query.
#[derive(Clone, Debug)]
pub struct WhatIfQuery {
    /// The hypothetical flows to replay, in caller order.
    pub flows: Vec<HypotheticalFlow>,
    /// Which snapshot the background load is read from. `Current` uses
    /// the latest collector sample; `Window`/`Future` select exactly as
    /// graph and flow queries do.
    pub timeframe: Timeframe,
    /// Reject the answer unless the snapshot meets this floor.
    pub min_quality: Option<DataQuality>,
    /// Attach a [`crate::provenance::Provenance`] record (stamped with
    /// the snapshot epoch and solver mode) to the report.
    pub provenance: bool,
    /// Stop the replay at this virtual time; flows still in flight are
    /// reported with `completed = false`. `None` replays to drain.
    pub horizon: Option<SimTime>,
}

impl WhatIfQuery {
    /// Set the timeframe (default `Current`).
    pub fn timeframe(mut self, tf: Timeframe) -> Self {
        self.timeframe = tf;
        self
    }

    /// Demand a measurement-quality floor (see
    /// [`GraphQuery::min_quality`]).
    pub fn min_quality(mut self, floor: DataQuality) -> Self {
        self.min_quality = Some(floor);
        self
    }

    /// Attach provenance to the report (the default).
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// Strip provenance from the report.
    pub fn without_provenance(mut self) -> Self {
        self.provenance = false;
        self
    }

    /// Cut the replay off at `t` of virtual time instead of replaying
    /// until every flow drains.
    pub fn horizon(mut self, t: SimTime) -> Self {
        self.horizon = Some(t);
        self
    }
}

/// A typed reachability query.
#[derive(Clone, Debug)]
pub struct ReachableQuery {
    /// The node reachability is judged from.
    pub anchor: String,
    /// Candidate peers to test.
    pub candidates: Vec<String>,
}

/// Any executable query, as accepted by [`crate::api::Remos::run`]. Each
/// builder converts into this via `From`, so `remos.run(Query::graph(..))`
/// works without naming the enum.
#[derive(Clone, Debug)]
pub enum QuerySpec {
    /// A logical-topology query.
    Graph(GraphQuery),
    /// A flow query.
    Flows(FlowQuery),
    /// A reachability query.
    Reachable(ReachableQuery),
    /// A what-if flow-completion-time query.
    WhatIf(WhatIfQuery),
}

impl From<GraphQuery> for QuerySpec {
    fn from(q: GraphQuery) -> Self {
        QuerySpec::Graph(q)
    }
}

impl From<FlowQuery> for QuerySpec {
    fn from(q: FlowQuery) -> Self {
        QuerySpec::Flows(q)
    }
}

impl From<ReachableQuery> for QuerySpec {
    fn from(q: ReachableQuery) -> Self {
        QuerySpec::Reachable(q)
    }
}

impl From<WhatIfQuery> for QuerySpec {
    fn from(q: WhatIfQuery) -> Self {
        QuerySpec::WhatIf(q)
    }
}

/// The answer to an executed [`QuerySpec`], one variant per query kind.
#[derive(Clone, Debug)]
pub enum QueryResult {
    /// Answer to a [`QuerySpec::Graph`] query.
    Graph(RemosGraph),
    /// Answer to a [`QuerySpec::Flows`] query.
    Flows(FlowInfoResponse),
    /// Answer to a [`QuerySpec::Reachable`] query.
    Peers(Vec<String>),
    /// Answer to a [`QuerySpec::WhatIf`] query.
    Fcts(FctReport),
}

impl QueryResult {
    fn mismatch(self, wanted: &str) -> RemosError {
        let got = match self {
            QueryResult::Graph(_) => "graph",
            QueryResult::Flows(_) => "flows",
            QueryResult::Peers(_) => "peers",
            QueryResult::Fcts(_) => "fcts",
        };
        RemosError::Internal(format!("query result is {got}, not {wanted}"))
    }

    /// Unwrap a graph answer.
    pub fn into_graph(self) -> CoreResult<RemosGraph> {
        match self {
            QueryResult::Graph(g) => Ok(g),
            other => Err(other.mismatch("graph")),
        }
    }

    /// Unwrap a flow answer.
    pub fn into_flows(self) -> CoreResult<FlowInfoResponse> {
        match self {
            QueryResult::Flows(r) => Ok(r),
            other => Err(other.mismatch("flows")),
        }
    }

    /// Unwrap a reachability answer.
    pub fn into_peers(self) -> CoreResult<Vec<String>> {
        match self {
            QueryResult::Peers(p) => Ok(p),
            other => Err(other.mismatch("peers")),
        }
    }

    /// Unwrap a what-if answer.
    pub fn into_fcts(self) -> CoreResult<FctReport> {
        match self {
            QueryResult::Fcts(r) => Ok(r),
            other => Err(other.mismatch("fcts")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::SimDuration;

    #[test]
    fn graph_builder_defaults_and_knobs() {
        let q = Query::graph(["m-1", "m-2"]);
        assert_eq!(q.nodes, vec!["m-1".to_string(), "m-2".to_string()]);
        assert_eq!(q.timeframe, Timeframe::Current);
        assert_eq!(q.min_quality, None);
        assert!(q.provenance);

        let q = q
            .timeframe(Timeframe::Window(SimDuration::from_secs(5)))
            .min_quality(DataQuality::Fresh)
            .without_provenance();
        assert_eq!(q.timeframe, Timeframe::Window(SimDuration::from_secs(5)));
        assert_eq!(q.min_quality, Some(DataQuality::Fresh));
        assert!(!q.provenance);
    }

    #[test]
    fn whatif_builder_defaults_and_knobs() {
        let q = Query::estimate_fcts([HypotheticalFlow::new("m-1", "m-4", 1 << 20)]);
        assert_eq!(q.flows.len(), 1);
        assert_eq!(q.timeframe, Timeframe::Current);
        assert_eq!(q.min_quality, None);
        assert!(q.provenance);
        assert_eq!(q.horizon, None);

        let q = q
            .timeframe(Timeframe::Window(SimDuration::from_secs(5)))
            .min_quality(DataQuality::Fresh)
            .horizon(SimTime::from_secs(30))
            .without_provenance();
        assert_eq!(q.timeframe, Timeframe::Window(SimDuration::from_secs(5)));
        assert_eq!(q.min_quality, Some(DataQuality::Fresh));
        assert_eq!(q.horizon, Some(SimTime::from_secs(30)));
        assert!(!q.provenance);

        let spec: QuerySpec = q.into();
        assert!(matches!(spec, QuerySpec::WhatIf(_)));
    }

    #[test]
    fn specs_convert_and_results_unwrap() {
        let spec: QuerySpec = Query::graph(["a"]).into();
        assert!(matches!(spec, QuerySpec::Graph(_)));
        let spec: QuerySpec = Query::flows(FlowInfoRequest::new().independent("a", "b")).into();
        assert!(matches!(spec, QuerySpec::Flows(_)));
        let spec: QuerySpec = Query::reachable("a", ["b", "c"]).into();
        assert!(matches!(spec, QuerySpec::Reachable(_)));

        let peers = QueryResult::Peers(vec!["b".into()]);
        assert_eq!(peers.clone().into_peers().unwrap(), vec!["b".to_string()]);
        assert!(matches!(
            peers.into_graph(),
            Err(RemosError::Internal(_))
        ));
    }
}
