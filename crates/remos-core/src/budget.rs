//! Per-request deadline budgets for the serving plane.
//!
//! A [`QueryBudget`] carries the absolute simulated-time deadline a
//! request must be answered by. The facade threads it through every
//! expensive stage of a query — measurement, plan building, sample
//! selection, solving — and sheds the request with
//! [`RemosError::DeadlineExceeded`] the moment the deadline has passed,
//! instead of computing an answer nobody will wait for. Deadlines are
//! denominated in *measured* (simulated) time, so shed decisions are
//! bit-reproducible run-to-run.

use crate::error::{CoreResult, RemosError};
use remos_net::{SimDuration, SimTime};

/// Deadline budget of one request. `deadline: None` means unlimited —
/// the behavior of the plain [`crate::Remos::run`] entry points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Absolute measured-time deadline, if any.
    pub deadline: Option<SimTime>,
}

impl QueryBudget {
    /// A budget that never expires.
    pub const UNLIMITED: QueryBudget = QueryBudget { deadline: None };

    /// A budget expiring at the absolute time `deadline`.
    pub fn until(deadline: SimTime) -> QueryBudget {
        QueryBudget { deadline: Some(deadline) }
    }

    /// A budget of `allowance` starting at `now`.
    pub fn starting(now: SimTime, allowance: SimDuration) -> QueryBudget {
        QueryBudget { deadline: Some(now + allowance) }
    }

    /// `Ok` while the deadline has not passed at `now`; a typed
    /// [`RemosError::DeadlineExceeded`] once it has.
    pub fn check(&self, now: SimTime) -> CoreResult<()> {
        match self.deadline {
            Some(d) if now > d => {
                Err(RemosError::DeadlineExceeded { late_by: now.saturating_since(d) })
            }
            _ => Ok(()),
        }
    }

    /// True once the deadline has passed at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        self.check(now).is_err()
    }

    /// Budget left at `now` (`None` = unlimited; zero once expired).
    pub fn remaining(&self, now: SimTime) -> Option<SimDuration> {
        self.deadline.map(|d| d.saturating_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = QueryBudget::UNLIMITED;
        assert!(b.check(SimTime::from_secs(1_000_000)).is_ok());
        assert_eq!(b.remaining(SimTime::ZERO), None);
    }

    #[test]
    fn deadline_trips_typed_error() {
        let b = QueryBudget::until(SimTime::from_secs(5));
        assert!(b.check(SimTime::from_secs(5)).is_ok(), "deadline instant still admits");
        let err = b.check(SimTime::from_secs(7)).unwrap_err();
        assert!(matches!(
            err,
            RemosError::DeadlineExceeded { late_by } if late_by == SimDuration::from_secs(2)
        ));
        assert!(b.expired(SimTime::from_secs(7)));
        assert_eq!(b.remaining(SimTime::from_secs(7)), Some(SimDuration::ZERO));
    }

    #[test]
    fn starting_offsets_from_now() {
        let b = QueryBudget::starting(SimTime::from_secs(2), SimDuration::from_secs(3));
        assert_eq!(b.deadline, Some(SimTime::from_secs(5)));
        assert_eq!(
            b.remaining(SimTime::from_secs(3)),
            Some(SimDuration::from_secs(2))
        );
    }
}
