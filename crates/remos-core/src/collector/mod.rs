//! Collectors: the network-oriented half of the Remos implementation.
//!
//! "The Remos implementation has two components, a Collector and Modeler;
//! they are responsible for network-oriented and application-oriented
//! functionality, respectively. A Collector consists of a process that
//! retrieves raw information about the network." (§5)
//!
//! Three collectors are provided, mirroring the paper:
//! * [`snmp::SnmpCollector`] — discovers topology and polls interface
//!   octet counters via the SNMP substrate (the paper's primary collector);
//! * [`benchmark::BenchmarkCollector`] — actively probes host pairs with
//!   short transfers "for environments where the use of SNMP is not
//!   possible or practical";
//! * [`multi::MultiCollector`] — multiple cooperating collectors, each
//!   owning a region, merged into one view ("a large environment may
//!   require multiple cooperating Collectors").

pub mod benchmark;
pub mod multi;
pub mod oracle;
pub mod shard;
pub mod snmp;

use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use crate::quality::DataQuality;
use remos_net::topology::{DirLink, Topology};
use remos_net::{Bps, SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// One utilization sample: per-directed-interface traffic rates observed
/// over the interval ending at `t`, each tagged with the [`DataQuality`]
/// of its measurement (fresh, carried forward from an earlier interval, or
/// missing entirely).
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// End of the measurement interval.
    pub t: SimTime,
    /// Length of the interval the rates were averaged over.
    pub interval: SimDuration,
    /// Utilization in bits/s, indexed by [`DirLink::index`] of the
    /// collector's topology.
    pub util: Box<[Bps]>,
    /// Per-directed-interface measurement quality, parallel to `util`.
    pub quality: Box<[DataQuality]>,
}

impl Snapshot {
    /// A snapshot whose every entry was freshly measured (the common case
    /// for fault-free collectors).
    pub fn fresh(t: SimTime, interval: SimDuration, util: Box<[Bps]>) -> Snapshot {
        let quality = vec![DataQuality::Fresh; util.len()].into_boxed_slice();
        Snapshot { t, interval, util, quality }
    }

    /// Utilization of one directed interface.
    pub fn util_of(&self, d: DirLink) -> Bps {
        self.util[d.index()]
    }

    /// Measurement quality of one directed interface; indices beyond the
    /// snapshot (topology drift) read as [`DataQuality::Missing`].
    pub fn quality_of(&self, d: DirLink) -> DataQuality {
        self.quality.get(d.index()).copied().unwrap_or(DataQuality::Missing)
    }
}

/// Bounded history of utilization snapshots, newest last.
#[derive(Clone, Debug)]
pub struct SampleHistory {
    samples: VecDeque<Snapshot>,
    max_len: usize,
    /// Monotone counter bumped whenever the sample set changes (a snapshot
    /// appended, or the history cleared on rediscovery). Consumers use it
    /// to tell whether two reads of the history saw the same samples.
    generation: u64,
}

/// Default history bound (samples).
pub const DEFAULT_HISTORY_LEN: usize = 512;

impl Default for SampleHistory {
    fn default() -> Self {
        SampleHistory::new(DEFAULT_HISTORY_LEN)
    }
}

impl SampleHistory {
    /// History bounded to `max_len` samples.
    pub fn new(max_len: usize) -> Self {
        assert!(max_len > 0);
        SampleHistory { samples: VecDeque::new(), max_len, generation: 0 }
    }

    /// Append a snapshot, evicting the oldest if full.
    pub fn push(&mut self, s: Snapshot) {
        if self.samples.len() == self.max_len {
            self.samples.pop_front();
        }
        self.samples.push_back(s);
        self.generation += 1;
    }

    /// All samples, oldest first.
    pub fn all(&self) -> impl Iterator<Item = &Snapshot> {
        self.samples.iter()
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.samples.back()
    }

    /// Samples whose interval end lies within `window` of the latest
    /// sample (inclusive), oldest first.
    pub fn within(&self, window: SimDuration) -> Vec<&Snapshot> {
        let Some(latest) = self.latest() else { return Vec::new() };
        self.samples
            .iter()
            .filter(|s| latest.t.saturating_since(s.t) <= window)
            .collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Discard all samples (used when the topology is re-discovered and
    /// interface indices change meaning).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.generation += 1;
    }

    /// Pop the oldest snapshot *for buffer reuse* — only when the history
    /// is full, i.e. exactly the snapshot the next [`push`] would evict
    /// anyway. Steady-state collectors recycle the returned `util` /
    /// `quality` boxes in place of fresh allocations (the zero-alloc
    /// contract). Bumps the generation: the sample set changed.
    ///
    /// [`push`]: SampleHistory::push
    pub fn recycle_oldest(&mut self) -> Option<Snapshot> {
        if self.samples.len() < self.max_len {
            return None;
        }
        self.generation += 1;
        self.samples.pop_front()
    }

    /// Monotone snapshot-generation counter: bumped on every [`push`]
    /// and [`clear`]. Equal generations guarantee equal sample sets.
    ///
    /// [`push`]: SampleHistory::push
    /// [`clear`]: SampleHistory::clear
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The collector interface the Modeler builds on.
pub trait Collector: Send {
    /// Discover (or re-discover) the network view. Must be called before
    /// [`Collector::topology`]; re-discovery clears the sample history.
    fn refresh_topology(&mut self) -> CoreResult<()>;

    /// The discovered physical-view topology.
    fn topology(&self) -> CoreResult<Arc<Topology>>;

    /// Compute/memory resources of a named host, if known.
    fn host_info(&self, name: &str) -> CoreResult<HostInfo>;

    /// Take one measurement. Returns `true` if a utilization sample was
    /// appended (the first poll after discovery only establishes a counter
    /// baseline and returns `false`).
    fn poll(&mut self) -> CoreResult<bool>;

    /// The accumulated samples.
    fn history(&self) -> &SampleHistory;

    /// Monotone counter identifying the current discovered topology:
    /// bumped on every successful [`Collector::refresh_topology`]
    /// (explicit, trap-triggered, or lazy). Anything derived from the
    /// topology under an older epoch — routing, logicalized structures,
    /// cached query plans — must not be reused once the epoch moves.
    fn topology_epoch(&self) -> u64;

    /// Monotone counter identifying the current sample set (see
    /// [`SampleHistory::generation`]). Lets batch consumers pin one
    /// snapshot selection and detect interleaved polls.
    fn generation(&self) -> u64 {
        self.history().generation()
    }

    /// The collector's notion of the current time (from the measured
    /// system, e.g. agent sysUpTime).
    fn now(&self) -> CoreResult<SimTime>;

    /// Route collector observability (poll counters, agent-health events)
    /// into `obs`. Collectors without instrumentation may ignore this.
    fn set_obs(&mut self, obs: &remos_obs::Obs) {
        let _ = obs;
    }

    /// Short human-readable description of where measurements come from,
    /// stamped into answer [`Provenance`](crate::Provenance). Federated
    /// collectors report how many children contributed current data, so a
    /// failover shows up in the answers served during it.
    fn describe(&self) -> String {
        "collector".to_string()
    }

    /// Directed-interface indices (into this collector's *own* topology,
    /// sorted ascending) this collector actually measures; `None` means
    /// all of them. Region-scoped shard collectors report their slice of
    /// a shared fabric here so a federation can attribute each merged
    /// entry to the children that observe it instead of treating every
    /// child as a full-view contributor.
    fn coverage(&self) -> Option<&[u32]> {
        None
    }
}

/// Boxed collectors forward the whole interface, so decorators like
/// `BreakerCollector<Box<dyn Collector>>` compose over heterogeneous
/// children (the sharded federation wraps each child this way).
impl Collector for Box<dyn Collector> {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        (**self).refresh_topology()
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        (**self).topology()
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        (**self).host_info(name)
    }

    fn poll(&mut self) -> CoreResult<bool> {
        (**self).poll()
    }

    fn history(&self) -> &SampleHistory {
        (**self).history()
    }

    fn topology_epoch(&self) -> u64 {
        (**self).topology_epoch()
    }

    fn generation(&self) -> u64 {
        (**self).generation()
    }

    fn now(&self) -> CoreResult<SimTime> {
        (**self).now()
    }

    fn set_obs(&mut self, obs: &remos_obs::Obs) {
        (**self).set_obs(obs)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn coverage(&self) -> Option<&[u32]> {
        (**self).coverage()
    }
}

/// A source of unsolicited SNMP notifications (linkDown/linkUp traps).
///
/// Collectors that are handed a trap source re-discover the topology when
/// a link-state trap arrives instead of waiting for the next full scan —
/// the standard way real management systems track "networks \[whose\]
/// topology and behavior … may even change during execution".
pub trait TrapSource: Send {
    /// Drain pending notifications as `(agent name, trap PDU)` pairs.
    fn drain(&mut self) -> Vec<(String, remos_snmp::Pdu)>;
}

impl TrapSource for remos_snmp::sim::SimTrapSource {
    fn drain(&mut self) -> Vec<(String, remos_snmp::Pdu)> {
        remos_snmp::sim::SimTrapSource::drain(self)
    }
}

/// True if a PDU is a linkDown or linkUp trap.
pub fn is_link_state_trap(pdu: &remos_snmp::Pdu) -> bool {
    use remos_snmp::oid::well_known;
    if pdu.pdu_type != remos_snmp::PduType::TrapV2 {
        return false;
    }
    pdu.bindings.iter().any(|b| {
        b.oid == well_known::snmp_trap_oid()
            && matches!(
                &b.value,
                remos_snmp::Value::ObjectId(o)
                    if *o == well_known::link_down_trap() || *o == well_known::link_up_trap()
            )
    })
}

/// Something that can let measured time pass — in the simulated setting,
/// running the network engine forward. The Remos facade uses this between
/// counter reads; the elapsed time *is* the measurement cost the paper
/// attributes to adaptation decisions.
pub trait Clock: Send {
    /// Let `d` of network time elapse.
    fn advance(&mut self, d: SimDuration) -> CoreResult<()>;
}

/// Clock over the shared simulator.
pub struct SimClock(pub remos_snmp::sim::SharedSim);

impl Clock for SimClock {
    fn advance(&mut self, d: SimDuration) -> CoreResult<()> {
        self.0.lock().run_for(d).map_err(RemosError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t_secs: u64, util: &[f64]) -> Snapshot {
        Snapshot::fresh(
            SimTime::from_secs(t_secs),
            SimDuration::from_secs(1),
            util.to_vec().into_boxed_slice(),
        )
    }

    #[test]
    fn history_bounds_and_order() {
        let mut h = SampleHistory::new(3);
        for i in 0..5 {
            h.push(snap(i, &[i as f64]));
        }
        assert_eq!(h.len(), 3);
        let ts: Vec<u64> = h.all().map(|s| s.t.as_nanos() / 1_000_000_000).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        assert_eq!(h.latest().unwrap().util[0], 4.0);
    }

    #[test]
    fn window_filtering() {
        let mut h = SampleHistory::default();
        for i in 0..10 {
            h.push(snap(i, &[0.0]));
        }
        let recent = h.within(SimDuration::from_secs(3));
        assert_eq!(recent.len(), 4); // t=6,7,8,9
        assert!(h.within(SimDuration::from_secs(100)).len() == 10);
    }

    #[test]
    fn clear_empties() {
        let mut h = SampleHistory::default();
        h.push(snap(0, &[1.0]));
        assert!(!h.is_empty());
        h.clear();
        assert!(h.is_empty());
        assert!(h.latest().is_none());
    }
}
