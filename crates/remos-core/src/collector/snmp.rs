//! The SNMP collector (§5): discovers topology and polls octet counters.
//!
//! Discovery walks each agent's `system` group (name, kind via
//! sysServices), `ifTable` (interface speeds) and LLDP-style neighbor
//! table (adjacency), then reconstructs a [`Topology`]. Polling reads
//! `ifOutOctets` (falling back to the far side's `ifInOctets` when a link
//! endpoint runs no agent), differences Counter32 readings with wrap
//! handling, and appends per-interface utilization snapshots.
//!
//! Latency uses a fixed per-hop delay, exactly as the paper's collector
//! does ("For latency, the Collector currently assumes a fixed per-hop
//! delay. (A reasonable approximation as long as we use a LAN testbed.)").
//!
//! ## Degraded mode
//!
//! Polling is per-agent fault-isolated: an agent that times out or answers
//! garbage only degrades *its* interfaces, never the whole poll. Each agent
//! runs a Healthy → Degraded → Down state machine ([`AgentHealth`]); once
//! Down, the collector stops paying full-retry query costs and sends a
//! single cheap recovery probe per poll instead. Counter discontinuities
//! are detected via `sysUpTime` regression (the agent restarted, so its
//! counters restarted from zero): the poisoned interval is discarded and
//! re-baselined rather than differenced into a bogus utilization spike.
//! Every snapshot entry carries a [`DataQuality`] — `Fresh` when measured
//! this interval, `Stale { age }` while the collector carries an old value
//! forward, and `Missing` once it is older than
//! [`SnmpCollectorConfig::missing_after`] (or was never measured).

use crate::collector::{Collector, SampleHistory, Snapshot};
use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use crate::quality::DataQuality;
use remos_net::counters::rate_from_readings;
use remos_net::topology::{DirLink, NodeId, Topology, TopologyBuilder};
use remos_net::{SimDuration, SimTime};
use remos_obs::{Counter, Obs};
use remos_snmp::oid::well_known;
use remos_snmp::transport::Transport;
use remos_snmp::{Manager, RetryPolicy, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// How adjacency is discovered from the agents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DiscoveryMode {
    /// Walk the LLDP-style neighbor table (modern deployments; the
    /// default because it names peers directly).
    #[default]
    NeighborTable,
    /// Walk `ipRouteTable` and take *direct* routes as adjacency — the
    /// mechanism the paper's collector actually used ("uses SNMP to
    /// extract both static topology and dynamic bandwidth information
    /// from the routers"). Peer names resolve through the agents'
    /// `ipAddrTable`; addresses with no agent become `ip-a-b-c-d` hosts.
    RouteTable,
}

/// Configuration of an [`SnmpCollector`].
#[derive(Clone, Debug)]
pub struct SnmpCollectorConfig {
    /// Community string for all agents.
    pub community: String,
    /// Fixed per-hop one-way latency assumed for every link.
    pub per_hop_latency: SimDuration,
    /// Sample history bound.
    pub history_len: usize,
    /// Topology discovery mechanism.
    pub discovery: DiscoveryMode,
    /// Consecutive poll failures after which an agent counts as Degraded.
    pub degraded_after: u32,
    /// Consecutive poll failures after which an agent counts as Down (the
    /// collector switches from full-retry reads to single recovery probes).
    pub down_after: u32,
    /// Carried-forward (stale) data older than this is reported as
    /// [`DataQuality::Missing`].
    pub missing_after: SimDuration,
}

impl Default for SnmpCollectorConfig {
    fn default() -> Self {
        SnmpCollectorConfig {
            community: "public".to_string(),
            per_hop_latency: SimDuration::from_micros(100),
            history_len: crate::collector::DEFAULT_HISTORY_LEN,
            discovery: DiscoveryMode::default(),
            degraded_after: 1,
            down_after: 3,
            missing_after: SimDuration::from_secs(30),
        }
    }
}

/// Liveness classification of one polled agent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AgentState {
    /// Answering normally.
    #[default]
    Healthy,
    /// Missed at least [`SnmpCollectorConfig::degraded_after`] consecutive
    /// polls; still queried with full retries.
    Degraded,
    /// Missed at least [`SnmpCollectorConfig::down_after`] consecutive
    /// polls; only probed with single datagrams until it answers again.
    Down,
}

/// Per-agent health record maintained across polls.
#[derive(Clone, Debug, Default)]
pub struct AgentHealth {
    /// Current liveness classification.
    pub state: AgentState,
    /// Consecutive polls the agent failed to answer.
    pub consecutive_failures: u32,
    /// Collector time of the last successful read.
    pub last_ok: Option<SimTime>,
    /// `sysUpTime` ticks at the last successful read (regression here is
    /// the restart/discontinuity signal).
    pub last_uptime_ticks: Option<u64>,
}

/// Where a directed interface's traffic counter lives.
#[derive(Clone, Debug)]
enum CounterSource {
    /// `agents[idx]`'s interface `if_index`, ifOutOctets.
    Out { agent: usize, if_index: u32 },
    /// `agents[idx]`'s interface `if_index`, ifInOctets (far side has no
    /// agent).
    In { agent: usize, if_index: u32 },
    /// Neither endpoint runs an agent; utilization is unobservable and
    /// reported as zero with [`DataQuality::Missing`].
    None,
}

struct View {
    topo: Arc<Topology>,
    /// Per dir-link index: where to read its counter.
    sources: Vec<CounterSource>,
    hosts: HashMap<String, HostInfo>,
    /// Per dir-link: last good raw counter reading with its timestamp.
    baseline: Vec<Option<(SimTime, u32)>>,
    /// Per dir-link: last freshly measured rate (carried forward while
    /// stale).
    last_util: Vec<f64>,
    /// Per dir-link: when the rate was last freshly measured.
    last_fresh: Vec<Option<SimTime>>,
    /// The first poll after discovery only establishes baselines.
    primed: bool,
}

/// The SNMP-based collector.
pub struct SnmpCollector<T: Transport> {
    manager: Manager<T>,
    /// Single-attempt manager used to probe Down agents cheaply.
    probe: Manager<T>,
    /// Agent addresses this collector is responsible for.
    agents: Vec<String>,
    /// Health state machine, parallel to `agents`.
    health: Vec<AgentHealth>,
    cfg: SnmpCollectorConfig,
    view: Option<View>,
    /// Bumped on every successful (re-)discovery; see
    /// [`Collector::topology_epoch`].
    topology_epoch: u64,
    history: SampleHistory,
    /// Collector time at the end of the last poll, advanced by agent
    /// uptime deltas (robust to any one agent's clock resetting).
    last_t: Option<SimTime>,
    trap_source: Option<Box<dyn crate::collector::TrapSource>>,
    /// Observability handle (shared via [`SnmpCollector::set_obs`]).
    obs: Obs,
    obs_metrics: CollectorMetrics,
}

/// Cached collector-level counters (see `remos-obs`): poll cadence,
/// agent health transitions, and trap-triggered re-discoveries.
struct CollectorMetrics {
    polls: Counter,
    agent_degraded: Counter,
    agent_down: Counter,
    agent_recovered: Counter,
    rediscoveries: Counter,
}

impl CollectorMetrics {
    fn new(obs: &Obs) -> CollectorMetrics {
        CollectorMetrics {
            polls: obs.counter("collector_polls_total"),
            agent_degraded: obs.counter("collector_agent_degraded_total"),
            agent_down: obs.counter("collector_agent_down_total"),
            agent_recovered: obs.counter("collector_agent_recovered_total"),
            rediscoveries: obs.counter("collector_rediscoveries_total"),
        }
    }
}

struct AgentScan {
    name: String,
    is_router: bool,
    /// if_index -> (speed bps, neighbor name). In route-table mode the
    /// "name" is an unresolved `ip:a.b.c.d` placeholder until pass 2.
    ifaces: BTreeMap<u32, (f64, String)>,
    host: Option<HostInfo>,
    /// This agent's own address (route-table mode).
    own_ip: Option<[u8; 4]>,
}

/// One agent's per-poll readings.
struct AgentRead {
    ticks: u64,
    out_col: Option<BTreeMap<u32, u32>>,
    in_col: Option<BTreeMap<u32, u32>>,
}

/// Carried-forward value and quality for a directed link with no fresh
/// measurement at collector time `t`.
fn carry_forward(
    t: SimTime,
    last_fresh: Option<SimTime>,
    last_util: f64,
    missing_after: SimDuration,
) -> (f64, DataQuality) {
    match last_fresh {
        Some(tf) => {
            let age = t.saturating_since(tf);
            if age > missing_after {
                (0.0, DataQuality::Missing)
            } else {
                (last_util, DataQuality::Stale { age })
            }
        }
        None => (0.0, DataQuality::Missing),
    }
}

impl<T: Transport + Sync> SnmpCollector<T> {
    /// New collector over `agents` (addresses of the SNMP agents to use).
    pub fn new(transport: Arc<T>, agents: Vec<String>, cfg: SnmpCollectorConfig) -> Self {
        let history = SampleHistory::new(cfg.history_len);
        let manager = Manager::new(Arc::clone(&transport), &cfg.community);
        let probe = Manager::with_policy(transport, &cfg.community, RetryPolicy::no_retries());
        let mut agents = agents;
        agents.sort();
        agents.dedup();
        let health = vec![AgentHealth::default(); agents.len()];
        let obs = Obs::new();
        let obs_metrics = CollectorMetrics::new(&obs);
        SnmpCollector {
            manager,
            probe,
            agents,
            health,
            cfg,
            view: None,
            topology_epoch: 0,
            history,
            last_t: None,
            trap_source: None,
            obs,
            obs_metrics,
        }
    }

    /// Attach a trap source; linkDown/linkUp traps trigger re-discovery
    /// on the next poll.
    pub fn set_trap_source(&mut self, source: Box<dyn crate::collector::TrapSource>) {
        self.trap_source = Some(source);
    }

    /// Register an observer of SNMP request outcomes on the full-retry
    /// manager (circuit breakers hook in here). The single-attempt
    /// recovery probe is deliberately unobserved: probing a Down agent is
    /// *expected* to fail and must not re-trip an opening breaker.
    pub fn set_retry_observer(&mut self, observer: std::sync::Arc<dyn remos_snmp::RetryObserver>) {
        self.manager.set_retry_observer(observer);
    }

    /// Health records, parallel to [`SnmpCollector::agent_names`].
    pub fn agent_health(&self) -> &[AgentHealth] {
        &self.health
    }

    /// The agent addresses this collector polls (sorted).
    pub fn agent_names(&self) -> &[String] {
        &self.agents
    }

    /// Liveness of one agent by address.
    pub fn agent_state(&self, agent: &str) -> Option<AgentState> {
        let i = self.agents.iter().position(|a| a == agent)?;
        Some(self.health[i].state)
    }

    fn scan_agent(&self, addr: &str) -> CoreResult<AgentScan> {
        let vals = self.manager.get_many(
            addr,
            &[well_known::sys_name(), well_known::sys_services()],
        )?;
        let name = vals[0]
            .as_text()
            .ok_or_else(|| RemosError::Collector(format!("{addr}: sysName not text")))?
            .to_string();
        let services = vals[1].as_u64().unwrap_or(0);
        let is_router = services & 4 != 0 && services & 64 == 0;

        let mut ifaces = BTreeMap::new();
        let speeds = self.manager.bulk_walk(addr, &well_known::if_speed())?;
        let oper = self.manager.bulk_walk(addr, &well_known::if_oper_status())?;
        let neighbors = self.manager.bulk_walk(addr, &well_known::neighbor_name())?;
        let mut speed_by_idx = BTreeMap::new();
        for b in &speeds {
            if let (Some([idx]), Some(v)) =
                (well_known::if_speed().suffix_of(&b.oid), b.value.as_u64())
            {
                speed_by_idx.insert(*idx, v as f64);
            }
        }
        let mut down: BTreeSet<u32> = BTreeSet::new();
        for b in &oper {
            if let (Some([idx]), Some(status)) =
                (well_known::if_oper_status().suffix_of(&b.oid), b.value.as_u64())
            {
                if status != 1 {
                    down.insert(*idx);
                }
            }
        }
        let mut own_ip = None;
        match self.cfg.discovery {
            DiscoveryMode::NeighborTable => {
                for b in &neighbors {
                    let Some([idx]) = well_known::neighbor_name().suffix_of(&b.oid) else {
                        continue;
                    };
                    if down.contains(idx) {
                        continue; // operationally down
                    }
                    let Some(peer) = b.value.as_text() else { continue };
                    let Some(&speed) = speed_by_idx.get(idx) else { continue };
                    ifaces.insert(*idx, (speed, peer.to_string()));
                }
            }
            DiscoveryMode::RouteTable => {
                let addrs = self.manager.bulk_walk(addr, &well_known::ip_ad_ent_addr())?;
                own_ip = addrs.iter().find_map(|b| b.value.as_ip());
                let types = self.manager.bulk_walk(addr, &well_known::ip_route_type())?;
                let route_if = self.manager.bulk_walk(addr, &well_known::ip_route_ifindex())?;
                let mut if_by_dest: BTreeMap<Vec<u32>, u32> = BTreeMap::new();
                for b in &route_if {
                    if let (Some(suffix), Some(i)) =
                        (well_known::ip_route_ifindex().suffix_of(&b.oid), b.value.as_u64())
                    {
                        if_by_dest.insert(suffix.to_vec(), i as u32);
                    }
                }
                for b in &types {
                    let Some(suffix) = well_known::ip_route_type().suffix_of(&b.oid) else {
                        continue;
                    };
                    // Direct routes (ipRouteType 3) reveal adjacency on a
                    // point-to-point network.
                    if b.value.as_u64() != Some(3) || suffix.len() != 4 {
                        continue;
                    }
                    let Some(&idx) = if_by_dest.get(suffix) else { continue };
                    if down.contains(&idx) {
                        continue;
                    }
                    let Some(&speed) = speed_by_idx.get(&idx) else { continue };
                    let placeholder = format!(
                        "ip:{}.{}.{}.{}",
                        suffix[0], suffix[1], suffix[2], suffix[3]
                    );
                    ifaces.insert(idx, (speed, placeholder));
                }
            }
        }

        let host = if is_router {
            None
        } else {
            let vals = self
                .manager
                .get_many(addr, &[well_known::hr_memory_size(), well_known::host_mflops()])?;
            match (&vals[0], &vals[1]) {
                (Value::Integer(kb), Value::Gauge32(mflops)) => Some(HostInfo {
                    compute_flops: *mflops as f64 * 1e6,
                    memory_bytes: (*kb as u64) * 1024,
                }),
                _ => None,
            }
        };
        Ok(AgentScan { name, is_router, ifaces, host, own_ip })
    }

    fn discover(&self) -> CoreResult<View> {
        if self.agents.is_empty() {
            return Err(RemosError::Collector("no agents configured".into()));
        }
        let mut scans: Vec<AgentScan> = self
            .agents
            .iter()
            .map(|a| self.scan_agent(a))
            .collect::<CoreResult<_>>()?;

        // Route-table mode, pass 2: resolve `ip:a.b.c.d` placeholders to
        // agent names via the collected own-addresses; unresolvable peers
        // (no agent there) become `ip-a-b-c-d` host nodes.
        if self.cfg.discovery == DiscoveryMode::RouteTable {
            let ip_names: HashMap<String, String> = scans
                .iter()
                .filter_map(|s| {
                    s.own_ip.map(|ip| {
                        (
                            format!("ip:{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3]),
                            s.name.clone(),
                        )
                    })
                })
                .collect();
            for s in &mut scans {
                for (_, peer) in s.ifaces.values_mut() {
                    if let Some(resolved) = ip_names.get(peer.as_str()) {
                        *peer = resolved.clone();
                    } else if let Some(rest) = peer.strip_prefix("ip:") {
                        *peer = format!("ip-{}", rest.replace('.', "-"));
                    }
                }
            }
        }

        // Union of node names: agents plus neighbor-only names.
        let mut routers = BTreeSet::new();
        let mut all_names = BTreeSet::new();
        let mut hosts = HashMap::new();
        for s in &scans {
            all_names.insert(s.name.clone());
            if s.is_router {
                routers.insert(s.name.clone());
            }
            if let Some(h) = s.host {
                hosts.insert(s.name.clone(), h);
            }
            for (_, peer) in s.ifaces.values() {
                all_names.insert(peer.clone());
            }
        }

        // Edges keyed by ordered name pair; capacity = min of reports.
        let mut edges: BTreeMap<(String, String), f64> = BTreeMap::new();
        for s in &scans {
            for (speed, peer) in s.ifaces.values() {
                let key = if s.name < *peer {
                    (s.name.clone(), peer.clone())
                } else {
                    (peer.clone(), s.name.clone())
                };
                edges
                    .entry(key)
                    .and_modify(|c| *c = c.min(*speed))
                    .or_insert(*speed);
            }
        }

        // Rebuild a Topology (deterministic: names sorted).
        let mut b = TopologyBuilder::new();
        let mut ids: HashMap<String, NodeId> = HashMap::new();
        for name in &all_names {
            let id = if routers.contains(name) {
                b.network(name)
            } else if let Some(h) = hosts.get(name) {
                b.compute_with_speed(name, h.compute_flops)
            } else {
                // Neighbor without an agent: assume a host.
                b.compute(name)
            };
            ids.insert(name.clone(), id);
        }
        let mut link_of_pair: HashMap<(String, String), remos_net::LinkId> = HashMap::new();
        for ((a, c), capacity) in &edges {
            let id = b
                .link(ids[a], ids[c], *capacity, self.cfg.per_hop_latency)
                .map_err(RemosError::from)?;
            link_of_pair.insert((a.clone(), c.clone()), id);
        }
        let topo = Arc::new(b.build().map_err(RemosError::from)?);

        // Counter sources per directed interface.
        let agent_index: HashMap<&str, usize> = scans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.as_str(), i))
            .collect();
        let mut sources = vec![CounterSource::None; topo.dir_link_count()];
        for (si, s) in scans.iter().enumerate() {
            for (&if_index, (_, peer)) in &s.ifaces {
                let key = if s.name < *peer {
                    (s.name.clone(), peer.clone())
                } else {
                    (peer.clone(), s.name.clone())
                };
                let Some(&link) = link_of_pair.get(&key) else { continue };
                let me = ids[&s.name];
                let out_dir = topo.link(link).direction_from(me);
                let out_idx = DirLink { link, dir: out_dir }.index();
                let in_idx = DirLink { link, dir: out_dir.reverse() }.index();
                // Prefer the sender's ifOutOctets for each direction.
                sources[out_idx] = CounterSource::Out { agent: si, if_index };
                if !agent_index.contains_key(peer.as_str()) {
                    sources[in_idx] = CounterSource::In { agent: si, if_index };
                }
            }
        }
        let n = sources.len();
        Ok(View {
            topo,
            sources,
            hosts,
            baseline: vec![None; n],
            last_util: vec![0.0; n],
            last_fresh: vec![None; n],
            primed: false,
        })
    }

    /// Read one agent's uptime and the counter columns it serves. Any
    /// failure returns `None` — the caller degrades just this agent.
    /// `down` agents get a single-datagram recovery probe first; full reads
    /// (and their retry costs) resume only once the probe answers.
    fn read_agent(
        &self,
        ai: usize,
        needs_out: bool,
        needs_in: bool,
        down: bool,
    ) -> Option<AgentRead> {
        let addr = &self.agents[ai];
        if down && self.probe.get(addr, &well_known::sys_uptime()).is_err() {
            return None;
        }
        let ticks = self.manager.get(addr, &well_known::sys_uptime()).ok()?.as_u64()?;
        let col = |root: &remos_snmp::Oid| -> Option<BTreeMap<u32, u32>> {
            let rows = self.manager.bulk_walk(addr, root).ok()?;
            let mut m = BTreeMap::new();
            for b in rows {
                if let (Some([idx]), Some(c)) = (root.suffix_of(&b.oid), b.value.as_counter32()) {
                    m.insert(*idx, c);
                }
            }
            Some(m)
        };
        let out_col = if needs_out { Some(col(&well_known::if_out_octets())?) } else { None };
        let in_col = if needs_in { Some(col(&well_known::if_in_octets())?) } else { None };
        Some(AgentRead { ticks, out_col, in_col })
    }
}

impl<T: Transport + Sync> Collector for SnmpCollector<T> {
    /// Report into a shared observability handle: collector counters and
    /// health-transition events, plus the fault-path counters of both
    /// underlying SNMP managers.
    fn set_obs(&mut self, obs: &Obs) {
        self.manager.set_obs(obs);
        self.probe.set_obs(obs);
        self.obs_metrics = CollectorMetrics::new(obs);
        self.obs = obs.clone();
    }

    fn refresh_topology(&mut self) -> CoreResult<()> {
        self.obs_metrics.rediscoveries.inc();
        let view = self.discover()?;
        self.view = Some(view);
        self.topology_epoch += 1;
        self.history.clear();
        Ok(())
    }

    fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        self.view
            .as_ref()
            .map(|v| Arc::clone(&v.topo))
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        let view = self
            .view
            .as_ref()
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))?;
        view.hosts
            .get(name)
            .copied()
            .ok_or_else(|| RemosError::UnknownNode(name.to_string()))
    }

    fn poll(&mut self) -> CoreResult<bool> {
        self.obs_metrics.polls.inc();
        // Unsolicited notifications first: a link-state trap invalidates
        // the discovered view.
        if let Some(src) = &mut self.trap_source {
            let traps = src.drain();
            if traps
                .iter()
                .any(|(_, pdu)| crate::collector::is_link_state_trap(pdu))
            {
                match self.refresh_topology() {
                    Ok(()) => {}
                    // Degraded mode: discovery needs every agent, so keep
                    // serving the stale view if we have one; per-link
                    // quality flags already tell the consumer.
                    Err(_) if self.view.is_some() => {}
                    Err(e) => return Err(e),
                }
            }
        }
        if self.view.is_none() {
            self.refresh_topology()?;
        }

        // Which counter columns each agent must serve.
        let needs: Vec<(bool, bool)> = {
            let view = self
                .view
                .as_ref()
                .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))?;
            let mut needs = vec![(false, false); self.agents.len()];
            for src in &view.sources {
                match src {
                    CounterSource::Out { agent, .. } => needs[*agent].0 = true,
                    CounterSource::In { agent, .. } => needs[*agent].1 = true,
                    CounterSource::None => {}
                }
            }
            needs
        };

        // Fault-isolated per-agent reads.
        let down: Vec<bool> = self.health.iter().map(|h| h.state == AgentState::Down).collect();
        let reads: Vec<Option<AgentRead>> = (0..self.agents.len())
            .map(|ai| self.read_agent(ai, needs[ai].0, needs[ai].1, down[ai]))
            .collect();

        let prev_ticks: Vec<Option<u64>> = self.health.iter().map(|h| h.last_uptime_ticks).collect();
        // sysUpTime regression marks a restart: that agent's counters
        // restarted from zero and the interval since the last reading is
        // poisoned.
        let disc: Vec<bool> = reads
            .iter()
            .zip(&prev_ticks)
            .map(|(r, p)| match (r, p) {
                (Some(r), Some(l)) => r.ticks < *l,
                _ => false,
            })
            .collect();

        // Collector time advances by the largest uptime delta among agents
        // whose clock did not regress — robust to any subset crashing.
        let delta_ticks = reads
            .iter()
            .zip(&prev_ticks)
            .zip(&disc)
            .filter_map(|((r, p), d)| match (r, p) {
                (Some(r), Some(l)) if !*d => Some(r.ticks.saturating_sub(*l)),
                _ => None,
            })
            .max();
        let t = match self.last_t {
            Some(t0) => Some(t0 + SimDuration::from_millis(delta_ticks.unwrap_or(0) * 10)),
            None => reads
                .iter()
                .flatten()
                .map(|r| r.ticks)
                .max()
                .map(|ticks| SimTime::from_millis(ticks * 10)),
        };

        // Health transitions.
        let t_nanos = t.or(self.last_t).map_or(0, SimTime::as_nanos);
        for (ai, read) in reads.iter().enumerate() {
            let h = &mut self.health[ai];
            let prev = h.state;
            match read {
                Some(r) => {
                    h.consecutive_failures = 0;
                    h.state = AgentState::Healthy;
                    h.last_ok = t.or(h.last_ok);
                    h.last_uptime_ticks = Some(r.ticks);
                }
                None => {
                    h.consecutive_failures += 1;
                    h.state = if h.consecutive_failures >= self.cfg.down_after {
                        AgentState::Down
                    } else if h.consecutive_failures >= self.cfg.degraded_after {
                        AgentState::Degraded
                    } else {
                        AgentState::Healthy
                    };
                }
            }
            if h.state != prev {
                let ai = ai as u64;
                match h.state {
                    AgentState::Degraded => {
                        self.obs_metrics.agent_degraded.inc();
                        self.obs.event("collector.agent.degraded", t_nanos, &[("agent", ai)]);
                    }
                    AgentState::Down => {
                        self.obs_metrics.agent_down.inc();
                        self.obs.event("collector.agent.down", t_nanos, &[("agent", ai)]);
                    }
                    AgentState::Healthy => {
                        self.obs_metrics.agent_recovered.inc();
                        self.obs.event("collector.agent.recovered", t_nanos, &[("agent", ai)]);
                    }
                }
            }
        }

        // Nothing answered: time cannot advance and there is nothing to
        // record. Not an error — a federated parent may still be covered
        // by its other collectors.
        let Some(t) = t else { return Ok(false) };
        if reads.iter().all(|r| r.is_none()) {
            return Ok(false);
        }

        let missing_after = self.cfg.missing_after;
        let view = self
            .view
            .as_mut()
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))?;
        let n = view.sources.len();

        // Per-directed-link readings from whichever agent serves each.
        let readings: Vec<Option<u32>> = view
            .sources
            .iter()
            .map(|src| match src {
                CounterSource::Out { agent, if_index } => reads[*agent]
                    .as_ref()
                    .and_then(|r| r.out_col.as_ref())
                    .and_then(|m| m.get(if_index))
                    .copied(),
                CounterSource::In { agent, if_index } => reads[*agent]
                    .as_ref()
                    .and_then(|r| r.in_col.as_ref())
                    .and_then(|m| m.get(if_index))
                    .copied(),
                CounterSource::None => None,
            })
            .collect();
        let poisoned: Vec<bool> = view
            .sources
            .iter()
            .map(|src| match src {
                CounterSource::Out { agent, .. } | CounterSource::In { agent, .. } => disc[*agent],
                CounterSource::None => false,
            })
            .collect();

        if !view.primed {
            // First poll after discovery: establish baselines only.
            for (i, reading) in readings.iter().enumerate() {
                if let Some(c) = *reading {
                    view.baseline[i] = Some((t, c));
                }
            }
            view.primed = true;
            self.last_t = Some(t);
            return Ok(false);
        }

        let advanced = self.last_t.is_none_or(|t0| t > t0);
        if !advanced {
            // No measured time elapsed; just baseline newly observable
            // links.
            for (i, reading) in readings.iter().enumerate() {
                if view.baseline[i].is_none() {
                    if let Some(c) = *reading {
                        view.baseline[i] = Some((t, c));
                    }
                }
            }
            return Ok(false);
        }

        let mut util = vec![0.0; n];
        let mut quality = vec![DataQuality::Missing; n];
        let mut interval = SimDuration::ZERO;
        for i in 0..n {
            match readings[i] {
                Some(c) if poisoned[i] => {
                    // Discard the poisoned interval: the counter restarted
                    // somewhere inside it, so differencing would produce a
                    // huge bogus delta. Re-baseline on the post-restart
                    // value and carry the last good rate forward.
                    view.baseline[i] = Some((t, c));
                    let (u, q) =
                        carry_forward(t, view.last_fresh[i], view.last_util[i], missing_after);
                    util[i] = u;
                    quality[i] = q;
                }
                Some(c) => match view.baseline[i] {
                    Some((t0, p)) => {
                        let dt = t.saturating_since(t0);
                        if dt > SimDuration::ZERO {
                            let rate = rate_from_readings(p, c, dt.as_secs_f64());
                            util[i] = rate;
                            quality[i] = DataQuality::Fresh;
                            view.last_util[i] = rate;
                            view.last_fresh[i] = Some(t);
                            view.baseline[i] = Some((t, c));
                            interval = interval.max(dt);
                        } else {
                            let (u, q) = carry_forward(
                                t,
                                view.last_fresh[i],
                                view.last_util[i],
                                missing_after,
                            );
                            util[i] = u;
                            quality[i] = q;
                        }
                    }
                    None => {
                        // First observation of this link: baseline it; a
                        // rate needs the next interval.
                        view.baseline[i] = Some((t, c));
                        let (u, q) =
                            carry_forward(t, view.last_fresh[i], view.last_util[i], missing_after);
                        util[i] = u;
                        quality[i] = q;
                    }
                },
                // Unobservable this poll (dark link, or its agent failed):
                // keep the old baseline — counters are monotonic, so when
                // the agent comes back the longer interval still averages
                // correctly (a restart in between is caught by the uptime
                // regression instead).
                None => {
                    let (u, q) =
                        carry_forward(t, view.last_fresh[i], view.last_util[i], missing_after);
                    util[i] = u;
                    quality[i] = q;
                }
            }
        }
        if interval == SimDuration::ZERO {
            interval = t.saturating_since(self.last_t.unwrap_or(t));
        }
        self.history.push(Snapshot {
            t,
            interval,
            util: util.into_boxed_slice(),
            quality: quality.into_boxed_slice(),
        });
        self.last_t = Some(t);
        Ok(true)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn describe(&self) -> String {
        let healthy =
            self.health.iter().filter(|h| h.state == AgentState::Healthy).count();
        format!("snmp({healthy}/{} agents healthy)", self.agents.len())
    }

    fn now(&self) -> CoreResult<SimTime> {
        // First answering agent wins; a freshly restarted agent's small
        // uptime is floored by the collector's own clock.
        for a in &self.agents {
            if let Ok(v) = self.manager.get(a, &well_known::sys_uptime()) {
                if let Some(ticks) = v.as_u64() {
                    let t = SimTime::from_millis(ticks * 10);
                    return Ok(self.last_t.map_or(t, |t0| t0.max(t)));
                }
            }
        }
        self.last_t
            .ok_or_else(|| RemosError::Collector("no agent reachable for time".into()))
    }
}
