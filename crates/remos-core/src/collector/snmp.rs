//! The SNMP collector (§5): discovers topology and polls octet counters.
//!
//! Discovery walks each agent's `system` group (name, kind via
//! sysServices), `ifTable` (interface speeds) and LLDP-style neighbor
//! table (adjacency), then reconstructs a [`Topology`]. Polling reads
//! `ifOutOctets` (falling back to the far side's `ifInOctets` when a link
//! endpoint runs no agent), differences Counter32 readings with wrap
//! handling, and appends per-interface utilization snapshots.
//!
//! Latency uses a fixed per-hop delay, exactly as the paper's collector
//! does ("For latency, the Collector currently assumes a fixed per-hop
//! delay. (A reasonable approximation as long as we use a LAN testbed.)").

use crate::collector::{Collector, SampleHistory, Snapshot};
use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use remos_net::counters::rate_from_readings;
use remos_net::topology::{DirLink, NodeId, Topology, TopologyBuilder};
use remos_net::{SimDuration, SimTime};
use remos_snmp::oid::well_known;
use remos_snmp::transport::Transport;
use remos_snmp::{Manager, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// How adjacency is discovered from the agents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DiscoveryMode {
    /// Walk the LLDP-style neighbor table (modern deployments; the
    /// default because it names peers directly).
    #[default]
    NeighborTable,
    /// Walk `ipRouteTable` and take *direct* routes as adjacency — the
    /// mechanism the paper's collector actually used ("uses SNMP to
    /// extract both static topology and dynamic bandwidth information
    /// from the routers"). Peer names resolve through the agents'
    /// `ipAddrTable`; addresses with no agent become `ip-a-b-c-d` hosts.
    RouteTable,
}

/// Configuration of an [`SnmpCollector`].
#[derive(Clone, Debug)]
pub struct SnmpCollectorConfig {
    /// Community string for all agents.
    pub community: String,
    /// Fixed per-hop one-way latency assumed for every link.
    pub per_hop_latency: SimDuration,
    /// Sample history bound.
    pub history_len: usize,
    /// Topology discovery mechanism.
    pub discovery: DiscoveryMode,
}

impl Default for SnmpCollectorConfig {
    fn default() -> Self {
        SnmpCollectorConfig {
            community: "public".to_string(),
            per_hop_latency: SimDuration::from_micros(100),
            history_len: crate::collector::DEFAULT_HISTORY_LEN,
            discovery: DiscoveryMode::default(),
        }
    }
}

/// Where a directed interface's traffic counter lives.
#[derive(Clone, Debug)]
enum CounterSource {
    /// `agents[idx]`'s interface `if_index`, ifOutOctets.
    Out { agent: usize, if_index: u32 },
    /// `agents[idx]`'s interface `if_index`, ifInOctets (far side has no
    /// agent).
    In { agent: usize, if_index: u32 },
    /// Neither endpoint runs an agent; utilization is unobservable and
    /// reported as zero (optimistically, like a dark link).
    None,
}

struct View {
    topo: Arc<Topology>,
    /// Per dir-link index: where to read its counter.
    sources: Vec<CounterSource>,
    hosts: HashMap<String, HostInfo>,
    /// Last raw counter reading per dir-link (None where unobservable),
    /// with its timestamp.
    baseline: Option<(SimTime, Vec<Option<u32>>)>,
}

/// The SNMP-based collector.
pub struct SnmpCollector<T: Transport> {
    manager: Manager<T>,
    /// Agent addresses this collector is responsible for.
    agents: Vec<String>,
    cfg: SnmpCollectorConfig,
    view: Option<View>,
    history: SampleHistory,
    trap_source: Option<Box<dyn crate::collector::TrapSource>>,
}

struct AgentScan {
    name: String,
    is_router: bool,
    /// if_index -> (speed bps, neighbor name). In route-table mode the
    /// "name" is an unresolved `ip:a.b.c.d` placeholder until pass 2.
    ifaces: BTreeMap<u32, (f64, String)>,
    host: Option<HostInfo>,
    /// This agent's own address (route-table mode).
    own_ip: Option<[u8; 4]>,
}

impl<T: Transport + Sync> SnmpCollector<T> {
    /// New collector over `agents` (addresses of the SNMP agents to use).
    pub fn new(transport: Arc<T>, agents: Vec<String>, cfg: SnmpCollectorConfig) -> Self {
        let history = SampleHistory::new(cfg.history_len);
        let manager = Manager::new(transport, &cfg.community);
        let mut agents = agents;
        agents.sort();
        agents.dedup();
        SnmpCollector { manager, agents, cfg, view: None, history, trap_source: None }
    }

    /// Attach a trap source; linkDown/linkUp traps trigger re-discovery
    /// on the next poll.
    pub fn set_trap_source(&mut self, source: Box<dyn crate::collector::TrapSource>) {
        self.trap_source = Some(source);
    }

    fn scan_agent(&self, addr: &str) -> CoreResult<AgentScan> {
        let vals = self.manager.get_many(
            addr,
            &[well_known::sys_name(), well_known::sys_services()],
        )?;
        let name = vals[0]
            .as_text()
            .ok_or_else(|| RemosError::Collector(format!("{addr}: sysName not text")))?
            .to_string();
        let services = vals[1].as_u64().unwrap_or(0);
        let is_router = services & 4 != 0 && services & 64 == 0;

        let mut ifaces = BTreeMap::new();
        let speeds = self.manager.bulk_walk(addr, &well_known::if_speed())?;
        let oper = self.manager.bulk_walk(addr, &well_known::if_oper_status())?;
        let neighbors = self.manager.bulk_walk(addr, &well_known::neighbor_name())?;
        let mut speed_by_idx = BTreeMap::new();
        for b in &speeds {
            if let (Some([idx]), Some(v)) =
                (well_known::if_speed().suffix_of(&b.oid), b.value.as_u64())
            {
                speed_by_idx.insert(*idx, v as f64);
            }
        }
        let mut down: BTreeSet<u32> = BTreeSet::new();
        for b in &oper {
            if let (Some([idx]), Some(status)) =
                (well_known::if_oper_status().suffix_of(&b.oid), b.value.as_u64())
            {
                if status != 1 {
                    down.insert(*idx);
                }
            }
        }
        let mut own_ip = None;
        match self.cfg.discovery {
            DiscoveryMode::NeighborTable => {
                for b in &neighbors {
                    let Some([idx]) = well_known::neighbor_name().suffix_of(&b.oid) else {
                        continue;
                    };
                    if down.contains(idx) {
                        continue; // operationally down
                    }
                    let Some(peer) = b.value.as_text() else { continue };
                    let Some(&speed) = speed_by_idx.get(idx) else { continue };
                    ifaces.insert(*idx, (speed, peer.to_string()));
                }
            }
            DiscoveryMode::RouteTable => {
                let addrs = self.manager.bulk_walk(addr, &well_known::ip_ad_ent_addr())?;
                own_ip = addrs.iter().find_map(|b| b.value.as_ip());
                let types = self.manager.bulk_walk(addr, &well_known::ip_route_type())?;
                let route_if = self.manager.bulk_walk(addr, &well_known::ip_route_ifindex())?;
                let mut if_by_dest: BTreeMap<Vec<u32>, u32> = BTreeMap::new();
                for b in &route_if {
                    if let (Some(suffix), Some(i)) =
                        (well_known::ip_route_ifindex().suffix_of(&b.oid), b.value.as_u64())
                    {
                        if_by_dest.insert(suffix.to_vec(), i as u32);
                    }
                }
                for b in &types {
                    let Some(suffix) = well_known::ip_route_type().suffix_of(&b.oid) else {
                        continue;
                    };
                    // Direct routes (ipRouteType 3) reveal adjacency on a
                    // point-to-point network.
                    if b.value.as_u64() != Some(3) || suffix.len() != 4 {
                        continue;
                    }
                    let Some(&idx) = if_by_dest.get(suffix) else { continue };
                    if down.contains(&idx) {
                        continue;
                    }
                    let Some(&speed) = speed_by_idx.get(&idx) else { continue };
                    let placeholder = format!(
                        "ip:{}.{}.{}.{}",
                        suffix[0], suffix[1], suffix[2], suffix[3]
                    );
                    ifaces.insert(idx, (speed, placeholder));
                }
            }
        }

        let host = if is_router {
            None
        } else {
            let vals = self
                .manager
                .get_many(addr, &[well_known::hr_memory_size(), well_known::host_mflops()])?;
            match (&vals[0], &vals[1]) {
                (Value::Integer(kb), Value::Gauge32(mflops)) => Some(HostInfo {
                    compute_flops: *mflops as f64 * 1e6,
                    memory_bytes: (*kb as u64) * 1024,
                }),
                _ => None,
            }
        };
        Ok(AgentScan { name, is_router, ifaces, host, own_ip })
    }

    fn discover(&self) -> CoreResult<View> {
        if self.agents.is_empty() {
            return Err(RemosError::Collector("no agents configured".into()));
        }
        let mut scans: Vec<AgentScan> = self
            .agents
            .iter()
            .map(|a| self.scan_agent(a))
            .collect::<CoreResult<_>>()?;

        // Route-table mode, pass 2: resolve `ip:a.b.c.d` placeholders to
        // agent names via the collected own-addresses; unresolvable peers
        // (no agent there) become `ip-a-b-c-d` host nodes.
        if self.cfg.discovery == DiscoveryMode::RouteTable {
            let ip_names: HashMap<String, String> = scans
                .iter()
                .filter_map(|s| {
                    s.own_ip.map(|ip| {
                        (
                            format!("ip:{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3]),
                            s.name.clone(),
                        )
                    })
                })
                .collect();
            for s in &mut scans {
                for (_, peer) in s.ifaces.values_mut() {
                    if let Some(resolved) = ip_names.get(peer.as_str()) {
                        *peer = resolved.clone();
                    } else if let Some(rest) = peer.strip_prefix("ip:") {
                        *peer = format!("ip-{}", rest.replace('.', "-"));
                    }
                }
            }
        }

        // Union of node names: agents plus neighbor-only names.
        let mut routers = BTreeSet::new();
        let mut all_names = BTreeSet::new();
        let mut hosts = HashMap::new();
        for s in &scans {
            all_names.insert(s.name.clone());
            if s.is_router {
                routers.insert(s.name.clone());
            }
            if let Some(h) = s.host {
                hosts.insert(s.name.clone(), h);
            }
            for (_, peer) in s.ifaces.values() {
                all_names.insert(peer.clone());
            }
        }

        // Edges keyed by ordered name pair; capacity = min of reports.
        let mut edges: BTreeMap<(String, String), f64> = BTreeMap::new();
        for s in &scans {
            for (speed, peer) in s.ifaces.values() {
                let key = if s.name < *peer {
                    (s.name.clone(), peer.clone())
                } else {
                    (peer.clone(), s.name.clone())
                };
                edges
                    .entry(key)
                    .and_modify(|c| *c = c.min(*speed))
                    .or_insert(*speed);
            }
        }

        // Rebuild a Topology (deterministic: names sorted).
        let mut b = TopologyBuilder::new();
        let mut ids: HashMap<String, NodeId> = HashMap::new();
        for name in &all_names {
            let id = if routers.contains(name) {
                b.network(name)
            } else if let Some(h) = hosts.get(name) {
                b.compute_with_speed(name, h.compute_flops)
            } else {
                // Neighbor without an agent: assume a host.
                b.compute(name)
            };
            ids.insert(name.clone(), id);
        }
        let mut link_of_pair: HashMap<(String, String), remos_net::LinkId> = HashMap::new();
        for ((a, c), capacity) in &edges {
            let id = b
                .link(ids[a], ids[c], *capacity, self.cfg.per_hop_latency)
                .map_err(RemosError::from)?;
            link_of_pair.insert((a.clone(), c.clone()), id);
        }
        let topo = Arc::new(b.build().map_err(RemosError::from)?);

        // Counter sources per directed interface.
        let agent_index: HashMap<&str, usize> = scans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.as_str(), i))
            .collect();
        let mut sources = vec![CounterSource::None; topo.dir_link_count()];
        for (si, s) in scans.iter().enumerate() {
            for (&if_index, (_, peer)) in &s.ifaces {
                let key = if s.name < *peer {
                    (s.name.clone(), peer.clone())
                } else {
                    (peer.clone(), s.name.clone())
                };
                let Some(&link) = link_of_pair.get(&key) else { continue };
                let me = ids[&s.name];
                let out_dir = topo.link(link).direction_from(me);
                let out_idx = DirLink { link, dir: out_dir }.index();
                let in_idx = DirLink { link, dir: out_dir.reverse() }.index();
                // Prefer the sender's ifOutOctets for each direction.
                sources[out_idx] = CounterSource::Out { agent: si, if_index };
                if !agent_index.contains_key(peer.as_str()) {
                    sources[in_idx] = CounterSource::In { agent: si, if_index };
                }
            }
        }
        Ok(View { topo, sources, hosts, baseline: None })
    }

    fn read_time(&self) -> CoreResult<SimTime> {
        let v = self.manager.get(&self.agents[0], &well_known::sys_uptime())?;
        let ticks = v
            .as_u64()
            .ok_or_else(|| RemosError::Collector("sysUpTime not numeric".into()))?;
        Ok(SimTime::from_millis(ticks * 10))
    }

    /// Read all counters. Returns (time, per-dirlink reading).
    fn read_counters(&self, view: &View) -> CoreResult<(SimTime, Vec<Option<u32>>)> {
        let t = self.read_time()?;
        // One bulk walk of each needed column per agent.
        let mut out_cols: Vec<Option<BTreeMap<u32, u32>>> = vec![None; self.agents.len()];
        let mut in_cols: Vec<Option<BTreeMap<u32, u32>>> = vec![None; self.agents.len()];
        let fetch = |agent: usize,
                         col: &remos_snmp::Oid,
                         cache: &mut Vec<Option<BTreeMap<u32, u32>>>|
         -> CoreResult<()> {
            if cache[agent].is_none() {
                let rows = self.manager.bulk_walk(&self.agents[agent], col)?;
                let mut m = BTreeMap::new();
                for b in rows {
                    if let (Some([idx]), Some(c)) =
                        (col.suffix_of(&b.oid), b.value.as_counter32())
                    {
                        m.insert(*idx, c);
                    }
                }
                cache[agent] = Some(m);
            }
            Ok(())
        };
        let mut readings = vec![None; view.sources.len()];
        for (i, src) in view.sources.iter().enumerate() {
            readings[i] = match src {
                CounterSource::Out { agent, if_index } => {
                    fetch(*agent, &well_known::if_out_octets(), &mut out_cols)?;
                    out_cols[*agent].as_ref().unwrap().get(if_index).copied()
                }
                CounterSource::In { agent, if_index } => {
                    fetch(*agent, &well_known::if_in_octets(), &mut in_cols)?;
                    in_cols[*agent].as_ref().unwrap().get(if_index).copied()
                }
                CounterSource::None => None,
            };
        }
        Ok((t, readings))
    }
}

impl<T: Transport + Sync> Collector for SnmpCollector<T> {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        let view = self.discover()?;
        self.view = Some(view);
        self.history.clear();
        Ok(())
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        self.view
            .as_ref()
            .map(|v| Arc::clone(&v.topo))
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        let view = self
            .view
            .as_ref()
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))?;
        view.hosts
            .get(name)
            .copied()
            .ok_or_else(|| RemosError::UnknownNode(name.to_string()))
    }

    fn poll(&mut self) -> CoreResult<bool> {
        // Unsolicited notifications first: a link-state trap invalidates
        // the discovered view.
        if let Some(src) = &mut self.trap_source {
            let traps = src.drain();
            if traps
                .iter()
                .any(|(_, pdu)| crate::collector::is_link_state_trap(pdu))
            {
                self.refresh_topology()?;
            }
        }
        if self.view.is_none() {
            self.refresh_topology()?;
        }
        let (t, readings) = {
            let view = self.view.as_ref().expect("just ensured");
            self.read_counters(view)?
        };
        let view = self.view.as_mut().expect("just ensured");
        let produced = if let Some((t0, prev)) = &view.baseline {
            let dt = t.saturating_since(*t0).as_secs_f64();
            if dt <= 0.0 {
                false
            } else {
                let util: Vec<f64> = prev
                    .iter()
                    .zip(&readings)
                    .map(|(p, c)| match (p, c) {
                        (Some(p), Some(c)) => rate_from_readings(*p, *c, dt),
                        _ => 0.0,
                    })
                    .collect();
                self.history.push(Snapshot {
                    t,
                    interval: t.saturating_since(*t0),
                    util: util.into_boxed_slice(),
                });
                true
            }
        } else {
            false
        };
        view.baseline = Some((t, readings));
        Ok(produced)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn now(&self) -> CoreResult<SimTime> {
        self.read_time()
    }
}
