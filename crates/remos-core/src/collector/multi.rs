//! Cooperating collectors (§5).
//!
//! "A large environment may require multiple cooperating Collectors. …
//! we are also looking into the problem of dealing with very large
//! networks, where multiple collectors will have to collaborate to collect
//! the network information."
//!
//! [`MultiCollector`] owns several child collectors, each responsible for
//! a region (e.g. one SNMP collector per campus subnet, a benchmark
//! collector for the WAN in between), and merges their views: nodes are
//! unified by name, links by endpoint-name pair (border links observed by
//! two children are deduplicated, utilization merged by maximum), and
//! snapshots are re-indexed into the merged topology.

use crate::collector::{Collector, SampleHistory, Snapshot};
use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use remos_net::topology::{DirLink, NodeKind, Topology, TopologyBuilder};
use remos_net::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A federation of collectors presenting one merged view.
pub struct MultiCollector {
    children: Vec<Box<dyn Collector>>,
    merged: Option<Merged>,
    history: SampleHistory,
}

struct Merged {
    topo: Arc<Topology>,
    /// For each child: map child dir-link index -> merged dir-link index.
    remap: Vec<Vec<usize>>,
}

impl MultiCollector {
    /// Federate the given children. At least one is required.
    pub fn new(children: Vec<Box<dyn Collector>>) -> Self {
        MultiCollector { children, merged: None, history: SampleHistory::default() }
    }

    fn merge(&mut self) -> CoreResult<Merged> {
        if self.children.is_empty() {
            return Err(RemosError::Collector("no child collectors".into()));
        }
        let topos: Vec<Arc<Topology>> =
            self.children.iter().map(|c| c.topology()).collect::<CoreResult<_>>()?;

        // Union of nodes by name. Network kind wins on conflict (a border
        // router may look like an opaque endpoint to a benchmark child).
        let mut kinds: BTreeMap<String, NodeKind> = BTreeMap::new();
        let mut speeds: HashMap<String, (f64, u64)> = HashMap::new();
        for t in &topos {
            for n in t.node_ids() {
                let node = t.node(n);
                let e = kinds.entry(node.name.clone()).or_insert(node.kind);
                if node.kind == NodeKind::Network {
                    *e = NodeKind::Network;
                }
                speeds
                    .entry(node.name.clone())
                    .or_insert((node.compute_flops, node.memory_bytes));
            }
        }
        // Union of links by ordered name pair.
        let mut edges: BTreeMap<(String, String), (f64, remos_net::SimDuration)> = BTreeMap::new();
        for t in &topos {
            for l in t.link_ids() {
                let link = t.link(l);
                let (an, bn) = (t.node(link.a).name.clone(), t.node(link.b).name.clone());
                let key = if an < bn { (an, bn) } else { (bn, an) };
                edges
                    .entry(key)
                    .and_modify(|(c, _)| *c = c.min(link.capacity))
                    .or_insert((link.capacity, link.latency));
            }
        }
        // Build merged topology.
        let mut b = TopologyBuilder::new();
        let mut ids = HashMap::new();
        for (name, kind) in &kinds {
            let id = match kind {
                NodeKind::Network => b.network(name),
                NodeKind::Compute => {
                    let (flops, _mem) = speeds[name];
                    b.compute_with_speed(name, flops)
                }
            };
            ids.insert(name.clone(), id);
        }
        let mut link_ids = HashMap::new();
        for ((an, bn), (cap, lat)) in &edges {
            let id = b.link(ids[an], ids[bn], *cap, *lat).map_err(RemosError::from)?;
            link_ids.insert((an.clone(), bn.clone()), id);
        }
        let topo = Arc::new(b.build().map_err(RemosError::from)?);

        // Per-child dir-link remap.
        let mut remap = Vec::with_capacity(topos.len());
        for t in &topos {
            let mut m = vec![usize::MAX; t.dir_link_count()];
            for l in t.link_ids() {
                let link = t.link(l);
                let (an, bn) = (t.node(link.a).name.clone(), t.node(link.b).name.clone());
                let key = if an < bn { (an.clone(), bn.clone()) } else { (bn.clone(), an.clone()) };
                let merged_link = link_ids[&key];
                // Directions must be matched by tail-node name, since the
                // merged link may list endpoints in either order.
                let merged_l = topo.link(merged_link);
                let tail_a_name = &topo.node(merged_l.a).name;
                for dir in [remos_net::Direction::AtoB, remos_net::Direction::BtoA] {
                    let child_tail = t.node(link.tail(dir)).name.clone();
                    let merged_dir = if &child_tail == tail_a_name {
                        remos_net::Direction::AtoB
                    } else {
                        remos_net::Direction::BtoA
                    };
                    m[DirLink { link: l, dir }.index()] =
                        DirLink { link: merged_link, dir: merged_dir }.index();
                }
            }
            remap.push(m);
        }
        Ok(Merged { topo, remap })
    }
}

impl Collector for MultiCollector {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        for c in &mut self.children {
            c.refresh_topology()?;
        }
        self.merged = Some(self.merge()?);
        self.history.clear();
        Ok(())
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        self.merged
            .as_ref()
            .map(|m| Arc::clone(&m.topo))
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        for c in &self.children {
            if let Ok(h) = c.host_info(name) {
                return Ok(h);
            }
        }
        Err(RemosError::UnknownNode(name.to_string()))
    }

    fn poll(&mut self) -> CoreResult<bool> {
        if self.merged.is_none() {
            self.refresh_topology()?;
        }
        let mut any = false;
        for c in &mut self.children {
            any |= c.poll()?;
        }
        if !any {
            return Ok(false);
        }
        let merged = self.merged.as_ref().expect("just ensured");
        let mut util = vec![0.0f64; merged.topo.dir_link_count()];
        let mut t = SimTime::ZERO;
        let mut interval = remos_net::SimDuration::ZERO;
        let mut have_any_sample = false;
        for (ci, c) in self.children.iter().enumerate() {
            let Some(snap) = c.history().latest() else { continue };
            have_any_sample = true;
            t = t.max(snap.t);
            interval = interval.max(snap.interval);
            for (child_idx, &merged_idx) in merged.remap[ci].iter().enumerate() {
                if merged_idx != usize::MAX && child_idx < snap.util.len() {
                    util[merged_idx] = util[merged_idx].max(snap.util[child_idx]);
                }
            }
        }
        if !have_any_sample {
            return Ok(false);
        }
        self.history.push(Snapshot { t, interval, util: util.into_boxed_slice() });
        Ok(true)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn now(&self) -> CoreResult<SimTime> {
        self.children
            .first()
            .ok_or_else(|| RemosError::Collector("no child collectors".into()))?
            .now()
    }
}
