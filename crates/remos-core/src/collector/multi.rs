//! Cooperating collectors (§5).
//!
//! "A large environment may require multiple cooperating Collectors. …
//! we are also looking into the problem of dealing with very large
//! networks, where multiple collectors will have to collaborate to collect
//! the network information."
//!
//! [`MultiCollector`] owns several child collectors, each responsible for
//! a region (e.g. one SNMP collector per campus subnet, a benchmark
//! collector for the WAN in between), and merges their views: nodes are
//! unified by name, links by endpoint-name pair (border links observed by
//! two children are deduplicated, utilization merged by maximum), and
//! snapshots are re-indexed into the merged topology.
//!
//! The federation is also the failover layer: a child whose region stops
//! answering keeps contributing its *last* sample, aged into
//! [`DataQuality::Stale`] and eventually [`DataQuality::Missing`], while
//! the surviving children's regions stay [`DataQuality::Fresh`]. Polling
//! and re-discovery succeed as long as at least one child does.

use crate::collector::{Collector, SampleHistory, Snapshot};
use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use crate::quality::DataQuality;
use remos_net::topology::{DirLink, NodeKind, Topology, TopologyBuilder};
use remos_net::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Configuration of a [`MultiCollector`].
#[derive(Clone, Debug)]
pub struct MultiCollectorConfig {
    /// Child samples older than this (relative to the newest child sample)
    /// are reported as [`DataQuality::Missing`] instead of `Stale`.
    pub missing_after: SimDuration,
}

impl Default for MultiCollectorConfig {
    fn default() -> Self {
        MultiCollectorConfig { missing_after: SimDuration::from_secs(30) }
    }
}

/// A federation of collectors presenting one merged view.
pub struct MultiCollector {
    children: Vec<Box<dyn Collector>>,
    cfg: MultiCollectorConfig,
    merged: Option<Merged>,
    history: SampleHistory,
    topology_epoch: u64,
}

struct Merged {
    topo: Arc<Topology>,
    /// For each child: map child dir-link index -> merged dir-link index.
    remap: Vec<Vec<usize>>,
}

impl MultiCollector {
    /// Federate the given children. At least one is required.
    pub fn new(children: Vec<Box<dyn Collector>>) -> Self {
        Self::with_config(children, MultiCollectorConfig::default())
    }

    /// Federate with an explicit configuration.
    pub fn with_config(children: Vec<Box<dyn Collector>>, cfg: MultiCollectorConfig) -> Self {
        MultiCollector {
            children,
            cfg,
            merged: None,
            history: SampleHistory::default(),
            topology_epoch: 0,
        }
    }

    fn merge(&mut self) -> CoreResult<Merged> {
        if self.children.is_empty() {
            return Err(RemosError::Collector("no child collectors".into()));
        }
        // Children without a discovered view (their whole region is down)
        // simply contribute nothing to the merge.
        let topos: Vec<Option<Arc<Topology>>> =
            self.children.iter().map(|c| c.topology().ok()).collect();
        if topos.iter().all(|t| t.is_none()) {
            return Err(RemosError::Collector("no child has a discovered topology".into()));
        }

        // Union of nodes by name. Network kind wins on conflict (a border
        // router may look like an opaque endpoint to a benchmark child).
        let mut kinds: BTreeMap<String, NodeKind> = BTreeMap::new();
        let mut speeds: HashMap<String, (f64, u64)> = HashMap::new();
        for t in topos.iter().flatten() {
            for n in t.node_ids() {
                let node = t.node(n);
                let e = kinds.entry(node.name.clone()).or_insert(node.kind);
                if node.kind == NodeKind::Network {
                    *e = NodeKind::Network;
                }
                speeds
                    .entry(node.name.clone())
                    .or_insert((node.compute_flops, node.memory_bytes));
            }
        }
        // Union of links by ordered name pair.
        let mut edges: BTreeMap<(String, String), (f64, remos_net::SimDuration)> = BTreeMap::new();
        for t in topos.iter().flatten() {
            for l in t.link_ids() {
                let link = t.link(l);
                let (an, bn) = (t.node(link.a).name.clone(), t.node(link.b).name.clone());
                let key = if an < bn { (an, bn) } else { (bn, an) };
                edges
                    .entry(key)
                    .and_modify(|(c, _)| *c = c.min(link.capacity))
                    .or_insert((link.capacity, link.latency));
            }
        }
        // Build merged topology.
        let mut b = TopologyBuilder::new();
        let mut ids = HashMap::new();
        for (name, kind) in &kinds {
            let id = match kind {
                NodeKind::Network => b.network(name),
                NodeKind::Compute => {
                    let (flops, _mem) = speeds[name];
                    b.compute_with_speed(name, flops)
                }
            };
            ids.insert(name.clone(), id);
        }
        let mut link_ids = HashMap::new();
        for ((an, bn), (cap, lat)) in &edges {
            let id = b.link(ids[an], ids[bn], *cap, *lat).map_err(RemosError::from)?;
            link_ids.insert((an.clone(), bn.clone()), id);
        }
        let topo = Arc::new(b.build().map_err(RemosError::from)?);

        // Per-child dir-link remap.
        let mut remap = Vec::with_capacity(topos.len());
        for t in &topos {
            let Some(t) = t else {
                remap.push(Vec::new());
                continue;
            };
            let mut m = vec![usize::MAX; t.dir_link_count()];
            for l in t.link_ids() {
                let link = t.link(l);
                let (an, bn) = (t.node(link.a).name.clone(), t.node(link.b).name.clone());
                let key = if an < bn { (an.clone(), bn.clone()) } else { (bn.clone(), an.clone()) };
                let merged_link = link_ids[&key];
                // Directions must be matched by tail-node name, since the
                // merged link may list endpoints in either order.
                let merged_l = topo.link(merged_link);
                let tail_a_name = &topo.node(merged_l.a).name;
                for dir in [remos_net::Direction::AtoB, remos_net::Direction::BtoA] {
                    let child_tail = t.node(link.tail(dir)).name.clone();
                    let merged_dir = if &child_tail == tail_a_name {
                        remos_net::Direction::AtoB
                    } else {
                        remos_net::Direction::BtoA
                    };
                    m[DirLink { link: l, dir }.index()] =
                        DirLink { link: merged_link, dir: merged_dir }.index();
                }
            }
            remap.push(m);
        }
        Ok(Merged { topo, remap })
    }
}

impl Collector for MultiCollector {
    fn set_obs(&mut self, obs: &remos_obs::Obs) {
        for c in &mut self.children {
            c.set_obs(obs);
        }
    }

    fn refresh_topology(&mut self) -> CoreResult<()> {
        // Failover: children whose region cannot be discovered right now
        // are tolerated as long as at least one child succeeds.
        let mut ok = 0usize;
        let mut first_err = None;
        for c in &mut self.children {
            match c.refresh_topology() {
                Ok(()) => ok += 1,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if ok == 0 {
            return Err(first_err.unwrap_or_else(|| {
                RemosError::Collector("multi-collector has no children".into())
            }));
        }
        self.merged = Some(self.merge()?);
        self.topology_epoch += 1;
        self.history.clear();
        Ok(())
    }

    fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        self.merged
            .as_ref()
            .map(|m| Arc::clone(&m.topo))
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        for c in &self.children {
            if let Ok(h) = c.host_info(name) {
                return Ok(h);
            }
        }
        Err(RemosError::UnknownNode(name.to_string()))
    }

    fn poll(&mut self) -> CoreResult<bool> {
        if self.merged.is_none() {
            self.refresh_topology()?;
        }
        // Poll every child; a failing child only degrades its own region.
        // The poll as a whole errors only when *every* child errors.
        let mut any = false;
        let mut errors = 0usize;
        let mut first_err = None;
        for c in &mut self.children {
            match c.poll() {
                Ok(produced) => any |= produced,
                Err(e) => {
                    errors += 1;
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if errors == self.children.len() {
            return Err(first_err.unwrap_or_else(|| {
                RemosError::Collector("multi-collector has no children".into())
            }));
        }
        if !any {
            return Ok(false);
        }
        let merged = self
            .merged
            .as_ref()
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))?;
        let n = merged.topo.dir_link_count();
        let mut util = vec![0.0f64; n];
        let mut quality = vec![DataQuality::Missing; n];
        let mut interval = remos_net::SimDuration::ZERO;
        // Merged time is the newest child sample; older child samples age
        // into Stale/Missing relative to it.
        let t = self
            .children
            .iter()
            .filter_map(|c| c.history().latest().map(|s| s.t))
            .max();
        let Some(t) = t else { return Ok(false) };
        for (ci, c) in self.children.iter().enumerate() {
            let Some(snap) = c.history().latest() else { continue };
            let age = t.saturating_since(snap.t);
            interval = interval.max(snap.interval);
            for (child_idx, &merged_idx) in merged.remap[ci].iter().enumerate() {
                if merged_idx == usize::MAX || child_idx >= snap.util.len() {
                    continue;
                }
                let mut q = snap.quality.get(child_idx).copied().unwrap_or(DataQuality::Missing);
                // Age the child's quality by how far it lags the merge.
                if age > SimDuration::ZERO {
                    q = q.worst(DataQuality::Stale { age });
                }
                if let Some(total_age) = q.age() {
                    if total_age > self.cfg.missing_after {
                        q = DataQuality::Missing;
                    }
                }
                // Border links observed twice: keep the larger utilization
                // and the better-quality observation.
                util[merged_idx] = util[merged_idx].max(snap.util[child_idx]);
                quality[merged_idx] = quality[merged_idx].better(q);
            }
        }
        self.history.push(Snapshot {
            t,
            interval,
            util: util.into_boxed_slice(),
            quality: quality.into_boxed_slice(),
        });
        Ok(true)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn describe(&self) -> String {
        // A child is "current" when its latest sample is as new as the
        // newest across the federation — i.e. it is still producing data,
        // not being carried forward and aged toward Missing.
        let newest = self
            .children
            .iter()
            .filter_map(|c| c.history().latest().map(|s| s.t))
            .max();
        let current = match newest {
            Some(t) => self
                .children
                .iter()
                .filter(|c| c.history().latest().map(|s| s.t >= t).unwrap_or(false))
                .count(),
            None => 0,
        };
        format!("multi({current}/{} children current)", self.children.len())
    }

    fn now(&self) -> CoreResult<SimTime> {
        // First child that can tell the time wins (each child is already
        // robust to its own agents restarting).
        let mut first_err = None;
        for c in &self.children {
            match c.now() {
                Ok(t) => return Ok(t),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        Err(first_err
            .unwrap_or_else(|| RemosError::Collector("no child collectors".into())))
    }
}
