//! Cooperating collectors (§5) — the sharded coordinator.
//!
//! "A large environment may require multiple cooperating Collectors. …
//! we are also looking into the problem of dealing with very large
//! networks, where multiple collectors will have to collaborate to collect
//! the network information."
//!
//! [`MultiCollector`] owns several child collectors, each responsible for
//! a region (e.g. one SNMP collector per campus subnet, a
//! [`ShardCollector`](crate::collector::shard::ShardCollector) per pod
//! group of a fabric), and merges their views: nodes are unified by name,
//! links by endpoint-name pair (border links observed by two children are
//! deduplicated, utilization merged by maximum), and snapshots are
//! re-indexed into the merged topology. When every child reports the
//! *same* shared topology `Arc` (the fabric-shard case), the merged view
//! *is* that topology and the remap is the identity — graph digests stay
//! bit-identical to a monolithic collector.
//!
//! Three scaling properties distinguish the coordinator from a naive
//! fan-out:
//!
//! * **Concurrent polling** — children are polled on the shared scoped
//!   pool (`remos_net::pool::run_indexed_mut`), results slotted in input
//!   order, so an 8-shard fabric pays roughly its slowest shard per
//!   poll, not the sum.
//! * **Dirty-shard merge** — the merged `util`/`quality` vectors are
//!   persistent; a poll re-applies only children whose sample
//!   `generation()` advanced (or whose lag behind the merge time
//!   changed, which re-ages their quality), writing in place with zero
//!   steady-state allocation. Border entries observed by several
//!   children are the only part recomputed every merge.
//! * **Epoch vector** — [`Collector::topology_epoch`] is an FNV-1a
//!   digest over the children's *structural* digests, not a counter. A
//!   child re-discovering an unchanged region keeps the digest (and the
//!   merged topology `Arc`, remap, and history), so cached query plans
//!   keyed on the epoch survive shard rediscovery that changed nothing.
//!
//! The federation is also the failover layer: a child whose region stops
//! answering keeps contributing its *last* sample, aged into
//! [`DataQuality::Stale`] and eventually [`DataQuality::Missing`], while
//! the surviving children's regions stay [`DataQuality::Fresh`]. Polling
//! and re-discovery succeed as long as at least one child does.

use crate::collector::{Collector, SampleHistory, Snapshot};
use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use crate::quality::DataQuality;
use remos_net::pool;
use remos_net::topology::{DirLink, NodeKind, Topology, TopologyBuilder};
use remos_net::{SimDuration, SimTime};
use remos_obs::{Counter, Histogram, Obs};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Configuration of a [`MultiCollector`].
#[derive(Clone, Debug)]
pub struct MultiCollectorConfig {
    /// Child samples older than this (relative to the newest child sample)
    /// are reported as [`DataQuality::Missing`] instead of `Stale`.
    pub missing_after: SimDuration,
    /// Worker threads for the concurrent child fan-out: `0` picks
    /// automatically from the hardware, `1` polls serially on the caller
    /// (the allocation-free path the zero-alloc contract measures).
    pub poll_workers: usize,
    /// Bound of the merged sample history.
    pub history_len: usize,
    /// Reference mode for equivalence tests: every merge re-applies
    /// every child from scratch instead of only the dirty ones. The
    /// incremental merge must be bit-identical to this.
    pub force_full_merge: bool,
}

impl Default for MultiCollectorConfig {
    fn default() -> Self {
        MultiCollectorConfig {
            missing_after: SimDuration::from_secs(30),
            poll_workers: 0,
            history_len: crate::collector::DEFAULT_HISTORY_LEN,
            force_full_merge: false,
        }
    }
}

/// One child's observation of a merged entry.
struct Contributor {
    child: u32,
    child_idx: u32,
}

/// A merged entry observed by two or more children (a border link):
/// recomputed from all contributors on every merge.
struct SharedEntry {
    merged_idx: u32,
    /// In child order, so quality tie-breaks match a sequential merge.
    contributors: Vec<Contributor>,
}

/// Persistent merge state: topology, remap, contributor split, and the
/// in-place merged sample buffers.
struct Merged {
    topo: Arc<Topology>,
    /// Host name -> child that first reported it, for O(1) `host_info`.
    host_child: HashMap<String, usize>,
    /// Per child: `(child_idx, merged_idx)` entries only it observes.
    exclusive: Vec<Vec<(u32, u32)>>,
    /// Entries observed by several children.
    shared: Vec<SharedEntry>,
    /// Persistent merged buffers, re-applied in place per dirty child.
    util: Vec<f64>,
    quality: Vec<DataQuality>,
    /// Child sample generation at the last full (util + quality) apply.
    applied_gen: Vec<Option<u64>>,
    /// Child lag behind the merge time at the last quality apply
    /// (`None` = child had no sample).
    applied_age: Vec<Option<SimDuration>>,
    /// Per-child structural digests the epoch vector is built from.
    child_struct: Vec<u64>,
    /// The child topology `Arc`s behind those digests (pointer-equality
    /// fast path on rediscovery).
    child_topos: Vec<Option<Arc<Topology>>>,
}

struct MultiMetrics {
    shard_polls: Counter,
    dirty_shards: Histogram,
    merge_ns: Histogram,
}

impl MultiMetrics {
    fn new(obs: &Obs) -> MultiMetrics {
        MultiMetrics {
            shard_polls: obs.counter("multi_shard_polls_total"),
            dirty_shards: obs.histogram("multi_dirty_shards"),
            merge_ns: obs.histogram("multi_merge_ns"),
        }
    }
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(d: u64, bytes: &[u8]) -> u64 {
    let mut d = d;
    for &b in bytes {
        d ^= u64::from(b);
        d = d.wrapping_mul(FNV_PRIME);
    }
    d
}

/// FNV-1a digest of everything that gives a child topology its meaning:
/// node names/kinds/resources and link endpoints/capacity/latency, in id
/// order. Equal digests imply the same dir-link indexing, so remaps and
/// histories built under one stay valid under the other.
fn structure_digest(t: &Topology) -> u64 {
    let mut d = FNV_BASIS;
    for n in t.node_ids() {
        let node = t.node(n);
        d = fnv_bytes(d, node.name.as_bytes());
        d = fnv_bytes(d, &[matches!(node.kind, NodeKind::Network) as u8]);
        d = fnv_bytes(d, &node.compute_flops.to_bits().to_le_bytes());
        d = fnv_bytes(d, &node.memory_bytes.to_le_bytes());
    }
    for l in t.link_ids() {
        let link = t.link(l);
        d = fnv_bytes(d, &(link.a.index() as u64).to_le_bytes());
        d = fnv_bytes(d, &(link.b.index() as u64).to_le_bytes());
        d = fnv_bytes(d, &link.capacity.to_bits().to_le_bytes());
        d = fnv_bytes(d, &link.latency.as_nanos().to_le_bytes());
    }
    d
}

/// The epoch *vector* folded to one value: FNV-1a over the per-child
/// structural digests plus the child count. Fed to the plan cache as
/// [`Collector::topology_epoch`]; one shard's rediscovery only moves it
/// when that shard's structure actually changed.
fn epoch_digest(child_structs: &[u64]) -> u64 {
    let mut d = FNV_BASIS;
    for &s in child_structs {
        d = fnv_bytes(d, &s.to_le_bytes());
    }
    fnv_bytes(d, &(child_structs.len() as u64).to_le_bytes())
}

/// A federation of collectors presenting one merged view.
pub struct MultiCollector {
    children: Vec<Box<dyn Collector>>,
    cfg: MultiCollectorConfig,
    merged: Option<Merged>,
    history: SampleHistory,
    epoch: u64,
    obs: Obs,
    metrics: MultiMetrics,
}

impl MultiCollector {
    /// Federate the given children. At least one is required.
    pub fn new(children: Vec<Box<dyn Collector>>) -> Self {
        Self::with_config(children, MultiCollectorConfig::default())
    }

    /// Federate with an explicit configuration.
    pub fn with_config(children: Vec<Box<dyn Collector>>, cfg: MultiCollectorConfig) -> Self {
        let obs = Obs::new();
        let metrics = MultiMetrics::new(&obs);
        let history = SampleHistory::new(cfg.history_len);
        MultiCollector { children, cfg, merged: None, history, epoch: 0, obs, metrics }
    }

    /// Rebuild the merged view if any child's structure changed; keep
    /// everything (topology `Arc`, remap, merged history, epoch) when
    /// rediscovery found the same structures.
    fn rebuild_or_keep(&mut self) -> CoreResult<()> {
        if self.children.is_empty() {
            return Err(RemosError::Collector("no child collectors".into()));
        }
        // Children without a discovered view (their whole region is down)
        // simply contribute nothing to the merge.
        let topos: Vec<Option<Arc<Topology>>> =
            self.children.iter().map(|c| c.topology().ok()).collect();
        if topos.iter().all(|t| t.is_none()) {
            return Err(RemosError::Collector("no child has a discovered topology".into()));
        }
        let mut structs = Vec::with_capacity(topos.len());
        for (ci, topo) in topos.iter().enumerate() {
            let s = match topo {
                None => 0,
                Some(t) => {
                    let prior = self
                        .merged
                        .as_ref()
                        .and_then(|m| m.child_topos.get(ci))
                        .and_then(|o| o.as_ref());
                    match prior {
                        // Same Arc as last time: digest cannot have moved.
                        Some(old) if Arc::ptr_eq(old, t) => {
                            self.merged.as_ref().map(|m| m.child_struct[ci]).unwrap_or(0)
                        }
                        _ => structure_digest(t),
                    }
                }
            };
            structs.push(s);
        }
        if let Some(m) = &mut self.merged {
            if m.child_struct == structs {
                // Structures unchanged: merged topology, remap, buffers,
                // history, and the epoch all stay — cached plans keyed on
                // the epoch survive this rediscovery.
                m.child_topos = topos;
                return Ok(());
            }
        }
        let merged = self.merge(&topos, structs)?;
        self.epoch = epoch_digest(&merged.child_struct);
        self.merged = Some(merged);
        self.history.clear();
        Ok(())
    }

    /// Build the merged topology, remap, and contributor split.
    fn merge(
        &self,
        topos: &[Option<Arc<Topology>>],
        child_struct: Vec<u64>,
    ) -> CoreResult<Merged> {
        // Fast path: every discovered child reports the same shared
        // topology (fabric shards). The merged view IS that topology —
        // identity remap, and crucially the same `Arc`, so plan-cache
        // pointer guards and graph digests match a monolithic collector.
        let first = topos.iter().flatten().next().cloned();
        let all_same = first.as_ref().is_some_and(|f| {
            topos.iter().flatten().all(|t| Arc::ptr_eq(f, t))
        });
        let (topo, remap) = if let (Some(f), true) = (first, all_same) {
            let n = f.dir_link_count();
            let remap: Vec<Vec<usize>> = topos
                .iter()
                .map(|t| if t.is_some() { (0..n).collect() } else { Vec::new() })
                .collect();
            (f, remap)
        } else {
            self.merge_by_name(topos)?
        };

        // Host name -> first child able to answer `host_info` for it.
        let mut host_child: HashMap<String, usize> = HashMap::new();
        for (ci, t) in topos.iter().enumerate() {
            let Some(t) = t else { continue };
            for nid in t.node_ids() {
                let node = t.node(nid);
                if node.kind == NodeKind::Compute {
                    host_child.entry(node.name.clone()).or_insert(ci);
                }
            }
        }

        // Contributor split: which children actually observe each merged
        // entry. A child observes the entries its coverage() declares
        // (all of them by default), remapped into the merged indexing.
        let n = topo.dir_link_count();
        let mut contrib: Vec<Vec<Contributor>> = (0..n).map(|_| Vec::new()).collect();
        for (ci, map) in remap.iter().enumerate() {
            if map.is_empty() {
                continue;
            }
            let mut note = |child_idx: usize| {
                let m = map.get(child_idx).copied().unwrap_or(usize::MAX);
                if m != usize::MAX {
                    contrib[m].push(Contributor { child: ci as u32, child_idx: child_idx as u32 });
                }
            };
            match self.children[ci].coverage() {
                None => (0..map.len()).for_each(&mut note),
                Some(list) => list.iter().for_each(|&i| note(i as usize)),
            }
        }
        let mut exclusive: Vec<Vec<(u32, u32)>> = (0..topos.len()).map(|_| Vec::new()).collect();
        let mut shared = Vec::new();
        for (m, list) in contrib.into_iter().enumerate() {
            match list.len() {
                0 => {}
                1 => exclusive[list[0].child as usize].push((list[0].child_idx, m as u32)),
                _ => shared.push(SharedEntry { merged_idx: m as u32, contributors: list }),
            }
        }
        Ok(Merged {
            topo,
            host_child,
            exclusive,
            shared,
            util: vec![0.0; n],
            quality: vec![DataQuality::Missing; n],
            applied_gen: vec![None; topos.len()],
            applied_age: vec![None; topos.len()],
            child_struct,
            child_topos: topos.to_vec(),
        })
    }

    /// The general name-union merge for heterogeneous children (regional
    /// SNMP collectors with border overlap).
    fn merge_by_name(
        &self,
        topos: &[Option<Arc<Topology>>],
    ) -> CoreResult<(Arc<Topology>, Vec<Vec<usize>>)> {
        // Union of nodes by name. Network kind wins on conflict (a border
        // router may look like an opaque endpoint to a benchmark child).
        let mut kinds: BTreeMap<String, NodeKind> = BTreeMap::new();
        let mut speeds: HashMap<String, (f64, u64)> = HashMap::new();
        for t in topos.iter().flatten() {
            for n in t.node_ids() {
                let node = t.node(n);
                let e = kinds.entry(node.name.clone()).or_insert(node.kind);
                if node.kind == NodeKind::Network {
                    *e = NodeKind::Network;
                }
                speeds
                    .entry(node.name.clone())
                    .or_insert((node.compute_flops, node.memory_bytes));
            }
        }
        // Union of links by ordered name pair.
        let mut edges: BTreeMap<(String, String), (f64, remos_net::SimDuration)> = BTreeMap::new();
        for t in topos.iter().flatten() {
            for l in t.link_ids() {
                let link = t.link(l);
                let (an, bn) = (t.node(link.a).name.clone(), t.node(link.b).name.clone());
                let key = if an < bn { (an, bn) } else { (bn, an) };
                edges
                    .entry(key)
                    .and_modify(|(c, _)| *c = c.min(link.capacity))
                    .or_insert((link.capacity, link.latency));
            }
        }
        // Build merged topology.
        let mut b = TopologyBuilder::new();
        let mut ids = HashMap::new();
        for (name, kind) in &kinds {
            let id = match kind {
                NodeKind::Network => b.network(name),
                NodeKind::Compute => {
                    let (flops, _mem) = speeds[name];
                    b.compute_with_speed(name, flops)
                }
            };
            ids.insert(name.clone(), id);
        }
        let mut link_ids = HashMap::new();
        for ((an, bn), (cap, lat)) in &edges {
            let id = b.link(ids[an], ids[bn], *cap, *lat).map_err(RemosError::from)?;
            link_ids.insert((an.clone(), bn.clone()), id);
        }
        let topo = Arc::new(b.build().map_err(RemosError::from)?);

        // Per-child dir-link remap.
        let mut remap = Vec::with_capacity(topos.len());
        for t in topos {
            let Some(t) = t else {
                remap.push(Vec::new());
                continue;
            };
            let mut m = vec![usize::MAX; t.dir_link_count()];
            for l in t.link_ids() {
                let link = t.link(l);
                let (an, bn) = (t.node(link.a).name.clone(), t.node(link.b).name.clone());
                let key = if an < bn { (an.clone(), bn.clone()) } else { (bn.clone(), an.clone()) };
                let merged_link = link_ids[&key];
                // Directions must be matched by tail-node name, since the
                // merged link may list endpoints in either order.
                let merged_l = topo.link(merged_link);
                let tail_a_name = &topo.node(merged_l.a).name;
                for dir in [remos_net::Direction::AtoB, remos_net::Direction::BtoA] {
                    let child_tail = t.node(link.tail(dir)).name.clone();
                    let merged_dir = if &child_tail == tail_a_name {
                        remos_net::Direction::AtoB
                    } else {
                        remos_net::Direction::BtoA
                    };
                    m[DirLink { link: l, dir }.index()] =
                        DirLink { link: merged_link, dir: merged_dir }.index();
                }
            }
            remap.push(m);
        }
        Ok((topo, remap))
    }
}

/// Quality of `snap`'s entry `idx`, aged by how far the snapshot lags
/// the merge time (`age`), degrading to Missing past `missing_after`.
fn aged_quality(
    snap: &Snapshot,
    idx: usize,
    age: SimDuration,
    missing_after: SimDuration,
) -> DataQuality {
    let mut q = snap.quality.get(idx).copied().unwrap_or(DataQuality::Missing);
    if age > SimDuration::ZERO {
        q = q.worst(DataQuality::Stale { age });
    }
    if let Some(total_age) = q.age() {
        if total_age > missing_after {
            q = DataQuality::Missing;
        }
    }
    q
}

impl Collector for MultiCollector {
    fn set_obs(&mut self, obs: &remos_obs::Obs) {
        self.obs = obs.clone();
        self.metrics = MultiMetrics::new(obs);
        for c in &mut self.children {
            c.set_obs(obs);
        }
    }

    fn refresh_topology(&mut self) -> CoreResult<()> {
        // Failover: children whose region cannot be discovered right now
        // are tolerated as long as at least one child succeeds.
        let mut ok = 0usize;
        let mut first_err = None;
        for c in &mut self.children {
            match c.refresh_topology() {
                Ok(()) => ok += 1,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if ok == 0 {
            return Err(first_err.unwrap_or_else(|| {
                RemosError::Collector("multi-collector has no children".into())
            }));
        }
        self.rebuild_or_keep()
    }

    fn topology_epoch(&self) -> u64 {
        self.epoch
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        self.merged
            .as_ref()
            .map(|m| Arc::clone(&m.topo))
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        // O(1) owner lookup via the map built at merge time; fall back to
        // the scan when the mapped child cannot answer right now (its
        // region may be down) or before the first merge.
        if let Some(m) = &self.merged {
            if let Some(&ci) = m.host_child.get(name) {
                if let Ok(h) = self.children[ci].host_info(name) {
                    return Ok(h);
                }
            }
        }
        for c in &self.children {
            if let Ok(h) = c.host_info(name) {
                return Ok(h);
            }
        }
        Err(RemosError::UnknownNode(name.to_string()))
    }

    fn poll(&mut self) -> CoreResult<bool> {
        if self.merged.is_none() {
            self.refresh_topology()?;
        }
        // Poll every child; a failing child only degrades its own region.
        // The poll as a whole errors only when *every* child errors.
        let mut any = false;
        let mut errors = 0usize;
        let mut first_err = None;
        let workers = match self.cfg.poll_workers {
            0 => pool::default_workers(self.children.len()),
            w => w,
        };
        if workers == 1 {
            // Serial fan-out: the allocation-free steady-state path.
            for c in &mut self.children {
                match c.poll() {
                    Ok(produced) => any |= produced,
                    Err(e) => {
                        errors += 1;
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
        } else {
            // Concurrent fan-out on the shared scoped pool; results come
            // back in input order, so error selection is deterministic.
            let results = pool::run_indexed_mut(&mut self.children, workers, |_, c| c.poll());
            for r in results {
                match r {
                    Ok(produced) => any |= produced,
                    Err(e) => {
                        errors += 1;
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
        }
        self.metrics.shard_polls.add(self.children.len() as u64);
        if errors == self.children.len() {
            return Err(first_err.unwrap_or_else(|| {
                RemosError::Collector("multi-collector has no children".into())
            }));
        }
        if !any {
            return Ok(false);
        }
        // Disjoint field borrows: the merge mutates `merged`/`history`
        // while reading the children's sample histories.
        let MultiCollector { children, cfg, merged, history, obs, metrics, .. } = self;
        let Some(merged) = merged.as_mut() else {
            return Err(RemosError::Collector("topology not discovered yet".into()));
        };
        let t0 = obs.clock_nanos();
        // Merged time is the newest child sample; older child samples age
        // into Stale/Missing relative to it.
        let t = children
            .iter()
            .filter_map(|c| c.history().latest().map(|s| s.t))
            .max();
        let Some(t) = t else { return Ok(false) };
        let mut interval = SimDuration::ZERO;
        let mut dirty = 0u64;
        for (ci, c) in children.iter().enumerate() {
            let latest = c.history().latest();
            let gen = c.generation();
            let age = latest.map(|s| t.saturating_since(s.t));
            if let Some(s) = latest {
                interval = interval.max(s.interval);
            }
            // A child is dirty when it produced (or dropped) samples;
            // it needs re-aging when the merge time moved past it.
            let util_dirty = cfg.force_full_merge || merged.applied_gen[ci] != Some(gen);
            let quality_dirty = util_dirty || merged.applied_age[ci] != age;
            if util_dirty {
                dirty += 1;
            }
            if !quality_dirty {
                continue;
            }
            match latest {
                None => {
                    // No sample: this child's entries read zero/Missing,
                    // exactly as a from-scratch merge would leave them.
                    for &(_, m) in &merged.exclusive[ci] {
                        merged.util[m as usize] = 0.0;
                        merged.quality[m as usize] = DataQuality::Missing;
                    }
                }
                Some(snap) => {
                    let age = t.saturating_since(snap.t);
                    for &(child_idx, m) in &merged.exclusive[ci] {
                        let (child_idx, m) = (child_idx as usize, m as usize);
                        if child_idx >= snap.util.len() {
                            // Topology drift: reads as unmeasured.
                            merged.util[m] = 0.0;
                            merged.quality[m] = DataQuality::Missing;
                            continue;
                        }
                        if util_dirty {
                            // Single contributor: copy the sample through
                            // bit-exactly (a max against the 0.0 base
                            // would rewrite -0.0 and break bit-identity
                            // with a monolithic collector).
                            merged.util[m] = snap.util[child_idx];
                        }
                        merged.quality[m] =
                            aged_quality(snap, child_idx, age, cfg.missing_after);
                    }
                }
            }
            merged.applied_gen[ci] = Some(gen);
            merged.applied_age[ci] = age;
        }
        // Border entries observed by several children: recompute from all
        // contributors (child order, matching a sequential merge).
        for e in &merged.shared {
            let mut u = 0.0f64;
            let mut q = DataQuality::Missing;
            for contrib in &e.contributors {
                let Some(snap) = children[contrib.child as usize].history().latest() else {
                    continue;
                };
                let idx = contrib.child_idx as usize;
                if idx >= snap.util.len() {
                    continue;
                }
                let age = t.saturating_since(snap.t);
                // Border links observed twice: keep the larger utilization
                // and the better-quality observation.
                u = u.max(snap.util[idx]);
                q = q.better(aged_quality(snap, idx, age, cfg.missing_after));
            }
            merged.util[e.merged_idx as usize] = u;
            merged.quality[e.merged_idx as usize] = q;
        }
        metrics.dirty_shards.observe(dirty);
        // Publish: recycle the snapshot the push would evict so the
        // steady state copies into existing buffers instead of
        // allocating.
        let n = merged.util.len();
        let (mut util, mut quality) = match history.recycle_oldest() {
            Some(s) if s.util.len() == n && s.quality.len() == n => (s.util, s.quality),
            _ => (
                vec![0.0f64; n].into_boxed_slice(),
                vec![DataQuality::Missing; n].into_boxed_slice(),
            ),
        };
        util.copy_from_slice(&merged.util);
        quality.copy_from_slice(&merged.quality);
        history.push(Snapshot { t, interval, util, quality });
        if let (Some(t0), Some(t1)) = (t0, obs.clock_nanos()) {
            metrics.merge_ns.observe(t1.saturating_sub(t0));
        }
        Ok(true)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn describe(&self) -> String {
        // A child is "current" when its latest sample is as new as the
        // newest across the federation — i.e. it is still producing data,
        // not being carried forward and aged toward Missing.
        let newest = self
            .children
            .iter()
            .filter_map(|c| c.history().latest().map(|s| s.t))
            .max();
        let current = match newest {
            Some(t) => self
                .children
                .iter()
                .filter(|c| c.history().latest().map(|s| s.t >= t).unwrap_or(false))
                .count(),
            None => 0,
        };
        format!("multi({current}/{} children current)", self.children.len())
    }

    fn now(&self) -> CoreResult<SimTime> {
        // First child that can tell the time wins (each child is already
        // robust to its own agents restarting).
        let mut first_err = None;
        for c in &self.children {
            match c.now() {
                Ok(t) => return Ok(t),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        Err(first_err
            .unwrap_or_else(|| RemosError::Collector("no child collectors".into())))
    }
}
