//! Oracle collector: perfect, instantaneous knowledge of the simulator.
//!
//! Not part of the paper's system — it exists as the *ground truth*
//! baseline for ablations (how much does SNMP sampling noise, Counter32
//! wrap, or prediction error cost?) and for constructing hand-annotated
//! examples like Fig 1, where the information (switch internal bandwidth)
//! is not exposed through any MIB.

use crate::collector::{Collector, SampleHistory, Snapshot};
use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use remos_net::topology::{DirLink, NodeKind, Topology};
use remos_net::SimTime;
use remos_snmp::sim::SharedSim;
use std::sync::Arc;

/// Collector that reads the simulator state directly.
pub struct OracleCollector {
    sim: SharedSim,
    history: SampleHistory,
    last_rates: Option<SimTime>,
    topology_epoch: u64,
}

impl OracleCollector {
    /// New oracle over the shared simulator.
    pub fn new(sim: SharedSim) -> Self {
        OracleCollector {
            sim,
            history: SampleHistory::default(),
            last_rates: None,
            topology_epoch: 0,
        }
    }
}

impl Collector for OracleCollector {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        self.topology_epoch += 1;
        self.history.clear();
        Ok(())
    }

    fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        Ok(self.sim.lock().topology_arc())
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        let sim = self.sim.lock();
        let topo = sim.topology();
        let id = topo.lookup(name).map_err(RemosError::from)?;
        let node = topo.node(id);
        if node.kind != NodeKind::Compute {
            return Err(RemosError::UnknownNode(name.to_string()));
        }
        Ok(HostInfo { compute_flops: node.compute_flops, memory_bytes: node.memory_bytes })
    }

    fn poll(&mut self) -> CoreResult<bool> {
        let mut sim = self.sim.lock();
        let t = sim.now();
        let n = sim.topology().dir_link_count();
        let mut util = Vec::with_capacity(n);
        for i in 0..n {
            util.push(sim.dirlink_rate(DirLink::from_index(i)));
        }
        let interval = match self.last_rates {
            Some(prev) => t.saturating_since(prev),
            None => remos_net::SimDuration::ZERO,
        };
        self.last_rates = Some(t);
        self.history.push(Snapshot::fresh(t, interval, util.into_boxed_slice()));
        Ok(true)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn now(&self) -> CoreResult<SimTime> {
        Ok(self.sim.lock().now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::flow::FlowParams;
    use remos_net::{mbps, SimDuration, Simulator, TopologyBuilder};
    use remos_snmp::sim::share;

    #[test]
    fn oracle_sees_instantaneous_rates() {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("h1");
        let h2 = b.compute("h2");
        let r = b.network("r");
        b.link(h1, r, mbps(100.0), SimDuration::ZERO).unwrap();
        b.link(r, h2, mbps(100.0), SimDuration::ZERO).unwrap();
        let sim = share(Simulator::new(b.build().unwrap()).unwrap());
        sim.lock().start_flow(FlowParams::cbr(h1, h2, mbps(30.0))).unwrap();

        let mut c = OracleCollector::new(sim);
        assert!(c.poll().unwrap());
        let snap = c.history().latest().unwrap();
        let topo = c.topology().unwrap();
        let (link, _) = topo.neighbors(h1)[0];
        let d = DirLink { link, dir: topo.link(link).direction_from(h1) };
        assert!((snap.util_of(d) - mbps(30.0)).abs() < 1.0);
        // Host info comes straight from the topology.
        let hi = c.host_info("h1").unwrap();
        assert!(hi.compute_flops > 0.0);
        assert!(c.host_info("r").is_err());
        assert!(c.host_info("zz").is_err());
    }
}
