//! Region-scoped shard collectors over a shared simulated fabric.
//!
//! The paper's §5 anticipates "multiple cooperating Collectors" for
//! large networks. [`ShardCollector`] is the sharded-back-end half of
//! that story: each shard owns a disjoint *region* (a set of directed
//! interfaces) of one shared fabric and measures only those, so a
//! [`MultiCollector`](crate::collector::multi::MultiCollector) can poll
//! all shards concurrently — readers share the simulator through
//! `SimCell::read` and only pay an exclusive lock when the rates still
//! need settling.
//!
//! Because every shard reports the *same* full-fabric topology (its
//! region is declared through [`Collector::coverage`], not by cutting
//! the graph), the federation's merged view is the fabric's own
//! `Arc<Topology>` — node ids, routing, and therefore graph digests are
//! bit-identical to a monolithic collector over the same simulator.
//!
//! [`shard_fabric`] builds the canonical partition for a fat-tree:
//! per-pod-group shards owning the host and edge-aggregation links of
//! their pods, plus one WAN/spine shard owning every
//! aggregation-core link.

use crate::collector::{Collector, SampleHistory, Snapshot};
use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use crate::quality::DataQuality;
use remos_net::topology::{DirLink, NodeKind, Topology};
use remos_net::{Direction, FatTree, SimDuration, SimTime, Simulator};
use remos_obs::{Counter, Obs};
use remos_snmp::sim::SharedSim;
use std::sync::Arc;

/// Collector measuring one region of a shared simulated fabric.
pub struct ShardCollector {
    sim: SharedSim,
    label: String,
    /// Directed-interface indices this shard measures, sorted ascending.
    region: Vec<u32>,
    history: SampleHistory,
    last_rates: Option<SimTime>,
    topology_epoch: u64,
    polls: Counter,
}

impl ShardCollector {
    /// Shard over `sim` measuring exactly `region` (directed-interface
    /// indices of the simulator's topology). The region is sorted and
    /// deduplicated; indices beyond the topology are rejected.
    pub fn new(sim: SharedSim, label: &str, mut region: Vec<u32>) -> CoreResult<ShardCollector> {
        region.sort_unstable();
        region.dedup();
        let n = sim.read().topology().dir_link_count();
        if region.last().is_some_and(|&i| i as usize >= n) {
            return Err(RemosError::Collector(format!(
                "shard {label}: region index out of range (topology has {n} directed interfaces)"
            )));
        }
        Ok(ShardCollector {
            sim,
            label: label.to_string(),
            region,
            history: SampleHistory::default(),
            last_rates: None,
            topology_epoch: 0,
            polls: Obs::new().counter("shard_polls_total"),
        })
    }

    /// Replace the history bound (the zero-alloc tests use a short one
    /// so the recycling steady state is reached quickly).
    pub fn with_history_len(mut self, max_len: usize) -> ShardCollector {
        self.history = SampleHistory::new(max_len);
        self
    }

    /// The measured region (sorted directed-interface indices).
    pub fn region(&self) -> &[u32] {
        &self.region
    }

    /// Read one settled sample. Region entries are measured Fresh;
    /// everything outside the region stays zero/Missing (the federation
    /// attributes those to the shards that do cover them).
    fn sample(&mut self, sim: &Simulator) -> CoreResult<bool> {
        let t = sim.now();
        let n = sim.topology().dir_link_count();
        if self.region.last().is_some_and(|&i| i as usize >= n) {
            return Err(RemosError::Collector(format!(
                "shard {}: region outgrew the topology ({n} directed interfaces)",
                self.label
            )));
        }
        // Steady state recycles the snapshot the push below would evict:
        // its non-region entries are already zero/Missing (regions never
        // change), so only the measured entries need rewriting.
        let (mut util, mut quality) = match self.history.recycle_oldest() {
            Some(s) if s.util.len() == n && s.quality.len() == n => (s.util, s.quality),
            _ => (
                vec![0.0f64; n].into_boxed_slice(),
                vec![DataQuality::Missing; n].into_boxed_slice(),
            ),
        };
        // One pass over the flow table for the whole region (bit-identical
        // to per-index `dirlink_rate_settled` reads, which scan the flow
        // table once *per link*).
        sim.dirlink_rates_settled_into(&self.region, &mut util);
        for &i in &self.region {
            quality[i as usize] = DataQuality::Fresh;
        }
        let interval = match self.last_rates {
            Some(prev) => t.saturating_since(prev),
            None => SimDuration::ZERO,
        };
        self.last_rates = Some(t);
        self.polls.inc();
        self.history.push(Snapshot { t, interval, util, quality });
        Ok(true)
    }
}

impl Collector for ShardCollector {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        self.topology_epoch += 1;
        self.history.clear();
        Ok(())
    }

    fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        Ok(self.sim.read().topology_arc())
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        let sim = self.sim.read();
        let topo = sim.topology();
        let id = topo.lookup(name).map_err(RemosError::from)?;
        let node = topo.node(id);
        if node.kind != NodeKind::Compute {
            return Err(RemosError::UnknownNode(name.to_string()));
        }
        Ok(HostInfo { compute_flops: node.compute_flops, memory_bytes: node.memory_bytes })
    }

    fn poll(&mut self) -> CoreResult<bool> {
        let sim = Arc::clone(&self.sim);
        {
            let s = sim.read();
            if s.rates_settled() {
                return self.sample(&s);
            }
        }
        // Someone has to pay for the solve; the first shard to arrive
        // does, the rest find the rates settled. The read guard is
        // dropped before the write request (no reader-to-writer upgrade)
        // and settling is idempotent, so the race is harmless.
        sim.lock().settle_rates();
        let s = sim.read();
        self.sample(&s)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn now(&self) -> CoreResult<SimTime> {
        Ok(self.sim.read().now())
    }

    fn set_obs(&mut self, obs: &Obs) {
        self.polls = obs.counter("shard_polls_total");
    }

    fn describe(&self) -> String {
        format!("shard({}, {} ifaces)", self.label, self.region.len())
    }

    fn coverage(&self) -> Option<&[u32]> {
        Some(&self.region)
    }
}

/// Split a fat-tree fabric into `pod_groups` pod-group shards (each
/// owning the host and edge-aggregation links of a contiguous pod
/// range) plus one WAN/spine shard owning every aggregation-core link.
/// The regions tile the fabric's directed interfaces exactly once, so
/// the federation's merged view covers every link Fresh.
///
/// `sim` must simulate the same topology `tree` describes (the shards
/// read rates by directed-interface index).
pub fn shard_fabric(
    tree: &FatTree,
    sim: &SharedSim,
    pod_groups: usize,
) -> CoreResult<Vec<ShardCollector>> {
    let pods = tree.pods();
    let groups = pod_groups.clamp(1, pods);
    let topo = tree.topology();
    if sim.read().topology().dir_link_count() != topo.dir_link_count() {
        return Err(RemosError::Collector(
            "shard_fabric: simulator topology does not match the fat-tree".into(),
        ));
    }
    let mut regions: Vec<Vec<u32>> = vec![Vec::new(); groups + 1];
    for l in topo.link_ids() {
        // Contiguous balanced pod->group map; core links go to the spine.
        let g = match tree.pod_of_link(l) {
            Some(pod) => pod * groups / pods,
            None => groups,
        };
        for dir in [Direction::AtoB, Direction::BtoA] {
            regions[g].push(DirLink { link: l, dir }.index() as u32);
        }
    }
    let mut out = Vec::with_capacity(groups + 1);
    for (g, region) in regions.into_iter().enumerate() {
        let label = if g == groups {
            "spine".to_string()
        } else {
            let lo = (g * pods).div_ceil(groups);
            let hi = ((g + 1) * pods).div_ceil(groups) - 1;
            format!("pods{lo}-{hi}")
        };
        out.push(ShardCollector::new(Arc::clone(sim), &label, region)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::flow::FlowParams;
    use remos_snmp::sim::share;

    #[test]
    fn fabric_shards_tile_the_whole_fabric() {
        let tree = FatTree::build(4).unwrap();
        let n = tree.topology().dir_link_count();
        let sim = share(Simulator::new(FatTree::build(4).unwrap().into_parts().0).unwrap());
        let shards = shard_fabric(&tree, &sim, 3).unwrap();
        assert_eq!(shards.len(), 4, "3 pod groups + spine");
        let mut seen = vec![0u32; n];
        for s in &shards {
            for &i in s.region() {
                seen[i as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "regions must tile every dirlink exactly once");
        assert!(shards.last().unwrap().describe().contains("spine"));
    }

    #[test]
    fn shard_reads_match_the_oracle_in_its_region() {
        let tree = FatTree::build(4).unwrap();
        let src = tree.host(0, 0);
        let dst = tree.host(0, 1);
        let sim = share(Simulator::new(FatTree::build(4).unwrap().into_parts().0).unwrap());
        sim.lock().start_flow(FlowParams::greedy(src, dst)).unwrap();
        sim.lock().run_for(SimDuration::from_millis(1)).unwrap();
        let mut shards = shard_fabric(&tree, &sim, 2).unwrap();
        for s in &mut shards {
            assert!(s.poll().unwrap());
        }
        // Every dirlink's rate, reassembled from the shard snapshots,
        // equals the simulator's own (exclusive-lock) answer bitwise.
        let n = tree.topology().dir_link_count();
        for i in 0..n {
            let want = sim.lock().dirlink_rate(DirLink::from_index(i));
            let owner = shards.iter().find(|s| s.region().contains(&(i as u32))).unwrap();
            let snap = owner.history().latest().unwrap();
            assert_eq!(snap.util[i], want);
            assert_eq!(snap.quality[i], DataQuality::Fresh);
        }
        // Host info and time answer like any full-view collector.
        assert!(shards[0].host_info("p0e0h0").is_ok());
        assert!(shards[0].host_info("c0x0").is_err());
        assert!(shards[0].now().is_ok());
    }

    #[test]
    fn shard_region_validation() {
        let sim = share(Simulator::new(FatTree::build(4).unwrap().into_parts().0).unwrap());
        let n = sim.read().topology().dir_link_count() as u32;
        assert!(ShardCollector::new(Arc::clone(&sim), "bad", vec![n]).is_err());
        let ok = ShardCollector::new(sim, "ok", vec![3, 1, 1, 2]).unwrap();
        assert_eq!(ok.region(), &[1, 2, 3]);
        assert_eq!(ok.coverage(), Some(&[1u32, 2, 3][..]));
    }
}
