//! The benchmark collector (§5): active probing.
//!
//! "We also have a Collector that uses benchmarks to probe networks that
//! do not respond to our SNMP queries (e.g. wide-area networks run by
//! commercial ISPs)."
//!
//! The probed region is opaque, so the view this collector produces is a
//! *logical clique*: one direct logical link per host pair, whose
//! available bandwidth is the throughput a short bulk transfer achieved.
//! Probes are intrusive — they inject real traffic and consume real
//! (simulated) time, which is exactly the practical trade-off against
//! passive SNMP polling; the bench harness quantifies it.

use crate::collector::{Collector, SampleHistory, Snapshot};
use crate::error::{CoreResult, RemosError};
use crate::graph::HostInfo;
use remos_net::flow::{FlowParams, FlowTag};
use remos_net::topology::{NodeId, NodeKind, Topology, TopologyBuilder};
use remos_net::{Bps, SimDuration, SimTime};
use remos_snmp::sim::SharedSim;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a [`BenchmarkCollector`].
#[derive(Clone, Debug)]
pub struct BenchmarkCollectorConfig {
    /// Bytes per probe transfer. Larger probes average longer and disturb
    /// the network more.
    pub probe_bytes: u64,
    /// Assumed static capacity of every pair (the probed cloud's access
    /// rate); available bandwidth is reported relative to this.
    pub assumed_capacity: Bps,
    /// Fallback pair latency when ping measurement is disabled.
    pub assumed_latency: SimDuration,
    /// Measure per-pair one-way latency with a ping at discovery time
    /// (otherwise every pair is annotated with `assumed_latency`).
    pub measure_latency: bool,
    /// Sample history bound.
    pub history_len: usize,
}

impl Default for BenchmarkCollectorConfig {
    fn default() -> Self {
        BenchmarkCollectorConfig {
            probe_bytes: 256 * 1024,
            assumed_capacity: remos_net::mbps(100.0),
            assumed_latency: SimDuration::from_micros(300),
            measure_latency: true,
            history_len: crate::collector::DEFAULT_HISTORY_LEN,
        }
    }
}

/// Active-probing collector over a set of hosts.
pub struct BenchmarkCollector {
    sim: SharedSim,
    hosts: Vec<String>,
    cfg: BenchmarkCollectorConfig,
    /// The logical clique; link order = pair order.
    topo: Option<Arc<Topology>>,
    /// Pair (i, j), i < j, per clique link.
    pairs: Vec<(String, String)>,
    history: SampleHistory,
    topology_epoch: u64,
}

impl BenchmarkCollector {
    /// New collector probing between `hosts` (names must exist in the
    /// simulated network).
    pub fn new(sim: SharedSim, hosts: Vec<String>, cfg: BenchmarkCollectorConfig) -> Self {
        let mut hosts = hosts;
        hosts.sort();
        hosts.dedup();
        let history = SampleHistory::new(cfg.history_len);
        BenchmarkCollector {
            sim,
            hosts,
            cfg,
            topo: None,
            pairs: Vec::new(),
            history,
            topology_epoch: 0,
        }
    }

    /// One-way latency measured by a ping between two named hosts (half
    /// the round trip a real `ping` would report).
    fn ping(&self, src: &str, dst: &str) -> CoreResult<SimDuration> {
        let sim = self.sim.lock();
        let topo = sim.topology_arc();
        let s = topo.lookup(src).map_err(RemosError::from)?;
        let d = topo.lookup(dst).map_err(RemosError::from)?;
        let path = sim
            .routing()
            .path(&topo, s, d)
            .map_err(RemosError::from)?;
        Ok(path.latency(&topo))
    }

    /// Throughput achieved by one probe transfer from `src` to `dst`
    /// (simulated node ids), in bits/s.
    fn probe(&self, src: NodeId, dst: NodeId) -> CoreResult<Bps> {
        let mut sim = self.sim.lock();
        let f = sim
            .start_flow(
                FlowParams::bulk(src, dst, self.cfg.probe_bytes).with_tag(FlowTag::PROBE),
            )
            .map_err(RemosError::from)?;
        let recs = sim.run_until_flows_complete(&[f]).map_err(RemosError::from)?;
        Ok(recs[0].mean_rate())
    }
}

impl Collector for BenchmarkCollector {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        if self.hosts.len() < 2 {
            return Err(RemosError::Collector("need at least two hosts to probe".into()));
        }
        // Validate the hosts exist and are compute nodes.
        {
            let sim = self.sim.lock();
            let topo = sim.topology();
            for h in &self.hosts {
                let id = topo.lookup(h).map_err(RemosError::from)?;
                if topo.node(id).kind != NodeKind::Compute {
                    return Err(RemosError::InvalidQuery(
                        crate::error::InvalidQueryKind::NotAHost { node: h.clone() },
                    ));
                }
            }
        }
        let mut b = TopologyBuilder::new();
        let ids: HashMap<&str, NodeId> = self
            .hosts
            .iter()
            .map(|h| (h.as_str(), b.compute(h)))
            .collect();
        self.pairs.clear();
        for i in 0..self.hosts.len() {
            for j in (i + 1)..self.hosts.len() {
                // A ping measures the pair's one-way latency; the cloud is
                // otherwise opaque so that is the only structure we learn.
                let latency = if self.cfg.measure_latency {
                    self.ping(&self.hosts[i], &self.hosts[j])?
                } else {
                    self.cfg.assumed_latency
                };
                b.link(
                    ids[self.hosts[i].as_str()],
                    ids[self.hosts[j].as_str()],
                    self.cfg.assumed_capacity,
                    latency,
                )
                .map_err(RemosError::from)?;
                self.pairs.push((self.hosts[i].clone(), self.hosts[j].clone()));
            }
        }
        self.topo = Some(Arc::new(b.build().map_err(RemosError::from)?));
        self.topology_epoch += 1;
        self.history.clear();
        Ok(())
    }

    fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        self.topo
            .as_ref()
            .map(Arc::clone)
            .ok_or_else(|| RemosError::Collector("topology not discovered yet".into()))
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        // The probed region is opaque: no host resources are observable.
        Err(RemosError::UnknownNode(name.to_string()))
    }

    fn poll(&mut self) -> CoreResult<bool> {
        if self.topo.is_none() {
            self.refresh_topology()?;
        }
        let start = self.sim.lock().now();
        // Probe each ordered direction of each pair sequentially so probes
        // do not interfere with each other.
        let real_ids: Vec<(NodeId, NodeId)> = {
            let sim = self.sim.lock();
            let topo = sim.topology();
            self.pairs
                .iter()
                .map(|(a, c)| {
                    Ok((
                        topo.lookup(a).map_err(RemosError::from)?,
                        topo.lookup(c).map_err(RemosError::from)?,
                    ))
                })
                .collect::<CoreResult<_>>()?
        };
        let mut util = vec![0.0; self.pairs.len() * 2];
        for (li, &(a, c)) in real_ids.iter().enumerate() {
            let fwd = self.probe(a, c)?;
            let rev = self.probe(c, a)?;
            // Report as utilization relative to the assumed capacity, so
            // the modeler's `capacity - util` recovers the measurement.
            util[li * 2] = (self.cfg.assumed_capacity - fwd).max(0.0);
            util[li * 2 + 1] = (self.cfg.assumed_capacity - rev).max(0.0);
        }
        let end = self.sim.lock().now();
        self.history.push(Snapshot::fresh(
            end,
            end.saturating_since(start),
            util.into_boxed_slice(),
        ));
        Ok(true)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn now(&self) -> CoreResult<SimTime> {
        Ok(self.sim.lock().now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::topology::DirLink;
    use remos_net::{mbps, Simulator, TopologyBuilder};
    use remos_snmp::sim::share;

    fn testnet() -> SharedSim {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("m-1");
        let h2 = b.compute("m-2");
        let h3 = b.compute("m-3");
        let r = b.network("r");
        for h in [h1, h2, h3] {
            b.link(h, r, mbps(100.0), SimDuration::from_micros(50)).unwrap();
        }
        share(Simulator::new(b.build().unwrap()).unwrap())
    }

    #[test]
    fn builds_clique_view() {
        let sim = testnet();
        let mut c = BenchmarkCollector::new(
            sim,
            vec!["m-1".into(), "m-2".into(), "m-3".into()],
            BenchmarkCollectorConfig::default(),
        );
        c.refresh_topology().unwrap();
        let t = c.topology().unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3); // 3 choose 2
    }

    #[test]
    fn probes_measure_idle_capacity() {
        let sim = testnet();
        let mut c = BenchmarkCollector::new(
            sim,
            vec!["m-1".into(), "m-2".into()],
            BenchmarkCollectorConfig::default(),
        );
        assert!(c.poll().unwrap());
        let snap = c.history().latest().unwrap();
        // Idle network: probes run at full 100 Mbps, so reported
        // utilization is ~0 in both directions.
        assert!(snap.util[0] < mbps(1.0), "{}", snap.util[0]);
        assert!(snap.util[1] < mbps(1.0));
        // Probing consumed simulated time.
        assert!(snap.interval > SimDuration::ZERO);
    }

    #[test]
    fn probes_see_background_load() {
        let sim = testnet();
        {
            let mut s = sim.lock();
            let topo = s.topology_arc();
            let h1 = topo.lookup("m-1").unwrap();
            let h2 = topo.lookup("m-2").unwrap();
            // 4 greedy background flows squeeze the probe to ~20 Mbps.
            for _ in 0..4 {
                s.start_flow(FlowParams::greedy(h1, h2)).unwrap();
            }
        }
        let mut c = BenchmarkCollector::new(
            sim,
            vec!["m-1".into(), "m-2".into()],
            BenchmarkCollectorConfig::default(),
        );
        c.poll().unwrap();
        let snap = c.history().latest().unwrap();
        let avail_fwd = mbps(100.0) - snap.util[0];
        assert!(
            (avail_fwd - mbps(20.0)).abs() < mbps(2.0),
            "measured avail {avail_fwd}"
        );
        // Reverse direction is idle.
        let avail_rev = mbps(100.0) - snap.util[1];
        assert!(avail_rev > mbps(95.0));
        let _ = DirLink::from_index(0);
    }

    #[test]
    fn ping_measures_per_pair_latency() {
        let sim = testnet();
        let mut c = BenchmarkCollector::new(
            sim,
            vec!["m-1".into(), "m-2".into()],
            BenchmarkCollectorConfig::default(),
        );
        c.refresh_topology().unwrap();
        let t = c.topology().unwrap();
        // Two hops of 50 µs each through the router.
        let (link, _) = t.neighbors(t.lookup("m-1").unwrap())[0];
        assert_eq!(t.link(link).latency, SimDuration::from_micros(100));

        // With measurement off, the fallback constant is used.
        let sim2 = testnet();
        let mut c2 = BenchmarkCollector::new(
            sim2,
            vec!["m-1".into(), "m-2".into()],
            BenchmarkCollectorConfig { measure_latency: false, ..Default::default() },
        );
        c2.refresh_topology().unwrap();
        let t2 = c2.topology().unwrap();
        let (link2, _) = t2.neighbors(t2.lookup("m-1").unwrap())[0];
        assert_eq!(t2.link(link2).latency, SimDuration::from_micros(300));
    }

    #[test]
    fn rejects_router_hosts_and_tiny_sets() {
        let sim = testnet();
        let mut c = BenchmarkCollector::new(
            Arc::clone(&sim),
            vec!["m-1".into(), "r".into()],
            BenchmarkCollectorConfig::default(),
        );
        assert!(c.refresh_topology().is_err());
        let mut c2 = BenchmarkCollector::new(
            sim,
            vec!["m-1".into()],
            BenchmarkCollectorConfig::default(),
        );
        assert!(c2.refresh_topology().is_err());
    }
}
