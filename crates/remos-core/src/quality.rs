//! Data-quality annotations for measurements and derived estimates.
//!
//! The paper is explicit that Remos answers are "best-effort estimates"
//! whose dependability varies (§4, §10); when agents crash or stop
//! answering, the Collector can keep serving its last good observation —
//! but the consumer must be able to distinguish "10 Mbps available,
//! measured now" from "10 Mbps, last seen 30 s ago" from "no data at all".
//! [`DataQuality`] is that distinction, attached per directed link to
//! collector snapshots, propagated through the Modeler into
//! [`crate::RemosLink`] annotations and flow-query responses, and consulted
//! by the adaptation layer before acting.

use remos_net::SimDuration;
use serde::{Deserialize, Serialize};

/// How trustworthy one measurement (or an estimate derived from it) is.
///
/// Ordered from best to worst: `Fresh` < `Stale` (older is worse) <
/// `Missing`. Use [`DataQuality::worst`] to combine qualities along a
/// path — an estimate is only as good as its weakest input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum DataQuality {
    /// Measured in the most recent poll interval.
    #[default]
    Fresh,
    /// Carried forward from an earlier interval; `age` is how long ago the
    /// underlying measurement was fresh.
    Stale {
        /// Time since the last fresh measurement.
        age: SimDuration,
    },
    /// No usable measurement exists (never measured, or stale past the
    /// collector's tolerance).
    Missing,
}

impl DataQuality {
    /// Is this a current measurement?
    pub fn is_fresh(self) -> bool {
        matches!(self, DataQuality::Fresh)
    }

    /// Is there no usable measurement at all?
    pub fn is_missing(self) -> bool {
        matches!(self, DataQuality::Missing)
    }

    /// Age of the underlying measurement: zero when fresh, `None` when
    /// missing.
    pub fn age(self) -> Option<SimDuration> {
        match self {
            DataQuality::Fresh => Some(SimDuration::ZERO),
            DataQuality::Stale { age } => Some(age),
            DataQuality::Missing => None,
        }
    }

    /// Rank for ordering: lower is better.
    fn rank(self) -> (u8, SimDuration) {
        match self {
            DataQuality::Fresh => (0, SimDuration::ZERO),
            DataQuality::Stale { age } => (1, age),
            DataQuality::Missing => (2, SimDuration::ZERO),
        }
    }

    /// The worse of two qualities (combine inputs of a derived estimate).
    pub fn worst(self, other: DataQuality) -> DataQuality {
        if self.rank() >= other.rank() {
            self
        } else {
            other
        }
    }

    /// The better of two qualities (merge redundant observations of the
    /// same link, e.g. from federated collectors).
    pub fn better(self, other: DataQuality) -> DataQuality {
        if self.rank() <= other.rank() {
            self
        } else {
            other
        }
    }

    /// Does this quality meet a floor? `Fresh` meets every floor; a stale
    /// quality meets any equally-old-or-older stale floor; nothing but
    /// `Missing` itself meets a `Missing` floor (which accepts anything).
    pub fn meets(self, floor: DataQuality) -> bool {
        self.rank() <= floor.rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stale(s: u64) -> DataQuality {
        DataQuality::Stale { age: SimDuration::from_secs(s) }
    }

    #[test]
    fn ordering_fresh_stale_missing() {
        let f = DataQuality::Fresh;
        let m = DataQuality::Missing;
        assert_eq!(f.worst(m), m);
        assert_eq!(f.worst(stale(3)), stale(3));
        assert_eq!(stale(3).worst(m), m);
        assert_eq!(f.better(m), f);
        assert_eq!(stale(3).better(m), stale(3));
    }

    #[test]
    fn older_stale_is_worse() {
        assert_eq!(stale(1).worst(stale(9)), stale(9));
        assert_eq!(stale(1).better(stale(9)), stale(1));
    }

    #[test]
    fn worst_and_better_are_total() {
        let all = [DataQuality::Fresh, stale(2), DataQuality::Missing];
        for a in all {
            for b in all {
                // One of the two is always returned, and the pair agrees.
                let w = a.worst(b);
                let g = a.better(b);
                assert!(w == a || w == b);
                assert!(g == a || g == b);
                if a != b {
                    assert_ne!(w, g);
                }
            }
        }
    }

    #[test]
    fn meets_floor() {
        assert!(DataQuality::Fresh.meets(DataQuality::Missing));
        assert!(DataQuality::Fresh.meets(stale(1)));
        assert!(stale(1).meets(stale(5)));
        assert!(!stale(5).meets(stale(1)));
        assert!(!DataQuality::Missing.meets(stale(5)));
        assert!(DataQuality::Missing.meets(DataQuality::Missing));
    }

    #[test]
    fn accessors() {
        assert!(DataQuality::Fresh.is_fresh());
        assert!(DataQuality::Missing.is_missing());
        assert_eq!(stale(4).age(), Some(SimDuration::from_secs(4)));
        assert_eq!(DataQuality::Missing.age(), None);
        assert_eq!(DataQuality::default(), DataQuality::Fresh);
    }
}
