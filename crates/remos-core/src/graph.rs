//! The logical network topology returned by `remos_get_graph` (§4.3).
//!
//! "Remos represents the network as a graph with each edge corresponding
//! to a link between nodes; nodes can be either compute nodes or network
//! nodes. … Use of a logical topology graph means that the graph presented
//! to the user is intended only to represent how the network behaves as
//! seen by the user" — links are annotated with static capacity and
//! dynamic available-bandwidth *statistics*, and network nodes may carry an
//! internal bandwidth (Fig 1).

use crate::error::{CoreResult, RemosError};
use crate::provenance::Provenance;
use crate::quality::DataQuality;
use crate::stats::Quartiles;
use remos_net::topology::NodeKind;
use remos_net::{Bps, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// FNV-1a fold used by [`RemosGraph::digest`]. Floats are folded by bit
/// pattern so the digest is exactly as strict as bit equality.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length-delimit so ("ab","c") and ("a","bc") differ.
        self.u64(b.len() as u64);
    }

    fn u64(&mut self, v: u64) {
        self.bytes_raw(&v.to_le_bytes());
    }

    fn bytes_raw(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u64(0),
            Some(x) => {
                self.u64(1);
                self.f64(x);
            }
        }
    }

    fn quartiles(&mut self, q: &Quartiles) {
        for v in [q.min, q.q1, q.median, q.q3, q.max, q.mean, q.accuracy] {
            self.f64(v);
        }
        self.usize(q.samples);
    }

    fn quality(&mut self, q: DataQuality) {
        match q {
            DataQuality::Fresh => self.u64(0),
            DataQuality::Stale { age } => {
                self.u64(1);
                self.u64(age.as_nanos());
            }
            DataQuality::Missing => self.u64(2),
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Host compute/memory attributes (§2: Remos "does include a simple
/// interface to computation and memory resources").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Peak floating-point rate, flops.
    pub compute_flops: f64,
    /// Physical memory, bytes.
    pub memory_bytes: u64,
}

/// A node of the logical topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RemosNode {
    /// Unique name (the API's lingua franca; applications name nodes, not
    /// ids, exactly like the paper's `nodes = m1,m2,…`).
    pub name: String,
    /// Host or switch.
    pub kind: NodeKind,
    /// Backplane cap for network nodes (Fig 1 "internal bandwidth").
    pub internal_bw: Option<Bps>,
    /// Compute/memory resources for hosts.
    pub host: Option<HostInfo>,
}

/// A logical link, annotated per direction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RemosLink {
    /// Endpoint index into the node table.
    pub a: usize,
    /// Endpoint index into the node table.
    pub b: usize,
    /// Static capacity, bits/s (min along any collapsed physical chain).
    pub capacity: Bps,
    /// One-way latency (sum along any collapsed chain).
    pub latency: SimDuration,
    /// Available bandwidth statistics: `[a→b, b→a]`.
    pub avail: [Quartiles; 2],
    /// Quality of the measurements behind `avail`: `[a→b, b→a]`. A link
    /// whose underlying counters could not be read recently is `Stale` or
    /// `Missing`; its `avail` is then a carried-forward (and widened)
    /// estimate rather than a current observation.
    #[serde(default = "fresh_pair")]
    pub quality: [DataQuality; 2],
}

fn fresh_pair() -> [DataQuality; 2] {
    [DataQuality::Fresh; 2]
}

impl RemosLink {
    /// Available-bandwidth summary in the direction leaving `from`
    /// (node-table index).
    pub fn avail_from(&self, from: usize) -> &Quartiles {
        if from == self.a {
            &self.avail[0]
        } else {
            debug_assert_eq!(from, self.b);
            &self.avail[1]
        }
    }

    /// Measurement quality in the direction leaving `from` (node-table
    /// index).
    pub fn quality_from(&self, from: usize) -> DataQuality {
        if from == self.a {
            self.quality[0]
        } else {
            debug_assert_eq!(from, self.b);
            self.quality[1]
        }
    }
}

/// The logical topology graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RemosGraph {
    /// Nodes (hosts and switches).
    pub nodes: Vec<RemosNode>,
    /// Logical links.
    pub links: Vec<RemosLink>,
    /// How this annotated view was derived (snapshots consumed, their
    /// quality, solver, scope). `None` when the producing query opted out
    /// with `without_provenance()`.
    #[serde(default)]
    pub provenance: Option<Provenance>,
    #[serde(skip)]
    name_index: HashMap<String, usize>,
    #[serde(skip)]
    adj: Vec<Vec<(usize, usize)>>, // per node: (link index, neighbor index)
}

impl RemosGraph {
    /// Assemble a graph; builds the indices.
    pub fn new(nodes: Vec<RemosNode>, links: Vec<RemosLink>) -> RemosGraph {
        let mut g = RemosGraph {
            nodes,
            links,
            provenance: None,
            name_index: HashMap::new(),
            adj: Vec::new(),
        };
        g.rebuild_indices();
        g
    }

    /// Worst measurement quality across every logical link direction (the
    /// quality a consumer should assume for path-level conclusions drawn
    /// from this graph). `Fresh` for a graph with no links.
    pub fn worst_quality(&self) -> DataQuality {
        self.links
            .iter()
            .flat_map(|l| l.quality)
            .fold(DataQuality::Fresh, DataQuality::worst)
    }

    /// FNV-1a digest over every field of the graph, including the
    /// annotation statistics (each `f64` by bit pattern) and the
    /// provenance record. Two graphs digest equal iff they are
    /// bit-identical answers — the equality the plan cache is held to:
    /// a cache hit must produce the same digest a cold build would.
    pub fn digest(&self) -> u64 {
        let mut d = Fnv::new();
        d.usize(self.nodes.len());
        for n in &self.nodes {
            d.bytes(n.name.as_bytes());
            d.u64(match n.kind {
                NodeKind::Compute => 0,
                NodeKind::Network => 1,
            });
            d.opt_f64(n.internal_bw);
            match n.host {
                None => d.u64(0),
                Some(h) => {
                    d.u64(1);
                    d.f64(h.compute_flops);
                    d.u64(h.memory_bytes);
                }
            }
        }
        d.usize(self.links.len());
        for l in &self.links {
            d.usize(l.a);
            d.usize(l.b);
            d.f64(l.capacity);
            d.u64(l.latency.as_nanos());
            for q in &l.avail {
                d.quartiles(q);
            }
            for q in &l.quality {
                d.quality(*q);
            }
        }
        match &self.provenance {
            None => d.u64(0),
            Some(p) => {
                d.u64(1);
                match p.timeframe {
                    crate::timeframe::Timeframe::Current => d.u64(0),
                    crate::timeframe::Timeframe::Window(w) => {
                        d.u64(1);
                        d.u64(w.as_nanos());
                    }
                    crate::timeframe::Timeframe::Future(h) => {
                        d.u64(2);
                        d.u64(h.as_nanos());
                    }
                }
                d.usize(p.snapshots);
                d.u64(p.newest_sample.map_or(u64::MAX, |t| t.as_nanos()));
                d.u64(p.oldest_sample.map_or(u64::MAX, |t| t.as_nanos()));
                d.quality(p.worst_quality);
                d.bytes(p.solver.as_bytes());
                d.usize(p.scope);
                d.u64(p.degraded as u64);
                match &p.source {
                    None => d.u64(0),
                    Some(s) => {
                        d.u64(1);
                        d.bytes(s.as_bytes());
                    }
                }
            }
        }
        d.finish()
    }

    /// Rebuild the name index and adjacency (after deserialization or
    /// mutation of `nodes`/`links`).
    pub fn rebuild_indices(&mut self) {
        self.name_index =
            self.nodes.iter().enumerate().map(|(i, n)| (n.name.clone(), i)).collect();
        self.adj = vec![Vec::new(); self.nodes.len()];
        for (li, l) in self.links.iter().enumerate() {
            self.adj[l.a].push((li, l.b));
            self.adj[l.b].push((li, l.a));
        }
    }

    /// Node index by name.
    pub fn index_of(&self, name: &str) -> CoreResult<usize> {
        self.name_index
            .get(name)
            .copied()
            .ok_or_else(|| RemosError::UnknownNode(name.to_string()))
    }

    /// Node by name.
    pub fn node_by_name(&self, name: &str) -> CoreResult<&RemosNode> {
        Ok(&self.nodes[self.index_of(name)?])
    }

    /// `(link index, neighbor index)` pairs incident to node `i`.
    pub fn neighbors(&self, i: usize) -> &[(usize, usize)] {
        &self.adj[i]
    }

    /// All compute-node names, in node order.
    pub fn compute_names(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Compute)
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Routed path between two nodes, as a list of
    /// `(link index, from node, to node)` steps. Hosts do not forward.
    ///
    /// Minimizes `(total latency, logical hop count, link index)` — a
    /// logical link may abstract a long physical chain, so latency (which
    /// the Modeler accumulates through collapses) is the faithful length
    /// measure, not the logical hop count.
    pub fn path(&self, src: usize, dst: usize) -> CoreResult<Vec<(usize, usize, usize)>> {
        if src == dst {
            return Ok(Vec::new());
        }
        let n = self.nodes.len();
        let mut dist: Vec<(u64, u32)> = vec![(u64::MAX, u32::MAX); n];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n]; // (link, from)
        let mut done = vec![false; n];
        let mut heap: std::collections::BinaryHeap<
            std::cmp::Reverse<(u64, u32, usize)>,
        > = std::collections::BinaryHeap::new();
        dist[src] = (0, 0);
        heap.push(std::cmp::Reverse((0, 0, src)));
        while let Some(std::cmp::Reverse((lat, hops, u))) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            if u != src && self.nodes[u].kind == NodeKind::Compute {
                continue; // hosts terminate paths
            }
            for &(li, v) in &self.adj[u] {
                if done[v] {
                    continue;
                }
                let cand = (lat + self.links[li].latency.as_nanos(), hops + 1);
                if cand < dist[v] {
                    dist[v] = cand;
                    prev[v] = Some((li, u));
                    heap.push(std::cmp::Reverse((cand.0, cand.1, v)));
                }
            }
        }
        if dist[dst].0 == u64::MAX {
            return Err(RemosError::Disconnected(
                self.nodes[src].name.clone(),
                self.nodes[dst].name.clone(),
            ));
        }
        let mut steps = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (li, from) = prev[cur].ok_or_else(|| {
                RemosError::Internal(format!("dijkstra parent chain broken at node {cur}"))
            })?;
            steps.push((li, from, cur));
            cur = from;
        }
        steps.reverse();
        Ok(steps)
    }

    /// Available bandwidth (median) along the routed path `src → dst`:
    /// the minimum of the per-link directional medians, further capped by
    /// any switch internal bandwidth on the path.
    pub fn path_avail_bw(&self, src: usize, dst: usize) -> CoreResult<Bps> {
        let steps = self.path(src, dst)?;
        let mut bw = f64::INFINITY;
        for &(li, from, to) in &steps {
            bw = bw.min(self.links[li].avail_from(from).median);
            if to != dst {
                if let Some(ib) = self.nodes[to].internal_bw {
                    bw = bw.min(ib);
                }
            }
        }
        Ok(bw)
    }

    /// Measurement quality along the routed path `src → dst`: the worst
    /// quality of any directed link on the path. An application that wants
    /// only trustworthy data checks this before acting on
    /// [`RemosGraph::path_avail_bw`].
    pub fn path_quality(&self, src: usize, dst: usize) -> CoreResult<DataQuality> {
        let steps = self.path(src, dst)?;
        let mut q = DataQuality::Fresh;
        for &(li, from, _) in &steps {
            q = q.worst(self.links[li].quality_from(from));
        }
        Ok(q)
    }

    /// One-way latency along the routed path.
    pub fn path_latency(&self, src: usize, dst: usize) -> CoreResult<SimDuration> {
        let steps = self.path(src, dst)?;
        let mut total = SimDuration::ZERO;
        for &(li, _, _) in &steps {
            total += self.links[li].latency;
        }
        Ok(total)
    }

    /// The pair of compute nodes with the highest available bandwidth
    /// between them — §4.3's motivating example for exposing topology:
    /// "finding the pair of nodes with the highest bandwidth connectivity
    /// would be expensive if only flow-based queries were allowed."
    /// Returns `(src index, dst index, bandwidth)` over ordered pairs;
    /// `None` if fewer than two hosts are connected.
    pub fn best_connected_pair(&self) -> Option<(usize, usize, Bps)> {
        let hosts: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Compute)
            .map(|(i, _)| i)
            .collect();
        let mut best: Option<(usize, usize, Bps)> = None;
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let Ok(bw) = self.path_avail_bw(a, b) else { continue };
                match best {
                    Some((_, _, bb)) if bw <= bb => {}
                    _ => best = Some((a, b, bw)),
                }
            }
        }
        best
    }

    /// Render as Graphviz DOT: hosts as boxes, switches as ellipses,
    /// links labelled `avail/capacity` (median, Mbps). Handy for
    /// visualizing what an application actually sees.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("graph remos {\n  overlap=false;\n");
        for n in &self.nodes {
            let shape = match n.kind {
                NodeKind::Compute => "box",
                NodeKind::Network => "ellipse",
            };
            let extra = match n.internal_bw {
                Some(bw) => format!("\\n[{:.0} Mbps backplane]", bw / 1e6),
                None => String::new(),
            };
            let _ = writeln!(s, "  \"{}\" [shape={shape} label=\"{}{extra}\"];", n.name, n.name);
        }
        for l in &self.links {
            let _ = writeln!(
                s,
                "  \"{}\" -- \"{}\" [label=\"{:.0}/{:.0} Mbps\"];",
                self.nodes[l.a].name,
                self.nodes[l.b].name,
                l.avail[0].median.min(l.avail[1].median) / 1e6,
                l.capacity / 1e6,
            );
        }
        s.push_str("}\n");
        s
    }

    /// Pairwise communication *distance* matrix over the named nodes —
    /// the clustering input (§7.3: "The logical topology graph is used to
    /// compute a matrix representing distance between all pairs of
    /// nodes"). Distance is `1 / available-bandwidth` plus a latency term
    /// weighted by `latency_weight` (the paper's testbed uses
    /// bandwidth-only distances: pass 0.0).
    pub fn distance_matrix(
        &self,
        names: &[String],
        latency_weight: f64,
    ) -> CoreResult<Vec<Vec<f64>>> {
        let idx: Vec<usize> =
            names.iter().map(|n| self.index_of(n)).collect::<CoreResult<_>>()?;
        let k = idx.len();
        let mut m = vec![vec![0.0; k]; k];
        for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                let bw = self.path_avail_bw(idx[i], idx[j])?;
                let lat = self.path_latency(idx[i], idx[j])?.as_secs_f64();
                let bw_term = if bw <= 0.0 { f64::INFINITY } else { 1.0 / bw };
                m[i][j] = bw_term + latency_weight * lat;
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remos_net::mbps;

    /// Fig-1-shaped helper: hosts h0..h3 on switch A, h4..h7 on switch B,
    /// A—B backbone. `avail` sets every link's available bandwidth.
    pub(crate) fn two_switch_graph(internal_bw: Option<Bps>, avail: Bps) -> RemosGraph {
        let mut nodes = Vec::new();
        for i in 0..8 {
            nodes.push(RemosNode {
                name: format!("h{i}"),
                kind: NodeKind::Compute,
                internal_bw: None,
                host: Some(HostInfo { compute_flops: 50e6, memory_bytes: 1 << 28 }),
            });
        }
        for s in ["A", "B"] {
            nodes.push(RemosNode {
                name: s.to_string(),
                kind: NodeKind::Network,
                internal_bw,
                host: None,
            });
        }
        let mut links = Vec::new();
        let mk = |a: usize, b: usize, cap: f64, av: f64| RemosLink {
            a,
            b,
            capacity: cap,
            latency: SimDuration::from_micros(50),
            avail: [Quartiles::exact(av), Quartiles::exact(av)],
            quality: [DataQuality::Fresh; 2],
        };
        for h in 0..4 {
            links.push(mk(h, 8, mbps(10.0), avail.min(mbps(10.0))));
        }
        for h in 4..8 {
            links.push(mk(h, 9, mbps(10.0), avail.min(mbps(10.0))));
        }
        links.push(mk(8, 9, mbps(100.0), avail));
        RemosGraph::new(nodes, links)
    }

    #[test]
    fn lookup_and_neighbors() {
        let g = two_switch_graph(None, mbps(10.0));
        let a = g.index_of("A").unwrap();
        assert_eq!(g.neighbors(a).len(), 5);
        assert!(g.index_of("zz").is_err());
        assert_eq!(g.compute_names().len(), 8);
    }

    #[test]
    fn path_across_switches() {
        let g = two_switch_graph(None, mbps(10.0));
        let h0 = g.index_of("h0").unwrap();
        let h5 = g.index_of("h5").unwrap();
        let p = g.path(h0, h5).unwrap();
        assert_eq!(p.len(), 3); // h0-A, A-B, B-h5
        assert_eq!(g.path(h0, h0).unwrap().len(), 0);
        assert_eq!(
            g.path_latency(h0, h5).unwrap(),
            SimDuration::from_micros(150)
        );
    }

    #[test]
    fn hosts_do_not_forward_in_logical_graph() {
        // h0 - h1 - h2 chain of hosts: no path h0 -> h2.
        let nodes: Vec<RemosNode> = (0..3)
            .map(|i| RemosNode {
                name: format!("h{i}"),
                kind: NodeKind::Compute,
                internal_bw: None,
                host: None,
            })
            .collect();
        let l = |a, b| RemosLink {
            a,
            b,
            capacity: mbps(10.0),
            latency: SimDuration::ZERO,
            avail: [Quartiles::exact(mbps(10.0)), Quartiles::exact(mbps(10.0))],
            quality: [DataQuality::Fresh; 2],
        };
        let g = RemosGraph::new(nodes, vec![l(0, 1), l(1, 2)]);
        assert!(g.path(0, 1).is_ok());
        assert!(matches!(g.path(0, 2), Err(RemosError::Disconnected(_, _))));
    }

    #[test]
    fn fig1_fast_switches_links_bottleneck() {
        // Fig 1, first interpretation: switches at 100 Mbps internal, host
        // links 10 Mbps => pair bandwidth limited by access links to 10.
        let g = two_switch_graph(Some(mbps(100.0)), mbps(100.0));
        let h0 = g.index_of("h0").unwrap();
        let h5 = g.index_of("h5").unwrap();
        assert!((g.path_avail_bw(h0, h5).unwrap() - mbps(10.0)).abs() < 1.0);
    }

    #[test]
    fn fig1_slow_switches_become_bottleneck() {
        // Fig 1, second interpretation: switches at 10 Mbps internal would
        // cap *aggregate*; for a single path the min is still 10, but a
        // 5 Mbps switch shows through the path bound.
        let g = two_switch_graph(Some(mbps(5.0)), mbps(100.0));
        let h0 = g.index_of("h0").unwrap();
        let h5 = g.index_of("h5").unwrap();
        assert!((g.path_avail_bw(h0, h5).unwrap() - mbps(5.0)).abs() < 1.0);
    }

    #[test]
    fn distance_matrix_orders_pairs() {
        let g = two_switch_graph(None, mbps(10.0));
        let names: Vec<String> = ["h0", "h1", "h4"].iter().map(|s| s.to_string()).collect();
        let m = g.distance_matrix(&names, 0.0).unwrap();
        assert_eq!(m[0][0], 0.0);
        // Same available bandwidth everywhere: all pair distances equal.
        assert!((m[0][1] - m[0][2]).abs() < 1e-15);
        // With a latency term, the cross-switch pair is farther.
        let ml = g.distance_matrix(&names, 1.0).unwrap();
        assert!(ml[0][2] > ml[0][1]);
    }

    #[test]
    fn best_connected_pair_prefers_clean_paths() {
        let mut g = two_switch_graph(None, mbps(10.0));
        // Load every access link except h2's and h3's.
        for (li, l) in g.links.iter_mut().enumerate() {
            if li != 2 && li != 3 && li < 8 {
                l.avail = [Quartiles::exact(mbps(1.0)), Quartiles::exact(mbps(1.0))];
            }
        }
        g.rebuild_indices();
        let (a, b, bw) = g.best_connected_pair().unwrap();
        let names = [&g.nodes[a].name, &g.nodes[b].name];
        assert!(names.contains(&&"h2".to_string()) && names.contains(&&"h3".to_string()), "{names:?}");
        assert!((bw - mbps(10.0)).abs() < 1.0);
        // Degenerate: single host.
        let lone = RemosGraph::new(
            vec![RemosNode {
                name: "x".into(),
                kind: NodeKind::Compute,
                internal_bw: None,
                host: None,
            }],
            vec![],
        );
        assert!(lone.best_connected_pair().is_none());
    }

    #[test]
    fn dot_rendering() {
        let g = two_switch_graph(Some(mbps(10.0)), mbps(8.0));
        let dot = g.to_dot();
        assert!(dot.starts_with("graph remos {"));
        assert!(dot.contains("\"h0\" [shape=box"));
        assert!(dot.contains("\"A\" [shape=ellipse"));
        assert!(dot.contains("10 Mbps backplane"));
        assert!(dot.contains("\"h0\" -- \"A\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn serde_roundtrip_and_reindex() {
        let g = two_switch_graph(None, mbps(10.0));
        let json = serde_json::to_string(&g).unwrap();
        let mut back: RemosGraph = serde_json::from_str(&json).unwrap();
        // Indices are skipped by serde; rebuild and verify behaviour.
        back.rebuild_indices();
        let a = back.index_of("h0").unwrap();
        let b = back.index_of("h5").unwrap();
        assert_eq!(
            back.path_avail_bw(a, b).unwrap(),
            g.path_avail_bw(g.index_of("h0").unwrap(), g.index_of("h5").unwrap()).unwrap()
        );
        assert_eq!(back.nodes.len(), g.nodes.len());
        assert!(back.node_by_name("A").unwrap().kind == NodeKind::Network);
    }

    #[test]
    fn path_quality_is_worst_link_quality() {
        let mut g = two_switch_graph(None, mbps(10.0));
        let h0 = g.index_of("h0").unwrap();
        let h5 = g.index_of("h5").unwrap();
        assert_eq!(g.path_quality(h0, h5).unwrap(), DataQuality::Fresh);
        // Degrade the backbone in the A->B direction only.
        let backbone = g.links.len() - 1;
        let stale = DataQuality::Stale { age: SimDuration::from_secs(7) };
        g.links[backbone].quality = [stale, DataQuality::Fresh];
        g.rebuild_indices();
        assert_eq!(g.path_quality(h0, h5).unwrap(), stale);
        assert_eq!(g.path_quality(h5, h0).unwrap(), DataQuality::Fresh);
        // Old serialized graphs (no quality field) deserialize as Fresh.
        let mut v = serde_json::to_value(&g.links[backbone]).unwrap();
        v.as_object_mut().unwrap().remove("quality");
        let back: RemosLink = serde_json::from_value(v).unwrap();
        assert_eq!(back.quality, [DataQuality::Fresh; 2]);
    }

    #[test]
    fn directional_annotation() {
        let mut g = two_switch_graph(None, mbps(10.0));
        // Make the backbone asymmetric: A->B busy, B->A idle.
        let backbone = g.links.len() - 1;
        g.links[backbone].avail = [Quartiles::exact(mbps(2.0)), Quartiles::exact(mbps(90.0))];
        g.rebuild_indices();
        let h0 = g.index_of("h0").unwrap();
        let h5 = g.index_of("h5").unwrap();
        assert!((g.path_avail_bw(h0, h5).unwrap() - mbps(2.0)).abs() < 1.0);
        assert!((g.path_avail_bw(h5, h0).unwrap() - mbps(10.0)).abs() < 1.0);
    }
}
