//! The Remos facade: `remos_get_graph` / `remos_flow_info` as a typed API.
//!
//! Binds a [`Collector`] (network-oriented), the [`Modeler`]
//! (application-oriented) and a [`Clock`] together. Queries that need
//! fresh or windowed measurements drive the collector — and *consume
//! measured time* doing so, which is exactly the runtime overhead the
//! paper attributes to Remos ("the cost that an application pays in terms
//! of runtime overhead is low and directly related to the depth and
//! frequency of its requests").
//!
//! Queries are built with [`Query`](crate::query::Query) and executed by
//! [`Remos::run`], or by [`Remos::run_within`] under a per-request
//! deadline budget. Serving front ends that must answer even when the
//! network cannot be measured use the degraded entry points
//! [`Remos::run_from_history`] (answer from existing samples, no new
//! measurement) and [`Remos::topology_only`] (structure with total
//! uncertainty); both mark their answers via
//! [`Provenance::degraded`](crate::Provenance::degraded).

use crate::budget::QueryBudget;
use crate::collector::{Clock, Collector};
use crate::error::{CoreResult, InvalidQueryKind, RemosError};
use crate::flows::FlowInfoRequest;
use crate::graph::{HostInfo, RemosGraph};
use crate::modeler::plan::QueryPlan;
use crate::modeler::{pool, Modeler, ModelerConfig, SelectedSamples};
use crate::provenance::Provenance;
use crate::quality::DataQuality;
use crate::query::{FlowQuery, GraphQuery, QueryResult, QuerySpec, ReachableQuery, WhatIfQuery};
use crate::timeframe::Timeframe;
use crate::whatif::HypotheticalFlow;
use remos_net::{SimDuration, SimTime};
use remos_obs::{Counter, Histogram, Obs};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Remos configuration.
#[derive(Clone, Copy, Debug)]
pub struct RemosConfig {
    /// Gap the facade lets pass between counter reads when it needs to
    /// freshen measurements (the effective polling period).
    pub poll_gap: SimDuration,
    /// Modeler configuration.
    pub modeler: ModelerConfig,
}

impl Default for RemosConfig {
    fn default() -> Self {
        RemosConfig {
            poll_gap: SimDuration::from_millis(250),
            modeler: ModelerConfig::default(),
        }
    }
}

/// Cached counter handles for the facade's hot path.
struct RemosMetrics {
    graph_queries: Counter,
    flow_queries: Counter,
    rejected_queries: Counter,
    batch_size: Histogram,
    whatif_flows_estimated: Counter,
    whatif_replay_steps: Counter,
    whatif_batch: Histogram,
}

impl RemosMetrics {
    fn new(obs: &Obs) -> RemosMetrics {
        RemosMetrics {
            graph_queries: obs.counter("remos_graph_queries_total"),
            flow_queries: obs.counter("remos_flow_queries_total"),
            rejected_queries: obs.counter("remos_rejected_queries_total"),
            batch_size: obs.histogram("remos_batch_size"),
            whatif_flows_estimated: obs.counter("whatif_flows_estimated_total"),
            whatif_replay_steps: obs.counter("whatif_replay_steps_total"),
            whatif_batch: obs.histogram("remos_whatif_batch"),
        }
    }
}

/// A batch entry whose measurement inputs are pinned and ready for a
/// worker: everything a pure compute pass needs, nothing that touches
/// the collector or the clock.
enum BatchJob {
    Graph {
        plan: Arc<QueryPlan>,
        hosts: Vec<Option<HostInfo>>,
        selected: Arc<SelectedSamples>,
        q: GraphQuery,
    },
    Flows {
        plan: Arc<QueryPlan>,
        selected: Arc<SelectedSamples>,
        q: FlowQuery,
    },
    WhatIf {
        plan: Arc<QueryPlan>,
        selected: Arc<SelectedSamples>,
        q: WhatIfQuery,
    },
}

/// How [`Remos::dispatch`] satisfies a query's measurement needs.
#[derive(Clone, Copy, PartialEq)]
enum ServeMode {
    /// Take fresh samples as the timeframe demands (normal serving).
    Measure,
    /// Answer from existing history only — the stale-snapshot rung of a
    /// serving front end's degradation ladder. Consumes no measured time;
    /// answers are marked [`Provenance::degraded`].
    FromHistory,
}

/// Stamp serving metadata into an answer's provenance: the collector the
/// measurements came from, and whether a degraded mode produced it.
/// Answers whose provenance was stripped are left untouched.
fn mark_answer(result: &mut QueryResult, source: &str, degraded: bool) {
    let mark = |p: &mut Option<Provenance>| {
        if let Some(p) = p.as_mut() {
            p.source = Some(source.to_string());
            p.degraded |= degraded;
        }
    };
    match result {
        QueryResult::Graph(g) => mark(&mut g.provenance),
        QueryResult::Flows(resp) => {
            for g in resp
                .fixed
                .iter_mut()
                .chain(resp.variable.iter_mut())
                .chain(resp.independent.iter_mut())
            {
                mark(&mut g.provenance);
            }
        }
        QueryResult::Peers(_) => {}
        QueryResult::Fcts(r) => mark(&mut r.provenance),
    }
}

/// The Remos query interface.
pub struct Remos {
    collector: Box<dyn Collector>,
    clock: Box<dyn Clock>,
    modeler: Modeler,
    cfg: RemosConfig,
    obs: Obs,
    obs_metrics: RemosMetrics,
}

impl Remos {
    /// Assemble the system. The collector's topology is discovered lazily
    /// on first use (or call [`Remos::refresh_topology`]).
    pub fn new(collector: Box<dyn Collector>, clock: Box<dyn Clock>, cfg: RemosConfig) -> Remos {
        let obs = Obs::new();
        let obs_metrics = RemosMetrics::new(&obs);
        let mut modeler = Modeler::new(cfg.modeler);
        modeler.set_obs(&obs);
        Remos { collector, clock, modeler, cfg, obs, obs_metrics }
    }

    /// Report into a shared observability handle: facade query counters,
    /// modeler plan-cache counters, plus everything the collector
    /// underneath reports (polls, agent health, SNMP fault paths).
    pub fn set_obs(&mut self, obs: Obs) {
        self.collector.set_obs(&obs);
        self.modeler.set_obs(&obs);
        self.obs_metrics = RemosMetrics::new(&obs);
        self.obs = obs;
    }

    /// Replace the modeler configuration. Drops any cached query plans
    /// (the new configuration may change how answers are computed).
    pub fn set_modeler_config(&mut self, cfg: ModelerConfig) {
        self.cfg.modeler = cfg;
        let mut modeler = Modeler::new(cfg);
        modeler.set_obs(&self.obs);
        self.modeler = modeler;
    }

    /// The observability handle this facade reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Re-discover the network topology (clears measurement history).
    pub fn refresh_topology(&mut self) -> CoreResult<()> {
        self.collector.refresh_topology()
    }

    /// Direct access to the collector (for harnesses and tests).
    pub fn collector(&self) -> &dyn Collector {
        &*self.collector
    }

    /// Make sure enough measurements exist for the timeframe, taking
    /// fresh ones (and letting measured time pass) as needed.
    fn ensure_samples(&mut self, tf: Timeframe) -> CoreResult<()> {
        if matches!(tf, Timeframe::Current) {
            // Always measure *now*: a node-selection decision must reflect
            // current traffic, not a stale snapshot. Measuring takes one
            // poll gap of real (simulated) time — this is the per-decision
            // overhead the paper reports — and the produced sample covers
            // the interval since the previous counter read, so it includes
            // whatever the application itself sent meanwhile (the root of
            // the §8.3 self-traffic fallacy).
            self.pin_samples(0, true)
        } else {
            self.pin_samples(tf.min_samples(self.cfg.poll_gap), false)
        }
    }

    /// Drive the collector until `needed` samples have accumulated, then
    /// take one extra fresh sample if `fresh` is set — the shared
    /// measurement step behind [`Remos::run`] and [`Remos::run_batch`].
    fn pin_samples(&mut self, needed: usize, fresh: bool) -> CoreResult<()> {
        let mut guard = 0;
        while self.collector.history().len() < needed {
            guard += 1;
            if guard > needed * 2 + 8 {
                return Err(RemosError::Collector(format!(
                    "could not accumulate {needed} samples"
                )));
            }
            self.clock.advance(self.cfg.poll_gap)?;
            self.collector.poll()?;
        }
        if fresh {
            self.clock.advance(self.cfg.poll_gap)?;
            if !self.collector.poll()? {
                self.clock.advance(self.cfg.poll_gap)?;
                if !self.collector.poll()? {
                    return Err(RemosError::Collector(
                        "collector produced no sample after an advance".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Execute a typed query built with [`Query`](crate::query::Query).
    ///
    /// Malformed queries (empty node or flow sets) are rejected before any
    /// measurement time is consumed; answers that miss a requested
    /// [`min_quality`](crate::query::GraphQuery::min_quality) floor fail
    /// with [`RemosError::QualityTooLow`] after measurement.
    pub fn run(&mut self, spec: impl Into<QuerySpec>) -> CoreResult<QueryResult> {
        self.run_within(spec, QueryBudget::UNLIMITED)
    }

    /// [`Remos::run`] under a deadline budget. The budget is checked at
    /// entry, again after measurement (the stage that consumes measured
    /// time), and before solving; the first stage to find the deadline
    /// passed sheds the request with [`RemosError::DeadlineExceeded`]
    /// instead of computing an answer nobody will wait for.
    pub fn run_within(
        &mut self,
        spec: impl Into<QuerySpec>,
        budget: QueryBudget,
    ) -> CoreResult<QueryResult> {
        let res = self.dispatch(spec.into(), budget, ServeMode::Measure);
        if res.is_err() {
            self.obs_metrics.rejected_queries.inc();
        }
        res
    }

    /// Answer a query from the measurement history already on hand,
    /// taking no new samples and consuming no measured time — the
    /// stale-snapshot rung of a serving front end's degradation ladder
    /// (used when the collector's circuit breaker is open). Fails with
    /// [`RemosError::InsufficientHistory`] when no samples exist yet;
    /// answers are marked [`Provenance::degraded`].
    pub fn run_from_history(&mut self, spec: impl Into<QuerySpec>) -> CoreResult<QueryResult> {
        let res = self.dispatch(spec.into(), QueryBudget::UNLIMITED, ServeMode::FromHistory);
        if res.is_err() {
            self.obs_metrics.rejected_queries.inc();
        }
        res
    }

    /// The collector's current measured time, for deadline checks. A
    /// collector that cannot tell the time reads as [`SimTime::ZERO`],
    /// which never trips a deadline — budgets degrade to unlimited
    /// rather than shedding on a clock failure.
    fn measured_now(&self) -> SimTime {
        self.collector.now().unwrap_or(SimTime::ZERO)
    }

    /// Satisfy a timeframe's measurement demand according to the serving
    /// mode: measure fresh (letting measured time pass), or reuse the
    /// history as-is.
    fn provide_samples(&mut self, tf: Timeframe, mode: ServeMode) -> CoreResult<()> {
        match mode {
            ServeMode::Measure => self.ensure_samples(tf),
            ServeMode::FromHistory => {
                if self.collector.topology().is_err() {
                    self.collector.refresh_topology()?;
                }
                if self.collector.history().is_empty() {
                    return Err(RemosError::InsufficientHistory { needed: 1, available: 0 });
                }
                Ok(())
            }
        }
    }

    fn dispatch(
        &mut self,
        spec: QuerySpec,
        budget: QueryBudget,
        mode: ServeMode,
    ) -> CoreResult<QueryResult> {
        let degraded = mode == ServeMode::FromHistory;
        let mut res = match spec {
            QuerySpec::Graph(q) => {
                self.obs_metrics.graph_queries.inc();
                if q.nodes.is_empty() {
                    return Err(InvalidQueryKind::EmptyNodeSet.into());
                }
                budget.check(self.measured_now())?;
                self.provide_samples(q.timeframe, mode)?;
                // Measurement consumed time; shed before planning if the
                // deadline passed while polling.
                budget.check(self.measured_now())?;
                let plan = self.modeler.plan_for(&*self.collector, &q.nodes)?;
                let hosts = Modeler::host_table(&*self.collector, &plan);
                let selected = self.modeler.select_samples(
                    &*self.collector,
                    plan.topo.dir_link_count(),
                    q.timeframe,
                )?;
                budget.check(self.measured_now())?;
                let mut g = self.modeler.annotate_graph(&plan, &hosts, &selected, q.timeframe)?;
                if let Some(required) = q.min_quality {
                    let actual = g.worst_quality();
                    if !actual.meets(required) {
                        return Err(RemosError::QualityTooLow { required, actual });
                    }
                }
                if !q.provenance {
                    g.provenance = None;
                }
                QueryResult::Graph(g)
            }
            QuerySpec::Flows(q) => {
                self.obs_metrics.flow_queries.inc();
                if q.request.flow_count() == 0 {
                    return Err(InvalidQueryKind::EmptyFlowRequest.into());
                }
                // Validate before measuring, so malformed requests cost
                // no measurement time (same order as `Modeler::flow_info`).
                let names = self.flow_plan_names(&q.request)?;
                budget.check(self.measured_now())?;
                self.provide_samples(q.timeframe, mode)?;
                budget.check(self.measured_now())?;
                let plan = self.modeler.plan_for(&*self.collector, &names)?;
                let selected = self.modeler.select_samples(
                    &*self.collector,
                    plan.topo.dir_link_count(),
                    q.timeframe,
                )?;
                budget.check(self.measured_now())?;
                let mut resp =
                    self.modeler.flow_answer(&plan, &selected, &q.request, q.timeframe)?;
                if let Some(required) = q.min_quality {
                    let actual = resp.worst_quality();
                    if !actual.meets(required) {
                        return Err(RemosError::QualityTooLow { required, actual });
                    }
                }
                if !q.provenance {
                    for g in resp
                        .fixed
                        .iter_mut()
                        .chain(resp.variable.iter_mut())
                        .chain(resp.independent.iter_mut())
                    {
                        g.provenance = None;
                    }
                }
                QueryResult::Flows(resp)
            }
            QuerySpec::WhatIf(q) => {
                self.obs_metrics.whatif_batch.observe(q.flows.len() as u64);
                if q.flows.is_empty() {
                    return Err(InvalidQueryKind::EmptyFlowSet.into());
                }
                // Validate before measuring, so malformed flow sets cost
                // no measurement time (same order as the flows arm).
                let names = Self::whatif_plan_names(&q.flows)?;
                budget.check(self.measured_now())?;
                self.provide_samples(q.timeframe, mode)?;
                budget.check(self.measured_now())?;
                self.check_whatif_hosts(&names)?;
                let plan = self.modeler.plan_for(&*self.collector, &names)?;
                let selected = self.modeler.select_samples(
                    &*self.collector,
                    plan.topo.dir_link_count(),
                    q.timeframe,
                )?;
                budget.check(self.measured_now())?;
                let report = self.modeler.whatif_answer(&plan, &selected, &q)?;
                self.obs_metrics.whatif_flows_estimated.add(report.flows.len() as u64);
                self.obs_metrics.whatif_replay_steps.add(report.replay_steps);
                QueryResult::Fcts(report)
            }
            QuerySpec::Reachable(q) => self.answer_reachable(&q)?,
        };
        mark_answer(&mut res, &self.collector.describe(), degraded);
        Ok(res)
    }

    /// The topology-only degradation rung: the logical structure for
    /// `nodes` from the (possibly cached) query plan, with every dynamic
    /// quantity collapsed to total uncertainty over `[0, capacity]` and
    /// every link quality [`DataQuality::Missing`]. Needs no measurement
    /// history and consumes no measured time; the answer is marked
    /// [`Provenance::degraded`].
    pub fn topology_only(&mut self, nodes: &[String]) -> CoreResult<RemosGraph> {
        if nodes.is_empty() {
            return Err(InvalidQueryKind::EmptyNodeSet.into());
        }
        self.obs_metrics.graph_queries.inc();
        if self.collector.topology().is_err() {
            self.collector.refresh_topology()?;
        }
        let plan = self.modeler.plan_for(&*self.collector, nodes)?;
        let mut g: RemosGraph = (*plan.static_graph).clone();
        for link in &mut g.links {
            for slot in 0..2 {
                link.quality[slot] = DataQuality::Missing;
                link.avail[slot] = crate::modeler::degrade(
                    &link.avail[slot],
                    DataQuality::Missing,
                    link.capacity,
                );
            }
        }
        let scope = g.links.len();
        g.provenance = Some(Provenance {
            timeframe: Timeframe::Current,
            snapshots: 0,
            newest_sample: None,
            oldest_sample: None,
            worst_quality: DataQuality::Missing,
            solver: "topology-only".into(),
            scope,
            degraded: true,
            source: Some(self.collector.describe()),
        });
        Ok(g)
    }

    fn answer_reachable(&mut self, q: &ReachableQuery) -> CoreResult<QueryResult> {
        if self.collector.topology().is_err() {
            self.collector.refresh_topology()?;
        }
        let topo = self.collector.topology()?;
        let a = topo
            .lookup(&q.anchor)
            .map_err(|_| RemosError::UnknownNode(q.anchor.clone()))?;
        let routing = remos_net::routing::Routing::new(&topo);
        Ok(QueryResult::Peers(
            q.candidates
                .iter()
                .filter(|c| {
                    topo.lookup(c)
                        .map(|id| id == a || routing.path(&topo, a, id).is_ok())
                        .unwrap_or(false)
                })
                .cloned()
                .collect(),
        ))
    }

    /// Sample selection for one timeframe, shared across batch entries
    /// that ask for the same timeframe (the amortized `select_samples`).
    fn selection_for(
        &self,
        tf: Timeframe,
        cache: &mut BTreeMap<(u8, u64), Arc<SelectedSamples>>,
    ) -> CoreResult<Arc<SelectedSamples>> {
        let key = match tf {
            Timeframe::Current => (0u8, 0u64),
            Timeframe::Window(w) => (1, w.as_nanos()),
            Timeframe::Future(h) => (2, h.as_nanos()),
        };
        if let Some(s) = cache.get(&key) {
            return Ok(Arc::clone(s));
        }
        let n = self.collector.topology()?.dir_link_count();
        let s = Arc::new(self.modeler.select_samples(&*self.collector, n, tf)?);
        cache.insert(key, Arc::clone(&s));
        Ok(s)
    }

    /// Answer a batch of queries against one pinned snapshot selection.
    ///
    /// Measurement happens once for the whole batch — enough polls for
    /// the most demanding timeframe, plus a single fresh poll if any
    /// entry asks for [`Timeframe::Current`] — and every entry is then
    /// answered from that frozen history. No polling interleaves with
    /// the answers, so the batch is internally consistent: two entries
    /// naming the same timeframe see the very same samples (the §4.2
    /// simultaneous-query property, extended across query kinds), and
    /// the whole batch costs one query's worth of measured time.
    ///
    /// Sample selection is amortized across entries per distinct
    /// timeframe, plans come from the epoch-keyed cache, and the
    /// remaining pure compute (annotation, flow solving) runs on a
    /// scoped worker pool. Results come back in input order, one per
    /// entry; a batch-wide measurement failure fails every entry.
    pub fn run_batch(&mut self, specs: Vec<QuerySpec>) -> Vec<CoreResult<QueryResult>> {
        let entries: Vec<(QuerySpec, QueryBudget)> =
            specs.into_iter().map(|s| (s, QueryBudget::UNLIMITED)).collect();
        self.run_batch_within(entries)
    }

    /// [`Remos::run_batch`] under per-entry deadline budgets. Entries
    /// whose budget has already expired at entry are shed with
    /// [`RemosError::DeadlineExceeded`] and contribute nothing to the
    /// batch's measurement demand; entries whose deadline passes *during*
    /// the shared measurement are shed at the prep stage, before any
    /// plan or solver work is spent on them. Measurement happens at most
    /// once for the whole batch, so shed decisions depend only on the
    /// batch content and the measured clock — bit-reproducible
    /// run-to-run.
    pub fn run_batch_within(
        &mut self,
        entries: Vec<(QuerySpec, QueryBudget)>,
    ) -> Vec<CoreResult<QueryResult>> {
        self.obs_metrics.batch_size.observe(entries.len() as u64);
        let n = entries.len();
        // Scan the batch for its measurement demand; already-expired
        // entries make no demand.
        let t_entry = self.measured_now();
        let mut needed = 0usize;
        let mut fresh = false;
        let mut measures = false;
        for (s, b) in &entries {
            if b.expired(t_entry) {
                continue;
            }
            let tf = match s {
                QuerySpec::Graph(q) if !q.nodes.is_empty() => Some(q.timeframe),
                QuerySpec::Flows(q) if q.request.flow_count() > 0 => Some(q.timeframe),
                QuerySpec::WhatIf(q) if !q.flows.is_empty() => Some(q.timeframe),
                _ => None,
            };
            if let Some(tf) = tf {
                measures = true;
                match tf {
                    Timeframe::Current => fresh = true,
                    _ => needed = needed.max(tf.min_samples(self.cfg.poll_gap)),
                }
            }
        }
        if measures {
            if let Err(e) = self.pin_samples(needed, fresh) {
                let msg = e.to_string();
                self.obs_metrics.rejected_queries.add(n as u64);
                return entries
                    .into_iter()
                    .map(|(_, b)| match b.check(t_entry) {
                        Err(shed) => Err(shed),
                        Ok(()) => {
                            Err(RemosError::Collector(format!("batch measurement failed: {msg}")))
                        }
                    })
                    .collect();
            }
        }
        // Prepare jobs on this thread — plans, host tables and sample
        // selections all touch the collector, which is not thread-safe.
        // Workers then get pure compute over shared immutable data.
        let t_measured = self.measured_now();
        let mut results: Vec<Option<CoreResult<QueryResult>>> = (0..n).map(|_| None).collect();
        let mut selections: BTreeMap<(u8, u64), Arc<SelectedSamples>> = BTreeMap::new();
        let mut jobs: Vec<(usize, BatchJob)> = Vec::new();
        for (i, (spec, b)) in entries.into_iter().enumerate() {
            if let Err(shed) = b.check(t_measured) {
                results[i] = Some(Err(shed));
                continue;
            }
            match spec {
                QuerySpec::Graph(q) => {
                    self.obs_metrics.graph_queries.inc();
                    if q.nodes.is_empty() {
                        results[i] = Some(Err(InvalidQueryKind::EmptyNodeSet.into()));
                        continue;
                    }
                    let prepared = self.modeler.plan_for(&*self.collector, &q.nodes).and_then(
                        |plan| {
                            let hosts = Modeler::host_table(&*self.collector, &plan);
                            let selected = self.selection_for(q.timeframe, &mut selections)?;
                            Ok(BatchJob::Graph { plan, hosts, selected, q })
                        },
                    );
                    match prepared {
                        Ok(job) => jobs.push((i, job)),
                        Err(e) => results[i] = Some(Err(e)),
                    }
                }
                QuerySpec::Flows(q) => {
                    self.obs_metrics.flow_queries.inc();
                    if q.request.flow_count() == 0 {
                        results[i] = Some(Err(InvalidQueryKind::EmptyFlowRequest.into()));
                        continue;
                    }
                    let prepared = self.flow_plan_names(&q.request).and_then(|names| {
                        let plan = self.modeler.plan_for(&*self.collector, &names)?;
                        let selected = self.selection_for(q.timeframe, &mut selections)?;
                        Ok(BatchJob::Flows { plan, selected, q })
                    });
                    match prepared {
                        Ok(job) => jobs.push((i, job)),
                        Err(e) => results[i] = Some(Err(e)),
                    }
                }
                QuerySpec::WhatIf(q) => {
                    self.obs_metrics.whatif_batch.observe(q.flows.len() as u64);
                    if q.flows.is_empty() {
                        results[i] = Some(Err(InvalidQueryKind::EmptyFlowSet.into()));
                        continue;
                    }
                    let prepared = Self::whatif_plan_names(&q.flows).and_then(|names| {
                        self.check_whatif_hosts(&names)?;
                        let plan = self.modeler.plan_for(&*self.collector, &names)?;
                        let selected = self.selection_for(q.timeframe, &mut selections)?;
                        Ok(BatchJob::WhatIf { plan, selected, q })
                    });
                    match prepared {
                        Ok(job) => jobs.push((i, job)),
                        Err(e) => results[i] = Some(Err(e)),
                    }
                }
                QuerySpec::Reachable(q) => {
                    results[i] = Some(self.answer_reachable(&q));
                }
            }
        }
        // Pure compute, in parallel, deterministic output order.
        let modeler = &self.modeler;
        let answers = pool::run_indexed(
            &jobs,
            pool::default_workers(jobs.len()),
            |(_, job)| match job {
                BatchJob::Graph { plan, hosts, selected, q } => modeler
                    .annotate_graph(plan, hosts, selected, q.timeframe)
                    .and_then(|mut g| {
                        if let Some(required) = q.min_quality {
                            let actual = g.worst_quality();
                            if !actual.meets(required) {
                                return Err(RemosError::QualityTooLow { required, actual });
                            }
                        }
                        if !q.provenance {
                            g.provenance = None;
                        }
                        Ok(QueryResult::Graph(g))
                    }),
                BatchJob::Flows { plan, selected, q } => modeler
                    .flow_answer(plan, selected, &q.request, q.timeframe)
                    .and_then(|mut resp| {
                        if let Some(required) = q.min_quality {
                            let actual = resp.worst_quality();
                            if !actual.meets(required) {
                                return Err(RemosError::QualityTooLow { required, actual });
                            }
                        }
                        if !q.provenance {
                            for g in resp
                                .fixed
                                .iter_mut()
                                .chain(resp.variable.iter_mut())
                                .chain(resp.independent.iter_mut())
                            {
                                g.provenance = None;
                            }
                        }
                        Ok(QueryResult::Flows(resp))
                    }),
                BatchJob::WhatIf { plan, selected, q } => {
                    // min_quality and provenance stripping live inside
                    // `whatif_answer` — the replay's quality depends on
                    // snapshot-wide data the answer does not carry.
                    modeler.whatif_answer(plan, selected, q).map(QueryResult::Fcts)
                }
            },
        );
        for ((i, _), r) in jobs.iter().zip(answers) {
            results[*i] = Some(r);
        }
        let source = self.collector.describe();
        let mut out: Vec<CoreResult<QueryResult>> = results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(RemosError::Internal("batch entry produced no result".into()))
                })
            })
            .collect();
        for r in out.iter_mut() {
            match r {
                Ok(res) => {
                    if let QueryResult::Fcts(rep) = res {
                        self.obs_metrics.whatif_flows_estimated.add(rep.flows.len() as u64);
                        self.obs_metrics.whatif_replay_steps.add(rep.replay_steps);
                    }
                    mark_answer(res, &source, false);
                }
                Err(_) => self.obs_metrics.rejected_queries.inc(),
            }
        }
        out
    }

    /// Canonical endpoint name set of a flow request, with the same
    /// validation order as [`Modeler::flow_info`].
    fn flow_plan_names(&self, req: &FlowInfoRequest) -> CoreResult<Vec<String>> {
        for f in &req.fixed {
            if f.requested <= 0.0 || !f.requested.is_finite() {
                return Err(RemosError::InvalidQuery(InvalidQueryKind::BadFixedBandwidth {
                    value: f.requested,
                }));
            }
        }
        for v in &req.variable {
            if v.relative_bw <= 0.0 || !v.relative_bw.is_finite() {
                return Err(RemosError::InvalidQuery(InvalidQueryKind::BadVariableWeight {
                    value: v.relative_bw,
                }));
            }
        }
        let mut names: Vec<String> = req
            .all_endpoints()
            .iter()
            .flat_map(|e| [e.src.clone(), e.dst.clone()])
            .collect();
        names.sort();
        names.dedup();
        for e in req.all_endpoints() {
            if e.src == e.dst {
                return Err(RemosError::InvalidQuery(InvalidQueryKind::IdenticalEndpoints {
                    node: e.src.clone(),
                }));
            }
        }
        Ok(names)
    }

    /// Canonical endpoint name set of a what-if flow set, with the same
    /// validation order as [`Remos::flow_plan_names`]: degenerate flows
    /// are rejected before any measurement time is spent.
    fn whatif_plan_names(flows: &[HypotheticalFlow]) -> CoreResult<Vec<String>> {
        for f in flows {
            if f.src == f.dst {
                return Err(RemosError::InvalidQuery(InvalidQueryKind::IdenticalEndpoints {
                    node: f.src.clone(),
                }));
            }
        }
        let mut names: Vec<String> =
            flows.iter().flat_map(|f| [f.src.clone(), f.dst.clone()]).collect();
        names.sort();
        names.dedup();
        Ok(names)
    }

    /// Reject what-if endpoints that name switches before planning: the
    /// replay routes host-to-host, so a router endpoint would otherwise
    /// surface as a confusing [`RemosError::Disconnected`] from the
    /// planner instead of the typed [`InvalidQueryKind::NotAHost`].
    fn check_whatif_hosts(&self, names: &[String]) -> CoreResult<()> {
        let topo = self.collector.topology()?;
        for n in names {
            let id = topo.lookup(n).map_err(|_| RemosError::UnknownNode(n.clone()))?;
            if topo.node(id).kind != remos_net::topology::NodeKind::Compute {
                return Err(RemosError::InvalidQuery(InvalidQueryKind::NotAHost {
                    node: n.clone(),
                }));
            }
        }
        Ok(())
    }

    /// The simple host compute/memory interface (§2).
    pub fn host_info(&mut self, name: &str) -> CoreResult<HostInfo> {
        if self.collector.topology().is_err() {
            self.collector.refresh_topology()?;
        }
        self.collector.host_info(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
    use crate::collector::SimClock;
    use crate::query::Query;
    use remos_net::flow::FlowParams;
    use remos_net::{mbps, SimDuration, Simulator, TopologyBuilder};
    use remos_snmp::sim::{register_all_agents, share, SharedSim};
    use remos_snmp::SimTransport;
    use std::sync::Arc;

    /// Build the full stack over a small dumbbell:
    /// m-1, m-2 — aspen === timberline — m-3, m-4.
    fn full_stack() -> (Remos, SharedSim) {
        let mut b = TopologyBuilder::new();
        let m1 = b.compute("m-1");
        let m2 = b.compute("m-2");
        let m3 = b.compute("m-3");
        let m4 = b.compute("m-4");
        let aspen = b.network("aspen");
        let timberline = b.network("timberline");
        let lat = SimDuration::from_micros(100);
        b.link(m1, aspen, mbps(100.0), lat).unwrap();
        b.link(m2, aspen, mbps(100.0), lat).unwrap();
        b.link(aspen, timberline, mbps(100.0), lat).unwrap();
        b.link(timberline, m3, mbps(100.0), lat).unwrap();
        b.link(timberline, m4, mbps(100.0), lat).unwrap();
        let sim = share(Simulator::new(b.build().unwrap()).unwrap());
        let transport = Arc::new(SimTransport::new());
        let agents = register_all_agents(&transport, &sim, "public");
        let collector =
            SnmpCollector::new(transport, agents, SnmpCollectorConfig::default());
        let remos = Remos::new(
            Box::new(collector),
            Box::new(SimClock(Arc::clone(&sim))),
            RemosConfig::default(),
        );
        (remos, sim)
    }

    #[test]
    fn graph_query_discovers_logical_topology() {
        let (mut remos, _sim) = full_stack();
        let g = remos
            .run(Query::graph(["m-1", "m-2", "m-3", "m-4"]))
            .unwrap()
            .into_graph()
            .unwrap();
        // Logical view keeps the two junction routers.
        assert_eq!(g.nodes.len(), 6);
        assert_eq!(g.links.len(), 5);
        let m1 = g.index_of("m-1").unwrap();
        let m3 = g.index_of("m-3").unwrap();
        // Idle network: full capacity available.
        let bw = g.path_avail_bw(m1, m3).unwrap();
        assert!((bw - mbps(100.0)).abs() < mbps(1.0), "{bw}");
    }

    #[test]
    fn two_host_query_collapses_backbone() {
        let (mut remos, _sim) = full_stack();
        let g = remos.run(Query::graph(["m-1", "m-3"])).unwrap().into_graph().unwrap();
        // Logical topology for two hosts: one collapsed link.
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.links.len(), 1);
        assert_eq!(g.links[0].latency, SimDuration::from_micros(300));
    }

    #[test]
    fn graph_reflects_background_traffic() {
        let (mut remos, sim) = full_stack();
        {
            let mut s = sim.lock();
            let topo = s.topology_arc();
            let m1 = topo.lookup("m-1").unwrap();
            let m3 = topo.lookup("m-3").unwrap();
            s.start_flow(FlowParams::cbr(m1, m3, mbps(60.0))).unwrap();
            s.run_for(SimDuration::from_secs(1)).unwrap();
        }
        let g = remos.run(Query::graph(["m-2", "m-4"])).unwrap().into_graph().unwrap();
        let m2 = g.index_of("m-2").unwrap();
        let m4 = g.index_of("m-4").unwrap();
        // The m-2 -> m-4 path shares the backbone with the 60 Mbps flow.
        let bw = g.path_avail_bw(m2, m4).unwrap();
        assert!((bw - mbps(40.0)).abs() < mbps(3.0), "avail {bw}");
        // The reverse direction is idle.
        let bw_rev = g.path_avail_bw(m4, m2).unwrap();
        assert!(bw_rev > mbps(95.0), "{bw_rev}");
    }

    #[test]
    fn flow_info_accounts_for_internal_sharing() {
        let (mut remos, _sim) = full_stack();
        // Two variable flows from m-1 and m-2 converging on m-3: they share
        // the backbone and m-3's access link, 50 Mbps each — the classic
        // simultaneous-query case.
        let req = FlowInfoRequest::new()
            .variable("m-1", "m-3", 1.0)
            .variable("m-2", "m-3", 1.0);
        let resp = remos.run(Query::flows(req)).unwrap().into_flows().unwrap();
        for g in &resp.variable {
            assert!(
                (g.bandwidth.median - mbps(50.0)).abs() < mbps(2.0),
                "{}",
                g.bandwidth
            );
        }
        // Queried individually, each flow would (misleadingly) see 100.
        let alone = FlowInfoRequest::new().variable("m-1", "m-3", 1.0);
        let r = remos.run(Query::flows(alone)).unwrap().into_flows().unwrap();
        assert!(r.variable[0].bandwidth.median > mbps(95.0));
    }

    #[test]
    fn flow_info_three_classes() {
        let (mut remos, _sim) = full_stack();
        let req = FlowInfoRequest::new()
            .fixed("m-1", "m-3", mbps(20.0))
            .variable("m-1", "m-3", 1.0)
            .independent("m-2", "m-3");
        let resp = remos.run(Query::flows(req)).unwrap().into_flows().unwrap();
        let f = &resp.fixed[0];
        assert!(f.fully_satisfied);
        assert!((f.bandwidth.median - mbps(20.0)).abs() < mbps(1.0));
        // Variable gets what's left of the shared bottleneck after fixed.
        let v = &resp.variable[0];
        assert!((v.bandwidth.median - mbps(80.0)).abs() < mbps(2.0), "{}", v.bandwidth);
        // Independent shares m-3's access link residual: nothing is left
        // after fixed (20) + variable (80) fill it.
        let i = resp.independent.as_ref().unwrap();
        assert!(i.bandwidth.median < mbps(2.0), "{}", i.bandwidth);
    }

    #[test]
    fn window_query_accumulates_history() {
        let (mut remos, _sim) = full_stack();
        let g = remos
            .run(Query::graph(["m-1", "m-3"])
                .timeframe(Timeframe::Window(SimDuration::from_secs(2))))
            .unwrap()
            .into_graph()
            .unwrap();
        assert!(g.links[0].avail[0].samples >= 2, "{}", g.links[0].avail[0].samples);
    }

    #[test]
    fn future_query_uses_predictor() {
        let (mut remos, _sim) = full_stack();
        // Prime some history first.
        remos
            .run(Query::graph(["m-1", "m-3"])
                .timeframe(Timeframe::Window(SimDuration::from_secs(1))))
            .unwrap();
        let g = remos
            .run(Query::graph(["m-1", "m-3"])
                .timeframe(Timeframe::Future(SimDuration::from_secs(5))))
            .unwrap()
            .into_graph()
            .unwrap();
        // Idle history predicts an idle future.
        assert!(g.links[0].avail[0].median > mbps(95.0));
    }

    #[test]
    fn flow_info_window_reports_spread() {
        // A windowed flow query under on/off cross-traffic: grants are
        // solved per sample, so the quartiles show the two regimes.
        let (mut remos, sim) = full_stack();
        {
            let mut s = sim.lock();
            let topo = s.topology_arc();
            let m1 = topo.lookup("m-1").unwrap();
            let m3 = topo.lookup("m-3").unwrap();
            s.add_process(
                remos_net::SimTime::ZERO,
                Box::new(remos_net::traffic::OnOffTraffic::new(
                    m1,
                    m3,
                    SimDuration::from_secs(2),
                    SimDuration::from_secs(2),
                    None,
                    5,
                )),
            );
            s.run_for(SimDuration::from_secs(4)).unwrap();
        }
        let req = FlowInfoRequest::new().independent("m-2", "m-3");
        let resp = remos
            .run(Query::flows(req).timeframe(Timeframe::Window(SimDuration::from_secs(30))))
            .unwrap()
            .into_flows()
            .unwrap();
        let q = resp.independent.unwrap().bandwidth;
        assert!(q.samples >= 4, "{q}");
        // During bursts the independent flow gets ~0 of m-3's downlink;
        // between bursts the full 100 Mbps.
        assert!(q.max - q.min > mbps(50.0), "{q}");
    }

    #[test]
    fn future_query_extrapolates_a_trend() {
        use crate::modeler::predict::PredictorKind;
        let cfg = RemosConfig {
            poll_gap: SimDuration::from_millis(250),
            modeler: crate::modeler::ModelerConfig {
                predictor: PredictorKind::LinearTrend,
                ..Default::default()
            },
        };
        let (remos, sim) = full_stack();
        let mut remos = remos;
        // Rebuild with the trend predictor.
        drop(remos);
        let transport = Arc::new(SimTransport::new());
        let agents = register_all_agents(&transport, &sim, "public2");
        let collector = SnmpCollector::new(
            transport,
            agents,
            crate::collector::snmp::SnmpCollectorConfig {
                community: "public2".into(),
                ..Default::default()
            },
        );
        remos = Remos::new(Box::new(collector), Box::new(SimClock(Arc::clone(&sim))), cfg);

        // Ramp the backbone load: each second, one more 10 Mbps stream.
        let (m1, m3) = {
            let s = sim.lock();
            let t = s.topology_arc();
            (t.lookup("m-1").unwrap(), t.lookup("m-3").unwrap())
        };
        for k in 0..8 {
            {
                let mut s = sim.lock();
                s.start_flow(FlowParams::cbr(m1, m3, mbps(10.0))).unwrap();
                s.run_for(SimDuration::from_secs(1)).unwrap();
            }
            // Sample each step so history records the ramp.
            remos.run(Query::graph(["m-1", "m-3"])).unwrap();
            let _ = k;
        }
        // Current sees ~80 Mbps used; a trend forecast 4 s out must
        // predict *less* available than now (load is rising).
        let g_now =
            remos.run(Query::graph(["m-2", "m-4"])).unwrap().into_graph().unwrap();
        let g_future = remos
            .run(Query::graph(["m-2", "m-4"])
                .timeframe(Timeframe::Future(SimDuration::from_secs(4))))
            .unwrap()
            .into_graph()
            .unwrap();
        let a = g_now.index_of("m-2").unwrap();
        let b = g_now.index_of("m-4").unwrap();
        let now_avail = g_now.path_avail_bw(a, b).unwrap();
        let fut_avail = g_future.path_avail_bw(a, b).unwrap();
        assert!(
            fut_avail < now_avail - mbps(3.0),
            "future {fut_avail} not below current {now_avail}"
        );
    }

    #[test]
    fn fair_share_policy_promises_more_than_pinned() {
        use crate::modeler::sharing::SharingPolicy;
        // 4 greedy background flows saturate a path. Pinned: nothing left.
        // Fair share: a new flow would claim 1/5 of the link.
        let build = |policy| {
            let (_, sim) = full_stack();
            let transport = Arc::new(SimTransport::new());
            let agents = register_all_agents(&transport, &sim, "p3");
            let collector = SnmpCollector::new(
                transport,
                agents,
                crate::collector::snmp::SnmpCollectorConfig {
                    community: "p3".into(),
                    ..Default::default()
                },
            );
            let cfg = RemosConfig {
                modeler: crate::modeler::ModelerConfig {
                    sharing: policy,
                    ..Default::default()
                },
                ..Default::default()
            };
            let remos =
                Remos::new(Box::new(collector), Box::new(SimClock(Arc::clone(&sim))), cfg);
            (remos, sim)
        };
        let promise = |policy| {
            let (mut remos, sim) = build(policy);
            {
                let mut s = sim.lock();
                let t = s.topology_arc();
                let m1 = t.lookup("m-1").unwrap();
                let m3 = t.lookup("m-3").unwrap();
                for _ in 0..4 {
                    s.start_flow(FlowParams::greedy(m1, m3)).unwrap();
                }
                s.run_for(SimDuration::from_secs(1)).unwrap();
            }
            let req = FlowInfoRequest::new().independent("m-2", "m-3");
            let resp = remos.run(Query::flows(req)).unwrap().into_flows().unwrap();
            resp.independent.unwrap().bandwidth.median
        };
        let pinned = promise(SharingPolicy::ExternalPinned);
        let fair = promise(SharingPolicy::ExternalFairShare);
        assert!(pinned < mbps(2.0), "pinned promised {pinned}");
        // Counters cannot count flows, so fair-share models the external
        // traffic as ONE elastic aggregate: a new flow gets half the link
        // (the simulator's per-flow truth would be 100/5 = 20 — the gap is
        // inherent to counter-based measurement, not a bug).
        assert!((fair - mbps(50.0)).abs() < mbps(2.0), "fair promised {fair}");
    }

    #[test]
    fn host_info_via_snmp() {
        let (mut remos, _sim) = full_stack();
        let h = remos.host_info("m-1").unwrap();
        assert!((h.compute_flops - 50e6).abs() < 1e6);
        assert_eq!(h.memory_bytes, 256 * 1024 * 1024);
        assert!(remos.host_info("aspen").is_err());
    }

    #[test]
    fn unknown_node_rejected() {
        let (mut remos, _sim) = full_stack();
        assert!(matches!(
            remos.run(Query::graph(["m-1", "nope"])),
            Err(RemosError::UnknownNode(_))
        ));
    }

    #[test]
    fn malformed_queries_fail_fast() {
        let (mut remos, sim) = full_stack();
        let t0 = sim.lock().now();
        assert!(matches!(
            remos.run(Query::graph(Vec::<String>::new())),
            Err(RemosError::InvalidQuery(k)) if k.is_empty_set()
        ));
        assert!(matches!(
            remos.run(Query::flows(FlowInfoRequest::new())),
            Err(RemosError::InvalidQuery(k)) if k.is_empty_set()
        ));
        // Rejected before sampling: no measurement time consumed.
        assert_eq!(sim.lock().now(), t0);
    }

    #[test]
    fn queries_cost_measured_time() {
        let (mut remos, sim) = full_stack();
        let t0 = sim.lock().now();
        remos.run(Query::graph(["m-1", "m-3"])).unwrap();
        let t1 = sim.lock().now();
        assert!(t1 > t0, "a Current query must consume measurement time");
    }

    #[test]
    fn run_attaches_and_strips_provenance() {
        let (mut remos, _sim) = full_stack();
        let g = remos.run(Query::graph(["m-1", "m-3"])).unwrap().into_graph().unwrap();
        let p = g.provenance.as_ref().expect("provenance attached by default");
        assert_eq!(p.timeframe, Timeframe::Current);
        assert_eq!(p.snapshots, 1);
        assert_eq!(p.scope, g.links.len());
        assert!(p.worst_quality.is_fresh());
        assert!(p.solver.contains("logical-annotate"));

        let g = remos
            .run(Query::graph(["m-1", "m-3"]).without_provenance())
            .unwrap()
            .into_graph()
            .unwrap();
        assert!(g.provenance.is_none());

        let req = FlowInfoRequest::new().independent("m-2", "m-3");
        let resp = remos.run(Query::flows(req)).unwrap().into_flows().unwrap();
        let p = resp.independent.as_ref().unwrap().provenance.as_ref().unwrap();
        assert!(p.scope >= 1, "independent path crosses at least one resource");
        assert!(p.solver.contains("staged-maxmin"));
    }

    #[test]
    fn quality_floor_passes_on_healthy_network() {
        use crate::quality::DataQuality;
        let (mut remos, _sim) = full_stack();
        let g = remos
            .run(Query::graph(["m-1", "m-4"]).min_quality(DataQuality::Fresh))
            .unwrap()
            .into_graph()
            .unwrap();
        assert!(g.worst_quality().is_fresh());
    }

    #[test]
    fn query_counters_track_queries() {
        let (mut remos, _sim) = full_stack();
        let obs = Obs::new();
        remos.set_obs(obs.clone());
        remos.run(Query::graph(["m-1", "m-3"])).unwrap();
        assert!(remos.run(Query::graph(Vec::<String>::new())).is_err());
        let req = FlowInfoRequest::new().independent("m-1", "m-3");
        remos.run(Query::flows(req)).unwrap();
        assert_eq!(obs.counter("remos_graph_queries_total").get(), 2);
        assert_eq!(obs.counter("remos_flow_queries_total").get(), 1);
        assert_eq!(obs.counter("remos_rejected_queries_total").get(), 1);
        // The shared handle also carries the collector's poll counter.
        assert!(obs.counter("collector_polls_total").get() >= 2);
    }

    #[test]
    fn whatif_query_estimates_fcts() {
        use remos_net::SimTime;
        let (mut remos, _sim) = full_stack();
        let obs = Obs::new();
        remos.set_obs(obs.clone());
        // 1.25 MB at the 100 Mbps line rate: 0.1 s ideal FCT each; the
        // arrivals are staggered so the two flows never contend.
        let report = remos
            .run(Query::estimate_fcts([
                HypotheticalFlow::new("m-1", "m-3", 1_250_000),
                HypotheticalFlow::new("m-2", "m-4", 1_250_000).at(SimTime::from_secs(1)),
            ]))
            .unwrap()
            .into_fcts()
            .unwrap();
        assert_eq!(report.flows.len(), 2);
        assert_eq!(report.completed_count(), 2);
        for f in &report.flows {
            let fct = f.fct.as_secs_f64();
            assert!((fct - 0.1).abs() < 0.01, "fct {fct}");
            assert!(f.slowdown < 1.01, "slowdown {}", f.slowdown);
        }
        assert!(report.flows[1].started >= SimTime::from_secs(1));
        let p = report.provenance.as_ref().expect("provenance attached by default");
        assert!(p.solver.contains("whatif-replay/epoch"), "{}", p.solver);
        assert_eq!(p.scope, 2);
        assert_eq!(obs.counter("whatif_flows_estimated_total").get(), 2);
        assert!(obs.counter("whatif_replay_steps_total").get() >= 2);

        let stripped = remos
            .run(Query::estimate_fcts([HypotheticalFlow::new("m-1", "m-3", 1_000)])
                .without_provenance())
            .unwrap()
            .into_fcts()
            .unwrap();
        assert!(stripped.provenance.is_none());
    }

    #[test]
    fn whatif_accounts_for_background_utilization() {
        let (mut remos, sim) = full_stack();
        let flow = || Query::estimate_fcts([HypotheticalFlow::new("m-2", "m-4", 1_250_000)]);
        let idle = remos.run(flow()).unwrap().into_fcts().unwrap();
        {
            let mut s = sim.lock();
            let topo = s.topology_arc();
            let m1 = topo.lookup("m-1").unwrap();
            let m3 = topo.lookup("m-3").unwrap();
            s.start_flow(FlowParams::cbr(m1, m3, mbps(60.0))).unwrap();
            s.run_for(SimDuration::from_secs(1)).unwrap();
        }
        let busy = remos.run(flow()).unwrap().into_fcts().unwrap();
        // The hypothetical m-2 -> m-4 flow shares the backbone with the
        // 60 Mbps stream: ~40 Mbps left, so the estimate is ~2.5x slower.
        let i = idle.flows[0].fct.as_secs_f64();
        let b = busy.flows[0].fct.as_secs_f64();
        assert!(b > i * 2.0, "busy {b} vs idle {i}");
    }

    #[test]
    fn whatif_rejects_malformed_flow_sets() {
        let (mut remos, sim) = full_stack();
        let t0 = sim.lock().now();
        assert!(matches!(
            remos.run(Query::estimate_fcts(Vec::<HypotheticalFlow>::new())),
            Err(RemosError::InvalidQuery(k)) if k.is_empty_set()
        ));
        assert!(matches!(
            remos.run(Query::estimate_fcts([HypotheticalFlow::new("m-1", "m-1", 10)])),
            Err(RemosError::InvalidQuery(InvalidQueryKind::IdenticalEndpoints { .. }))
        ));
        // Both rejected before any measurement time was consumed.
        assert_eq!(sim.lock().now(), t0);
        assert!(matches!(
            remos.run(Query::estimate_fcts([HypotheticalFlow::new("m-1", "nope", 10)])),
            Err(RemosError::UnknownNode(_))
        ));
        assert!(matches!(
            remos.run(Query::estimate_fcts([HypotheticalFlow::new("m-1", "aspen", 10)])),
            Err(RemosError::InvalidQuery(InvalidQueryKind::NotAHost { .. }))
        ));
    }

    #[test]
    fn run_batch_whatif_matches_sequential() {
        use remos_net::SimTime;
        // What-if entries answered from one pinned batch selection must
        // be bit-identical to the same queries run sequentially from the
        // same history state. Window timeframes keep the sequential runs
        // from consuming extra measurement time.
        let tf = Timeframe::Window(SimDuration::from_secs(2));
        let specs = |n: usize| -> Vec<QuerySpec> {
            (0..n)
                .map(|i| {
                    let (src, dst) =
                        if i % 2 == 0 { ("m-1", "m-3") } else { ("m-2", "m-4") };
                    Query::estimate_fcts([
                        HypotheticalFlow::new(src, dst, 500_000 * (i as u64 + 1)),
                        HypotheticalFlow::new(dst, src, 250_000)
                            .at(SimTime::from_millis(50)),
                    ])
                    .timeframe(tf)
                    .into()
                })
                .collect()
        };
        let (mut batch_remos, _bsim) = full_stack();
        let batch = batch_remos.run_batch(specs(6));
        let (mut seq_remos, _sim) = full_stack();
        let seq: Vec<CoreResult<QueryResult>> =
            specs(6).into_iter().map(|s| seq_remos.run(s)).collect();
        assert_eq!(batch.len(), 6);
        for (b, s) in batch.iter().zip(&seq) {
            let (br, sr) = match (b, s) {
                (Ok(QueryResult::Fcts(br)), Ok(QueryResult::Fcts(sr))) => (br, sr),
                other => panic!("unexpected batch/sequential results: {other:?}"),
            };
            assert_eq!(br.fct_digest, sr.fct_digest);
            assert_eq!(br.flows, sr.flows);
        }
    }

    #[test]
    fn run_batch_matches_sequential_answers() {
        use remos_net::SimTime;
        // A batch answered against one pinned selection must equal the
        // same queries run sequentially from the same history state —
        // compare graph digests bit for bit. Use Window timeframes so
        // the sequential runs don't consume extra measurement time.
        let tf = Timeframe::Window(SimDuration::from_secs(2));
        let specs = |n: usize| -> Vec<QuerySpec> {
            (0..n)
                .map(|i| {
                    let pair: Vec<&str> = if i % 2 == 0 {
                        vec!["m-1", "m-3"]
                    } else {
                        vec!["m-2", "m-4"]
                    };
                    Query::graph(pair).timeframe(tf).into()
                })
                .collect()
        };
        let (mut batch_remos, bsim) = full_stack();
        let batch = batch_remos.run_batch(specs(8));
        let t_batch = bsim.lock().now();

        let (mut seq_remos, _sim) = full_stack();
        let seq: Vec<CoreResult<QueryResult>> =
            specs(8).into_iter().map(|s| seq_remos.run(s)).collect();

        assert_eq!(batch.len(), 8);
        for (b, s) in batch.iter().zip(&seq) {
            let (bg, sg) = match (b, s) {
                (Ok(QueryResult::Graph(bg)), Ok(QueryResult::Graph(sg))) => (bg, sg),
                other => panic!("unexpected batch/sequential results: {other:?}"),
            };
            assert_eq!(bg.digest(), sg.digest());
        }
        // The whole batch consumed one query's worth of measured time.
        assert!(t_batch > SimTime::ZERO);
        let (mut one_remos, osim) = full_stack();
        one_remos.run(Query::graph(["m-1", "m-3"]).timeframe(tf)).unwrap();
        assert_eq!(t_batch, osim.lock().now());
    }

    #[test]
    fn run_batch_mixes_kinds_and_isolates_errors() {
        let (mut remos, _sim) = full_stack();
        let req = FlowInfoRequest::new().independent("m-1", "m-3");
        let out = remos.run_batch(vec![
            Query::graph(["m-1", "m-3"]).into(),
            Query::graph(Vec::<String>::new()).into(),
            Query::flows(req).into(),
            Query::graph(["m-1", "nope"]).into(),
            Query::reachable("m-1", ["m-3".to_string(), "zz".to_string()]).into(),
        ]);
        assert_eq!(out.len(), 5);
        assert!(matches!(out[0], Ok(QueryResult::Graph(_))));
        assert!(matches!(out[1], Err(RemosError::InvalidQuery(_))));
        assert!(matches!(out[2], Ok(QueryResult::Flows(_))));
        assert!(matches!(out[3], Err(RemosError::UnknownNode(_))));
        match &out[4] {
            Ok(QueryResult::Peers(p)) => assert_eq!(p, &vec!["m-3".to_string()]),
            other => panic!("unexpected reachable result: {other:?}"),
        }
    }

    #[test]
    fn run_batch_entries_share_pinned_samples() {
        // Two identical Current entries in one batch see the very same
        // sample (the §4.2 simultaneous-query property): bit-identical
        // digests. Sequentially they poll twice and generally differ in
        // provenance timestamps.
        let (mut remos, sim) = full_stack();
        {
            let mut s = sim.lock();
            let topo = s.topology_arc();
            let m1 = topo.lookup("m-1").unwrap();
            let m3 = topo.lookup("m-3").unwrap();
            s.start_flow(FlowParams::cbr(m1, m3, mbps(60.0))).unwrap();
            s.run_for(SimDuration::from_secs(1)).unwrap();
        }
        let out = remos.run_batch(vec![
            Query::graph(["m-1", "m-3"]).into(),
            Query::graph(["m-1", "m-3"]).into(),
        ]);
        let digests: Vec<u64> = out
            .into_iter()
            .map(|r| r.unwrap().into_graph().unwrap().digest())
            .collect();
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn plan_cache_counters_and_batch_histogram() {
        let (mut remos, _sim) = full_stack();
        let obs = Obs::new();
        remos.set_obs(obs.clone());
        remos.run(Query::graph(["m-1", "m-3"])).unwrap();
        remos.run(Query::graph(["m-1", "m-3"])).unwrap();
        // Same target set, same epoch: second query hits the plan cache.
        assert_eq!(obs.counter("modeler_plan_cache_misses_total").get(), 1);
        assert_eq!(obs.counter("modeler_plan_cache_hits_total").get(), 1);
        remos.run_batch(vec![
            Query::graph(["m-1", "m-3"]).into(),
            Query::graph(["m-1", "m-3"]).into(),
        ]);
        assert!(obs.counter("modeler_plan_cache_hits_total").get() >= 3);
        assert_eq!(obs.histogram("remos_batch_size").count(), 1);
        // Rediscovery bumps the epoch: the old plan is unreachable.
        remos.refresh_topology().unwrap();
        remos.run(Query::graph(["m-1", "m-3"])).unwrap();
        assert_eq!(obs.counter("modeler_plan_cache_misses_total").get(), 2);
    }

    #[test]
    fn deadline_sheds_before_and_after_measurement() {
        use remos_net::SimTime;
        let (mut remos, sim) = full_stack();
        // Prime the clock past zero so entry-stage checks are meaningful.
        remos.run(Query::graph(["m-1", "m-3"])).unwrap();
        let now = sim.lock().now();
        // Already expired at entry: shed before any measurement.
        let err = remos
            .run_within(Query::graph(["m-1", "m-3"]), QueryBudget::until(SimTime::ZERO))
            .unwrap_err();
        assert!(matches!(err, RemosError::DeadlineExceeded { .. }), "{err}");
        assert_eq!(sim.lock().now(), now, "entry shed consumes no measurement time");
        // Survives entry but expires while the fresh sample is taken:
        // shed after measurement, before planning.
        let err = remos
            .run_within(
                Query::graph(["m-1", "m-3"]),
                QueryBudget::starting(now, SimDuration::from_millis(1)),
            )
            .unwrap_err();
        assert!(matches!(err, RemosError::DeadlineExceeded { .. }), "{err}");
        assert!(sim.lock().now() > now, "measurement time passed before the shed");
        // A generous budget answers normally.
        let t = sim.lock().now();
        let g = remos
            .run_within(
                Query::graph(["m-1", "m-3"]),
                QueryBudget::starting(t, SimDuration::from_secs(60)),
            )
            .unwrap()
            .into_graph()
            .unwrap();
        assert!(g.provenance.is_some());
    }

    #[test]
    fn degraded_entry_points_answer_without_measured_time() {
        let (mut remos, sim) = full_stack();
        // No history yet: the stale-snapshot rung refuses.
        assert!(matches!(
            remos.run_from_history(Query::graph(["m-1", "m-3"])),
            Err(RemosError::InsufficientHistory { .. })
        ));
        // Prime one measured sample, then answer from history: no time
        // passes and the answer is flagged degraded.
        remos.run(Query::graph(["m-1", "m-3"])).unwrap();
        let t0 = sim.lock().now();
        let g = remos
            .run_from_history(Query::graph(["m-1", "m-3"]))
            .unwrap()
            .into_graph()
            .unwrap();
        assert_eq!(sim.lock().now(), t0, "history answers consume no measured time");
        let p = g.provenance.as_ref().unwrap();
        assert!(p.degraded);
        assert!(
            p.source.as_deref().unwrap().starts_with("snmp("),
            "source names the collector: {:?}",
            p.source
        );
        // Topology-only rung: structure with total uncertainty.
        let g = remos.topology_only(&["m-1".into(), "m-3".into()]).unwrap();
        assert_eq!(sim.lock().now(), t0);
        let p = g.provenance.as_ref().unwrap();
        assert!(p.degraded);
        assert_eq!(p.snapshots, 0);
        assert_eq!(p.worst_quality, DataQuality::Missing);
        assert_eq!(p.solver, "topology-only");
        let l = &g.links[0];
        assert_eq!(l.avail[0].min, 0.0);
        assert_eq!(l.avail[0].max, l.capacity);
        assert_eq!(l.quality[0], DataQuality::Missing);
    }

    #[test]
    fn run_stamps_provenance_source() {
        let (mut remos, _sim) = full_stack();
        let g = remos.run(Query::graph(["m-1", "m-3"])).unwrap().into_graph().unwrap();
        let p = g.provenance.as_ref().unwrap();
        assert!(!p.degraded, "normal serving is not degraded");
        assert!(p.source.as_deref().unwrap().starts_with("snmp("), "{:?}", p.source);
        // Batch answers carry the same stamp.
        let out = remos.run_batch(vec![Query::graph(["m-1", "m-3"]).into()]);
        let g = out.into_iter().next().unwrap().unwrap().into_graph().unwrap();
        assert!(g.provenance.as_ref().unwrap().source.is_some());
    }

    #[test]
    fn run_batch_within_sheds_expired_entries() {
        use remos_net::SimTime;
        let (mut remos, sim) = full_stack();
        remos.run(Query::graph(["m-1", "m-3"])).unwrap();
        let now = sim.lock().now();
        let out = remos.run_batch_within(vec![
            (Query::graph(["m-1", "m-3"]).into(), QueryBudget::UNLIMITED),
            (Query::graph(["m-2", "m-4"]).into(), QueryBudget::until(SimTime::ZERO)),
            (
                Query::graph(["m-1", "m-4"]).into(),
                QueryBudget::starting(now, SimDuration::from_secs(60)),
            ),
        ]);
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0], Ok(QueryResult::Graph(_))));
        assert!(matches!(out[1], Err(RemosError::DeadlineExceeded { .. })));
        assert!(matches!(out[2], Ok(QueryResult::Graph(_))));
    }
}
