//! The Remos facade: `remos_get_graph` / `remos_flow_info` as a typed API.
//!
//! Binds a [`Collector`] (network-oriented), the [`Modeler`]
//! (application-oriented) and a [`Clock`] together. Queries that need
//! fresh or windowed measurements drive the collector — and *consume
//! measured time* doing so, which is exactly the runtime overhead the
//! paper attributes to Remos ("the cost that an application pays in terms
//! of runtime overhead is low and directly related to the depth and
//! frequency of its requests").

use crate::collector::{Clock, Collector};
use crate::error::{CoreResult, RemosError};
use crate::flows::{FlowInfoRequest, FlowInfoResponse};
use crate::graph::{HostInfo, RemosGraph};
use crate::modeler::{Modeler, ModelerConfig};
use crate::timeframe::Timeframe;
use remos_net::SimDuration;

/// Remos configuration.
#[derive(Clone, Copy, Debug)]
pub struct RemosConfig {
    /// Gap the facade lets pass between counter reads when it needs to
    /// freshen measurements (the effective polling period).
    pub poll_gap: SimDuration,
    /// Modeler configuration.
    pub modeler: ModelerConfig,
}

impl Default for RemosConfig {
    fn default() -> Self {
        RemosConfig {
            poll_gap: SimDuration::from_millis(250),
            modeler: ModelerConfig::default(),
        }
    }
}

/// The Remos query interface.
pub struct Remos {
    collector: Box<dyn Collector>,
    clock: Box<dyn Clock>,
    modeler: Modeler,
    cfg: RemosConfig,
}

impl Remos {
    /// Assemble the system. The collector's topology is discovered lazily
    /// on first use (or call [`Remos::refresh_topology`]).
    pub fn new(collector: Box<dyn Collector>, clock: Box<dyn Clock>, cfg: RemosConfig) -> Remos {
        Remos { collector, clock, modeler: Modeler::new(cfg.modeler), cfg }
    }

    /// Re-discover the network topology (clears measurement history).
    pub fn refresh_topology(&mut self) -> CoreResult<()> {
        self.collector.refresh_topology()
    }

    /// Direct access to the collector (for harnesses and tests).
    pub fn collector(&self) -> &dyn Collector {
        &*self.collector
    }

    /// Make sure enough measurements exist for the timeframe, taking
    /// fresh ones (and letting measured time pass) as needed.
    fn ensure_samples(&mut self, tf: Timeframe) -> CoreResult<()> {
        let needed = tf.min_samples(self.cfg.poll_gap);
        if matches!(tf, Timeframe::Current) {
            // Always measure *now*: a node-selection decision must reflect
            // current traffic, not a stale snapshot. Measuring takes one
            // poll gap of real (simulated) time — this is the per-decision
            // overhead the paper reports — and the produced sample covers
            // the interval since the previous counter read, so it includes
            // whatever the application itself sent meanwhile (the root of
            // the §8.3 self-traffic fallacy).
            self.clock.advance(self.cfg.poll_gap)?;
            if !self.collector.poll()? {
                self.clock.advance(self.cfg.poll_gap)?;
                if !self.collector.poll()? {
                    return Err(RemosError::Collector(
                        "collector produced no sample after an advance".into(),
                    ));
                }
            }
            return Ok(());
        }
        let mut guard = 0;
        while self.collector.history().len() < needed {
            guard += 1;
            if guard > needed * 2 + 8 {
                return Err(RemosError::Collector(format!(
                    "could not accumulate {needed} samples"
                )));
            }
            self.clock.advance(self.cfg.poll_gap)?;
            self.collector.poll()?;
        }
        Ok(())
    }

    /// `remos_get_graph(nodes, graph, timeframe)`: the logical topology
    /// relevant to `nodes`, annotated for `timeframe`.
    ///
    /// Malformed queries (empty node set) are rejected before any
    /// measurement time is consumed.
    pub fn get_graph(&mut self, nodes: &[&str], tf: Timeframe) -> CoreResult<RemosGraph> {
        if nodes.is_empty() {
            return Err(RemosError::InvalidQuery("empty node set".into()));
        }
        let names: Vec<String> = nodes.iter().map(|s| s.to_string()).collect();
        self.ensure_samples(tf)?;
        self.modeler.get_graph(&*self.collector, &names, tf)
    }

    /// `remos_flow_info(fixed, variable, independent, timeframe)`.
    ///
    /// An empty request (no fixed, variable, or independent flows) is
    /// rejected before any measurement time is consumed.
    pub fn flow_info(
        &mut self,
        req: &FlowInfoRequest,
        tf: Timeframe,
    ) -> CoreResult<FlowInfoResponse> {
        if req.fixed.is_empty() && req.variable.is_empty() && req.independent.is_none() {
            return Err(RemosError::InvalidQuery("empty flow_info request".into()));
        }
        self.ensure_samples(tf)?;
        self.modeler.flow_info(&*self.collector, req, tf)
    }

    /// The simple host compute/memory interface (§2).
    pub fn host_info(&mut self, name: &str) -> CoreResult<HostInfo> {
        if self.collector.topology().is_err() {
            self.collector.refresh_topology()?;
        }
        self.collector.host_info(name)
    }

    /// The subset of `candidates` currently reachable from `anchor`
    /// (per the collector's latest discovered view). Lets adaptation
    /// modules shrink their node pool when the network partitions instead
    /// of failing their graph queries.
    pub fn reachable_peers(
        &mut self,
        anchor: &str,
        candidates: &[String],
    ) -> CoreResult<Vec<String>> {
        if self.collector.topology().is_err() {
            self.collector.refresh_topology()?;
        }
        let topo = self.collector.topology()?;
        let a = topo
            .lookup(anchor)
            .map_err(|_| RemosError::UnknownNode(anchor.to_string()))?;
        let routing = remos_net::routing::Routing::new(&topo);
        Ok(candidates
            .iter()
            .filter(|c| {
                topo.lookup(c)
                    .map(|id| id == a || routing.path(&topo, a, id).is_ok())
                    .unwrap_or(false)
            })
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::snmp::{SnmpCollector, SnmpCollectorConfig};
    use crate::collector::SimClock;
    use remos_net::flow::FlowParams;
    use remos_net::{mbps, SimDuration, Simulator, TopologyBuilder};
    use remos_snmp::sim::{register_all_agents, share, SharedSim};
    use remos_snmp::SimTransport;
    use std::sync::Arc;

    /// Build the full stack over a small dumbbell:
    /// m-1, m-2 — aspen === timberline — m-3, m-4.
    fn full_stack() -> (Remos, SharedSim) {
        let mut b = TopologyBuilder::new();
        let m1 = b.compute("m-1");
        let m2 = b.compute("m-2");
        let m3 = b.compute("m-3");
        let m4 = b.compute("m-4");
        let aspen = b.network("aspen");
        let timberline = b.network("timberline");
        let lat = SimDuration::from_micros(100);
        b.link(m1, aspen, mbps(100.0), lat).unwrap();
        b.link(m2, aspen, mbps(100.0), lat).unwrap();
        b.link(aspen, timberline, mbps(100.0), lat).unwrap();
        b.link(timberline, m3, mbps(100.0), lat).unwrap();
        b.link(timberline, m4, mbps(100.0), lat).unwrap();
        let sim = share(Simulator::new(b.build().unwrap()).unwrap());
        let transport = Arc::new(SimTransport::new());
        let agents = register_all_agents(&transport, &sim, "public");
        let collector =
            SnmpCollector::new(transport, agents, SnmpCollectorConfig::default());
        let remos = Remos::new(
            Box::new(collector),
            Box::new(SimClock(Arc::clone(&sim))),
            RemosConfig::default(),
        );
        (remos, sim)
    }

    #[test]
    fn graph_query_discovers_logical_topology() {
        let (mut remos, _sim) = full_stack();
        let g = remos
            .get_graph(&["m-1", "m-2", "m-3", "m-4"], Timeframe::Current)
            .unwrap();
        // Logical view keeps the two junction routers.
        assert_eq!(g.nodes.len(), 6);
        assert_eq!(g.links.len(), 5);
        let m1 = g.index_of("m-1").unwrap();
        let m3 = g.index_of("m-3").unwrap();
        // Idle network: full capacity available.
        let bw = g.path_avail_bw(m1, m3).unwrap();
        assert!((bw - mbps(100.0)).abs() < mbps(1.0), "{bw}");
    }

    #[test]
    fn two_host_query_collapses_backbone() {
        let (mut remos, _sim) = full_stack();
        let g = remos.get_graph(&["m-1", "m-3"], Timeframe::Current).unwrap();
        // Logical topology for two hosts: one collapsed link.
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.links.len(), 1);
        assert_eq!(g.links[0].latency, SimDuration::from_micros(300));
    }

    #[test]
    fn graph_reflects_background_traffic() {
        let (mut remos, sim) = full_stack();
        {
            let mut s = sim.lock();
            let topo = s.topology_arc();
            let m1 = topo.lookup("m-1").unwrap();
            let m3 = topo.lookup("m-3").unwrap();
            s.start_flow(FlowParams::cbr(m1, m3, mbps(60.0))).unwrap();
            s.run_for(SimDuration::from_secs(1)).unwrap();
        }
        let g = remos.get_graph(&["m-2", "m-4"], Timeframe::Current).unwrap();
        let m2 = g.index_of("m-2").unwrap();
        let m4 = g.index_of("m-4").unwrap();
        // The m-2 -> m-4 path shares the backbone with the 60 Mbps flow.
        let bw = g.path_avail_bw(m2, m4).unwrap();
        assert!((bw - mbps(40.0)).abs() < mbps(3.0), "avail {bw}");
        // The reverse direction is idle.
        let bw_rev = g.path_avail_bw(m4, m2).unwrap();
        assert!(bw_rev > mbps(95.0), "{bw_rev}");
    }

    #[test]
    fn flow_info_accounts_for_internal_sharing() {
        let (mut remos, _sim) = full_stack();
        // Two variable flows from m-1 and m-2 converging on m-3: they share
        // the backbone and m-3's access link, 50 Mbps each — the classic
        // simultaneous-query case.
        let req = FlowInfoRequest::new()
            .variable("m-1", "m-3", 1.0)
            .variable("m-2", "m-3", 1.0);
        let resp = remos.flow_info(&req, Timeframe::Current).unwrap();
        for g in &resp.variable {
            assert!(
                (g.bandwidth.median - mbps(50.0)).abs() < mbps(2.0),
                "{}",
                g.bandwidth
            );
        }
        // Queried individually, each flow would (misleadingly) see 100.
        let alone = FlowInfoRequest::new().variable("m-1", "m-3", 1.0);
        let r = remos.flow_info(&alone, Timeframe::Current).unwrap();
        assert!(r.variable[0].bandwidth.median > mbps(95.0));
    }

    #[test]
    fn flow_info_three_classes() {
        let (mut remos, _sim) = full_stack();
        let req = FlowInfoRequest::new()
            .fixed("m-1", "m-3", mbps(20.0))
            .variable("m-1", "m-3", 1.0)
            .independent("m-2", "m-3");
        let resp = remos.flow_info(&req, Timeframe::Current).unwrap();
        let f = &resp.fixed[0];
        assert!(f.fully_satisfied);
        assert!((f.bandwidth.median - mbps(20.0)).abs() < mbps(1.0));
        // Variable gets what's left of the shared bottleneck after fixed.
        let v = &resp.variable[0];
        assert!((v.bandwidth.median - mbps(80.0)).abs() < mbps(2.0), "{}", v.bandwidth);
        // Independent shares m-3's access link residual: nothing is left
        // after fixed (20) + variable (80) fill it.
        let i = resp.independent.as_ref().unwrap();
        assert!(i.bandwidth.median < mbps(2.0), "{}", i.bandwidth);
    }

    #[test]
    fn window_query_accumulates_history() {
        let (mut remos, _sim) = full_stack();
        let g = remos
            .get_graph(&["m-1", "m-3"], Timeframe::Window(SimDuration::from_secs(2)))
            .unwrap();
        assert!(g.links[0].avail[0].samples >= 2, "{}", g.links[0].avail[0].samples);
    }

    #[test]
    fn future_query_uses_predictor() {
        let (mut remos, _sim) = full_stack();
        // Prime some history first.
        remos
            .get_graph(&["m-1", "m-3"], Timeframe::Window(SimDuration::from_secs(1)))
            .unwrap();
        let g = remos
            .get_graph(&["m-1", "m-3"], Timeframe::Future(SimDuration::from_secs(5)))
            .unwrap();
        // Idle history predicts an idle future.
        assert!(g.links[0].avail[0].median > mbps(95.0));
    }

    #[test]
    fn flow_info_window_reports_spread() {
        // A windowed flow query under on/off cross-traffic: grants are
        // solved per sample, so the quartiles show the two regimes.
        let (mut remos, sim) = full_stack();
        {
            let mut s = sim.lock();
            let topo = s.topology_arc();
            let m1 = topo.lookup("m-1").unwrap();
            let m3 = topo.lookup("m-3").unwrap();
            s.add_process(
                remos_net::SimTime::ZERO,
                Box::new(remos_net::traffic::OnOffTraffic::new(
                    m1,
                    m3,
                    SimDuration::from_secs(2),
                    SimDuration::from_secs(2),
                    None,
                    5,
                )),
            );
            s.run_for(SimDuration::from_secs(4)).unwrap();
        }
        let req = FlowInfoRequest::new().independent("m-2", "m-3");
        let resp = remos
            .flow_info(&req, Timeframe::Window(SimDuration::from_secs(30)))
            .unwrap();
        let q = resp.independent.unwrap().bandwidth;
        assert!(q.samples >= 4, "{q}");
        // During bursts the independent flow gets ~0 of m-3's downlink;
        // between bursts the full 100 Mbps.
        assert!(q.max - q.min > mbps(50.0), "{q}");
    }

    #[test]
    fn future_query_extrapolates_a_trend() {
        use crate::modeler::predict::PredictorKind;
        let cfg = RemosConfig {
            poll_gap: SimDuration::from_millis(250),
            modeler: crate::modeler::ModelerConfig {
                predictor: PredictorKind::LinearTrend,
                ..Default::default()
            },
        };
        let (remos, sim) = full_stack();
        let mut remos = remos;
        // Rebuild with the trend predictor.
        drop(remos);
        let transport = Arc::new(SimTransport::new());
        let agents = register_all_agents(&transport, &sim, "public2");
        let collector = SnmpCollector::new(
            transport,
            agents,
            crate::collector::snmp::SnmpCollectorConfig {
                community: "public2".into(),
                ..Default::default()
            },
        );
        remos = Remos::new(Box::new(collector), Box::new(SimClock(Arc::clone(&sim))), cfg);

        // Ramp the backbone load: each second, one more 10 Mbps stream.
        let (m1, m3) = {
            let s = sim.lock();
            let t = s.topology_arc();
            (t.lookup("m-1").unwrap(), t.lookup("m-3").unwrap())
        };
        for k in 0..8 {
            {
                let mut s = sim.lock();
                s.start_flow(FlowParams::cbr(m1, m3, mbps(10.0))).unwrap();
                s.run_for(SimDuration::from_secs(1)).unwrap();
            }
            // Sample each step so history records the ramp.
            remos.get_graph(&["m-1", "m-3"], Timeframe::Current).unwrap();
            let _ = k;
        }
        // Current sees ~80 Mbps used; a trend forecast 4 s out must
        // predict *less* available than now (load is rising).
        let g_now = remos.get_graph(&["m-2", "m-4"], Timeframe::Current).unwrap();
        let g_future = remos
            .get_graph(&["m-2", "m-4"], Timeframe::Future(SimDuration::from_secs(4)))
            .unwrap();
        let a = g_now.index_of("m-2").unwrap();
        let b = g_now.index_of("m-4").unwrap();
        let now_avail = g_now.path_avail_bw(a, b).unwrap();
        let fut_avail = g_future.path_avail_bw(a, b).unwrap();
        assert!(
            fut_avail < now_avail - mbps(3.0),
            "future {fut_avail} not below current {now_avail}"
        );
    }

    #[test]
    fn fair_share_policy_promises_more_than_pinned() {
        use crate::modeler::sharing::SharingPolicy;
        // 4 greedy background flows saturate a path. Pinned: nothing left.
        // Fair share: a new flow would claim 1/5 of the link.
        let build = |policy| {
            let (_, sim) = full_stack();
            let transport = Arc::new(SimTransport::new());
            let agents = register_all_agents(&transport, &sim, "p3");
            let collector = SnmpCollector::new(
                transport,
                agents,
                crate::collector::snmp::SnmpCollectorConfig {
                    community: "p3".into(),
                    ..Default::default()
                },
            );
            let cfg = RemosConfig {
                modeler: crate::modeler::ModelerConfig {
                    sharing: policy,
                    ..Default::default()
                },
                ..Default::default()
            };
            let remos =
                Remos::new(Box::new(collector), Box::new(SimClock(Arc::clone(&sim))), cfg);
            (remos, sim)
        };
        let promise = |policy| {
            let (mut remos, sim) = build(policy);
            {
                let mut s = sim.lock();
                let t = s.topology_arc();
                let m1 = t.lookup("m-1").unwrap();
                let m3 = t.lookup("m-3").unwrap();
                for _ in 0..4 {
                    s.start_flow(FlowParams::greedy(m1, m3)).unwrap();
                }
                s.run_for(SimDuration::from_secs(1)).unwrap();
            }
            let req = FlowInfoRequest::new().independent("m-2", "m-3");
            let resp = remos.flow_info(&req, Timeframe::Current).unwrap();
            resp.independent.unwrap().bandwidth.median
        };
        let pinned = promise(SharingPolicy::ExternalPinned);
        let fair = promise(SharingPolicy::ExternalFairShare);
        assert!(pinned < mbps(2.0), "pinned promised {pinned}");
        // Counters cannot count flows, so fair-share models the external
        // traffic as ONE elastic aggregate: a new flow gets half the link
        // (the simulator's per-flow truth would be 100/5 = 20 — the gap is
        // inherent to counter-based measurement, not a bug).
        assert!((fair - mbps(50.0)).abs() < mbps(2.0), "fair promised {fair}");
    }

    #[test]
    fn host_info_via_snmp() {
        let (mut remos, _sim) = full_stack();
        let h = remos.host_info("m-1").unwrap();
        assert!((h.compute_flops - 50e6).abs() < 1e6);
        assert_eq!(h.memory_bytes, 256 * 1024 * 1024);
        assert!(remos.host_info("aspen").is_err());
    }

    #[test]
    fn unknown_node_rejected() {
        let (mut remos, _sim) = full_stack();
        assert!(matches!(
            remos.get_graph(&["m-1", "nope"], Timeframe::Current),
            Err(RemosError::UnknownNode(_))
        ));
    }

    #[test]
    fn malformed_queries_fail_fast() {
        let (mut remos, sim) = full_stack();
        let t0 = sim.lock().now();
        assert!(matches!(
            remos.get_graph(&[], Timeframe::Current),
            Err(RemosError::InvalidQuery(_))
        ));
        assert!(matches!(
            remos.flow_info(&FlowInfoRequest::new(), Timeframe::Current),
            Err(RemosError::InvalidQuery(_))
        ));
        // Rejected before sampling: no measurement time consumed.
        assert_eq!(sim.lock().now(), t0);
    }

    #[test]
    fn queries_cost_measured_time() {
        let (mut remos, sim) = full_stack();
        let t0 = sim.lock().now();
        remos.get_graph(&["m-1", "m-3"], Timeframe::Current).unwrap();
        let t1 = sim.lock().now();
        assert!(t1 > t0, "a Current query must consume measurement time");
    }
}
