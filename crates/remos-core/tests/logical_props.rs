//! Property tests for logical-topology generation: the logical view must
//! *behave* like the physical network it abstracts (§4.3's entire point:
//! "the graph presented to the user is intended only to represent how the
//! network behaves as seen by the user").

use proptest::prelude::*;
use remos_core::collector::oracle::OracleCollector;
use remos_core::collector::Collector;
use remos_core::modeler::Modeler;
use remos_core::Timeframe;
use remos_net::routing::Routing;
use remos_net::{mbps, SimDuration, Simulator, Topology, TopologyBuilder};
use remos_snmp::sim::share;

/// Random two-level topology. With `chords = false` the routers form a
/// random *tree*, so routes are unique and the logical view must match
/// the physical route exactly; with `chords = true` redundant paths exist
/// (used by the structural test only — with multiple equal-latency routes
/// the union logical graph may legitimately choose a different tie).
fn random_topo(hosts: usize, routers: usize, seed: u64, chords: bool) -> Topology {
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    let mut next = |bound: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut b = TopologyBuilder::new();
    let rs: Vec<_> = (0..routers).map(|i| b.network(&format!("r{i}"))).collect();
    let lat = SimDuration::from_micros(100);
    // Random tree keeps it connected; capacities vary 10..100 Mbps.
    for i in 1..routers {
        let j = (next(i as u64)) as usize;
        let cap = mbps(10.0 + next(10) as f64 * 10.0);
        b.link(rs[i], rs[j], cap, lat).unwrap();
    }
    if chords {
        for _ in 0..2 {
            let i = next(routers as u64) as usize;
            let j = next(routers as u64) as usize;
            if i != j {
                let _ = b.link(rs[i], rs[j], mbps(10.0 + next(10) as f64 * 10.0), lat);
            }
        }
    }
    for i in 0..hosts {
        let h = b.compute(&format!("h{i}"));
        let cap = mbps(10.0 + next(10) as f64 * 10.0);
        b.link(h, rs[i % routers], cap, lat).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn logical_graph_preserves_path_characteristics(
        seed in 0u64..500,
        n_targets in 2usize..6,
    ) {
        let topo = random_topo(8, 5, seed, false);
        let routing = Routing::new(&topo);
        let sim = share(Simulator::new(topo).unwrap());
        let mut col = OracleCollector::new(sim.clone());
        col.poll().unwrap();
        let topo = col.topology().unwrap();

        let targets: Vec<String> = (0..n_targets).map(|i| format!("h{i}")).collect();
        let modeler = Modeler::default();
        let g = modeler.get_graph(&col, &targets, Timeframe::Current).unwrap();

        // For every target pair: the logical path must match the physical
        // route's bottleneck capacity and total latency.
        for a in &targets {
            for b in &targets {
                if a >= b {
                    continue;
                }
                let pa = topo.lookup(a).unwrap();
                let pb = topo.lookup(b).unwrap();
                let phys = routing.path(&topo, pa, pb).unwrap();
                let phys_cap = phys.capacity(&topo);
                let phys_lat = phys.latency(&topo);

                let la = g.index_of(a).unwrap();
                let lb = g.index_of(b).unwrap();
                // Idle network: available bandwidth == bottleneck capacity.
                let logical_avail = g.path_avail_bw(la, lb).unwrap();
                prop_assert!(
                    (logical_avail - phys_cap).abs() < 1.0,
                    "{a}->{b}: logical {logical_avail} vs physical {phys_cap} (seed {seed})"
                );
                let logical_lat = g.path_latency(la, lb).unwrap();
                prop_assert_eq!(
                    logical_lat, phys_lat,
                    "{}->{}: latency mismatch (seed {})", a, b, seed
                );
            }
        }

        // The logical graph never has MORE nodes than the physical one,
        // and every target is present.
        prop_assert!(g.nodes.len() <= topo.node_count());
        for t in &targets {
            prop_assert!(g.index_of(t).is_ok());
        }
    }

    #[test]
    fn degree2_forwarders_never_survive(
        seed in 0u64..200,
    ) {
        let topo = random_topo(6, 4, seed, true);
        let sim = share(Simulator::new(topo).unwrap());
        let mut col = OracleCollector::new(sim);
        col.poll().unwrap();
        let modeler = Modeler::default();
        let targets: Vec<String> = vec!["h0".into(), "h1".into()];
        let g = modeler.get_graph(&col, &targets, Timeframe::Current).unwrap();
        // Every retained network node must be a junction in the logical
        // graph (degree != 2) — pure forwarders are collapsed.
        for (i, n) in g.nodes.iter().enumerate() {
            if n.kind == remos_net::topology::NodeKind::Network {
                prop_assert!(
                    g.neighbors(i).len() != 2,
                    "degree-2 forwarder {} survived (seed {seed})",
                    n.name
                );
            }
        }
    }
}
