//! Property coverage for the CSR/arena core: across a generated
//! scenario matrix (fabric size, flow population, locality mix, churn
//! length, solver mode, timeframe), the index-based hot path must be a
//! pure layout change — every digest the old representation produced,
//! the CSR representation reproduces bit for bit.
//!
//! Two properties:
//!
//! 1. **Engine**: the same seeded churn schedule replayed in `Full` and
//!    `Incremental` mode agrees on `rates_digest` at every checkpoint
//!    and on the final `event_digest`.
//! 2. **Graph layer**: a cold query (plan cache disabled — routing and
//!    logicalization rebuilt from scratch), a cached query, and a warm
//!    workspace query (`get_graph_in`, the allocation-free path) all
//!    produce bit-identical `RemosGraph::digest` values — and repeat
//!    queries through a reused workspace never drift.

use proptest::prelude::*;
use remos_core::collector::oracle::OracleCollector;
use remos_core::collector::Collector;
use remos_core::modeler::{Modeler, ModelerConfig, QueryWorkspace};
use remos_core::timeframe::Timeframe;
use remos_net::{FabricChurn, FatTree, SimDuration, Simulator, SolverMode};
use remos_snmp::sim::{share, SharedSim};
use std::sync::Arc;

/// Replay a seeded churn schedule; digest the rates every few events
/// plus the event log at the end.
fn churn_digests(
    k: usize,
    flows: usize,
    seed: u64,
    locality: u32,
    events: usize,
    mode: SolverMode,
) -> (Vec<u64>, u64) {
    let mut churn = FabricChurn::new(k, flows, seed, locality, mode).expect("churn builds");
    let mut checkpoints = Vec::new();
    for i in 0..events {
        churn.step().expect("churn event");
        if i % 4 == 3 {
            checkpoints.push(churn.sim.rates_digest());
        }
    }
    checkpoints.push(churn.sim.rates_digest());
    (checkpoints, churn.sim.event_digest())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1: solver-mode equivalence on generated fabrics.
    #[test]
    fn csr_churn_digests_match_across_solver_modes(
        k in prop_oneof![Just(4usize), Just(8usize)],
        flows in 4usize..48,
        seed in any::<u64>(),
        locality in 0u32..=100,
        events in 1usize..24,
    ) {
        let full = churn_digests(k, flows, seed, locality, events, SolverMode::Full);
        let inc = churn_digests(k, flows, seed, locality, events, SolverMode::Incremental);
        prop_assert_eq!(full, inc);
    }

    /// Property 2: graph-query equivalence — cold rebuild, plan-cache
    /// hit, and the reused-workspace path answer identically.
    #[test]
    fn csr_graph_digests_match_across_query_paths(
        k in prop_oneof![Just(4usize), Just(8usize)],
        seed in any::<u64>(),
        locality in 0u32..=100,
        hosts_per_pod in 1usize..4,
        polls in 1usize..5,
        window_ms in prop_oneof![Just(None), (100u64..4_000).prop_map(Some)],
    ) {
        // A churned fabric gives the collector non-trivial utilization.
        let mut churn =
            FabricChurn::new(k, 24, seed, locality, SolverMode::Incremental).expect("churn builds");
        for _ in 0..8 {
            churn.step().expect("churn event");
        }
        let tree = FatTree::build(k).expect("fat tree builds");
        let mut names = Vec::new();
        for p in 0..tree.pods() {
            for i in 0..hosts_per_pod.min(tree.hosts_per_pod()) {
                names.push(tree.topology().node(tree.host(p, i)).name.clone());
            }
        }
        // Hand the churned simulator to the oracle: same topology, so the
        // query plan sees the fabric the churn actually loaded.
        let sim: SharedSim = share(std::mem::replace(
            &mut churn.sim,
            Simulator::new(tree.into_parts().0).expect("placeholder simulator"),
        ));
        let mut col = OracleCollector::new(Arc::clone(&sim));
        for _ in 0..polls {
            sim.lock().run_for(SimDuration::from_millis(200)).expect("advance sim");
            col.poll().expect("poll oracle");
        }
        let tf = match window_ms {
            None => Timeframe::Current,
            Some(ms) => Timeframe::Window(SimDuration::from_millis(ms)),
        };

        let cold = Modeler::new(ModelerConfig { plan_cache_capacity: 0, ..Default::default() });
        let cached = Modeler::new(ModelerConfig::default());
        let cold_digest = cold.get_graph(&col, &names, tf).expect("cold query").digest();
        let cached_digest = cached.get_graph(&col, &names, tf).expect("cached query").digest();
        prop_assert_eq!(cold_digest, cached_digest, "plan-cache hit diverged from cold rebuild");

        let mut ws = QueryWorkspace::new();
        for round in 0..3 {
            let g = cached.get_graph_in(&col, &names, tf, &mut ws).expect("workspace query");
            prop_assert_eq!(
                g.digest(),
                cold_digest,
                "workspace query diverged on round {}",
                round
            );
        }
    }
}
