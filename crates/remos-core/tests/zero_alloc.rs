//! Counting-allocator proof of the steady-state zero-allocation
//! contract: once warm, fabric churn events (retire + admit + scoped
//! resolve) and cached graph queries (plan-cache hit, `Window`
//! timeframe, through a [`QueryWorkspace`]) perform **zero** heap
//! allocations.
//!
//! The strict `delta == 0` asserts only run in release builds: debug
//! builds route every recomputation through the engine's allocation
//! audit (`check_allocation`), which clones flow specs onto the heap by
//! design. Debug runs still exercise the full scenario and report the
//! observed allocation count instead of asserting on it.

use remos_core::collector::multi::{MultiCollector, MultiCollectorConfig};
use remos_core::collector::oracle::OracleCollector;
use remos_core::collector::shard::shard_fabric;
use remos_core::collector::Collector;
use remos_core::modeler::{Modeler, ModelerConfig, QueryWorkspace};
use remos_core::timeframe::Timeframe;
use remos_net::{FabricChurn, FatTree, SimDuration, Simulator, SolverMode};
use remos_snmp::sim::{share, SharedSim};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pass-through system allocator that counts every acquisition path
/// (fresh, zeroed, and growth). Frees are deliberately not counted: the
/// contract under test is "no heap traffic at steady state", and any
/// dealloc without a matching counted alloc would imply a buffer from
/// the warmup era being dropped, which shrink-free reuse never does.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Assert in release; report in debug (see module docs).
fn expect_zero(delta: u64, what: &str) {
    if cfg!(debug_assertions) {
        eprintln!("zero_alloc[{what}]: {delta} allocations (strict assert skipped under debug_assertions)");
    } else {
        assert_eq!(delta, 0, "{what}: expected zero steady-state heap allocations, observed {delta}");
    }
}

/// Churn events on a k=8 fat-tree (208 nodes, 120 flows) after a long
/// warmup: every arena, free list, member list, solver scratch vector,
/// and the finished-flow log must have reached terminal capacity, so N
/// further retire/admit/solve cycles touch the heap zero times.
///
/// The population stays below the engine's `PAR_MIN_FLOWS` threshold so
/// every scoped solve takes the serial path — the parallel branch ships
/// fresh solvers to the worker pool and is allocating by design. The
/// warmup length is tuned to this seed: scratch capacities (component
/// walks, solver arrays) only stop growing once the seeded schedule has
/// set its last component-size record, which a long probe put shortly
/// after event 3300; from there 2600+ consecutive events ran with zero
/// allocations.
#[test]
fn steady_state_churn_events_are_allocation_free() {
    let mut churn = FabricChurn::new(8, 120, 0xFA_B51C, 80, SolverMode::Incremental)
        .expect("fabric churn builds");
    let mut drained = Vec::new();
    for _ in 0..3500 {
        churn.step().expect("warmup churn event");
        drained.clear();
        churn.sim.drain_finished_into(&mut drained);
    }
    let before = alloc_count();
    for _ in 0..128 {
        churn.step().expect("measured churn event");
        drained.clear();
        churn.sim.drain_finished_into(&mut drained);
        black_box(&drained);
    }
    let delta = alloc_count() - before;
    expect_zero(delta, "churn events");
    // Sanity outside the measured window: the run did real work and the
    // allocation is live.
    assert_eq!(churn.live_flows(), 120);
    assert_ne!(churn.sim.rates_digest(), 0);
}

/// Sharded poll + dirty-shard merge at steady state: once every shard's
/// sample history and the federation's merged history are full (so each
/// poll recycles the snapshot it would evict) and the merge buffers have
/// reached their terminal shape, a serial-path federation poll — child
/// reads through the shared `SimCell`, per-child dirty apply into the
/// persistent merged vectors, snapshot publish — touches the heap zero
/// times.
///
/// The serial path (`poll_workers: 1`) is measured deliberately: the
/// concurrent fan-out ships results back through scoped threads and is
/// allocating by design, like the engine's parallel solver branch.
#[test]
fn steady_state_sharded_merge_is_allocation_free() {
    let tree = FatTree::build(4).expect("fat tree builds");
    let sim: SharedSim =
        share(Simulator::new(FatTree::build(4).expect("fat tree builds").into_parts().0)
            .expect("fabric simulator"));
    {
        // `FatTree::build` is deterministic, so `tree`'s node ids line up
        // with the sim's own copy of the same fabric.
        let mut s = sim.lock();
        for p in 0..3usize {
            let (src, dst) = (tree.host(p, 0), tree.host(p + 1, 1));
            s.start_flow(remos_net::flow::FlowParams::greedy(src, dst)).expect("start flow");
        }
    }
    let children: Vec<Box<dyn Collector>> = shard_fabric(&tree, &sim, 3)
        .expect("shard fabric")
        .into_iter()
        .map(|s| Box::new(s.with_history_len(4)) as Box<dyn Collector>)
        .collect();
    let mut fed = MultiCollector::with_config(
        children,
        MultiCollectorConfig { poll_workers: 1, history_len: 4, ..Default::default() },
    );
    fed.refresh_topology().expect("discover");
    // Warmup: advance and poll until every history is full and recycling.
    for _ in 0..8 {
        sim.lock().run_for(SimDuration::from_millis(100)).expect("advance sim");
        assert!(fed.poll().expect("warm poll"));
    }
    let digest = {
        let snap = fed.history().latest().expect("warm snapshot");
        assert!(snap.util.iter().any(|&u| u > 0.0), "scenario produced no traffic");
        snap.util.iter().map(|u| u.to_bits()).fold(0u64, |a, b| a.rotate_left(7) ^ b)
    };
    let before = alloc_count();
    for _ in 0..64 {
        assert!(fed.poll().expect("measured poll"));
        black_box(fed.history().latest());
    }
    let delta = alloc_count() - before;
    expect_zero(delta, "sharded poll+merge");
    // The measured polls re-published the same settled state.
    let snap = fed.history().latest().expect("measured snapshot");
    let after = snap.util.iter().map(|u| u.to_bits()).fold(0u64, |a, b| a.rotate_left(7) ^ b);
    assert_eq!(after, digest, "steady-state merge drifted");
}

/// Warm cached graph queries through a reused [`QueryWorkspace`]: after
/// the first repeats settle the workspace's buffers (key strings, host
/// table, sample selection, quartile scratch, resident graph), further
/// plan-cache-hit `Window` queries must not allocate — and must keep
/// answering bit-identically.
#[test]
fn warm_cached_queries_are_allocation_free() {
    let tree = FatTree::build(8).expect("fat tree builds");
    let mut names = Vec::new();
    for p in 0..tree.pods() {
        for i in 0..4 {
            names.push(tree.topology().node(tree.host(p, i)).name.clone());
        }
    }
    let sim: SharedSim = share(Simulator::new(tree.into_parts().0).expect("fabric simulator"));
    let mut col = OracleCollector::new(Arc::clone(&sim));
    for _ in 0..4 {
        sim.lock().run_for(SimDuration::from_millis(250)).expect("advance sim");
        col.poll().expect("poll oracle");
    }
    let modeler = Modeler::new(ModelerConfig::default());
    let tf = Timeframe::Window(SimDuration::from_secs(2));
    let mut ws = QueryWorkspace::new();
    let digest = {
        let g = modeler.get_graph_in(&col, &names, tf, &mut ws).expect("graph query");
        g.digest()
    };
    // Warm repeats: string buffers grow to their terminal capacities on
    // the first pass; a couple more passes guard against lazy-init
    // statics (quartile scratch, plan-cache bookkeeping) skewing the
    // measured window.
    for _ in 0..3 {
        let g = modeler.get_graph_in(&col, &names, tf, &mut ws).expect("warm graph query");
        assert_eq!(g.digest(), digest, "warm cached query drifted");
    }
    let before = alloc_count();
    for _ in 0..32 {
        let g = modeler.get_graph_in(&col, &names, tf, &mut ws).expect("measured graph query");
        black_box(g);
    }
    let delta = alloc_count() - before;
    expect_zero(delta, "warm cached queries");
    assert_eq!(ws.graph().digest(), digest, "measured queries drifted");
}
