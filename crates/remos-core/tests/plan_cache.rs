//! Plan-cache equivalence: a modeler serving from the epoch-keyed plan
//! cache must answer every query **bit-identically** to a modeler that
//! rebuilds routing + logicalization cold on every call — across
//! interleaved polls, topology rediscoveries (epoch bumps), LRU
//! evictions, and degraded sample quality. The warm modeler runs with
//! `audit_cache` on, so a stale or divergent cached plan fails the
//! query outright instead of silently skewing an answer.

use proptest::prelude::*;
use remos_core::collector::{Collector, SampleHistory, Snapshot};
use remos_core::error::CoreResult;
use remos_core::graph::HostInfo;
use remos_core::modeler::{Modeler, ModelerConfig};
use remos_core::{FlowInfoRequest, RemosError, Timeframe};
use remos_net::topology::Topology;
use remos_net::{mbps, SimDuration, SimTime, TopologyBuilder};
use remos_obs::Obs;
use std::sync::Arc;

const HOSTS: [&str; 4] = ["h0", "h1", "h2", "h3"];

/// Two structurally different topologies over the same host names, so a
/// plan cached under one must never answer a query about the other.
fn topo_a() -> Topology {
    let mut b = TopologyBuilder::new();
    let hs: Vec<_> = HOSTS.iter().map(|h| b.compute(h)).collect();
    let r0 = b.network("r0");
    let r1 = b.network("r1");
    let lat = SimDuration::from_micros(100);
    b.link(hs[0], r0, mbps(100.0), lat).unwrap();
    b.link(hs[1], r0, mbps(80.0), lat).unwrap();
    b.link(hs[2], r1, mbps(60.0), lat).unwrap();
    b.link(hs[3], r1, mbps(40.0), lat).unwrap();
    b.link(r0, r1, mbps(50.0), lat).unwrap();
    b.build().unwrap()
}

fn topo_b() -> Topology {
    let mut b = TopologyBuilder::new();
    let hs: Vec<_> = HOSTS.iter().map(|h| b.compute(h)).collect();
    let r0 = b.network("r0");
    let r1 = b.network("r1");
    let r2 = b.network("r2");
    let lat = SimDuration::from_micros(200);
    b.link(hs[0], r0, mbps(90.0), lat).unwrap();
    b.link(hs[1], r1, mbps(70.0), lat).unwrap();
    b.link(hs[2], r1, mbps(65.0), lat).unwrap();
    b.link(hs[3], r2, mbps(45.0), lat).unwrap();
    b.link(r0, r1, mbps(55.0), lat).unwrap();
    b.link(r1, r2, mbps(35.0), lat).unwrap();
    b.build().unwrap()
}

/// Hand-driven collector: topology swaps between A and B on every
/// rediscovery (bumping the epoch), and each poll pushes a snapshot
/// with LCG-driven utilization and, occasionally, degraded per-link
/// sample quality.
struct StubCollector {
    topos: [Arc<Topology>; 2],
    current: usize,
    epoch: u64,
    history: SampleHistory,
    t: SimTime,
    state: u64,
}

impl StubCollector {
    fn new(seed: u64) -> StubCollector {
        StubCollector {
            topos: [Arc::new(topo_a()), Arc::new(topo_b())],
            current: 0,
            epoch: 0,
            history: SampleHistory::default(),
            t: SimTime::ZERO,
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.state =
            self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.state >> 33) % bound
    }
}

impl Collector for StubCollector {
    fn refresh_topology(&mut self) -> CoreResult<()> {
        self.current = 1 - self.current;
        self.epoch += 1;
        self.history.clear();
        Ok(())
    }

    fn topology(&self) -> CoreResult<Arc<Topology>> {
        Ok(Arc::clone(&self.topos[self.current]))
    }

    fn host_info(&self, name: &str) -> CoreResult<HostInfo> {
        Err(RemosError::UnknownNode(name.to_string()))
    }

    fn poll(&mut self) -> CoreResult<bool> {
        self.t += SimDuration::from_millis(250);
        let n = self.topos[self.current].dir_link_count();
        let mut util = Vec::with_capacity(n);
        let mut quality = Vec::with_capacity(n);
        for _ in 0..n {
            util.push(self.next(60) as f64 * 1e6);
            quality.push(match self.next(10) {
                0 => remos_core::DataQuality::Stale { age: SimDuration::from_millis(500) },
                1 => remos_core::DataQuality::Missing,
                _ => remos_core::DataQuality::Fresh,
            });
        }
        let mut snap =
            Snapshot::fresh(self.t, SimDuration::from_millis(250), util.into_boxed_slice());
        snap.quality = quality.into_boxed_slice();
        self.history.push(snap);
        Ok(true)
    }

    fn history(&self) -> &SampleHistory {
        &self.history
    }

    fn topology_epoch(&self) -> u64 {
        self.epoch
    }

    fn now(&self) -> CoreResult<SimTime> {
        Ok(self.t)
    }
}

/// The three target sets the queries cycle through. With a warm cache
/// capacity of 2, cycling all three forces LRU evictions.
fn target_set(i: usize) -> Vec<String> {
    match i % 3 {
        0 => vec!["h0".into(), "h3".into()],
        1 => vec!["h1".into(), "h2".into(), "h3".into()],
        _ => vec!["h3".into(), "h2".into(), "h1".into(), "h0".into()],
    }
}

fn flow_request(i: usize) -> FlowInfoRequest {
    match i % 2 {
        0 => FlowInfoRequest::new().independent("h0", "h3"),
        _ => FlowInfoRequest::new()
            .fixed("h0", "h2", mbps(5.0))
            .variable("h1", "h3", 1.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleave polls, rediscoveries, graph queries, and flow queries;
    /// after every query the warm (cached, audited, eviction-prone)
    /// modeler and the cold (capacity-0) modeler must agree bit for bit.
    #[test]
    fn cached_answers_are_bit_identical_to_cold(
        seed in 0u64..200,
        ops in prop::collection::vec(0u8..255, 1..40),
    ) {
        let mut col = StubCollector::new(seed);
        col.poll().unwrap();
        let warm = Modeler::new(ModelerConfig {
            plan_cache_capacity: 2,
            audit_cache: true,
            ..ModelerConfig::default()
        });
        let cold = Modeler::new(ModelerConfig {
            plan_cache_capacity: 0,
            ..ModelerConfig::default()
        });

        for op in ops {
            match op % 8 {
                0 | 1 => { col.poll().unwrap(); }
                2 => {
                    col.refresh_topology().unwrap();
                    // Rediscovery clears the history; re-prime so Current
                    // queries have a sample to select.
                    col.poll().unwrap();
                }
                3 => {
                    let req = flow_request(op as usize / 8);
                    let a = warm.flow_info(&col, &req, Timeframe::Current);
                    let b = cold.flow_info(&col, &req, Timeframe::Current);
                    prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
                }
                _ => {
                    let targets = target_set(op as usize / 8);
                    let tf = if op % 2 == 0 {
                        Timeframe::Current
                    } else {
                        Timeframe::Window(SimDuration::from_secs(2))
                    };
                    let a = warm.get_graph(&col, &targets, tf).unwrap();
                    let b = cold.get_graph(&col, &targets, tf).unwrap();
                    prop_assert_eq!(a.digest(), b.digest());
                }
            }
        }
    }
}

/// After a rediscovery the old plan's epoch key misses: the answer must
/// reflect the *new* topology, never the cached shape of the old one.
#[test]
fn stale_plan_is_never_served_across_epochs() {
    let obs = Obs::new();
    let mut col = StubCollector::new(7);
    col.poll().unwrap();
    let mut modeler = Modeler::new(ModelerConfig { audit_cache: true, ..ModelerConfig::default() });
    modeler.set_obs(&obs);
    let targets: Vec<String> = vec!["h0".into(), "h3".into()];

    let before = modeler.get_graph(&col, &targets, Timeframe::Current).unwrap();
    let hit = modeler.get_graph(&col, &targets, Timeframe::Current).unwrap();
    assert_eq!(before.digest(), hit.digest(), "idle repeat must be a pure cache hit");

    col.refresh_topology().unwrap();
    col.poll().unwrap();
    let after = modeler.get_graph(&col, &targets, Timeframe::Current).unwrap();

    // Topology A's h0..h3 bottleneck is the 40 Mbps h3 uplink; topology
    // B's is the 35 Mbps r1-r2 hop. A served stale plan could not show
    // the new bottleneck.
    let bottleneck =
        |g: &remos_core::RemosGraph| g.links.iter().map(|l| l.capacity as u64).min().unwrap();
    assert_eq!(bottleneck(&before), 40_000_000);
    assert_eq!(
        bottleneck(&after),
        35_000_000,
        "post-rediscovery answer still has the old topology's bottleneck"
    );
    let c = |k: &str| obs.metrics_snapshot().counters.get(k).copied().unwrap_or(0);
    assert_eq!(c("modeler_plan_cache_misses_total"), 2, "one cold build per epoch");
    assert_eq!(c("modeler_plan_cache_hits_total"), 1);
}

/// A capacity-1 cache alternating between two target sets evicts on
/// every flip, and the eviction counter records each one.
#[test]
fn lru_evictions_are_counted() {
    let obs = Obs::new();
    let mut col = StubCollector::new(11);
    col.poll().unwrap();
    let mut modeler = Modeler::new(ModelerConfig {
        plan_cache_capacity: 1,
        ..ModelerConfig::default()
    });
    modeler.set_obs(&obs);
    let set_a = target_set(0);
    let set_b = target_set(1);
    for _ in 0..3 {
        modeler.get_graph(&col, &set_a, Timeframe::Current).unwrap();
        modeler.get_graph(&col, &set_b, Timeframe::Current).unwrap();
    }
    let c = |k: &str| obs.metrics_snapshot().counters.get(k).copied().unwrap_or(0);
    assert_eq!(c("modeler_plan_cache_hits_total"), 0);
    assert_eq!(c("modeler_plan_cache_misses_total"), 6);
    // The first insert fills the empty slot; every later insert evicts.
    assert_eq!(c("modeler_plan_cache_evictions_total"), 5);
}
