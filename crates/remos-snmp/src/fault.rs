//! Scriptable per-agent fault injection.
//!
//! The paper's deployment sections (§5, §10) stress that "the topology and
//! behavior of networks … may even change during execution": agents crash
//! and restart (wiping the MIB — counters restart from zero and `sysUpTime`
//! resets, the classic discontinuity that naive wrap-differencing turns
//! into a huge bogus delta), wedge without answering, or sit behind lossy
//! paths for a while. A [`FaultPlan`] scripts those behaviors per agent in
//! simulated time; the [`FaultDirector`] applies them inside the transport
//! (reachability) and the simulated MIB provider (counter/uptime resets),
//! so the whole manager → collector → modeler pipeline sees exactly what a
//! real deployment would.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remos_net::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// One scripted fault on an agent's timeline (simulated time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Agent is down in `[at, at + downtime)`; on restart its MIB is wiped:
    /// counters read from zero and `sysUpTime` restarts.
    Crash {
        /// Crash instant.
        at: SimTime,
        /// How long the agent stays unreachable.
        downtime: SimDuration,
    },
    /// Agent accepts requests in `[from, until)` but never answers in time
    /// (responses delayed past any deadline — the manager sees timeouts).
    Freeze {
        /// Freeze start.
        from: SimTime,
        /// Freeze end.
        until: SimTime,
    },
    /// Elevated datagram loss toward/from the agent in `[from, until)`.
    Flaky {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// Per-datagram drop probability within the window.
        loss: f64,
    },
}

/// A per-agent schedule of [`Fault`]s, built fluently:
///
/// ```
/// use remos_snmp::fault::FaultPlan;
/// use remos_net::{SimDuration, SimTime};
/// let plan = FaultPlan::new()
///     .crash(SimTime::from_secs(5), SimDuration::from_secs(2))
///     .flaky(SimTime::from_secs(10), SimTime::from_secs(12), 0.4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Empty plan (agent behaves perfectly).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Script a crash at `at` lasting `downtime`.
    pub fn crash(mut self, at: SimTime, downtime: SimDuration) -> FaultPlan {
        self.faults.push(Fault::Crash { at, downtime });
        self
    }

    /// Script a freeze window `[from, until)`.
    pub fn freeze(mut self, from: SimTime, until: SimTime) -> FaultPlan {
        self.faults.push(Fault::Freeze { from, until });
        self
    }

    /// Script a flaky window `[from, until)` with per-datagram `loss`.
    pub fn flaky(mut self, from: SimTime, until: SimTime, loss: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&loss), "flaky loss {loss}");
        self.faults.push(Fault::Flaky { from, until, loss });
        self
    }

    /// The scripted faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Is the agent crashed (unreachable) at `now`?
    pub fn is_down(&self, now: SimTime) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::Crash { at, downtime } => at <= now && now.saturating_since(at) < downtime,
            _ => false,
        })
    }

    /// Is the agent frozen (accepts requests, never answers) at `now`?
    pub fn is_frozen(&self, now: SimTime) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::Freeze { from, until } => from <= now && now < until,
            _ => false,
        })
    }

    /// Extra datagram loss applying at `now`, if inside a flaky window.
    /// Overlapping windows combine to the highest loss.
    pub fn flaky_loss(&self, now: SimTime) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Flaky { from, until, loss } if from <= now && now < until => Some(loss),
                _ => None,
            })
            .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
    }

    /// The most recent restart instant at or before `now` (end of the
    /// latest completed crash window), if any crash has finished by then.
    pub fn last_restart(&self, now: SimTime) -> Option<SimTime> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Crash { at, downtime } => {
                    let up = at + downtime;
                    (up <= now).then_some(up)
                }
                _ => None,
            })
            .max()
    }
}

struct NodeFaults {
    plan: FaultPlan,
    rng: StdRng,
    /// Restart the current counter baselines belong to.
    restart: Option<SimTime>,
    /// Raw octet totals captured at first read after `restart`, keyed by
    /// directed-link index; the agent reports `raw - baseline` so its
    /// counters look freshly zeroed.
    baselines: HashMap<u64, f64>,
}

/// Shared fault coordinator: the transport asks it whether datagrams reach
/// an agent, and [`crate::sim::SimMibProvider`] asks it how to rewrite
/// uptime and counters after a crash. One director serves a whole testbed.
#[derive(Default)]
pub struct FaultDirector {
    nodes: Mutex<HashMap<String, NodeFaults>>,
}

impl FaultDirector {
    /// New director with no plans (all agents healthy).
    pub fn new() -> Arc<FaultDirector> {
        Arc::new(FaultDirector::default())
    }

    /// Install (or replace) the plan for `agent`; `seed` drives its flaky
    /// windows deterministically.
    pub fn set_plan(&self, agent: &str, plan: FaultPlan, seed: u64) {
        self.nodes.lock().insert(
            agent.to_string(),
            NodeFaults {
                plan,
                rng: StdRng::seed_from_u64(seed),
                restart: None,
                baselines: HashMap::new(),
            },
        );
    }

    /// Remove any plan for `agent`.
    pub fn clear_plan(&self, agent: &str) {
        self.nodes.lock().remove(agent);
    }

    /// Is `agent` crashed at `now`?
    pub fn is_down(&self, agent: &str, now: SimTime) -> bool {
        self.nodes.lock().get(agent).is_some_and(|nf| nf.plan.is_down(now))
    }

    /// Is `agent` frozen at `now`?
    pub fn is_frozen(&self, agent: &str, now: SimTime) -> bool {
        self.nodes.lock().get(agent).is_some_and(|nf| nf.plan.is_frozen(now))
    }

    /// Should the request datagram toward `agent` be dropped at `now`?
    /// (Crashed agents receive nothing; flaky windows drop probabilistically.)
    pub fn drop_request(&self, agent: &str, now: SimTime) -> bool {
        let mut nodes = self.nodes.lock();
        let Some(nf) = nodes.get_mut(agent) else { return false };
        if nf.plan.is_down(now) {
            return true;
        }
        match nf.plan.flaky_loss(now) {
            Some(p) => nf.rng.gen_bool(p),
            None => false,
        }
    }

    /// Should the response datagram from `agent` be dropped at `now`?
    /// (Frozen agents accepted the request but never answer in time.)
    pub fn drop_response(&self, agent: &str, now: SimTime) -> bool {
        let mut nodes = self.nodes.lock();
        let Some(nf) = nodes.get_mut(agent) else { return false };
        if nf.plan.is_down(now) || nf.plan.is_frozen(now) {
            return true;
        }
        match nf.plan.flaky_loss(now) {
            Some(p) => nf.rng.gen_bool(p),
            None => false,
        }
    }

    /// The instant `agent`'s `sysUpTime` counts from at `now`: its latest
    /// restart, or `None` if it has never crashed (uptime counts from the
    /// simulation epoch).
    pub fn uptime_base(&self, agent: &str, now: SimTime) -> Option<SimTime> {
        self.nodes.lock().get(agent).and_then(|nf| nf.plan.last_restart(now))
    }

    /// Rewrite a raw monotonic octet total as the crashed-and-restarted
    /// agent would report it: after a restart, counters restart from zero,
    /// so the first post-restart read establishes a baseline that is
    /// subtracted from every subsequent read. `key` identifies the counter
    /// (directed-link index); with no completed crash, `raw` passes through.
    pub fn adjust_octets(&self, agent: &str, now: SimTime, key: u64, raw: f64) -> f64 {
        let mut nodes = self.nodes.lock();
        let Some(nf) = nodes.get_mut(agent) else { return raw };
        let restart = nf.plan.last_restart(now);
        if restart != nf.restart {
            // A newer crash completed: wipe the MIB baselines.
            nf.restart = restart;
            nf.baselines.clear();
        }
        if restart.is_none() {
            return raw;
        }
        let base = *nf.baselines.entry(key).or_insert(raw);
        (raw - base).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn crash_window_and_restart() {
        let plan = FaultPlan::new().crash(t(5), SimDuration::from_secs(2));
        assert!(!plan.is_down(t(4)));
        assert!(plan.is_down(t(5)));
        assert!(plan.is_down(t(6)));
        assert!(!plan.is_down(t(7)));
        assert_eq!(plan.last_restart(t(4)), None);
        assert_eq!(plan.last_restart(t(6)), None);
        assert_eq!(plan.last_restart(t(7)), Some(t(7)));
        assert_eq!(plan.last_restart(t(100)), Some(t(7)));
    }

    #[test]
    fn repeated_crashes_track_latest_restart() {
        let plan = FaultPlan::new()
            .crash(t(2), SimDuration::from_secs(1))
            .crash(t(10), SimDuration::from_secs(3));
        assert_eq!(plan.last_restart(t(5)), Some(t(3)));
        assert_eq!(plan.last_restart(t(20)), Some(t(13)));
    }

    #[test]
    fn freeze_and_flaky_windows() {
        let plan = FaultPlan::new().freeze(t(1), t(2)).flaky(t(3), t(5), 0.4);
        assert!(plan.is_frozen(t(1)));
        assert!(!plan.is_frozen(t(2)));
        assert_eq!(plan.flaky_loss(t(3)), Some(0.4));
        assert_eq!(plan.flaky_loss(t(5)), None);
    }

    #[test]
    fn overlapping_flaky_windows_take_worst_loss() {
        let plan = FaultPlan::new().flaky(t(0), t(10), 0.2).flaky(t(4), t(6), 0.7);
        assert_eq!(plan.flaky_loss(t(2)), Some(0.2));
        assert_eq!(plan.flaky_loss(t(5)), Some(0.7));
    }

    #[test]
    fn director_counter_reset_is_exact_after_first_read() {
        let d = FaultDirector::new();
        d.set_plan("m-1", FaultPlan::new().crash(t(5), SimDuration::from_secs(1)), 7);
        // Before the crash completes, raw totals pass through.
        assert_eq!(d.adjust_octets("m-1", t(4), 0, 1000.0), 1000.0);
        // After restart, first read baselines: looks freshly zeroed.
        assert_eq!(d.adjust_octets("m-1", t(7), 0, 3000.0), 0.0);
        // Subsequent deltas are exact: +500 raw octets => +500 adjusted.
        assert_eq!(d.adjust_octets("m-1", t(8), 0, 3500.0), 500.0);
    }

    #[test]
    fn director_unplanned_agents_pass_through() {
        let d = FaultDirector::new();
        assert!(!d.drop_request("m-9", t(0)));
        assert!(!d.drop_response("m-9", t(0)));
        assert_eq!(d.adjust_octets("m-9", t(0), 3, 42.0), 42.0);
        assert_eq!(d.uptime_base("m-9", t(0)), None);
    }

    #[test]
    fn director_drop_semantics() {
        let d = FaultDirector::new();
        d.set_plan(
            "m-1",
            FaultPlan::new()
                .crash(t(1), SimDuration::from_secs(1))
                .freeze(t(4), t(5)),
            11,
        );
        // Down: the request leg never arrives.
        assert!(d.drop_request("m-1", t(1)));
        // Frozen: the request is accepted but the response never comes.
        assert!(!d.drop_request("m-1", t(4)));
        assert!(d.drop_response("m-1", t(4)));
        // Healthy outside windows.
        assert!(!d.drop_request("m-1", t(8)));
        assert!(!d.drop_response("m-1", t(8)));
    }

    #[test]
    fn flaky_drops_are_seeded_and_probabilistic() {
        let d = FaultDirector::new();
        d.set_plan("m-1", FaultPlan::new().flaky(t(0), t(100), 0.5), 42);
        let drops = (0..200).filter(|_| d.drop_request("m-1", t(1))).count();
        assert!(drops > 50 && drops < 150, "drops={drops}");
    }
}
