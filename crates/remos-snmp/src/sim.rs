//! Simulator-backed agents.
//!
//! Materializes a MIB-II-style view from a shared
//! [`remos_net::Simulator`]: interface rows come from the node's incident
//! links (ifSpeed = link capacity, ifIn/OutOctets = wrapped Counter32
//! readings of the fluid model's exact octet totals), the system group
//! advertises the node's name and kind, and an LLDP-style neighbor table
//! exposes link-layer adjacency — the discovery source for the Remos
//! collector's topology queries.

use crate::agent::{Agent, MibProvider};
use crate::fault::FaultDirector;
use crate::mib::{Mib, SERVICES_HOST, SERVICES_ROUTER};
use crate::transport::SimTransport;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use remos_net::counters::to_counter32;
use remos_net::topology::{DirLink, NodeId, NodeKind};
use remos_net::{SimTime, Simulator};
use std::sync::Arc;

/// Reader-writer cell around the simulator. [`SimCell::lock`] keeps the
/// historical exclusive-access spelling every call site uses; the
/// [`SimCell::read`] path lets shard collectors sample *settled* rates
/// concurrently (`Simulator::dirlink_rate_settled`) without serializing
/// on a single mutex.
pub struct SimCell(RwLock<Simulator>);

impl SimCell {
    /// Exclusive access (mutation: flows, time, topology, lazy solves).
    pub fn lock(&self) -> RwLockWriteGuard<'_, Simulator> {
        self.0.write()
    }

    /// Shared read access for settled-state consumers. Callers must not
    /// hold a read guard while requesting [`SimCell::lock`] on the same
    /// thread (a classic reader-to-writer upgrade deadlock): drop the
    /// guard, write, then re-acquire.
    pub fn read(&self) -> RwLockReadGuard<'_, Simulator> {
        self.0.read()
    }
}

/// Shared handle to the simulated network.
pub type SharedSim = Arc<SimCell>;

/// The synthetic IPv4 address of a simulated node: `10.0.hi.lo` derived
/// from the node id (collision-free up to 50k nodes).
pub fn node_ip(node: NodeId) -> [u8; 4] {
    let id = node.0;
    [10, (id / (200 * 200)) as u8, ((id / 200) % 200) as u8, (id % 200 + 1) as u8]
}

/// Wrap a simulator for sharing between agents and the experiment harness.
pub fn share(sim: Simulator) -> SharedSim {
    Arc::new(SimCell(RwLock::new(sim)))
}

/// [`MibProvider`] reading one node's state from the shared simulator.
///
/// With a [`FaultDirector`] attached, the provider renders the MIB exactly
/// as a crashed-and-restarted agent would: `sysUpTime` counts from the
/// latest restart and octet counters restart from zero (the baselines are
/// captured lazily on first read after the restart).
pub struct SimMibProvider {
    sim: SharedSim,
    node: NodeId,
    faults: Option<Arc<FaultDirector>>,
}

impl SimMibProvider {
    /// Provider for `node`.
    pub fn new(sim: SharedSim, node: NodeId) -> Self {
        SimMibProvider { sim, node, faults: None }
    }

    /// Attach a fault director (crash semantics for uptime and counters).
    pub fn with_faults(mut self, director: Arc<FaultDirector>) -> Self {
        self.faults = Some(director);
        self
    }

    fn octets(&self, name: &str, now: SimTime, dl: DirLink, raw: f64) -> f64 {
        match &self.faults {
            Some(d) => d.adjust_octets(name, now, dl.index() as u64, raw),
            None => raw,
        }
    }
}

impl MibProvider for SimMibProvider {
    fn snapshot(&self) -> Mib {
        let sim = self.sim.lock();
        let topo = sim.topology();
        let node = topo.node(self.node);
        let mut mib = Mib::new();
        let services = match node.kind {
            NodeKind::Network => SERVICES_ROUTER,
            NodeKind::Compute => SERVICES_HOST,
        };
        let now = sim.now();
        let uptime_secs = match self.faults.as_ref().and_then(|d| d.uptime_base(&node.name, now)) {
            Some(base) => now.saturating_since(base).as_secs_f64(),
            None => now.as_secs_f64(),
        };
        let uptime_ticks = (uptime_secs * 100.0) as u32;
        let descr = match node.kind {
            NodeKind::Network => "remos-sim router",
            NodeKind::Compute => "remos-sim host",
        };
        mib.set_system_group(&node.name, descr, uptime_ticks, services);
        if node.kind == NodeKind::Compute {
            mib.set_host_resources(
                (node.memory_bytes / 1024) as i64,
                (node.compute_flops / 1e6).round() as u32,
            );
        }

        mib.set_own_address(node_ip(self.node));
        // The ipRouteTable the paper's collector walked: one row per
        // reachable destination, marked direct for adjacent nodes.
        for dest in topo.node_ids() {
            if dest == self.node {
                continue;
            }
            if let Some((link, next)) = sim.routing().next_hop(topo, self.node, dest) {
                if !sim.link_is_up(link) {
                    continue;
                }
                let if_index = topo
                    .neighbors(self.node)
                    .iter()
                    .position(|&(l, _)| l == link)
                    .map(|p| (p + 1) as u32)
                    .unwrap_or(0);
                mib.set_route_row(node_ip(dest), if_index, node_ip(next), next == dest);
            }
        }

        let neighbors = topo.neighbors(self.node);
        mib.set_if_number(neighbors.len() as u32);
        for (i, &(link_id, peer)) in neighbors.iter().enumerate() {
            let if_index = (i + 1) as u32;
            let link = topo.link(link_id);
            let up = sim.link_is_up(link_id);
            let out_dir = link.direction_from(self.node);
            let out_dl = DirLink { link: link_id, dir: out_dir };
            let in_dl = DirLink { link: link_id, dir: out_dir.reverse() };
            let out = self.octets(&node.name, now, out_dl, sim.dirlink_octets(out_dl));
            let inn = self.octets(&node.name, now, in_dl, sim.dirlink_octets(in_dl));
            let peer_name = &topo.node(peer).name;
            // ifSpeed is a Gauge32; 100 Mbps fits, faster links saturate the
            // gauge exactly like real MIB-II (ifHighSpeed exists for that,
            // but the testbed never needs it).
            let speed = link.capacity.min(u32::MAX as f64) as u32;
            mib.set_interface_row(
                if_index,
                &format!("to-{peer_name}"),
                speed,
                up,
                to_counter32(inn),
                to_counter32(out),
            );
            // Link-layer adjacency disappears while the link is down,
            // exactly like LLDP neighbor aging.
            if up {
                let peer_ifindex = topo
                    .neighbors(peer)
                    .iter()
                    .position(|&(l, _)| l == link_id)
                    .map(|p| (p + 1) as u32)
                    .unwrap_or(0);
                mib.set_neighbor_row(if_index, peer_name, peer_ifindex);
            }
        }
        mib
    }
}

/// SNMPv2 trap source: converts the simulator's link transitions into
/// linkDown/linkUp trap PDUs, attributed to the link's lower-named
/// endpoint agent (both ends would send in reality; one suffices for the
/// collector).
pub struct SimTrapSource {
    sim: SharedSim,
    community: String,
}

impl SimTrapSource {
    /// New trap source over the shared simulator.
    pub fn new(sim: SharedSim, community: &str) -> Self {
        SimTrapSource { sim, community: community.to_string() }
    }

    /// Drain pending transitions as `(agent name, trap PDU)` pairs.
    pub fn drain(&mut self) -> Vec<(String, crate::pdu::Pdu)> {
        use crate::oid::well_known;
        use crate::pdu::{ErrorStatus, Pdu, PduType, VarBind};
        use crate::value::Value;
        let mut sim = self.sim.lock();
        let topo = sim.topology_arc();
        sim.take_link_events()
            .into_iter()
            .map(|ev| {
                let link = topo.link(ev.link);
                let (a, b) = (&topo.node(link.a).name, &topo.node(link.b).name);
                let agent = if a <= b { a.clone() } else { b.clone() };
                let reporter = if a <= b { link.a } else { link.b };
                let if_index = topo
                    .neighbors(reporter)
                    .iter()
                    .position(|&(l, _)| l == ev.link)
                    .map(|p| (p + 1) as u32)
                    .unwrap_or(0);
                let trap_identity = if ev.up {
                    well_known::link_up_trap()
                } else {
                    well_known::link_down_trap()
                };
                let pdu = Pdu {
                    community: self.community.clone(),
                    pdu_type: PduType::TrapV2,
                    request_id: 0,
                    error_status: ErrorStatus::NoError,
                    error_index: 0,
                    max_repetitions: 0,
                    bindings: vec![
                        VarBind {
                            oid: well_known::sys_uptime(),
                            value: Value::TimeTicks((ev.t.as_secs_f64() * 100.0) as u32),
                        },
                        VarBind {
                            oid: well_known::snmp_trap_oid(),
                            value: Value::ObjectId(trap_identity),
                        },
                        VarBind {
                            oid: well_known::if_index().child([if_index]),
                            value: Value::Integer(if_index as i64),
                        },
                    ],
                };
                (agent, pdu)
            })
            .collect()
    }
}

/// Register one agent per node of the simulated topology (routers *and*
/// hosts — the paper's testbed ran NetBSD/FreeBSD machines as routers, all
/// SNMP-capable). Returns the agent names in node-id order.
pub fn register_all_agents(transport: &SimTransport, sim: &SharedSim, community: &str) -> Vec<String> {
    let topo = sim.lock().topology_arc();
    let mut names = Vec::new();
    for n in topo.node_ids() {
        let name = topo.node(n).name.clone();
        let provider = SimMibProvider::new(Arc::clone(sim), n);
        transport.register(Agent::new(&name, community, Box::new(provider)));
        names.push(name);
    }
    names
}

/// Like [`register_all_agents`], but every agent honors the fault
/// director's scripted crash/freeze/flaky plans: the transport gets a
/// simulated-time clock (so fault windows track the shared simulator) and
/// each MIB provider rewrites uptime/counters across restarts.
pub fn register_all_agents_with_faults(
    transport: &SimTransport,
    sim: &SharedSim,
    community: &str,
    director: &Arc<FaultDirector>,
) -> Vec<String> {
    let clock_sim = Arc::clone(sim);
    transport.set_clock(Box::new(move || clock_sim.lock().now()));
    transport.set_fault_director(Arc::clone(director));
    let topo = sim.lock().topology_arc();
    let mut names = Vec::new();
    for n in topo.node_ids() {
        let name = topo.node(n).name.clone();
        let provider = SimMibProvider::new(Arc::clone(sim), n).with_faults(Arc::clone(director));
        transport.register(Agent::new(&name, community, Box::new(provider)));
        names.push(name);
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::well_known;
    use crate::pdu::Pdu;
    use crate::transport::Transport;
    use crate::value::Value;
    use remos_net::flow::FlowParams;
    use remos_net::{mbps, SimDuration, TopologyBuilder};

    fn testnet() -> (SimTransport, SharedSim, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("m-1");
        let h2 = b.compute("m-2");
        let r = b.network("aspen");
        b.link(h1, r, mbps(100.0), SimDuration::from_micros(50)).unwrap();
        b.link(r, h2, mbps(100.0), SimDuration::from_micros(50)).unwrap();
        let sim = share(Simulator::new(b.build().unwrap()).unwrap());
        let t = SimTransport::new();
        register_all_agents(&t, &sim, "public");
        (t, sim, h1, h2)
    }

    #[test]
    fn agents_registered_for_all_nodes() {
        let (t, _, _, _) = testnet();
        assert_eq!(t.agent_names(), vec!["aspen", "m-1", "m-2"]);
    }

    #[test]
    fn system_group_reflects_kind() {
        let (t, _, _, _) = testnet();
        let req = Pdu::get("public", 1, vec![well_known::sys_services()]);
        let router = t.request("aspen", &req).unwrap();
        assert_eq!(router.bindings[0].value, Value::Integer(SERVICES_ROUTER));
        let host = t.request("m-1", &req).unwrap();
        assert_eq!(host.bindings[0].value, Value::Integer(SERVICES_HOST));
    }

    #[test]
    fn counters_track_simulated_traffic() {
        let (t, sim, h1, h2) = testnet();
        {
            let mut s = sim.lock();
            s.start_flow(FlowParams::cbr(h1, h2, mbps(80.0))).unwrap();
            s.run_for(SimDuration::from_secs(1)).unwrap();
        }
        // aspen's interface #1 faces m-1: its ifInOctets saw 10 MB.
        let req = Pdu::get("public", 2, vec![well_known::if_in_octets().child([1])]);
        let resp = t.request("aspen", &req).unwrap();
        let octets = resp.bindings[0].value.as_counter32().unwrap();
        assert!((octets as f64 - 1e7).abs() < 16.0, "{octets}");
    }

    #[test]
    fn counter_wraps_like_counter32() {
        let (t, sim, h1, h2) = testnet();
        {
            let mut s = sim.lock();
            s.start_flow(FlowParams::cbr(h1, h2, mbps(100.0))).unwrap();
            // 100 Mbps for 400 s = 5e9 octets > 2^32: wraps once.
            s.run_for(SimDuration::from_secs(400)).unwrap();
        }
        let req = Pdu::get("public", 3, vec![well_known::if_in_octets().child([1])]);
        let resp = t.request("aspen", &req).unwrap();
        let octets = resp.bindings[0].value.as_counter32().unwrap() as u64;
        let expected = 5_000_000_000u64 % (1 << 32);
        assert!((octets as i64 - expected as i64).abs() < 16, "{octets} vs {expected}");
    }

    #[test]
    fn neighbor_table_exposes_adjacency() {
        let (t, _, _, _) = testnet();
        let req = Pdu::get_bulk("public", 4, vec![well_known::neighbor_name()], 8);
        let resp = t.request("aspen", &req).unwrap();
        let names: Vec<&str> = resp
            .bindings
            .iter()
            .filter(|b| well_known::neighbor_name().is_prefix_of(&b.oid))
            .filter_map(|b| b.value.as_text())
            .collect();
        assert_eq!(names, vec!["m-1", "m-2"]);
    }

    #[test]
    fn ifspeed_reports_capacity() {
        let (t, _, _, _) = testnet();
        let req = Pdu::get("public", 5, vec![well_known::if_speed().child([1])]);
        let resp = t.request("m-1", &req).unwrap();
        assert_eq!(resp.bindings[0].value, Value::Gauge32(100_000_000));
    }

    #[test]
    fn uptime_follows_sim_clock() {
        let (t, sim, _, _) = testnet();
        sim.lock().run_for(SimDuration::from_secs(3)).unwrap();
        let req = Pdu::get("public", 6, vec![well_known::sys_uptime()]);
        let resp = t.request("aspen", &req).unwrap();
        assert_eq!(resp.bindings[0].value, Value::TimeTicks(300));
    }

    #[test]
    fn crash_resets_uptime_and_counters() {
        use crate::error::SnmpError;
        use crate::fault::{FaultDirector, FaultPlan};
        let mut b = TopologyBuilder::new();
        let h1 = b.compute("m-1");
        let h2 = b.compute("m-2");
        let r = b.network("aspen");
        b.link(h1, r, mbps(100.0), SimDuration::from_micros(50)).unwrap();
        b.link(r, h2, mbps(100.0), SimDuration::from_micros(50)).unwrap();
        let sim = share(Simulator::new(b.build().unwrap()).unwrap());
        let t = SimTransport::new();
        let director = FaultDirector::new();
        register_all_agents_with_faults(&t, &sim, "public", &director);
        // aspen crashes at t=2 s for 1 s.
        director.set_plan(
            "aspen",
            FaultPlan::new().crash(SimTime::from_secs(2), SimDuration::from_secs(1)),
            21,
        );
        {
            let mut s = sim.lock();
            s.start_flow(FlowParams::cbr(h1, h2, mbps(80.0))).unwrap();
            s.run_for(SimDuration::from_secs(1)).unwrap();
        }
        let get = |rid, oid| Pdu::get("public", rid, vec![oid]);
        // Before the crash: uptime tracks the sim clock, counters are raw.
        let resp = t.request("aspen", &get(1, well_known::sys_uptime())).unwrap();
        assert_eq!(resp.bindings[0].value, Value::TimeTicks(100));
        let resp = t.request("aspen", &get(2, well_known::if_in_octets().child([1]))).unwrap();
        let before = resp.bindings[0].value.as_counter32().unwrap();
        assert!(before > 0);
        // During the crash (t=2.5 s): unreachable.
        sim.lock().run_for(SimDuration::from_millis(1500)).unwrap();
        assert!(matches!(
            t.request("aspen", &get(3, well_known::sys_uptime())),
            Err(SnmpError::Timeout)
        ));
        // After restart (t=4 s): uptime restarted, counters read near zero
        // even though the flow pushed ~40 MB through by now.
        sim.lock().run_for(SimDuration::from_millis(1500)).unwrap();
        let resp = t.request("aspen", &get(4, well_known::sys_uptime())).unwrap();
        let ticks = match resp.bindings[0].value {
            Value::TimeTicks(v) => v,
            ref v => panic!("expected TimeTicks, got {v:?}"),
        };
        assert_eq!(ticks, 100, "uptime counts from the restart at t=3 s");
        let resp = t.request("aspen", &get(5, well_known::if_in_octets().child([1]))).unwrap();
        let after = resp.bindings[0].value.as_counter32().unwrap();
        assert_eq!(after, 0, "first post-restart read is the baseline");
        // The next read advances by exactly the traffic since the baseline.
        sim.lock().run_for(SimDuration::from_secs(1)).unwrap();
        let resp = t.request("aspen", &get(6, well_known::if_in_octets().child([1]))).unwrap();
        let delta = resp.bindings[0].value.as_counter32().unwrap();
        assert!((delta as f64 - 1e7).abs() < 32.0, "{delta}");
    }
}
