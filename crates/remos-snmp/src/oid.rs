//! Object identifiers.
//!
//! An OID is a sequence of unsigned sub-identifiers with the standard
//! lexicographic total order — the order GETNEXT walks the MIB in.

use std::fmt;
use std::str::FromStr;

/// An object identifier, e.g. `1.3.6.1.2.1.2.2.1.10.3`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Oid(Vec<u32>);

impl Oid {
    /// Construct from sub-identifiers.
    pub fn new(parts: impl Into<Vec<u32>>) -> Self {
        Oid(parts.into())
    }

    /// The empty OID (sorts before everything; walking from it visits the
    /// entire MIB).
    pub fn root() -> Self {
        Oid(Vec::new())
    }

    /// The sub-identifiers.
    pub fn parts(&self) -> &[u32] {
        &self.0
    }

    /// Number of sub-identifiers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty OID.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `self` extended with `suffix` sub-identifiers.
    pub fn child(&self, suffix: impl IntoIterator<Item = u32>) -> Oid {
        let mut v = self.0.clone();
        v.extend(suffix);
        Oid(v)
    }

    /// True if `self` is a prefix of `other` (every MIB subtree walk stops
    /// when this stops holding).
    pub fn is_prefix_of(&self, other: &Oid) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The instance suffix of `other` under prefix `self`, if any.
    pub fn suffix_of<'a>(&self, other: &'a Oid) -> Option<&'a [u32]> {
        self.is_prefix_of(other).then(|| &other.0[self.0.len()..])
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({self})")
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        Ok(())
    }
}

/// Error parsing an OID from a dotted-decimal string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOidError(pub String);

impl fmt::Display for ParseOidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid OID: {}", self.0)
    }
}

impl std::error::Error for ParseOidError {}

impl FromStr for Oid {
    type Err = ParseOidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(Oid::root());
        }
        s.split('.')
            .map(|p| p.parse::<u32>().map_err(|_| ParseOidError(s.to_string())))
            .collect::<Result<Vec<_>, _>>()
            .map(Oid)
    }
}

impl From<&[u32]> for Oid {
    fn from(v: &[u32]) -> Self {
        Oid(v.to_vec())
    }
}

/// Well-known MIB-II (and LLDP-style) OID constants used by the agents and
/// the Remos collector.
pub mod well_known {
    use super::Oid;

    /// `system` group: 1.3.6.1.2.1.1
    pub fn system() -> Oid {
        Oid::new([1, 3, 6, 1, 2, 1, 1])
    }
    /// sysDescr.0
    pub fn sys_descr() -> Oid {
        system().child([1, 0])
    }
    /// sysUpTime.0 (TimeTicks, hundredths of a second)
    pub fn sys_uptime() -> Oid {
        system().child([3, 0])
    }
    /// sysName.0
    pub fn sys_name() -> Oid {
        system().child([5, 0])
    }
    /// sysServices.0 (4 = layer-3 router, 72 = application host)
    pub fn sys_services() -> Oid {
        system().child([7, 0])
    }

    /// `interfaces` group: 1.3.6.1.2.1.2
    pub fn interfaces() -> Oid {
        Oid::new([1, 3, 6, 1, 2, 1, 2])
    }
    /// ifNumber.0
    pub fn if_number() -> Oid {
        interfaces().child([1, 0])
    }
    /// ifTable entry: 1.3.6.1.2.1.2.2.1
    pub fn if_entry() -> Oid {
        interfaces().child([2, 1])
    }
    /// ifIndex column
    pub fn if_index() -> Oid {
        if_entry().child([1])
    }
    /// ifDescr column
    pub fn if_descr() -> Oid {
        if_entry().child([2])
    }
    /// ifSpeed column (Gauge32, bits per second)
    pub fn if_speed() -> Oid {
        if_entry().child([5])
    }
    /// ifOperStatus column (1 = up)
    pub fn if_oper_status() -> Oid {
        if_entry().child([8])
    }
    /// ifInOctets column (Counter32)
    pub fn if_in_octets() -> Oid {
        if_entry().child([10])
    }
    /// ifOutOctets column (Counter32)
    pub fn if_out_octets() -> Oid {
        if_entry().child([16])
    }

    /// ipAdEntAddr column of ipAddrTable (1.3.6.1.2.1.4.20.1.1): one row
    /// per local address, indexed by the address itself.
    pub fn ip_ad_ent_addr() -> Oid {
        Oid::new([1, 3, 6, 1, 2, 1, 4, 20, 1, 1])
    }

    /// ipRouteTable entry arc: 1.3.6.1.2.1.4.21.1 (rows indexed by
    /// destination address).
    pub fn ip_route_entry() -> Oid {
        Oid::new([1, 3, 6, 1, 2, 1, 4, 21, 1])
    }
    /// ipRouteDest column.
    pub fn ip_route_dest() -> Oid {
        ip_route_entry().child([1])
    }
    /// ipRouteIfIndex column.
    pub fn ip_route_ifindex() -> Oid {
        ip_route_entry().child([2])
    }
    /// ipRouteNextHop column.
    pub fn ip_route_nexthop() -> Oid {
        ip_route_entry().child([7])
    }
    /// ipRouteType column (3 = direct, 4 = indirect).
    pub fn ip_route_type() -> Oid {
        ip_route_entry().child([8])
    }

    /// snmpTrapOID.0 — identifies which trap a notification carries.
    pub fn snmp_trap_oid() -> Oid {
        Oid::new([1, 3, 6, 1, 6, 3, 1, 1, 4, 1, 0])
    }

    /// The linkDown trap identity.
    pub fn link_down_trap() -> Oid {
        Oid::new([1, 3, 6, 1, 6, 3, 1, 1, 5, 3])
    }

    /// The linkUp trap identity.
    pub fn link_up_trap() -> Oid {
        Oid::new([1, 3, 6, 1, 6, 3, 1, 1, 5, 4])
    }

    /// hrMemorySize.0 (Host Resources MIB, KBytes as INTEGER).
    pub fn hr_memory_size() -> Oid {
        Oid::new([1, 3, 6, 1, 2, 1, 25, 2, 2, 0])
    }

    /// Vendor OID advertising host peak compute rate in Mflops (Gauge32).
    /// The real testbed had no such object; the Remos host-resources
    /// interface (§2) needs one, so the simulated agents export it under a
    /// private-enterprise arc.
    pub fn host_mflops() -> Oid {
        Oid::new([1, 3, 6, 1, 4, 1, 53535, 1, 0])
    }

    /// LLDP-style remote-systems table (simplified): `.1.<ifIndex>` holds
    /// the neighbor's sysName, `.2.<ifIndex>` the neighbor's ifIndex on the
    /// shared link. Rooted under the IEEE LLDP MIB arc.
    pub fn neighbor_table() -> Oid {
        Oid::new([1, 0, 8802, 1, 1, 2, 1, 4, 1, 1])
    }
    /// Neighbor sysName column.
    pub fn neighbor_name() -> Oid {
        neighbor_table().child([1])
    }
    /// Neighbor ifIndex column.
    pub fn neighbor_ifindex() -> Oid {
        neighbor_table().child([2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a: Oid = "1.3.6".parse().unwrap();
        let b: Oid = "1.3.6.1".parse().unwrap();
        let c: Oid = "1.3.7".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
        assert!(Oid::root() < a);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["1.3.6.1.2.1.2.2.1.10.3", "1", ""] {
            let o: Oid = s.parse().unwrap();
            assert_eq!(o.to_string(), s);
        }
        assert!("1.x.3".parse::<Oid>().is_err());
    }

    #[test]
    fn prefix_relations() {
        let table: Oid = "1.3.6.1.2.1.2.2.1".parse().unwrap();
        let cell = table.child([10, 3]);
        assert!(table.is_prefix_of(&cell));
        assert!(!cell.is_prefix_of(&table));
        assert_eq!(table.suffix_of(&cell), Some(&[10u32, 3][..]));
        assert!(Oid::root().is_prefix_of(&table));
    }

    #[test]
    fn well_known_shapes() {
        assert_eq!(well_known::if_in_octets().to_string(), "1.3.6.1.2.1.2.2.1.10");
        assert_eq!(well_known::sys_name().to_string(), "1.3.6.1.2.1.1.5.0");
        assert!(well_known::interfaces().is_prefix_of(&well_known::if_speed()));
    }
}
