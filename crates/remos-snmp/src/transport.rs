//! Simulated datagram transport.
//!
//! Requests are *encoded to wire bytes* and decoded at the agent (and the
//! response likewise), so every query exercises the full codec path. The
//! transport keeps message/byte statistics — the paper stresses that the
//! cost an application pays "is low and directly related to the depth and
//! frequency of its requests", and these counters are how the bench
//! harness measures that — and can inject datagram loss with a seeded RNG.
//! A [`FaultDirector`] can additionally script per-agent crashes, freezes,
//! and flaky windows in simulated time (see [`crate::fault`]).

use crate::agent::Agent;
use crate::codec;
use crate::error::{SnmpError, SnmpResult};
use crate::fault::FaultDirector;
use crate::pdu::Pdu;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remos_net::SimTime;
use std::collections::HashMap;
use std::sync::Arc;

/// Client-side view of a request/response transport.
pub trait Transport: Send {
    /// Send `req` to the agent addressed by `agent`, returning its response.
    fn request(&self, agent: &str, req: &Pdu) -> SnmpResult<Pdu>;
}

/// Cumulative traffic statistics of a [`SimTransport`].
///
/// Drops are accounted per leg — a lost request never reached the agent, a
/// lost response means the agent did the work for nothing — so soak tests
/// can assert the injected loss hits both directions symmetrically.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransportStats {
    /// Request datagrams sent.
    pub requests: u64,
    /// Response datagrams received.
    pub responses: u64,
    /// Total request bytes.
    pub request_bytes: u64,
    /// Total response bytes.
    pub response_bytes: u64,
    /// Request-leg datagrams lost (drop rolled before reaching the agent).
    pub request_drops: u64,
    /// Response-leg datagrams lost (agent answered; the reply was dropped
    /// or delayed past the deadline).
    pub response_drops: u64,
    /// Requests dropped by agents for community mismatch.
    pub auth_failures: u64,
}

impl TransportStats {
    /// Total datagrams lost on either leg.
    pub fn drops(&self) -> u64 {
        self.request_drops + self.response_drops
    }
}

/// A clock the transport consults to place datagrams in simulated time
/// (drives scripted fault windows).
pub type TransportClock = Box<dyn Fn() -> SimTime + Send>;

/// In-process datagram transport connecting managers to registered agents.
pub struct SimTransport {
    agents: Mutex<HashMap<String, Agent>>,
    stats: Mutex<TransportStats>,
    loss: Mutex<Option<LossModel>>,
    clock: Mutex<Option<TransportClock>>,
    faults: Mutex<Option<Arc<FaultDirector>>>,
}

struct LossModel {
    probability: f64,
    rng: StdRng,
}

impl Default for SimTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl SimTransport {
    /// Empty transport.
    pub fn new() -> SimTransport {
        SimTransport {
            agents: Mutex::new(HashMap::new()),
            stats: Mutex::new(TransportStats::default()),
            loss: Mutex::new(None),
            clock: Mutex::new(None),
            faults: Mutex::new(None),
        }
    }

    /// Register an agent under its name.
    pub fn register(&self, agent: Agent) {
        self.agents.lock().insert(agent.name().to_string(), agent);
    }

    /// Names of all registered agents, sorted.
    pub fn agent_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.agents.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// Enable random datagram loss with the given probability.
    pub fn set_loss(&self, probability: f64, seed: u64) {
        assert!((0.0..1.0).contains(&probability), "loss probability {probability}");
        // `<=` rather than float `==`: any non-positive probability means
        // "loss disabled" (audited by remos-audit's float-eq rule).
        *self.loss.lock() = if probability <= 0.0 {
            None
        } else {
            Some(LossModel { probability, rng: StdRng::seed_from_u64(seed) })
        };
    }

    /// Install a simulated-time clock; scripted fault windows are evaluated
    /// against it. Without a clock, faults see `SimTime::ZERO`.
    pub fn set_clock(&self, clock: TransportClock) {
        *self.clock.lock() = Some(clock);
    }

    /// Attach a fault director scripting per-agent crash/freeze/flaky
    /// behavior.
    pub fn set_fault_director(&self, director: Arc<FaultDirector>) {
        *self.faults.lock() = Some(director);
    }

    /// Snapshot of the traffic statistics.
    pub fn stats(&self) -> TransportStats {
        *self.stats.lock()
    }

    /// Reset traffic statistics.
    pub fn reset_stats(&self) {
        *self.stats.lock() = TransportStats::default();
    }

    fn now(&self) -> SimTime {
        self.clock.lock().as_ref().map(|f| f()).unwrap_or(SimTime::ZERO)
    }

    fn roll_drop(&self) -> bool {
        let mut guard = self.loss.lock();
        match guard.as_mut() {
            Some(m) => m.rng.gen_bool(m.probability),
            None => false,
        }
    }

    fn fault_drops_request(&self, agent: &str, now: SimTime) -> bool {
        self.faults.lock().as_ref().is_some_and(|d| d.drop_request(agent, now))
    }

    fn fault_drops_response(&self, agent: &str, now: SimTime) -> bool {
        self.faults.lock().as_ref().is_some_and(|d| d.drop_response(agent, now))
    }
}

impl Transport for SimTransport {
    fn request(&self, agent: &str, req: &Pdu) -> SnmpResult<Pdu> {
        let now = self.now();
        // Encode request ("send the datagram").
        let wire = codec::encode(req);
        {
            let mut s = self.stats.lock();
            s.requests += 1;
            s.request_bytes += wire.len() as u64;
        }
        if self.roll_drop() || self.fault_drops_request(agent, now) {
            self.stats.lock().request_drops += 1;
            return Err(SnmpError::Timeout);
        }
        // Agent side: decode, authenticate, answer.
        let agents = self.agents.lock();
        let a = agents
            .get(agent)
            .ok_or_else(|| SnmpError::UnknownAgent(agent.to_string()))?;
        let decoded = codec::decode(wire)?;
        let Some(resp) = a.handle(&decoded) else {
            self.stats.lock().auth_failures += 1;
            return Err(SnmpError::BadCommunity);
        };
        drop(agents);
        // Encode/decode the response path.
        let wire = codec::encode(&resp);
        if self.roll_drop() || self.fault_drops_response(agent, now) {
            self.stats.lock().response_drops += 1;
            return Err(SnmpError::Timeout);
        }
        let resp = codec::decode(wire.clone())?;
        {
            let mut s = self.stats.lock();
            s.responses += 1;
            s.response_bytes += wire.len() as u64;
        }
        if resp.request_id != req.request_id {
            return Err(SnmpError::ProtocolMismatch(format!(
                "request id {} != {}",
                resp.request_id, req.request_id
            )));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::StaticMib;
    use crate::fault::FaultPlan;
    use crate::mib::{Mib, SERVICES_HOST};
    use crate::oid::well_known;
    use crate::value::Value;
    use remos_net::SimDuration;

    fn transport() -> SimTransport {
        let t = SimTransport::new();
        let mut m = Mib::new();
        m.set_system_group("m-1", "alpha host", 0, SERVICES_HOST);
        t.register(Agent::new("m-1", "public", Box::new(StaticMib(m))));
        t
    }

    #[test]
    fn request_response_over_wire() {
        let t = transport();
        let req = Pdu::get("public", 9, vec![well_known::sys_name()]);
        let resp = t.request("m-1", &req).unwrap();
        assert_eq!(resp.bindings[0].value, Value::text("m-1"));
        let s = t.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.responses, 1);
        assert!(s.request_bytes > 0 && s.response_bytes > 0);
    }

    #[test]
    fn unknown_agent() {
        let t = transport();
        let req = Pdu::get("public", 1, vec![]);
        assert!(matches!(
            t.request("nope", &req),
            Err(SnmpError::UnknownAgent(_))
        ));
    }

    #[test]
    fn community_mismatch() {
        let t = transport();
        let req = Pdu::get("private", 1, vec![well_known::sys_name()]);
        assert!(matches!(t.request("m-1", &req), Err(SnmpError::BadCommunity)));
        assert_eq!(t.stats().auth_failures, 1);
    }

    #[test]
    fn loss_injection_times_out_sometimes() {
        let t = transport();
        t.set_loss(0.5, 123);
        let mut ok = 0;
        let mut lost = 0;
        for i in 0..100 {
            let req = Pdu::get("public", i, vec![well_known::sys_name()]);
            match t.request("m-1", &req) {
                Ok(_) => ok += 1,
                Err(SnmpError::Timeout) => lost += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(ok > 10 && lost > 10, "ok={ok} lost={lost}");
        assert_eq!(t.stats().drops(), lost);
        t.set_loss(0.0, 0);
        let req = Pdu::get("public", 999, vec![well_known::sys_name()]);
        assert!(t.request("m-1", &req).is_ok());
    }

    #[test]
    fn loss_hits_both_legs_symmetrically() {
        let t = transport();
        t.set_loss(0.3, 7);
        for i in 0..4000 {
            let req = Pdu::get("public", i, vec![well_known::sys_name()]);
            let _ = t.request("m-1", &req);
        }
        let s = t.stats();
        let req_rate = s.request_drops as f64 / s.requests as f64;
        // Responses are only attempted when the request leg survived.
        let attempts = s.requests - s.request_drops;
        let resp_rate = s.response_drops as f64 / attempts as f64;
        assert!((req_rate - 0.3).abs() < 0.05, "request-leg rate {req_rate}");
        assert!((resp_rate - 0.3).abs() < 0.05, "response-leg rate {resp_rate}");
        assert_eq!(s.drops(), s.request_drops + s.response_drops);
    }

    #[test]
    fn stats_reset() {
        let t = transport();
        let req = Pdu::get("public", 1, vec![well_known::sys_name()]);
        t.request("m-1", &req).unwrap();
        t.reset_stats();
        assert_eq!(t.stats(), TransportStats::default());
    }

    fn manual_clock(t: &SimTransport) -> Arc<Mutex<SimTime>> {
        let clock = Arc::new(Mutex::new(SimTime::ZERO));
        let c = Arc::clone(&clock);
        t.set_clock(Box::new(move || *c.lock()));
        clock
    }

    #[test]
    fn crashed_agent_unreachable_then_back() {
        let t = transport();
        let clock = manual_clock(&t);
        let d = FaultDirector::new();
        d.set_plan(
            "m-1",
            FaultPlan::new().crash(SimTime::from_secs(1), SimDuration::from_secs(2)),
            5,
        );
        t.set_fault_director(Arc::clone(&d));
        let req = |i| Pdu::get("public", i, vec![well_known::sys_name()]);
        assert!(t.request("m-1", &req(1)).is_ok());
        *clock.lock() = SimTime::from_secs_f64(1.5);
        assert!(matches!(t.request("m-1", &req(2)), Err(SnmpError::Timeout)));
        assert_eq!(t.stats().request_drops, 1);
        assert_eq!(t.stats().response_drops, 0);
        *clock.lock() = SimTime::from_secs_f64(3.5);
        assert!(t.request("m-1", &req(3)).is_ok());
    }

    #[test]
    fn frozen_agent_drops_only_the_response_leg() {
        let t = transport();
        let clock = manual_clock(&t);
        let d = FaultDirector::new();
        d.set_plan(
            "m-1",
            FaultPlan::new().freeze(SimTime::from_secs(1), SimTime::from_secs(2)),
            5,
        );
        t.set_fault_director(d);
        *clock.lock() = SimTime::from_secs_f64(1.5);
        let req = Pdu::get("public", 1, vec![well_known::sys_name()]);
        assert!(matches!(t.request("m-1", &req), Err(SnmpError::Timeout)));
        let s = t.stats();
        // The request was accepted (the agent did the work)…
        assert_eq!(s.request_drops, 0);
        // …but the answer never arrived.
        assert_eq!(s.response_drops, 1);
    }
}
