//! The management information base: an ordered OID → value map plus
//! builders for the groups the Remos collector consumes.

use crate::oid::{well_known, Oid};
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// `sysServices` value advertising a layer-3 forwarding device.
pub const SERVICES_ROUTER: i64 = 4;
/// `sysServices` value advertising an application host.
pub const SERVICES_HOST: i64 = 72;

/// An ordered MIB view.
#[derive(Clone, Debug, Default)]
pub struct Mib {
    entries: BTreeMap<Oid, Value>,
}

impl Mib {
    /// Empty MIB.
    pub fn new() -> Mib {
        Mib::default()
    }

    /// Insert or replace an instance.
    pub fn set(&mut self, oid: Oid, value: Value) {
        self.entries.insert(oid, value);
    }

    /// Exact-instance lookup (GET semantics).
    pub fn get(&self, oid: &Oid) -> Option<&Value> {
        self.entries.get(oid)
    }

    /// First instance strictly after `oid` (GETNEXT semantics).
    pub fn next(&self, oid: &Oid) -> Option<(&Oid, &Value)> {
        self.entries
            .range((Bound::Excluded(oid.clone()), Bound::Unbounded))
            .next()
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate instances in OID order.
    pub fn iter(&self) -> impl Iterator<Item = (&Oid, &Value)> {
        self.entries.iter()
    }

    /// Populate the `system` group.
    ///
    /// `services` should be [`SERVICES_ROUTER`] or [`SERVICES_HOST`]; the
    /// collector uses it to classify nodes.
    pub fn set_system_group(&mut self, name: &str, descr: &str, uptime_ticks: u32, services: i64) {
        self.set(well_known::sys_descr(), Value::text(descr));
        self.set(well_known::sys_uptime(), Value::TimeTicks(uptime_ticks));
        self.set(well_known::sys_name(), Value::text(name));
        self.set(well_known::sys_services(), Value::Integer(services));
    }

    /// Add one interface row (`ifIndex` is 1-based, per MIB-II convention).
    #[allow(clippy::too_many_arguments)]
    pub fn set_interface_row(
        &mut self,
        if_index: u32,
        descr: &str,
        speed_bps: u32,
        oper_up: bool,
        in_octets: u32,
        out_octets: u32,
    ) {
        self.set(well_known::if_index().child([if_index]), Value::Integer(if_index as i64));
        self.set(well_known::if_descr().child([if_index]), Value::text(descr));
        self.set(well_known::if_speed().child([if_index]), Value::Gauge32(speed_bps));
        self.set(
            well_known::if_oper_status().child([if_index]),
            Value::Integer(if oper_up { 1 } else { 2 }),
        );
        self.set(well_known::if_in_octets().child([if_index]), Value::Counter32(in_octets));
        self.set(well_known::if_out_octets().child([if_index]), Value::Counter32(out_octets));
    }

    /// Record `ifNumber`.
    pub fn set_if_number(&mut self, n: u32) {
        self.set(well_known::if_number(), Value::Integer(n as i64));
    }

    /// Populate the host-resources objects (hosts only).
    pub fn set_host_resources(&mut self, memory_kb: i64, mflops: u32) {
        self.set(well_known::hr_memory_size(), Value::Integer(memory_kb));
        self.set(well_known::host_mflops(), Value::Gauge32(mflops));
    }

    /// Record the node's own IP address (ipAddrTable).
    pub fn set_own_address(&mut self, ip: [u8; 4]) {
        self.set(
            well_known::ip_ad_ent_addr().child(ip.map(u32::from)),
            Value::IpAddress(ip),
        );
    }

    /// Add one ipRouteTable row: traffic to `dest` leaves via interface
    /// `if_index` toward `next_hop`; `direct` marks a connected route
    /// (ipRouteType 3) vs a remote one (4).
    pub fn set_route_row(&mut self, dest: [u8; 4], if_index: u32, next_hop: [u8; 4], direct: bool) {
        let idx = dest.map(u32::from);
        self.set(well_known::ip_route_dest().child(idx), Value::IpAddress(dest));
        self.set(
            well_known::ip_route_ifindex().child(idx),
            Value::Integer(if_index as i64),
        );
        self.set(well_known::ip_route_nexthop().child(idx), Value::IpAddress(next_hop));
        self.set(
            well_known::ip_route_type().child(idx),
            Value::Integer(if direct { 3 } else { 4 }),
        );
    }

    /// Add one LLDP-style neighbor row: interface `if_index` connects to
    /// `neighbor_name`, arriving on that neighbor's `neighbor_ifindex`.
    pub fn set_neighbor_row(&mut self, if_index: u32, neighbor_name: &str, neighbor_ifindex: u32) {
        self.set(
            well_known::neighbor_name().child([if_index]),
            Value::text(neighbor_name),
        );
        self.set(
            well_known::neighbor_ifindex().child([if_index]),
            Value::Integer(neighbor_ifindex as i64),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mib {
        let mut m = Mib::new();
        m.set_system_group("aspen", "NetBSD router", 100, SERVICES_ROUTER);
        m.set_if_number(2);
        m.set_interface_row(1, "to-m-1", 100_000_000, true, 10, 20);
        m.set_interface_row(2, "to-timberline", 100_000_000, true, 30, 40);
        m.set_neighbor_row(1, "m-1", 1);
        m.set_neighbor_row(2, "timberline", 1);
        m
    }

    #[test]
    fn get_exact() {
        let m = sample();
        assert_eq!(m.get(&well_known::sys_name()), Some(&Value::text("aspen")));
        assert_eq!(
            m.get(&well_known::if_out_octets().child([2])),
            Some(&Value::Counter32(40))
        );
        assert_eq!(m.get(&Oid::new([9, 9, 9])), None);
    }

    #[test]
    fn getnext_walk_visits_everything_in_order() {
        let m = sample();
        let mut cur = Oid::root();
        let mut seen = Vec::new();
        while let Some((oid, _)) = m.next(&cur) {
            seen.push(oid.clone());
            cur = oid.clone();
        }
        assert_eq!(seen.len(), m.len());
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn getnext_within_column() {
        let m = sample();
        // Walking the ifOutOctets column yields rows 1 then 2.
        let col = well_known::if_out_octets();
        let (o1, v1) = m.next(&col).unwrap();
        assert_eq!(o1, &col.child([1]));
        assert_eq!(v1, &Value::Counter32(20));
        let (o2, v2) = m.next(o1).unwrap();
        assert_eq!(o2, &col.child([2]));
        assert_eq!(v2, &Value::Counter32(40));
        // ifOutOctets (column 16) is the highest-sorting instance in this
        // sample MIB, so the walk ends here.
        match m.next(o2) {
            None => {}
            Some((o3, _)) => assert!(!col.is_prefix_of(o3)),
        }
    }

    #[test]
    fn services_distinguish_kinds() {
        let m = sample();
        assert_eq!(
            m.get(&well_known::sys_services()),
            Some(&Value::Integer(SERVICES_ROUTER))
        );
    }

    #[test]
    fn set_replaces() {
        let mut m = sample();
        m.set(well_known::sys_name(), Value::text("renamed"));
        assert_eq!(m.get(&well_known::sys_name()), Some(&Value::text("renamed")));
    }
}
