//! Client-side manager: typed get / walk / bulk-walk over a [`Transport`].
//!
//! Lost datagrams are retried under a [`RetryPolicy`]: exponential backoff
//! with seeded full jitter, bounded by a per-request deadline budget. Only
//! timeouts are retryable — authentication failures, decode errors, and
//! agent errors surface immediately, because retrying them can never
//! succeed and only hides the fault from the caller.

use crate::error::{SnmpError, SnmpResult};
use crate::oid::Oid;
use crate::pdu::{ErrorStatus, Pdu, VarBind};
use crate::transport::Transport;
use crate::value::Value;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use remos_obs::{Counter, Obs};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cached fault-path counters (see `remos-obs`): how often requests were
/// retried, gave up on timeout, or failed hard (non-retryable).
struct ManagerMetrics {
    requests: Counter,
    retries: Counter,
    timeouts: Counter,
    hard_errors: Counter,
}

impl ManagerMetrics {
    fn new(obs: &Obs) -> ManagerMetrics {
        ManagerMetrics {
            requests: obs.counter("snmp_requests_total"),
            retries: obs.counter("snmp_retries_total"),
            timeouts: obs.counter("snmp_timeouts_total"),
            hard_errors: obs.counter("snmp_hard_errors_total"),
        }
    }
}

/// Default GETBULK repetition count.
pub const DEFAULT_MAX_REPETITIONS: u32 = 32;

/// Retry/backoff behavior of a [`Manager`].
///
/// Durations here are *virtual*: the simulated transport answers (or times
/// out) instantly, so the manager charges each timed-out attempt
/// `attempt_timeout` and each backoff its delay against `deadline` without
/// ever sleeping. A request stops retrying when its next attempt could not
/// finish inside the remaining budget.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts total).
    pub max_retries: u32,
    /// Virtual cost of one timed-out attempt.
    pub attempt_timeout: Duration,
    /// First backoff; doubles per retry (exponential).
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Total per-request budget across attempts and backoffs.
    pub deadline: Duration,
    /// Seed for the full-jitter RNG (deterministic backoff sequences).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            attempt_timeout: Duration::from_millis(200),
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            deadline: Duration::from_secs(5),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// Policy that never retries (single attempt per request).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }
}

/// Observer of the manager's request outcomes, called synchronously from
/// the retry path. Circuit breakers register one to learn about request
/// successes and exhausted-retry failures without wrapping every call
/// site; implementations must be cheap and must not call back into the
/// manager.
pub trait RetryObserver: Send + Sync {
    /// A request completed successfully (possibly after retries).
    fn on_success(&self, agent: &str);
    /// A request gave up: retries/deadline exhausted (`SnmpError::Timeout`)
    /// or a non-retryable hard error.
    fn on_failure(&self, agent: &str);
}

/// An SNMP manager bound to one transport and community.
pub struct Manager<T: Transport> {
    transport: Arc<T>,
    community: String,
    next_request_id: AtomicU32,
    /// Retry/backoff policy for lost datagrams.
    pub policy: RetryPolicy,
    jitter: Mutex<StdRng>,
    obs_metrics: ManagerMetrics,
    retry_observer: Option<Arc<dyn RetryObserver>>,
}

impl<T: Transport> Manager<T> {
    /// New manager speaking `community` with the default [`RetryPolicy`].
    pub fn new(transport: Arc<T>, community: &str) -> Self {
        Self::with_policy(transport, community, RetryPolicy::default())
    }

    /// New manager with an explicit retry policy.
    pub fn with_policy(transport: Arc<T>, community: &str, policy: RetryPolicy) -> Self {
        let jitter = Mutex::new(StdRng::seed_from_u64(policy.jitter_seed));
        Manager {
            transport,
            community: community.to_string(),
            next_request_id: AtomicU32::new(1),
            policy,
            jitter,
            obs_metrics: ManagerMetrics::new(&Obs::new()),
            retry_observer: None,
        }
    }

    /// Report fault-path counters into a shared observability handle
    /// (`snmp_requests_total`, `snmp_retries_total`, `snmp_timeouts_total`,
    /// `snmp_hard_errors_total`).
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs_metrics = ManagerMetrics::new(obs);
    }

    /// Register an observer of request outcomes (see [`RetryObserver`]).
    /// One observer at a time; registering replaces the previous one.
    pub fn set_retry_observer(&mut self, observer: Arc<dyn RetryObserver>) {
        self.retry_observer = Some(observer);
    }

    fn rid(&self) -> u32 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Full-jitter delay for retry number `attempt` (1-based): uniform in
    /// `[0, min(base * 2^(attempt-1), max_backoff)]`.
    fn backoff_delay(&self, attempt: u32) -> Duration {
        let cap = self
            .policy
            .base_backoff
            .saturating_mul(2u32.saturating_pow(attempt.saturating_sub(1)))
            .min(self.policy.max_backoff);
        if cap.is_zero() {
            return Duration::ZERO;
        }
        cap.mul_f64(self.jitter.lock().gen::<f64>())
    }

    /// Notify the registered observer (if any) of a request outcome.
    fn observe_outcome(&self, agent: &str, ok: bool) {
        if let Some(obs) = &self.retry_observer {
            if ok {
                obs.on_success(agent);
            } else {
                obs.on_failure(agent);
            }
        }
    }

    fn send(&self, agent: &str, req: &Pdu) -> SnmpResult<Pdu> {
        let p = &self.policy;
        self.obs_metrics.requests.inc();
        let mut spent = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            match self.transport.request(agent, req) {
                Ok(resp) => {
                    if resp.error_status != ErrorStatus::NoError {
                        self.obs_metrics.hard_errors.inc();
                        self.observe_outcome(agent, false);
                        return Err(SnmpError::AgentError(resp.error_status));
                    }
                    self.observe_outcome(agent, true);
                    return Ok(resp);
                }
                Err(SnmpError::Timeout) => {
                    spent = spent.saturating_add(p.attempt_timeout);
                    attempt += 1;
                    if attempt > p.max_retries {
                        self.obs_metrics.timeouts.inc();
                        self.observe_outcome(agent, false);
                        return Err(SnmpError::Timeout);
                    }
                    let delay = self.backoff_delay(attempt);
                    // Would the next attempt blow the deadline budget?
                    if spent.saturating_add(delay).saturating_add(p.attempt_timeout) > p.deadline {
                        self.obs_metrics.timeouts.inc();
                        self.observe_outcome(agent, false);
                        return Err(SnmpError::Timeout);
                    }
                    spent = spent.saturating_add(delay);
                    self.obs_metrics.retries.inc();
                }
                // Anything else is non-retryable: an agent that rejected the
                // community or returned garbage will do so again.
                Err(e) => {
                    self.obs_metrics.hard_errors.inc();
                    self.observe_outcome(agent, false);
                    return Err(e);
                }
            }
        }
    }

    /// GET a single instance.
    pub fn get(&self, agent: &str, oid: &Oid) -> SnmpResult<Value> {
        let req = Pdu::get(&self.community, self.rid(), vec![oid.clone()]);
        let resp = self.send(agent, &req)?;
        resp.bindings
            .into_iter()
            .next()
            .map(|b| b.value)
            .ok_or_else(|| SnmpError::ProtocolMismatch("empty response".into()))
    }

    /// GET several instances in one request.
    pub fn get_many(&self, agent: &str, oids: &[Oid]) -> SnmpResult<Vec<Value>> {
        let req = Pdu::get(&self.community, self.rid(), oids.to_vec());
        let resp = self.send(agent, &req)?;
        if resp.bindings.len() != oids.len() {
            return Err(SnmpError::ProtocolMismatch(format!(
                "asked {} instances, got {}",
                oids.len(),
                resp.bindings.len()
            )));
        }
        Ok(resp.bindings.into_iter().map(|b| b.value).collect())
    }

    /// Walk an entire subtree with repeated GETNEXT.
    pub fn walk(&self, agent: &str, root: &Oid) -> SnmpResult<Vec<VarBind>> {
        let mut out = Vec::new();
        let mut cur = root.clone();
        loop {
            let req = Pdu::get_next(&self.community, self.rid(), vec![cur.clone()]);
            let resp = self.send(agent, &req)?;
            let Some(b) = resp.bindings.into_iter().next() else { break };
            if b.value == Value::EndOfMibView || !root.is_prefix_of(&b.oid) {
                break;
            }
            if b.oid <= cur {
                return Err(SnmpError::ProtocolMismatch("agent did not advance".into()));
            }
            cur = b.oid.clone();
            out.push(b);
        }
        Ok(out)
    }

    /// Walk an entire subtree with GETBULK (fewer round trips).
    pub fn bulk_walk(&self, agent: &str, root: &Oid) -> SnmpResult<Vec<VarBind>> {
        let mut out: Vec<VarBind> = Vec::new();
        let mut cur = root.clone();
        loop {
            let req = Pdu::get_bulk(
                &self.community,
                self.rid(),
                vec![cur.clone()],
                DEFAULT_MAX_REPETITIONS,
            );
            let resp = self.send(agent, &req)?;
            if resp.bindings.is_empty() {
                break;
            }
            let mut done = false;
            for b in resp.bindings {
                if b.value == Value::EndOfMibView || !root.is_prefix_of(&b.oid) {
                    done = true;
                    break;
                }
                if b.oid <= cur {
                    return Err(SnmpError::ProtocolMismatch("agent did not advance".into()));
                }
                cur = b.oid.clone();
                out.push(b);
            }
            if done {
                break;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, StaticMib};
    use crate::fault::{FaultDirector, FaultPlan};
    use crate::mib::{Mib, SERVICES_ROUTER};
    use crate::oid::well_known;
    use crate::transport::SimTransport;
    use remos_net::{SimDuration, SimTime};

    fn setup() -> (Manager<SimTransport>, Arc<SimTransport>) {
        let t = Arc::new(SimTransport::new());
        let mut m = Mib::new();
        m.set_system_group("aspen", "router", 0, SERVICES_ROUTER);
        m.set_if_number(3);
        for i in 1..=3 {
            m.set_interface_row(i, &format!("if{i}"), 100_000_000, true, i * 10, i * 20);
        }
        t.register(Agent::new("aspen", "public", Box::new(StaticMib(m))));
        (Manager::new(Arc::clone(&t), "public"), t)
    }

    #[test]
    fn get_and_get_many() {
        let (mgr, _) = setup();
        let v = mgr.get("aspen", &well_known::sys_name()).unwrap();
        assert_eq!(v, Value::text("aspen"));
        let vs = mgr
            .get_many(
                "aspen",
                &[well_known::if_in_octets().child([1]), well_known::if_in_octets().child([2])],
            )
            .unwrap();
        assert_eq!(vs, vec![Value::Counter32(10), Value::Counter32(20)]);
    }

    #[test]
    fn walk_and_bulk_walk_agree() {
        let (mgr, _) = setup();
        let a = mgr.walk("aspen", &well_known::interfaces()).unwrap();
        let b = mgr.bulk_walk("aspen", &well_known::interfaces()).unwrap();
        assert_eq!(a, b);
        // ifNumber + 6 columns x 3 rows.
        assert_eq!(a.len(), 1 + 6 * 3);
    }

    #[test]
    fn walk_restricts_to_subtree() {
        let (mgr, _) = setup();
        let rows = mgr.walk("aspen", &well_known::if_speed()).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|b| well_known::if_speed().is_prefix_of(&b.oid)));
    }

    #[test]
    fn walk_of_missing_subtree_is_empty() {
        let (mgr, _) = setup();
        let rows = mgr.walk("aspen", &Oid::new([9, 9, 9])).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn retries_survive_loss() {
        let (mgr, t) = setup();
        t.set_loss(0.2, 99);
        // Each attempt rolls the drop dice twice (request + response):
        // p(success/attempt) = 0.8^2 = 0.64, so with 3 retries
        // p(fail/get) = 0.36^4 ≈ 1.7% — expect ~1 failure in 50 gets.
        // (The default policy's deadline never truncates 4 attempts: worst
        // case costs 4×200 ms + 50+100+200 ms backoff ≈ 1.15 s < 5 s.)
        let mut failures = 0;
        for _ in 0..50 {
            if mgr.get("aspen", &well_known::sys_name()).is_err() {
                failures += 1;
            }
        }
        assert!(failures <= 5, "excessive failures: {failures}");
    }

    #[test]
    fn non_timeout_errors_are_not_retried() {
        let (_, t) = setup();
        let mgr = Manager::new(Arc::clone(&t), "wrong-community");
        t.reset_stats();
        let err = mgr.get("aspen", &well_known::sys_name()).unwrap_err();
        assert!(matches!(err, SnmpError::BadCommunity));
        // Exactly one request on the wire — no blind retry of a fault that
        // can never succeed.
        assert_eq!(t.stats().requests, 1);
        t.reset_stats();
        let err = mgr.get("no-such-agent", &well_known::sys_name()).unwrap_err();
        assert!(matches!(err, SnmpError::UnknownAgent(_)));
        assert_eq!(t.stats().requests, 1);
    }

    #[test]
    fn deadline_budget_truncates_retries() {
        let (_, t) = setup();
        // Agent down for the whole run (no clock installed: now is ZERO).
        let d = FaultDirector::new();
        d.set_plan(
            "aspen",
            FaultPlan::new().crash(SimTime::ZERO, SimDuration::from_secs(3600)),
            1,
        );
        t.set_fault_director(d);
        // A deadline of 300 ms fits exactly one 200 ms attempt: the first
        // retry (200 ms spent + backoff + 200 ms next attempt) would exceed
        // it, so the manager gives up after a single datagram.
        let policy = RetryPolicy {
            max_retries: 10,
            attempt_timeout: Duration::from_millis(200),
            deadline: Duration::from_millis(300),
            ..RetryPolicy::default()
        };
        let mgr = Manager::with_policy(Arc::clone(&t), "public", policy);
        t.reset_stats();
        let err = mgr.get("aspen", &well_known::sys_name()).unwrap_err();
        assert!(matches!(err, SnmpError::Timeout));
        assert_eq!(t.stats().requests, 1);
    }

    #[test]
    fn max_retries_bounds_attempts() {
        let (_, t) = setup();
        let d = FaultDirector::new();
        d.set_plan(
            "aspen",
            FaultPlan::new().crash(SimTime::ZERO, SimDuration::from_secs(3600)),
            1,
        );
        t.set_fault_director(d);
        let mgr = Manager::with_policy(
            Arc::clone(&t),
            "public",
            RetryPolicy { max_retries: 2, ..RetryPolicy::default() },
        );
        t.reset_stats();
        assert!(mgr.get("aspen", &well_known::sys_name()).is_err());
        // One initial attempt + two retries.
        assert_eq!(t.stats().requests, 3);
    }

    #[test]
    fn backoff_grows_exponentially_under_the_cap() {
        let (mgr, _) = setup();
        // Full jitter draws uniformly in [0, cap]; caps double per retry
        // until max_backoff clamps them.
        for _ in 0..100 {
            assert!(mgr.backoff_delay(1) <= mgr.policy.base_backoff);
            assert!(mgr.backoff_delay(3) <= mgr.policy.base_backoff * 4);
            assert!(mgr.backoff_delay(30) <= mgr.policy.max_backoff);
        }
    }

    #[test]
    fn bulk_walk_is_cheaper_than_walk() {
        let (mgr, t) = setup();
        t.reset_stats();
        mgr.walk("aspen", &well_known::interfaces()).unwrap();
        let walk_msgs = t.stats().requests;
        t.reset_stats();
        mgr.bulk_walk("aspen", &well_known::interfaces()).unwrap();
        let bulk_msgs = t.stats().requests;
        assert!(bulk_msgs < walk_msgs, "bulk {bulk_msgs} vs walk {walk_msgs}");
    }
}
