//! Client-side manager: typed get / walk / bulk-walk over a [`Transport`].

use crate::error::{SnmpError, SnmpResult};
use crate::oid::Oid;
use crate::pdu::{ErrorStatus, Pdu, VarBind};
use crate::transport::Transport;
use crate::value::Value;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Default GETBULK repetition count.
pub const DEFAULT_MAX_REPETITIONS: u32 = 32;

/// An SNMP manager bound to one transport and community.
pub struct Manager<T: Transport> {
    transport: Arc<T>,
    community: String,
    next_request_id: AtomicU32,
    /// Retries per request on timeout (datagram loss).
    pub retries: u32,
}

impl<T: Transport> Manager<T> {
    /// New manager speaking `community`.
    pub fn new(transport: Arc<T>, community: &str) -> Self {
        Manager {
            transport,
            community: community.to_string(),
            next_request_id: AtomicU32::new(1),
            retries: 3,
        }
    }

    fn rid(&self) -> u32 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    fn send(&self, agent: &str, req: &Pdu) -> SnmpResult<Pdu> {
        let mut last = SnmpError::Timeout;
        for _ in 0..=self.retries {
            match self.transport.request(agent, req) {
                Ok(resp) => {
                    if resp.error_status != ErrorStatus::NoError {
                        return Err(SnmpError::AgentError(resp.error_status));
                    }
                    return Ok(resp);
                }
                Err(SnmpError::Timeout) => last = SnmpError::Timeout,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// GET a single instance.
    pub fn get(&self, agent: &str, oid: &Oid) -> SnmpResult<Value> {
        let req = Pdu::get(&self.community, self.rid(), vec![oid.clone()]);
        let resp = self.send(agent, &req)?;
        resp.bindings
            .into_iter()
            .next()
            .map(|b| b.value)
            .ok_or_else(|| SnmpError::ProtocolMismatch("empty response".into()))
    }

    /// GET several instances in one request.
    pub fn get_many(&self, agent: &str, oids: &[Oid]) -> SnmpResult<Vec<Value>> {
        let req = Pdu::get(&self.community, self.rid(), oids.to_vec());
        let resp = self.send(agent, &req)?;
        if resp.bindings.len() != oids.len() {
            return Err(SnmpError::ProtocolMismatch(format!(
                "asked {} instances, got {}",
                oids.len(),
                resp.bindings.len()
            )));
        }
        Ok(resp.bindings.into_iter().map(|b| b.value).collect())
    }

    /// Walk an entire subtree with repeated GETNEXT.
    pub fn walk(&self, agent: &str, root: &Oid) -> SnmpResult<Vec<VarBind>> {
        let mut out = Vec::new();
        let mut cur = root.clone();
        loop {
            let req = Pdu::get_next(&self.community, self.rid(), vec![cur.clone()]);
            let resp = self.send(agent, &req)?;
            let Some(b) = resp.bindings.into_iter().next() else { break };
            if b.value == Value::EndOfMibView || !root.is_prefix_of(&b.oid) {
                break;
            }
            if b.oid <= cur {
                return Err(SnmpError::ProtocolMismatch("agent did not advance".into()));
            }
            cur = b.oid.clone();
            out.push(b);
        }
        Ok(out)
    }

    /// Walk an entire subtree with GETBULK (fewer round trips).
    pub fn bulk_walk(&self, agent: &str, root: &Oid) -> SnmpResult<Vec<VarBind>> {
        let mut out: Vec<VarBind> = Vec::new();
        let mut cur = root.clone();
        loop {
            let req = Pdu::get_bulk(
                &self.community,
                self.rid(),
                vec![cur.clone()],
                DEFAULT_MAX_REPETITIONS,
            );
            let resp = self.send(agent, &req)?;
            if resp.bindings.is_empty() {
                break;
            }
            let mut done = false;
            for b in resp.bindings {
                if b.value == Value::EndOfMibView || !root.is_prefix_of(&b.oid) {
                    done = true;
                    break;
                }
                if b.oid <= cur {
                    return Err(SnmpError::ProtocolMismatch("agent did not advance".into()));
                }
                cur = b.oid.clone();
                out.push(b);
            }
            if done {
                break;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, StaticMib};
    use crate::mib::{Mib, SERVICES_ROUTER};
    use crate::oid::well_known;
    use crate::transport::SimTransport;

    fn setup() -> (Manager<SimTransport>, Arc<SimTransport>) {
        let t = Arc::new(SimTransport::new());
        let mut m = Mib::new();
        m.set_system_group("aspen", "router", 0, SERVICES_ROUTER);
        m.set_if_number(3);
        for i in 1..=3 {
            m.set_interface_row(i, &format!("if{i}"), 100_000_000, true, i * 10, i * 20);
        }
        t.register(Agent::new("aspen", "public", Box::new(StaticMib(m))));
        (Manager::new(Arc::clone(&t), "public"), t)
    }

    #[test]
    fn get_and_get_many() {
        let (mgr, _) = setup();
        let v = mgr.get("aspen", &well_known::sys_name()).unwrap();
        assert_eq!(v, Value::text("aspen"));
        let vs = mgr
            .get_many(
                "aspen",
                &[well_known::if_in_octets().child([1]), well_known::if_in_octets().child([2])],
            )
            .unwrap();
        assert_eq!(vs, vec![Value::Counter32(10), Value::Counter32(20)]);
    }

    #[test]
    fn walk_and_bulk_walk_agree() {
        let (mgr, _) = setup();
        let a = mgr.walk("aspen", &well_known::interfaces()).unwrap();
        let b = mgr.bulk_walk("aspen", &well_known::interfaces()).unwrap();
        assert_eq!(a, b);
        // ifNumber + 6 columns x 3 rows.
        assert_eq!(a.len(), 1 + 6 * 3);
    }

    #[test]
    fn walk_restricts_to_subtree() {
        let (mgr, _) = setup();
        let rows = mgr.walk("aspen", &well_known::if_speed()).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|b| well_known::if_speed().is_prefix_of(&b.oid)));
    }

    #[test]
    fn walk_of_missing_subtree_is_empty() {
        let (mgr, _) = setup();
        let rows = mgr.walk("aspen", &Oid::new([9, 9, 9])).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn retries_survive_loss() {
        let (mgr, t) = setup();
        t.set_loss(0.2, 99);
        // Each attempt rolls the drop dice twice (request + response):
        // p(success/attempt) = 0.8^2 = 0.64, so with 3 retries
        // p(fail/get) = 0.36^4 ≈ 1.7% — expect ~1 failure in 50 gets.
        let mut failures = 0;
        for _ in 0..50 {
            if mgr.get("aspen", &well_known::sys_name()).is_err() {
                failures += 1;
            }
        }
        assert!(failures <= 5, "excessive failures: {failures}");
    }

    #[test]
    fn bulk_walk_is_cheaper_than_walk() {
        let (mgr, t) = setup();
        t.reset_stats();
        mgr.walk("aspen", &well_known::interfaces()).unwrap();
        let walk_msgs = t.stats().requests;
        t.reset_stats();
        mgr.bulk_walk("aspen", &well_known::interfaces()).unwrap();
        let bulk_msgs = t.stats().requests;
        assert!(bulk_msgs < walk_msgs, "bulk {bulk_msgs} vs walk {walk_msgs}");
    }
}
