//! Protocol data units (the SNMPv2c operations of RFC 1905 that the Remos
//! collector needs).

use crate::oid::Oid;
use crate::value::Value;

/// PDU operation type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PduType {
    /// GetRequest
    Get,
    /// GetNextRequest
    GetNext,
    /// GetBulkRequest (non-repeaters always 0 in this subset).
    GetBulk,
    /// Response
    Response,
    /// SNMPv2-Trap — unsolicited agent → manager notification.
    TrapV2,
}

impl PduType {
    /// Wire tag.
    pub fn code(self) -> u8 {
        match self {
            PduType::Get => 0xa0,
            PduType::GetNext => 0xa1,
            PduType::GetBulk => 0xa5,
            PduType::Response => 0xa2,
            PduType::TrapV2 => 0xa7,
        }
    }

    /// Inverse of [`PduType::code`].
    pub fn from_code(c: u8) -> Option<PduType> {
        match c {
            0xa0 => Some(PduType::Get),
            0xa1 => Some(PduType::GetNext),
            0xa5 => Some(PduType::GetBulk),
            0xa2 => Some(PduType::Response),
            0xa7 => Some(PduType::TrapV2),
            _ => None,
        }
    }
}

/// RFC 1905 error-status codes (subset).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ErrorStatus {
    /// Success.
    #[default]
    NoError,
    /// Response would exceed a message size limit.
    TooBig,
    /// General failure.
    GenErr,
    /// Authorization failure.
    NoAccess,
}

impl ErrorStatus {
    /// Wire value.
    pub fn code(self) -> u8 {
        match self {
            ErrorStatus::NoError => 0,
            ErrorStatus::TooBig => 1,
            ErrorStatus::GenErr => 5,
            ErrorStatus::NoAccess => 6,
        }
    }

    /// Inverse of [`ErrorStatus::code`].
    pub fn from_code(c: u8) -> Option<ErrorStatus> {
        match c {
            0 => Some(ErrorStatus::NoError),
            1 => Some(ErrorStatus::TooBig),
            5 => Some(ErrorStatus::GenErr),
            6 => Some(ErrorStatus::NoAccess),
            _ => None,
        }
    }
}

/// One OID/value pair.
#[derive(Clone, PartialEq, Debug)]
pub struct VarBind {
    /// The object instance.
    pub oid: Oid,
    /// Its value (Null in requests).
    pub value: Value,
}

impl VarBind {
    /// A request binding (Null value).
    pub fn request(oid: Oid) -> VarBind {
        VarBind { oid, value: Value::Null }
    }
}

/// A complete message: community + PDU.
#[derive(Clone, PartialEq, Debug)]
pub struct Pdu {
    /// Community string (SNMPv2c "authentication").
    pub community: String,
    /// Operation.
    pub pdu_type: PduType,
    /// Request identifier, echoed in the response.
    pub request_id: u32,
    /// Error status (responses only).
    pub error_status: ErrorStatus,
    /// Index of the binding that caused the error, 0 if none.
    pub error_index: u32,
    /// For GETBULK: max repetitions.
    pub max_repetitions: u32,
    /// The variable bindings.
    pub bindings: Vec<VarBind>,
}

impl Pdu {
    /// Build a GET request.
    pub fn get(community: &str, request_id: u32, oids: Vec<Oid>) -> Pdu {
        Pdu {
            community: community.to_string(),
            pdu_type: PduType::Get,
            request_id,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            max_repetitions: 0,
            bindings: oids.into_iter().map(VarBind::request).collect(),
        }
    }

    /// Build a GETNEXT request.
    pub fn get_next(community: &str, request_id: u32, oids: Vec<Oid>) -> Pdu {
        Pdu { pdu_type: PduType::GetNext, ..Pdu::get(community, request_id, oids) }
    }

    /// Build a GETBULK request.
    pub fn get_bulk(community: &str, request_id: u32, oids: Vec<Oid>, max_rep: u32) -> Pdu {
        Pdu {
            pdu_type: PduType::GetBulk,
            max_repetitions: max_rep,
            ..Pdu::get(community, request_id, oids)
        }
    }

    /// Build a response to `req` with the given bindings.
    pub fn response(req: &Pdu, bindings: Vec<VarBind>) -> Pdu {
        Pdu {
            community: req.community.clone(),
            pdu_type: PduType::Response,
            request_id: req.request_id,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            max_repetitions: 0,
            bindings,
        }
    }

    /// Build an error response to `req`.
    pub fn error_response(req: &Pdu, status: ErrorStatus, index: u32) -> Pdu {
        Pdu {
            community: req.community.clone(),
            pdu_type: PduType::Response,
            request_id: req.request_id,
            error_status: status,
            error_index: index,
            max_repetitions: 0,
            bindings: req.bindings.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            PduType::Get,
            PduType::GetNext,
            PduType::GetBulk,
            PduType::Response,
            PduType::TrapV2,
        ] {
            assert_eq!(PduType::from_code(t.code()), Some(t));
        }
        assert_eq!(PduType::from_code(0xff), None);
    }

    #[test]
    fn error_codes_roundtrip() {
        for e in [
            ErrorStatus::NoError,
            ErrorStatus::TooBig,
            ErrorStatus::GenErr,
            ErrorStatus::NoAccess,
        ] {
            assert_eq!(ErrorStatus::from_code(e.code()), Some(e));
        }
        assert_eq!(ErrorStatus::from_code(99), None);
    }

    #[test]
    fn builders() {
        let o: Oid = "1.3.6.1.2.1.1.5.0".parse().unwrap();
        let req = Pdu::get("public", 42, vec![o.clone()]);
        assert_eq!(req.bindings[0].value, Value::Null);
        let resp = Pdu::response(&req, vec![VarBind { oid: o, value: Value::text("aspen") }]);
        assert_eq!(resp.request_id, 42);
        assert_eq!(resp.pdu_type, PduType::Response);
        let err = Pdu::error_response(&req, ErrorStatus::GenErr, 1);
        assert_eq!(err.error_status, ErrorStatus::GenErr);
        assert_eq!(err.error_index, 1);
    }
}
