//! SMI value types.

use crate::oid::Oid;
use std::fmt;

/// The subset of SNMPv2 SMI types the Remos collector consumes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// INTEGER
    Integer(i64),
    /// OCTET STRING (also used for DisplayString).
    OctetString(Vec<u8>),
    /// OBJECT IDENTIFIER
    ObjectId(Oid),
    /// Counter32 — monotonically increasing, wraps at 2^32.
    Counter32(u32),
    /// Gauge32 — non-wrapping unsigned value (e.g. ifSpeed).
    Gauge32(u32),
    /// TimeTicks — hundredths of a second.
    TimeTicks(u32),
    /// IpAddress — a 4-octet IPv4 address.
    IpAddress([u8; 4]),
    /// Null placeholder (requests).
    Null,
    /// GETNEXT ran past the end of the MIB view (SNMPv2 exception).
    EndOfMibView,
    /// GET on a missing instance (SNMPv2 exception).
    NoSuchObject,
}

impl Value {
    /// Build an OctetString from UTF-8 text.
    pub fn text(s: &str) -> Value {
        Value::OctetString(s.as_bytes().to_vec())
    }

    /// Borrow as text if this is an OctetString holding valid UTF-8.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::OctetString(b) => std::str::from_utf8(b).ok(),
            _ => None,
        }
    }

    /// Numeric view of integer-like variants.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Integer(i) => u64::try_from(*i).ok(),
            Value::Counter32(c) => Some(*c as u64),
            Value::Gauge32(g) => Some(*g as u64),
            Value::TimeTicks(t) => Some(*t as u64),
            _ => None,
        }
    }

    /// Counter32 view.
    pub fn as_counter32(&self) -> Option<u32> {
        match self {
            Value::Counter32(c) => Some(*c),
            _ => None,
        }
    }

    /// IpAddress view.
    pub fn as_ip(&self) -> Option<[u8; 4]> {
        match self {
            Value::IpAddress(ip) => Some(*ip),
            _ => None,
        }
    }

    /// True for the SNMPv2 exception markers.
    pub fn is_exception(&self) -> bool {
        matches!(self, Value::EndOfMibView | Value::NoSuchObject)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Integer(i) => write!(f, "INTEGER: {i}"),
            Value::OctetString(b) => match std::str::from_utf8(b) {
                Ok(s) => write!(f, "STRING: {s:?}"),
                Err(_) => write!(f, "HEX: {b:02x?}"),
            },
            Value::ObjectId(o) => write!(f, "OID: {o}"),
            Value::Counter32(c) => write!(f, "Counter32: {c}"),
            Value::Gauge32(g) => write!(f, "Gauge32: {g}"),
            Value::TimeTicks(t) => write!(f, "Timeticks: {t}"),
            Value::IpAddress(ip) => {
                write!(f, "IpAddress: {}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3])
            }
            Value::Null => write!(f, "NULL"),
            Value::EndOfMibView => write!(f, "endOfMibView"),
            Value::NoSuchObject => write!(f, "noSuchObject"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_helpers() {
        let v = Value::text("aspen");
        assert_eq!(v.as_text(), Some("aspen"));
        assert_eq!(Value::Integer(3).as_text(), None);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Counter32(7).as_u64(), Some(7));
        assert_eq!(Value::Gauge32(100_000_000).as_u64(), Some(100_000_000));
        assert_eq!(Value::Integer(-1).as_u64(), None);
        assert_eq!(Value::Counter32(9).as_counter32(), Some(9));
        assert_eq!(Value::Gauge32(9).as_counter32(), None);
    }

    #[test]
    fn ip_views() {
        let v = Value::IpAddress([10, 0, 0, 7]);
        assert_eq!(v.as_ip(), Some([10, 0, 0, 7]));
        assert_eq!(v.to_string(), "IpAddress: 10.0.0.7");
        assert_eq!(Value::Null.as_ip(), None);
    }

    #[test]
    fn exceptions() {
        assert!(Value::EndOfMibView.is_exception());
        assert!(!Value::Null.is_exception());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::text("x").to_string(), "STRING: \"x\"");
        assert_eq!(Value::Counter32(5).to_string(), "Counter32: 5");
    }
}
