//! # remos-snmp — an SNMP-like management substrate
//!
//! The Remos Collector in the paper "uses SNMP [RFC 1905] to extract both
//! static topology and dynamic bandwidth information from the routers"
//! (§5). This crate provides that substrate against the simulated network:
//!
//! * [`oid::Oid`] — object identifiers with the standard total order;
//! * [`value::Value`] — SMI value types (Counter32, Gauge32, OctetString…);
//! * [`mib`] — a MIB tree plus builders for the `system`, `interfaces`
//!   (ifTable) and neighbor (LLDP-style) groups;
//! * [`pdu`] / [`codec`] — GET / GETNEXT / GETBULK / RESPONSE protocol data
//!   units and a compact binary TLV encoding over [`bytes`];
//! * [`agent`] — request handling over a MIB view, with community-string
//!   authentication; [`sim`] materializes agents from a shared
//!   [`remos_net::Simulator`] (interface speeds and wrapped Counter32
//!   octet counters straight from the fluid model);
//! * [`manager`] — client-side get/walk/bulk-walk helpers with exponential
//!   backoff, seeded jitter, and a per-request deadline budget;
//! * [`transport`] — a simulated UDP transport that routes encoded
//!   messages to agents, with drop injection and byte accounting;
//! * [`fault`] — scriptable per-agent fault plans (crash/restart with
//!   counter and `sysUpTime` resets, freezes, flaky loss windows) applied
//!   by the transport and the simulated agents.
//!
//! The protocol surface is deliberately a *subset* of SNMPv2c with a
//! non-BER wire encoding: the Remos collector only needs table walks and
//! counter polls, and the substitution is documented in DESIGN.md.

pub mod agent;
pub mod codec;
pub mod error;
pub mod fault;
pub mod manager;
pub mod mib;
pub mod oid;
pub mod pdu;
pub mod sim;
pub mod transport;
pub mod value;

pub use agent::Agent;
pub use error::{SnmpError, SnmpResult};
pub use fault::{Fault, FaultDirector, FaultPlan};
pub use manager::{Manager, RetryObserver, RetryPolicy};
pub use mib::Mib;
pub use oid::Oid;
pub use pdu::{ErrorStatus, Pdu, PduType, VarBind};
pub use transport::{SimTransport, Transport, TransportStats};
pub use value::Value;
