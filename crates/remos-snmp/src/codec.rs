//! Wire encoding.
//!
//! A compact length-prefixed TLV format standing in for BER (the collector
//! code path is identical; only the byte grammar differs — documented as a
//! substitution in DESIGN.md). All integers are big-endian. Layout:
//!
//! ```text
//! message   := MAGIC u8=version community:bytes pdu
//! pdu       := type:u8 request_id:u32 error_status:u8 error_index:u32
//!              max_repetitions:u32 nbindings:u16 binding*
//! binding   := oid value
//! oid       := len:u16 subid:u32*
//! value     := tag:u8 payload
//! bytes     := len:u32 byte*
//! ```

use crate::error::{SnmpError, SnmpResult};
use crate::oid::Oid;
use crate::pdu::{ErrorStatus, Pdu, PduType, VarBind};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic byte opening every message.
pub const MAGIC: u8 = 0x53; // 'S'
/// Protocol version carried on the wire.
pub const VERSION: u8 = 2;

// Value tags.
const TAG_INTEGER: u8 = 0x02;
const TAG_OCTET_STRING: u8 = 0x04;
const TAG_NULL: u8 = 0x05;
const TAG_OID: u8 = 0x06;
const TAG_IP_ADDRESS: u8 = 0x40;
const TAG_COUNTER32: u8 = 0x41;
const TAG_GAUGE32: u8 = 0x42;
const TAG_TIMETICKS: u8 = 0x43;
const TAG_NO_SUCH_OBJECT: u8 = 0x80;
const TAG_END_OF_MIB_VIEW: u8 = 0x82;

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

fn put_oid(buf: &mut BytesMut, oid: &Oid) {
    buf.put_u16(oid.len() as u16);
    for &p in oid.parts() {
        buf.put_u32(p);
    }
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Integer(i) => {
            buf.put_u8(TAG_INTEGER);
            buf.put_i64(*i);
        }
        Value::OctetString(b) => {
            buf.put_u8(TAG_OCTET_STRING);
            put_bytes(buf, b);
        }
        Value::ObjectId(o) => {
            buf.put_u8(TAG_OID);
            put_oid(buf, o);
        }
        Value::Counter32(c) => {
            buf.put_u8(TAG_COUNTER32);
            buf.put_u32(*c);
        }
        Value::Gauge32(g) => {
            buf.put_u8(TAG_GAUGE32);
            buf.put_u32(*g);
        }
        Value::TimeTicks(t) => {
            buf.put_u8(TAG_TIMETICKS);
            buf.put_u32(*t);
        }
        Value::IpAddress(ip) => {
            buf.put_u8(TAG_IP_ADDRESS);
            buf.put_slice(ip);
        }
        Value::Null => buf.put_u8(TAG_NULL),
        Value::NoSuchObject => buf.put_u8(TAG_NO_SUCH_OBJECT),
        Value::EndOfMibView => buf.put_u8(TAG_END_OF_MIB_VIEW),
    }
}

/// Encode a message to wire bytes.
pub fn encode(pdu: &Pdu) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + pdu.bindings.len() * 32);
    buf.put_u8(MAGIC);
    buf.put_u8(VERSION);
    put_bytes(&mut buf, pdu.community.as_bytes());
    buf.put_u8(pdu.pdu_type.code());
    buf.put_u32(pdu.request_id);
    buf.put_u8(pdu.error_status.code());
    buf.put_u32(pdu.error_index);
    buf.put_u32(pdu.max_repetitions);
    buf.put_u16(pdu.bindings.len() as u16);
    for b in &pdu.bindings {
        put_oid(&mut buf, &b.oid);
        put_value(&mut buf, &b.value);
    }
    buf.freeze()
}

fn need(buf: &Bytes, n: usize) -> SnmpResult<()> {
    if buf.remaining() < n {
        Err(SnmpError::Decode(format!("truncated: need {n} more bytes")))
    } else {
        Ok(())
    }
}

fn take_bytes(buf: &mut Bytes) -> SnmpResult<Vec<u8>> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    if len > 1 << 24 {
        return Err(SnmpError::Decode(format!("unreasonable length {len}")));
    }
    need(buf, len)?;
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    Ok(v)
}

fn take_oid(buf: &mut Bytes) -> SnmpResult<Oid> {
    need(buf, 2)?;
    let n = buf.get_u16() as usize;
    need(buf, n * 4)?;
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        parts.push(buf.get_u32());
    }
    Ok(Oid::new(parts))
}

fn take_value(buf: &mut Bytes) -> SnmpResult<Value> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_INTEGER => {
            need(buf, 8)?;
            Value::Integer(buf.get_i64())
        }
        TAG_OCTET_STRING => Value::OctetString(take_bytes(buf)?),
        TAG_OID => Value::ObjectId(take_oid(buf)?),
        TAG_COUNTER32 => {
            need(buf, 4)?;
            Value::Counter32(buf.get_u32())
        }
        TAG_GAUGE32 => {
            need(buf, 4)?;
            Value::Gauge32(buf.get_u32())
        }
        TAG_TIMETICKS => {
            need(buf, 4)?;
            Value::TimeTicks(buf.get_u32())
        }
        TAG_IP_ADDRESS => {
            need(buf, 4)?;
            let mut ip = [0u8; 4];
            buf.copy_to_slice(&mut ip);
            Value::IpAddress(ip)
        }
        TAG_NULL => Value::Null,
        TAG_NO_SUCH_OBJECT => Value::NoSuchObject,
        TAG_END_OF_MIB_VIEW => Value::EndOfMibView,
        other => return Err(SnmpError::Decode(format!("unknown value tag {other:#x}"))),
    })
}

/// Decode a message from wire bytes.
pub fn decode(mut buf: Bytes) -> SnmpResult<Pdu> {
    need(&buf, 2)?;
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(SnmpError::Decode(format!("bad magic {magic:#x}")));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(SnmpError::Decode(format!("unsupported version {version}")));
    }
    let community = String::from_utf8(take_bytes(&mut buf)?)
        .map_err(|_| SnmpError::Decode("community not UTF-8".into()))?;
    need(&buf, 1 + 4 + 1 + 4 + 4 + 2)?;
    let pdu_type = PduType::from_code(buf.get_u8())
        .ok_or_else(|| SnmpError::Decode("unknown pdu type".into()))?;
    let request_id = buf.get_u32();
    let error_status = ErrorStatus::from_code(buf.get_u8())
        .ok_or_else(|| SnmpError::Decode("unknown error status".into()))?;
    let error_index = buf.get_u32();
    let max_repetitions = buf.get_u32();
    let n = buf.get_u16() as usize;
    let mut bindings = Vec::with_capacity(n);
    for _ in 0..n {
        let oid = take_oid(&mut buf)?;
        let value = take_value(&mut buf)?;
        bindings.push(VarBind { oid, value });
    }
    if buf.has_remaining() {
        return Err(SnmpError::Decode(format!(
            "{} trailing bytes after message",
            buf.remaining()
        )));
    }
    Ok(Pdu {
        community,
        pdu_type,
        request_id,
        error_status,
        error_index,
        max_repetitions,
        bindings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pdu() -> Pdu {
        Pdu::get_bulk(
            "public",
            7,
            vec!["1.3.6.1.2.1.2.2.1.10".parse().unwrap()],
            20,
        )
    }

    #[test]
    fn roundtrip_request() {
        let p = sample_pdu();
        let bytes = encode(&p);
        assert_eq!(decode(bytes).unwrap(), p);
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let req = sample_pdu();
        let bindings = vec![
            VarBind { oid: "1.1".parse().unwrap(), value: Value::Integer(-5) },
            VarBind { oid: "1.2".parse().unwrap(), value: Value::text("timberline") },
            VarBind {
                oid: "1.3".parse().unwrap(),
                value: Value::ObjectId("1.3.6.1".parse().unwrap()),
            },
            VarBind { oid: "1.4".parse().unwrap(), value: Value::Counter32(u32::MAX) },
            VarBind { oid: "1.5".parse().unwrap(), value: Value::Gauge32(100_000_000) },
            VarBind { oid: "1.6".parse().unwrap(), value: Value::TimeTicks(360000) },
            VarBind { oid: "1.7".parse().unwrap(), value: Value::Null },
            VarBind { oid: "1.8".parse().unwrap(), value: Value::NoSuchObject },
            VarBind { oid: "1.9".parse().unwrap(), value: Value::EndOfMibView },
        ];
        let resp = Pdu::response(&req, bindings);
        let decoded = decode(encode(&resp)).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = encode(&sample_pdu()).to_vec();
        b[0] = 0x00;
        assert!(matches!(decode(Bytes::from(b)), Err(SnmpError::Decode(_))));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let full = encode(&sample_pdu()).to_vec();
        for cut in 0..full.len() {
            let b = Bytes::copy_from_slice(&full[..cut]);
            assert!(decode(b).is_err(), "decode succeeded on {cut}-byte prefix");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut b = encode(&sample_pdu()).to_vec();
        b.push(0xaa);
        assert!(decode(Bytes::from(b)).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_oid() -> impl Strategy<Value = Oid> {
            prop::collection::vec(0u32..1 << 16, 0..12).prop_map(Oid::new)
        }

        fn arb_value() -> impl Strategy<Value = Value> {
            prop_oneof![
                any::<i64>().prop_map(Value::Integer),
                prop::collection::vec(any::<u8>(), 0..64).prop_map(Value::OctetString),
                arb_oid().prop_map(Value::ObjectId),
                any::<u32>().prop_map(Value::Counter32),
                any::<u32>().prop_map(Value::Gauge32),
                any::<u32>().prop_map(Value::TimeTicks),
                any::<[u8; 4]>().prop_map(Value::IpAddress),
                Just(Value::Null),
                Just(Value::NoSuchObject),
                Just(Value::EndOfMibView),
            ]
        }

        fn arb_pdu() -> impl Strategy<Value = Pdu> {
            (
                "[a-z]{0,12}",
                prop_oneof![
                    Just(PduType::Get),
                    Just(PduType::GetNext),
                    Just(PduType::GetBulk),
                    Just(PduType::Response),
                    Just(PduType::TrapV2)
                ],
                any::<u32>(),
                prop_oneof![
                    Just(ErrorStatus::NoError),
                    Just(ErrorStatus::TooBig),
                    Just(ErrorStatus::GenErr),
                    Just(ErrorStatus::NoAccess)
                ],
                any::<u32>(),
                any::<u32>(),
                prop::collection::vec((arb_oid(), arb_value()), 0..8),
            )
                .prop_map(|(community, t, rid, es, ei, mr, binds)| Pdu {
                    community,
                    pdu_type: t,
                    request_id: rid,
                    error_status: es,
                    error_index: ei,
                    max_repetitions: mr,
                    bindings: binds
                        .into_iter()
                        .map(|(oid, value)| VarBind { oid, value })
                        .collect(),
                })
        }

        proptest! {
            #[test]
            fn encode_decode_roundtrip(pdu in arb_pdu()) {
                let decoded = decode(encode(&pdu)).unwrap();
                prop_assert_eq!(decoded, pdu);
            }

            #[test]
            fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
                let _ = decode(Bytes::from(bytes));
            }

            #[test]
            fn truncated_encodings_error_without_panicking(
                pdu in arb_pdu(),
                frac in 0.0f64..1.0,
            ) {
                // Every strict prefix of a valid message must fail cleanly:
                // the parse runs out of bytes mid-field and the `need` guards
                // turn that into a Decode error, never a panic or over-read.
                let full = encode(&pdu);
                let cut = ((full.len() as f64) * frac) as usize;
                prop_assert!(cut < full.len());
                prop_assert!(decode(full.slice(..cut)).is_err());
            }

            #[test]
            fn bit_flipped_encodings_never_panic(
                pdu in arb_pdu(),
                pos in any::<prop::sample::Index>(),
                bit in 0u8..8,
            ) {
                // A single flipped bit may corrupt a tag, a length, or a
                // payload byte. Decoding may legitimately succeed (payload
                // flip) or fail, but must never panic or read past the
                // buffer.
                let mut bytes = encode(&pdu).to_vec();
                let i = pos.index(bytes.len());
                bytes[i] ^= 1 << bit;
                let _ = decode(Bytes::from(bytes));
            }
        }
    }
}
