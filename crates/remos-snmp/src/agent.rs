//! SNMP agents: request handling over a MIB view.
//!
//! An [`Agent`] owns a [`MibProvider`] — a source that materializes the
//! current MIB on demand (the simulator-backed provider reads live octet
//! counters; see [`crate::sim`]). Requests are authenticated against a
//! community string and answered per RFC 1905 semantics: GET returns
//! `noSuchObject` for missing instances, GETNEXT/GETBULK return
//! `endOfMibView` past the end.

use crate::mib::Mib;
use crate::oid::Oid;
use crate::pdu::{ErrorStatus, Pdu, PduType, VarBind};
use crate::value::Value;

/// Source of an agent's current MIB view.
pub trait MibProvider: Send {
    /// Produce the MIB as of "now". Called once per incoming request, so
    /// all bindings in one response are a consistent snapshot.
    fn snapshot(&self) -> Mib;
}

/// A static provider (fixed MIB), useful for tests.
pub struct StaticMib(pub Mib);

impl MibProvider for StaticMib {
    fn snapshot(&self) -> Mib {
        self.0.clone()
    }
}

/// Maximum bindings an agent will put in one response before reporting
/// `tooBig` (keeps GETBULK responses bounded like real agents do).
pub const MAX_RESPONSE_BINDINGS: usize = 512;

/// An SNMP agent.
pub struct Agent {
    name: String,
    community: String,
    provider: Box<dyn MibProvider>,
}

impl Agent {
    /// Create an agent named `name` (its transport address) that accepts
    /// requests carrying `community`.
    pub fn new(name: &str, community: &str, provider: Box<dyn MibProvider>) -> Agent {
        Agent { name: name.to_string(), community: community.to_string(), provider }
    }

    /// The agent's transport address.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Handle one request PDU, producing a response, or `None` if the
    /// community check fails (v2c agents silently drop such requests).
    pub fn handle(&self, req: &Pdu) -> Option<Pdu> {
        if req.community != self.community {
            return None;
        }
        let mib = self.provider.snapshot();
        let resp = match req.pdu_type {
            PduType::Get => self.do_get(&mib, req),
            PduType::GetNext => self.do_get_next(&mib, req),
            PduType::GetBulk => self.do_get_bulk(&mib, req),
            PduType::Response | PduType::TrapV2 => {
                Pdu::error_response(req, ErrorStatus::GenErr, 0)
            }
        };
        Some(resp)
    }

    fn do_get(&self, mib: &Mib, req: &Pdu) -> Pdu {
        let bindings = req
            .bindings
            .iter()
            .map(|b| VarBind {
                oid: b.oid.clone(),
                value: mib.get(&b.oid).cloned().unwrap_or(Value::NoSuchObject),
            })
            .collect();
        Pdu::response(req, bindings)
    }

    fn do_get_next(&self, mib: &Mib, req: &Pdu) -> Pdu {
        let bindings = req
            .bindings
            .iter()
            .map(|b| match mib.next(&b.oid) {
                Some((oid, value)) => VarBind { oid: oid.clone(), value: value.clone() },
                None => VarBind { oid: b.oid.clone(), value: Value::EndOfMibView },
            })
            .collect();
        Pdu::response(req, bindings)
    }

    fn do_get_bulk(&self, mib: &Mib, req: &Pdu) -> Pdu {
        let mut bindings = Vec::new();
        for b in &req.bindings {
            let mut cur: Oid = b.oid.clone();
            for _ in 0..req.max_repetitions {
                if bindings.len() >= MAX_RESPONSE_BINDINGS {
                    return Pdu::error_response(req, ErrorStatus::TooBig, 0);
                }
                match mib.next(&cur) {
                    Some((oid, value)) => {
                        bindings.push(VarBind { oid: oid.clone(), value: value.clone() });
                        cur = oid.clone();
                    }
                    None => {
                        bindings.push(VarBind { oid: cur.clone(), value: Value::EndOfMibView });
                        break;
                    }
                }
            }
        }
        Pdu::response(req, bindings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::SERVICES_ROUTER;
    use crate::oid::well_known;

    fn agent() -> Agent {
        let mut m = Mib::new();
        m.set_system_group("whiteface", "router", 5, SERVICES_ROUTER);
        m.set_if_number(2);
        m.set_interface_row(1, "a", 100_000_000, true, 1, 2);
        m.set_interface_row(2, "b", 100_000_000, true, 3, 4);
        Agent::new("whiteface", "public", Box::new(StaticMib(m)))
    }

    #[test]
    fn get_hits_and_misses() {
        let a = agent();
        let req = Pdu::get(
            "public",
            1,
            vec![well_known::sys_name(), Oid::new([9, 9])],
        );
        let resp = a.handle(&req).unwrap();
        assert_eq!(resp.bindings[0].value, Value::text("whiteface"));
        assert_eq!(resp.bindings[1].value, Value::NoSuchObject);
        assert_eq!(resp.request_id, 1);
    }

    #[test]
    fn wrong_community_dropped() {
        let a = agent();
        let req = Pdu::get("private", 1, vec![well_known::sys_name()]);
        assert!(a.handle(&req).is_none());
    }

    #[test]
    fn getnext_advances() {
        let a = agent();
        let req = Pdu::get_next("public", 2, vec![well_known::if_in_octets()]);
        let resp = a.handle(&req).unwrap();
        assert_eq!(resp.bindings[0].oid, well_known::if_in_octets().child([1]));
        assert_eq!(resp.bindings[0].value, Value::Counter32(1));
    }

    #[test]
    fn getnext_past_end() {
        let a = agent();
        let req = Pdu::get_next("public", 3, vec![Oid::new([9])]);
        let resp = a.handle(&req).unwrap();
        assert_eq!(resp.bindings[0].value, Value::EndOfMibView);
    }

    #[test]
    fn getbulk_collects_column() {
        let a = agent();
        let req = Pdu::get_bulk("public", 4, vec![well_known::if_out_octets()], 10);
        let resp = a.handle(&req).unwrap();
        // Two rows plus the overshoot into the next subtree (or EoM).
        assert!(resp.bindings.len() >= 2);
        assert_eq!(resp.bindings[0].value, Value::Counter32(2));
        assert_eq!(resp.bindings[1].value, Value::Counter32(4));
    }

    #[test]
    fn getbulk_overflow_reports_too_big() {
        // A MIB with more instances than MAX_RESPONSE_BINDINGS and a
        // request greedy enough to exceed the cap.
        let mut m = Mib::new();
        for i in 0..(MAX_RESPONSE_BINDINGS as u32 + 10) {
            m.set(Oid::new([1, 3, 6, 1, i]), Value::Integer(i as i64));
        }
        let a = Agent::new("big", "public", Box::new(StaticMib(m)));
        let req = Pdu::get_bulk(
            "public",
            9,
            vec![Oid::new([1]), Oid::new([1]), Oid::new([1])],
            (MAX_RESPONSE_BINDINGS / 2) as u32,
        );
        let resp = a.handle(&req).unwrap();
        assert_eq!(resp.error_status, ErrorStatus::TooBig);
    }

    #[test]
    fn response_pdu_as_request_is_error() {
        let a = agent();
        let mut req = Pdu::get("public", 5, vec![]);
        req.pdu_type = PduType::Response;
        let resp = a.handle(&req).unwrap();
        assert_eq!(resp.error_status, ErrorStatus::GenErr);
    }
}
