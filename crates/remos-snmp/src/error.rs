//! Error types for the SNMP substrate.

use std::fmt;

/// Errors surfaced to SNMP clients (managers / the Remos collector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnmpError {
    /// Malformed wire bytes.
    Decode(String),
    /// The target agent does not exist.
    UnknownAgent(String),
    /// The request timed out (dropped by the lossy transport).
    Timeout,
    /// Authentication failed (wrong community). Real SNMPv2c silently
    /// drops these; the simulated transport reports them for testability.
    BadCommunity,
    /// The agent answered with a non-zero error-status.
    AgentError(crate::pdu::ErrorStatus),
    /// Response did not match the request (id or shape).
    ProtocolMismatch(String),
}

/// Convenience alias.
pub type SnmpResult<T> = Result<T, SnmpError>;

impl fmt::Display for SnmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnmpError::Decode(m) => write!(f, "decode error: {m}"),
            SnmpError::UnknownAgent(a) => write!(f, "unknown agent {a:?}"),
            SnmpError::Timeout => write!(f, "request timed out"),
            SnmpError::BadCommunity => write!(f, "bad community string"),
            SnmpError::AgentError(s) => write!(f, "agent error-status: {s:?}"),
            SnmpError::ProtocolMismatch(m) => write!(f, "protocol mismatch: {m}"),
        }
    }
}

impl std::error::Error for SnmpError {}
