//! Reusable audit driver: everything `main.rs` does, callable from
//! tests (and from the fixture suite, which points it at a miniature
//! workspace tree).

use crate::model::Workspace;
use crate::report;
use crate::{
    apply_allowlist, check_tokens, hygiene, lex, lockorder, parse_allowlist, rust_files, scope_for,
    taint, AllowEntry, Filtered, Violation,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything one audit run produced.
pub struct RunResult {
    /// Files fed to the per-file token rules.
    pub scanned: usize,
    /// Violations not covered by the allowlist.
    pub rejected: Vec<Violation>,
    /// Violations waived, with the allowlist entry index that matched.
    pub waived: Vec<(Violation, usize)>,
    /// Indices of allowlist entries that matched nothing.
    pub stale_entries: Vec<usize>,
    /// Parsed allowlist (for printing stale entries).
    pub allow: Vec<AllowEntry>,
    /// Where the allowlist lives (`<root>/audit.allow`).
    pub allow_path: PathBuf,
}

/// Should this workspace-relative path be part of the cross-file
/// analysis? Library sources only: binaries may do as they please, and
/// fixture/test trees must never leak into the real workspace model.
fn analyzed(rel: &str) -> bool {
    rel.contains("/src/")
        && !rel.contains("/src/bin/")
        && !rel.ends_with("/main.rs")
        && !rel.contains("/tests/")
        && !rel.contains("/fixtures/")
}

/// Audit the workspace rooted at `root` (must contain `crates/`).
pub fn run(root: &Path) -> Result<RunResult, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("no `crates/` directory under {}", root.display()));
    }
    let allow_path = root.join("audit.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };

    let mut files =
        rust_files(&crates_dir).map_err(|e| format!("cannot walk {}: {e}", crates_dir.display()))?;
    let examples_dir = root.join("examples");
    if examples_dir.is_dir() {
        files.extend(
            rust_files(&examples_dir)
                .map_err(|e| format!("cannot walk {}: {e}", examples_dir.display()))?,
        );
    }

    let mut violations = Vec::new();
    let mut sources: BTreeMap<PathBuf, Vec<String>> = BTreeMap::new();
    let mut ws_sources: Vec<(PathBuf, String)> = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let scope = scope_for(&rel);
        let token_scoped = scope.nondet
            || scope.float_eq
            || scope.panic
            || scope.wall_clock
            || scope.deprecated_shim
            || scope.thread;
        let in_analysis = analyzed(&rel_str);
        if !token_scoped && !in_analysis {
            continue;
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if token_scoped {
            scanned += 1;
            let toks = lex(&src);
            violations.extend(check_tokens(&rel, &toks, scope));
        }
        sources.insert(rel.clone(), src.lines().map(str::to_string).collect());
        if in_analysis {
            ws_sources.push((rel, src));
        }
    }

    // Cross-file analyses over the workspace model.
    ws_sources.sort_by(|a, b| a.0.cmp(&b.0));
    let ws = Workspace::from_sources(ws_sources);
    violations.extend(lockorder::analyze(&ws).violations);
    violations.extend(taint::analyze(&ws));
    violations.extend(hygiene::analyze(&ws));
    report::sort_violations(&mut violations);

    let Filtered { rejected, waived, stale_entries } =
        apply_allowlist(violations, &allow, |file, line| {
            sources
                .get(file)
                .and_then(|lines| lines.get(line as usize - 1))
                .cloned()
                .unwrap_or_default()
        });
    Ok(RunResult { scanned, rejected, waived, stale_entries, allow, allow_path })
}

/// Rewrite the allowlist file minus its stale entries (by line number).
/// Comments and blank lines survive. Returns the number of entries
/// removed; `Ok(0)` leaves the file untouched.
pub fn fix_allowlist(result: &RunResult) -> std::io::Result<usize> {
    if result.stale_entries.is_empty() {
        return Ok(0);
    }
    let text = std::fs::read_to_string(&result.allow_path)?;
    let dead: Vec<u32> = result.stale_entries.iter().map(|&i| result.allow[i].line).collect();
    let kept: Vec<&str> = text
        .lines()
        .enumerate()
        .filter(|(n, _)| !dead.contains(&(*n as u32 + 1)))
        .map(|(_, l)| l)
        .collect();
    let mut out = kept.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    std::fs::write(&result.allow_path, out)?;
    Ok(dead.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_path_filter() {
        assert!(analyzed("crates/remos-serve/src/queue.rs"));
        assert!(analyzed("crates/remos-core/src/modeler/pool.rs"));
        assert!(!analyzed("crates/remos-serve/src/bin/tool.rs"));
        assert!(!analyzed("crates/cli/src/main.rs"));
        assert!(!analyzed("crates/remos-audit/tests/fixtures/ws/crates/x/src/a.rs"));
        assert!(!analyzed("examples/quickstart.rs"));
    }
}
