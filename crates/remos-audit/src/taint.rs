//! Determinism-taint tracking: order-dependent values must not reach
//! order-sensitive sinks.
//!
//! PR 2 fixed a family of real bugs where `HashMap` iteration order
//! leaked into solver inputs and run digests; this pass turns those
//! fixes into an enforced invariant.
//!
//! **Taint roots** — `HashMap`/`HashSet` iteration (`.iter()`,
//! `.keys()`, `.values()`, `.drain()`, `for _ in map`),
//! `thread::current().id()`, unsanctioned wall-clock reads
//! (`Instant::now()` / `SystemTime::now()` outside
//! `remos-obs/src/clock.rs`), and ambient RNG (`thread_rng()`,
//! `from_entropy()`).
//!
//! **Sanitizers** — sorting (`sort`, `sort_unstable`, `sort_by*`),
//! order-statistic selection (`select_nth_unstable*`, which pins
//! exact ranks regardless of input order),
//! collecting into a `BTreeMap`/`BTreeSet`, and order-insensitive
//! aggregates (`len`, `is_empty`, `contains`, `contains_key`, `get`,
//! `max`, `min`). Float `sum` is deliberately NOT a sanitizer: float
//! addition is not associative, so a sum over hash order is still
//! order-dependent.
//!
//! **Sinks** — digests (any callee whose name contains `digest`, plus
//! the server's FNV `fold`), trace/event recording (`record`), solver
//! entry points (`solve*` — flow *ordering* determines the max-min
//! fill order), and `Provenance { … }` literals.
//!
//! Propagation is per-statement within a function, plus cross-function
//! parameter summaries: if `mix(v)` forwards its parameter into
//! `event_digest`, then a tainted `v` at any `mix` call site is a
//! violation at that call site.

use crate::model::Workspace;
use crate::parse::{calls_in, CallSite, FnInfo};
use crate::{Token, TokenKind, Violation};
use std::collections::BTreeSet;

const CONTAINER_TYPES: &[&str] = &["HashMap", "HashSet"];
const SOURCE_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];
const SANITIZER_METHODS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "select_nth_unstable",
    "select_nth_unstable_by",
    "select_nth_unstable_by_key",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "get",
    "max",
    "min",
];
/// Callee names that are order-sensitive sinks when given a tainted
/// argument. `fold` is the server digest accumulator (free call only —
/// `Iterator::fold` method calls are not matched).
const SINK_EXACT: &[&str] =
    &["fold", "record", "solve", "solve_refs", "solve_scoped", "solve_scoped_refs", "solve_stage"];

/// The one sanctioned wall-clock source.
const SANCTIONED_CLOCK: &str = "crates/remos-obs/src/clock.rs";

/// Per-function taint summary: which parameter indices flow into a sink
/// inside this function (directly or via callees).
#[derive(Default, Clone, PartialEq)]
pub struct Summary {
    pub param_to_sink: Vec<bool>,
}

/// Run the determinism-taint analysis across the workspace.
pub fn analyze(ws: &Workspace) -> Vec<Violation> {
    let n = ws.fns.len();
    let resolved: Vec<Vec<(CallSite, Vec<usize>)>> = (0..n)
        .map(|i| {
            if ws.fns[i].info.in_test {
                return Vec::new();
            }
            calls_in(ws.toks(i), ws.fns[i].info.body)
                .into_iter()
                .map(|c| {
                    let r = ws
                        .resolve(&c, &ws.fns[i].info)
                        .into_iter()
                        .filter(|&g| !ws.fns[g].info.in_test)
                        .collect();
                    (c, r)
                })
                .collect()
        })
        .collect();

    // Fixpoint over parameter summaries.
    let mut summaries: Vec<Summary> =
        (0..n).map(|i| Summary { param_to_sink: vec![false; ws.fns[i].info.params.len()] }).collect();
    for _ in 0..6 {
        let mut changed = false;
        for i in 0..n {
            let info = &ws.fns[i].info;
            if info.in_test {
                continue;
            }
            for p in 0..info.params.len() {
                if summaries[i].param_to_sink[p] || info.params[p].name == "self" {
                    continue;
                }
                let seed: BTreeSet<String> = [info.params[p].name.clone()].into();
                let hits = flow(ws, i, &resolved[i], &summaries, seed, false);
                if !hits.is_empty() {
                    summaries[i].param_to_sink[p] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Violation pass: seed from local roots, report sink hits.
    let mut out = Vec::new();
    for (i, res) in resolved.iter().enumerate() {
        if ws.fns[i].info.in_test {
            continue;
        }
        let hits = flow(ws, i, res, &summaries, BTreeSet::new(), true);
        out.extend(hits);
    }
    out
}

/// Propagate taint through function `i`. `seed` pre-taints identifiers
/// (used for parameter summaries); when `use_roots` is true, local
/// nondeterminism roots also start tainted. Returns a violation per
/// sink reached.
fn flow(
    ws: &Workspace,
    i: usize,
    resolved: &[(CallSite, Vec<usize>)],
    summaries: &[Summary],
    seed: BTreeSet<String>,
    use_roots: bool,
) -> Vec<Violation> {
    let info = &ws.fns[i].info;
    let toks = ws.toks(i);
    let (start, end) = info.body;

    // Container-typed variables: HashMap/HashSet params and
    // `let x = HashMap::new()` / `let x: HashMap<…> = …` bindings.
    let mut containers: BTreeSet<String> = info
        .params
        .iter()
        .filter(|p| p.ty_idents.iter().any(|t| CONTAINER_TYPES.contains(&t.as_str())))
        .map(|p| p.name.clone())
        .collect();
    let mut tainted = seed;
    let mut out = Vec::new();
    let mut reported: BTreeSet<(u32, String)> = BTreeSet::new();

    // Two forward passes: taint introduced late in pass one reaches
    // earlier loop bodies in pass two.
    for _pass in 0..2 {
        let mut k = start;
        while k < end {
            let stmt_end = statement_end(toks, k, end);
            scan_statement(
                ws,
                info,
                toks,
                (k, stmt_end),
                resolved,
                summaries,
                &mut containers,
                &mut tainted,
                use_roots,
                &mut reported,
                &mut out,
            );
            k = stmt_end.max(k + 1);
        }
    }
    out
}

/// Exclusive end of the statement starting at `k`: past the `;` at
/// paren depth 0, or past an opening `{` (blocks are walked as their
/// own statements).
fn statement_end(toks: &[Token], k: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = k;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth <= 0 => return j + 1,
            "{" | "}" if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    end
}

#[allow(clippy::too_many_arguments)]
fn scan_statement(
    ws: &Workspace,
    info: &FnInfo,
    toks: &[Token],
    range: (usize, usize),
    resolved: &[(CallSite, Vec<usize>)],
    summaries: &[Summary],
    containers: &mut BTreeSet<String>,
    tainted: &mut BTreeSet<String>,
    use_roots: bool,
    reported: &mut BTreeSet<(u32, String)>,
    out: &mut Vec<Violation>,
) {
    let (k, stmt_end) = range;
    let stmt = &toks[k..stmt_end];
    if stmt.is_empty() || stmt.iter().any(|t| t.in_test) {
        return;
    }
    let idents: Vec<&str> = stmt
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();

    // `v.sort_unstable();` / `v.select_nth_unstable(k);` style statements
    // sanitize their receiver: a selection establishes the same
    // order-insensitivity for the ranks it pins as a sort does for the
    // whole container.
    if stmt.len() >= 4
        && stmt[0].kind == TokenKind::Ident
        && stmt[1].text == "."
        && SANITIZER_METHODS.contains(&stmt[2].text.as_str())
        && (stmt[2].text.starts_with("sort") || stmt[2].text.starts_with("select_nth"))
    {
        tainted.remove(&stmt[0].text);
        return;
    }

    let has_source = use_roots && statement_has_root(toks, (k, stmt_end), containers, tainted, &info.file);
    let has_taint = has_source || idents.iter().any(|id| tainted.contains(*id));
    let sanitized = statement_sanitizes(stmt);

    // `let [mut] name …=` binding: taint or sanitize the binding.
    if stmt[0].text == "let" {
        let mut b = 1;
        if stmt.get(b).map(|t| t.text.as_str()) == Some("mut") {
            b += 1;
        }
        if let Some(name_tok) = stmt.get(b).filter(|t| t.kind == TokenKind::Ident) {
            let name = name_tok.text.clone();
            // Track new container bindings.
            if idents.iter().any(|id| CONTAINER_TYPES.contains(id)) {
                containers.insert(name.clone());
            }
            if has_taint && !sanitized {
                tainted.insert(name);
            } else if sanitized {
                tainted.remove(&name);
            }
        }
    }

    // `for pat in container {` taints the bound pattern idents.
    if stmt[0].text == "for" {
        if let Some(in_pos) = stmt.iter().position(|t| t.text == "in") {
            let iter_expr: Vec<&str> = stmt[in_pos + 1..]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            // Iterating a tainted value taints the bound vars in any
            // mode; iterating a hash container is a *root* and only
            // counts when roots are live (violation mode, not the
            // parameter-summary mode).
            let over_tainted = iter_expr.iter().any(|id| tainted.contains(*id));
            let over_container =
                use_roots && iter_expr.iter().any(|id| containers.contains(*id));
            let iter_sanitized = statement_sanitizes(&stmt[in_pos + 1..]);
            if (over_tainted || over_container) && !iter_sanitized {
                for t in &stmt[1..in_pos] {
                    if t.kind == TokenKind::Ident && t.text != "mut" {
                        tainted.insert(t.text.clone());
                    }
                }
            }
        }
    }

    // Sink checks on every call in this statement. (In summary mode the
    // caller only tests whether any hit exists; nothing is printed.)
    for (c, callees) in resolved {
        if c.tok < k || c.tok >= stmt_end {
            continue;
        }
        let args = &toks[c.args.0..c.args.1.min(stmt_end)];
        let arg_tainted = args.iter().any(|t| {
            t.kind == TokenKind::Ident
                && (tainted.contains(&t.text)
                    || (use_roots
                        && containers.contains(&t.text)
                        && args_iterate(args, &t.text)))
        }) || (use_roots && statement_has_root(toks, c.args, containers, tainted, &info.file));
        // Receiver taint counts for `record`-style sinks
        // (`trace.record(tainted)` has the value in args anyway, but
        // `tainted_iter.for_each(...)` does not — keep it simple).
        if !arg_tainted {
            continue;
        }
        let is_sink = c.name.contains("digest")
            || (SINK_EXACT.contains(&c.name.as_str()) && (c.name != "fold" || c.recv.is_empty()))
            || callees.iter().any(|&g| {
                // Argument position → callee parameter summary.
                arg_positions_tainted(toks, c, tainted, containers, use_roots)
                    .iter()
                    .any(|&p| {
                        let s = &summaries[g];
                        let off = usize::from(
                            ws.fns[g].info.params.first().map(|x| x.name == "self").unwrap_or(false),
                        );
                        s.param_to_sink.get(p + off).copied().unwrap_or(false)
                    })
            });
        if is_sink && reported.insert((c.line, c.name.clone())) {
            out.push(Violation {
                rule: "determinism-taint",
                file: info.file.clone(),
                line: c.line,
                message: format!(
                    "order-dependent value reaches order-sensitive sink `{}` in `{}`; \
                     sort the data (or use a BTree collection) before it feeds a \
                     digest, trace, or solver",
                    c.name,
                    info.qname()
                ),
                token: c.name.clone(),
            });
        }
    }

}

/// Does this token range contain a nondeterminism root?
fn statement_has_root(
    toks: &[Token],
    range: (usize, usize),
    containers: &BTreeSet<String>,
    _tainted: &BTreeSet<String>,
    file: &std::path::Path,
) -> bool {
    let (k, end) = range;
    let sanctioned = file.to_string_lossy().replace('\\', "/") == SANCTIONED_CLOCK;
    let mut j = k;
    while j < end {
        let t = &toks[j];
        if t.kind == TokenKind::Ident {
            // container.iter() / container.keys() / …
            if containers.contains(&t.text)
                && toks.get(j + 1).map(|x| x.text.as_str()) == Some(".")
                && toks
                    .get(j + 2)
                    .map(|x| SOURCE_METHODS.contains(&x.text.as_str()))
                    .unwrap_or(false)
            {
                return true;
            }
            // thread::current().id()
            if t.text == "thread"
                && toks.get(j + 1).map(|x| x.text.as_str()) == Some("::")
                && toks.get(j + 2).map(|x| x.text.as_str()) == Some("current")
            {
                return true;
            }
            // Instant::now() / SystemTime::now() outside clock.rs.
            if !sanctioned
                && (t.text == "Instant" || t.text == "SystemTime")
                && toks.get(j + 1).map(|x| x.text.as_str()) == Some("::")
                && toks.get(j + 2).map(|x| x.text.as_str()) == Some("now")
            {
                return true;
            }
            // Ambient RNG.
            if (t.text == "thread_rng" || t.text == "from_entropy")
                && toks.get(j + 1).map(|x| x.text.as_str()) == Some("(")
            {
                return true;
            }
        }
        j += 1;
    }
    false
}

/// Does the statement contain a sanitizer (sort call, BTree collect, or
/// order-insensitive aggregate as the outermost projection)?
fn statement_sanitizes(stmt: &[Token]) -> bool {
    for (j, t) in stmt.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text.starts_with("BTree") {
            return true;
        }
        if j > 0
            && stmt[j - 1].text == "."
            && SANITIZER_METHODS.contains(&t.text.as_str())
            && stmt.get(j + 1).map(|x| x.text.as_str()) == Some("(")
        {
            return true;
        }
    }
    false
}

/// Within `args`, does the container ident at least get iterated (vs a
/// safe aggregate like `m.len()`)? `digest(m)` passing the map whole is
/// treated as iteration — the callee will walk it.
fn args_iterate(args: &[Token], name: &str) -> bool {
    for (j, t) in args.iter().enumerate() {
        if t.kind == TokenKind::Ident && t.text == name {
            match args.get(j + 1).map(|x| x.text.as_str()) {
                Some(".") => {
                    let m = args.get(j + 2).map(|x| x.text.as_str()).unwrap_or("");
                    if SOURCE_METHODS.contains(&m) {
                        return true;
                    }
                    if SANITIZER_METHODS.contains(&m) {
                        continue;
                    }
                    return true;
                }
                _ => return true,
            }
        }
    }
    false
}

/// Zero-based top-level argument positions of `c` holding a tainted (or
/// iterated-container) identifier.
fn arg_positions_tainted(
    toks: &[Token],
    c: &CallSite,
    tainted: &BTreeSet<String>,
    containers: &BTreeSet<String>,
    use_roots: bool,
) -> Vec<usize> {
    let mut out = Vec::new();
    let (a0, a1) = c.args;
    let mut depth = 0i32;
    let mut pos = 0usize;
    let mut hit = false;
    for t in &toks[a0..a1] {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth <= 0 => {
                if hit {
                    out.push(pos);
                }
                pos += 1;
                hit = false;
                continue;
            }
            _ => {}
        }
        if t.kind == TokenKind::Ident
            && (tainted.contains(&t.text) || (use_roots && containers.contains(&t.text)))
        {
            hit = true;
        }
    }
    if hit {
        out.push(pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (PathBuf::from(p), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn hashmap_values_into_digest_is_flagged() {
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "fn f(m: &HashMap<u32, u64>) -> u64 {
                let vals: Vec<u64> = m.values().copied().collect();
                event_digest(&vals)
            }
            fn event_digest(v: &[u64]) -> u64 { 0 }",
        )]);
        let got = analyze(&w);
        assert_eq!(got.len(), 1, "got: {got:?}");
        assert_eq!(got[0].rule, "determinism-taint");
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn fct_digest_inputs_are_a_taint_sink() {
        // The what-if kernel's `fct_digest` is covered by the `digest`
        // name rule: hash-ordered iteration feeding it is a finding.
        let w = ws(&[(
            "crates/remos-net/src/whatif.rs",
            "fn f(m: &HashMap<u32, u64>) -> u64 {
                let sizes: Vec<u64> = m.values().copied().collect();
                fct_digest(&sizes)
            }
            fn fct_digest(v: &[u64]) -> u64 { 0 }",
        )]);
        let got = analyze(&w);
        assert_eq!(got.len(), 1, "got: {got:?}");
        assert_eq!(got[0].rule, "determinism-taint");
    }

    #[test]
    fn sorted_values_are_clean() {
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "fn f(m: &HashMap<u32, u64>) -> u64 {
                let mut vals: Vec<u64> = m.values().copied().collect();
                vals.sort_unstable();
                event_digest(&vals)
            }
            fn event_digest(v: &[u64]) -> u64 { 0 }",
        )]);
        assert!(analyze(&w).is_empty());
    }

    #[test]
    fn selected_values_are_clean() {
        // `select_nth_unstable*` pins exact order statistics, so like a
        // sort it sanitizes its receiver.
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "fn f(m: &HashMap<u32, u64>) -> u64 {
                let mut vals: Vec<u64> = m.values().copied().collect();
                vals.select_nth_unstable_by(0, u64::cmp);
                event_digest(&vals)
            }
            fn event_digest(v: &[u64]) -> u64 { 0 }",
        )]);
        assert!(analyze(&w).is_empty());
    }

    #[test]
    fn btree_collect_is_clean_and_len_is_not_a_source() {
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "fn f(m: &HashMap<u32, u64>) -> u64 {
                let ordered: BTreeMap<u32, u64> = m.iter().map(|(k, v)| (*k, *v)).collect();
                let n = m.len();
                event_digest(n)
            }
            fn event_digest(v: usize) -> u64 { 0 }",
        )]);
        assert!(analyze(&w).is_empty());
    }

    #[test]
    fn cross_function_flow_through_a_helper() {
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "fn f(m: &HashMap<u32, u64>) {
                let vals: Vec<u64> = m.values().copied().collect();
                mix(&vals);
            }
            fn mix(v: &[u64]) { event_digest(v); }
            fn event_digest(v: &[u64]) -> u64 { 0 }",
        )]);
        let got = analyze(&w);
        // Two reports: the direct sink inside `mix` never fires (its
        // param is only tainted at the call site), so the one finding is
        // at the `mix(&vals)` call.
        assert_eq!(got.len(), 1, "got: {got:?}");
        assert_eq!(got[0].line, 3);
        assert_eq!(got[0].token, "mix");
    }

    #[test]
    fn for_loop_over_hashmap_into_record_is_flagged() {
        let w = ws(&[(
            "crates/remos-obs/src/x.rs",
            "fn f(m: HashMap<String, u64>, tr: &Trace) {
                for (k, v) in &m {
                    tr.record(k, v);
                }
            }",
        )]);
        let got = analyze(&w);
        assert_eq!(got.len(), 1, "got: {got:?}");
        assert_eq!(got[0].token, "record");
    }

    #[test]
    fn thread_id_into_digest_is_flagged() {
        let w = ws(&[(
            "crates/remos-obs/src/x.rs",
            "fn f() -> u64 {
                let id = thread::current().id();
                run_digest(id)
            }
            fn run_digest(x: ThreadId) -> u64 { 0 }",
        )]);
        let got = analyze(&w);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn iterator_fold_method_is_not_the_digest_sink() {
        let w = ws(&[(
            "crates/remos-core/src/x.rs",
            "fn f(m: &HashMap<u32, u64>) -> u64 {
                let mut vals: Vec<u64> = m.values().copied().collect();
                vals.sort_unstable();
                vals.iter().fold(0u64, |a, b| a + b)
            }",
        )]);
        assert!(analyze(&w).is_empty());
    }

    #[test]
    fn sanctioned_clock_file_is_exempt() {
        let w = ws(&[(
            "crates/remos-obs/src/clock.rs",
            "fn f() -> u64 {
                let t = Instant::now();
                stamp_digest(t)
            }
            fn stamp_digest(x: Instant) -> u64 { 0 }",
        )]);
        assert!(analyze(&w).is_empty());
    }
}
