//! Machine-readable audit output: plain JSON for the golden tests and
//! SARIF 2.1.0 for CI code-scanning annotations.
//!
//! Both serializers are hand-rolled (the audit is zero-dependency) and
//! deterministic: violations are sorted by (file, line, rule, token)
//! before emission, so byte-identical input produces byte-identical
//! output — which is what lets the fixture tests compare against
//! checked-in golden files.

use crate::{AllowEntry, Violation};

/// Escape a string for JSON embedding.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable sort key used by both serializers.
pub fn sort_violations(violations: &mut [Violation]) {
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.token).cmp(&(&b.file, b.line, b.rule, &b.token))
    });
}

fn norm_path(v: &Violation) -> String {
    v.file.to_string_lossy().replace('\\', "/")
}

/// Plain JSON report: the full violation list plus stale allowlist
/// entries. Pretty-printed with two-space indent so golden files diff
/// readably.
pub fn to_json(violations: &[Violation], stale: &[&AllowEntry]) -> String {
    let mut sorted: Vec<Violation> = violations.to_vec();
    sort_violations(&mut sorted);
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"token\": \"{}\", \"message\": \"{}\"}}",
            json_escape(v.rule),
            json_escape(&norm_path(v)),
            v.line,
            json_escape(&v.token),
            json_escape(&v.message)
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_allow_entries\": [");
    for (i, a) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"line\": {}, \"rule\": \"{}\", \"path\": \"{}\", \"needle\": \"{}\"}}",
            a.line,
            json_escape(&a.rule),
            json_escape(&a.path),
            json_escape(&a.needle)
        ));
    }
    if !stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// SARIF 2.1.0 report (the subset GitHub code scanning consumes).
pub fn to_sarif(violations: &[Violation]) -> String {
    let mut sorted: Vec<Violation> = violations.to_vec();
    sort_violations(&mut sorted);
    let mut rule_ids: Vec<&str> = sorted.iter().map(|v| v.rule).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"remos-audit\",\n");
    out.push_str(
        "          \"informationUri\": \"docs/AUDIT.md\",\n          \"rules\": [",
    );
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"defaultConfiguration\": {{\"level\": \"error\"}}}}",
            json_escape(id)
        ));
    }
    if !rule_ids.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, v) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}",
            json_escape(v.rule),
            json_escape(&v.message),
            json_escape(&norm_path(v)),
            v.line
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn v(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: PathBuf::from(file),
            line,
            message: format!("msg for {rule}"),
            token: "tok".into(),
        }
    }

    #[test]
    fn json_is_sorted_and_escaped() {
        let vs = vec![v("b-rule", "z.rs", 2), v("a-rule", "a.rs", 9)];
        let j = to_json(&vs, &[]);
        let a = j.find("a-rule").unwrap();
        let b = j.find("b-rule").unwrap();
        assert!(a < b, "violations must sort by file first:\n{j}");
        assert!(j.contains("\"stale_allow_entries\": []"));
        let quoted = vec![Violation { message: "say \"hi\"\n".into(), ..v("r", "f.rs", 1) }];
        assert!(to_json(&quoted, &[]).contains("say \\\"hi\\\"\\n"));
    }

    #[test]
    fn sarif_has_schema_rules_and_locations() {
        let vs = vec![v("lock-order-cycle", "crates/x/src/a.rs", 7)];
        let s = to_sarif(&vs);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"id\": \"lock-order-cycle\""));
        assert!(s.contains("\"uri\": \"crates/x/src/a.rs\""));
        assert!(s.contains("\"startLine\": 7"));
    }

    #[test]
    fn empty_reports_are_well_formed() {
        assert_eq!(
            to_json(&[], &[]),
            "{\n  \"violations\": [],\n  \"stale_allow_entries\": []\n}\n"
        );
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\": []"));
    }
}
