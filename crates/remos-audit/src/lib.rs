//! # remos-audit — determinism & panic-freedom lint pass
//!
//! The paper's results hinge on the modeler's max-min fair sharing being
//! exactly reproducible (§4.2: "Remos will assume the bottleneck link
//! bandwidth will be shared equally by all flows"). Nondeterministic
//! iteration order, float equality on measured quantities, stray panics in
//! library code, and wall-clock reads inside simulated-time code can all
//! silently break that contract. This crate is a source-level audit that
//! makes such code fail CI instead of failing experiments.
//!
//! It deliberately has **zero dependencies**: a hand-written Rust lexer
//! (comments, strings, raw strings, char literals vs lifetimes, nested
//! block comments) feeds token-level rules, in the style of rustc's own
//! `tidy` tool. That keeps the audit buildable with a bare `rustc` on an
//! air-gapped machine — the audit must never be the thing that can't run.
//!
//! ## Rules
//!
//! | id | scope | trigger |
//! |----|-------|---------|
//! | `nondet-collection` | solver/simulation paths (`remos-net`, `remos-core/src/modeler`, `remos-snmp/src/sim.rs`) | `HashMap` / `HashSet` tokens — iteration order can leak into results; use `BTreeMap` / `BTreeSet` or sorted iteration |
//! | `float-eq` | all library crates | `==` / `!=` with a float literal (or `f32`/`f64` path) operand |
//! | `panic-site` | library (non-test) code of `remos-core`, `remos-net`, `remos-snmp`, `remos-serve` — and `examples/`, which are shipped as copy-paste templates | `.unwrap()`, `.expect(..)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `wall-clock` | all library crates (except `remos-obs/src/clock.rs`, the one sanctioned wall-clock source) | `std::time::Instant` / `SystemTime` in simulated-time code |
//! | `deprecated-shim` | every library source | `.get_graph(` / `.flow_info(` / `.reachable_peers(` — the positional Remos API was removed; build a `Query` and call `Remos::run` |
//! | `unbounded-queue` | `remos-serve` (except `src/queue.rs`, the bounded queue's sanctioned home) | `VecDeque` — ad-hoc buffering in the serving path defeats admission control; route backlog through `FairQueue` |
//! | `blocking-in-handler` | `remos-serve` | `.recv(` / `.park(` / `.sleep(` / `.wait(` (and `_timeout` variants) — the server is a cooperative loop on simulated time; a blocking call stalls every tenant |
//!
//! Violations inside `#[cfg(test)]` modules, doc comments, strings, and
//! `src/bin` / `main.rs` targets are not reported (`examples/` is the one
//! binary tree that IS audited, because its code is written to be
//! copied). Justified sites are recorded in the checked-in `audit.allow`
//! file (rule, file suffix, and a substring of the offending line); stale
//! allowlist entries are reported so the file cannot rot.

pub mod driver;
pub mod hygiene;
pub mod lockorder;
pub mod model;
pub mod parse;
pub mod report;
pub mod taint;

use std::fmt;
use std::path::{Path, PathBuf};

/// A lexed token with enough classification for the audit rules.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Text of the token (identifier name, operator spelling, ...).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// Coarse token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal.
    Int,
    /// Floating-point literal (`1.0`, `2e9`, `3.5f64`, ...).
    Float,
    /// String / char / byte literal (content discarded).
    Literal,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator or punctuation (`==`, `.`, `{`, ...).
    Punct,
}

/// Lex Rust source into audit tokens. Comments and literal *contents* are
/// discarded; `in_test` is filled by a second pass tracking
/// `#[cfg(test)]`-gated items.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Two-character operators we must not split (so `<=` never reads as a
    // `<` followed by the `=` of an `==`).
    const TWO: &[&str] = &[
        "==", "!=", "<=", ">=", "=>", "->", "&&", "||", "::", "..", "+=", "-=", "*=", "/=",
        "%=", "^=", "&=", "|=", "<<", ">>",
    ];

    while i < b.len() {
        let c = b[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. /// and //!).
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings r"..." / r#"..."# (and br variants). Must be checked
        // before plain identifiers would swallow the `r`.
        if (c == 'r' || c == 'b') && is_raw_string_start(b, i) {
            let start = if c == 'b' { i + 1 } else { i };
            let mut j = start + 1; // past 'r'
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            // b[j] == '"' guaranteed by is_raw_string_start.
            j += 1;
            loop {
                if j >= b.len() {
                    break;
                }
                if b[j] == b'\n' {
                    line += 1;
                    j += 1;
                    continue;
                }
                if b[j] == b'"' {
                    let mut k = j + 1;
                    let mut h = 0;
                    while k < b.len() && b[k] == b'#' && h < hashes {
                        h += 1;
                        k += 1;
                    }
                    if h == hashes {
                        j = k;
                        break;
                    }
                }
                j += 1;
            }
            toks.push(Token { kind: TokenKind::Literal, text: String::new(), line, in_test: false });
            i = j;
            continue;
        }
        // Plain or byte string.
        if c == '"' || (c == 'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Token { kind: TokenKind::Literal, text: String::new(), line, in_test: false });
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            let is_lifetime = i + 1 < b.len()
                && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                && !(i + 2 < b.len() && b[i + 2] == b'\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Lifetime,
                    text: String::new(),
                    line,
                    in_test: false,
                });
                i = j;
                continue;
            }
            // Char literal, e.g. 'x', '\n', '\u{1F600}'.
            let mut j = i + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'\'' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Token { kind: TokenKind::Literal, text: String::new(), line, in_test: false });
            i = j;
            continue;
        }
        // Identifier / keyword (incl. raw identifiers r#name).
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            if c == 'r' && i + 1 < b.len() && b[i + 1] == b'#' && i + 2 < b.len()
                && (b[i + 2].is_ascii_alphabetic() || b[i + 2] == b'_')
            {
                j = i + 2;
            }
            let start = j;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            toks.push(Token {
                kind: TokenKind::Ident,
                text: src[start..j].to_string(),
                line,
                in_test: false,
            });
            i = j;
            continue;
        }
        // Number. `1.0`, `1e9`, `0xFF`, `1_000`, `2.5f64`, but `0..n` is
        // two ints around a `..`, and `x.1` tuple indexing stays an int.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut float = false;
            if c == '0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
                j += 2;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
            } else {
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                    j += 1;
                }
                // Fractional part: a '.' NOT followed by a second '.'
                // (range) or an identifier start (method call / tuple).
                if j < b.len()
                    && b[j] == b'.'
                    && !(j + 1 < b.len()
                        && (b[j + 1] == b'.'
                            || b[j + 1].is_ascii_alphabetic()
                            || b[j + 1] == b'_'))
                {
                    float = true;
                    j += 1;
                    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                        j += 1;
                    }
                }
                // Exponent.
                if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
                    let mut k = j + 1;
                    if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
                        k += 1;
                    }
                    if k < b.len() && b[k].is_ascii_digit() {
                        float = true;
                        j = k;
                        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                            j += 1;
                        }
                    }
                }
                // Type suffix.
                if src[j..].starts_with("f32") || src[j..].starts_with("f64") {
                    float = true;
                    j += 3;
                } else {
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                }
            }
            toks.push(Token {
                kind: if float { TokenKind::Float } else { TokenKind::Int },
                text: src[i..j].to_string(),
                line,
                in_test: false,
            });
            i = j;
            continue;
        }
        // Operator / punctuation: greedy two-char match first.
        if i + 1 < b.len() {
            let two = &src[i..i + 2];
            if TWO.contains(&two) {
                toks.push(Token {
                    kind: TokenKind::Punct,
                    text: two.to_string(),
                    line,
                    in_test: false,
                });
                i += 2;
                continue;
            }
        }
        toks.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, in_test: false });
        i += 1;
    }

    mark_test_regions(&mut toks);
    toks
}

/// True when `b[i..]` starts a raw (possibly byte) string: `r"`, `r#`,
/// `br"`, `br#`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Mark every token inside a `#[cfg(test)]`-gated item (or a `#[test]`
/// function) as test code. Tracks brace depth; a pending gate attaches to
/// the next `{ ... }` region at the gate's depth.
fn mark_test_regions(toks: &mut [Token]) {
    let mut depth: i32 = 0;
    // Stack of depths at which a test region opened.
    let mut test_regions: Vec<i32> = Vec::new();
    let mut pending_gate = false;
    let mut k = 0usize;
    while k < toks.len() {
        // Detect `#[cfg(test)]` / `#[cfg(all(test, ...))]` / `#[test]`.
        if toks[k].kind == TokenKind::Punct && toks[k].text == "#" {
            // Scan the attribute's bracket group.
            if k + 1 < toks.len() && toks[k + 1].text == "[" {
                let mut j = k + 2;
                let mut brackets = 1;
                let mut saw_test = false;
                let mut saw_cfg_or_test_attr = false;
                while j < toks.len() && brackets > 0 {
                    match toks[j].text.as_str() {
                        "[" => brackets += 1,
                        "]" => brackets -= 1,
                        "cfg" | "cfg_attr" => saw_cfg_or_test_attr = true,
                        "test" => {
                            saw_test = true;
                            // A bare `#[test]` attribute.
                            if j == k + 2 {
                                saw_cfg_or_test_attr = true;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if saw_test && saw_cfg_or_test_attr {
                    pending_gate = true;
                }
                // Attribute tokens themselves inherit the current state.
                for t in toks.iter_mut().take(j).skip(k) {
                    t.in_test = !test_regions.is_empty();
                }
                k = j;
                continue;
            }
        }
        match toks[k].text.as_str() {
            "{" => {
                if pending_gate {
                    test_regions.push(depth);
                    pending_gate = false;
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if test_regions.last() == Some(&depth) {
                    // Mark the closing brace itself, then pop.
                    toks[k].in_test = true;
                    test_regions.pop();
                    k += 1;
                    continue;
                }
            }
            // `#[cfg(test)] use ...;` — gate applies to a braceless
            // item; it ends at the semicolon.
            ";" if pending_gate => {
                toks[k].in_test = true;
                pending_gate = false;
            }
            _ => {}
        }
        toks[k].in_test = toks[k].in_test || !test_regions.is_empty() || pending_gate;
        k += 1;
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Rule identifier (e.g. `panic-site`).
    pub rule: &'static str,
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
    /// The offending token text (used for allowlist matching context).
    pub token: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleScope {
    /// `nondet-collection` applies (solver/simulation paths).
    pub nondet: bool,
    /// `float-eq` applies.
    pub float_eq: bool,
    /// `panic-site` applies (library code of the core crates).
    pub panic: bool,
    /// `wall-clock` applies (simulated-time code).
    pub wall_clock: bool,
    /// `deprecated-shim` applies (everywhere but the shims' home).
    pub deprecated_shim: bool,
    /// `thread-spawn` applies (everywhere but the sanctioned pool).
    pub thread: bool,
    /// `unbounded-queue` applies (serving path, minus the bounded queue).
    pub unbounded_queue: bool,
    /// `blocking-in-handler` applies (serving path).
    pub blocking: bool,
}

/// Classify a workspace-relative path (`crates/remos-net/src/engine.rs`).
pub fn scope_for(rel: &Path) -> RuleScope {
    let p = rel.to_string_lossy().replace('\\', "/");
    // Examples are binaries, but they are the code users copy first: they
    // must model typed error handling and the QuerySpec API, so the panic
    // and shim rules apply to them even though other binaries are exempt.
    if p.starts_with("examples/") && p.ends_with(".rs") {
        return RuleScope { panic: true, deprecated_shim: true, ..RuleScope::default() };
    }
    // Only library sources are audited; binaries may print/panic freely.
    let in_src = p.contains("/src/");
    if !in_src || p.contains("/src/bin/") || p.ends_with("/main.rs") {
        return RuleScope::default();
    }
    let serve_crate = p.starts_with("crates/remos-serve/");
    let lib_crate = p.starts_with("crates/remos-core/")
        || p.starts_with("crates/remos-net/")
        || p.starts_with("crates/remos-snmp/")
        || serve_crate;
    let audited_crates = lib_crate
        || p.starts_with("crates/remos-fx/")
        || p.starts_with("crates/remos-apps/")
        || p.starts_with("crates/remos-obs/");
    // Shed/admission decisions must be exactly reproducible, so the
    // serving crate is held to the same determinism bar as the solver.
    let solver_path = p.starts_with("crates/remos-net/src/")
        || p.starts_with("crates/remos-core/src/modeler/")
        || serve_crate
        || p == "crates/remos-snmp/src/sim.rs";
    // remos-obs/src/clock.rs is the one sanctioned wall-clock source: it
    // exists to *plug* a clock into Obs, and SimTime-stamped tracing in
    // simulated code never routes through it.
    let sanctioned_clock = p == "crates/remos-obs/src/clock.rs";
    // The shared scoped worker pool is the one sanctioned thread
    // source: it runs pure computation over immutable shared data with
    // deterministic (input-order) result placement, and never touches
    // the simulated clock, the collector, or the trace recorder. It
    // lives in remos-net (the engine parallelizes independent solver
    // components over it) and is re-exported as `modeler::pool`; the
    // historical re-export path stays sanctioned so the thin shim file
    // never trips the rule either.
    let sanctioned_pool = p == "crates/remos-net/src/pool.rs"
        || p == "crates/remos-core/src/modeler/pool.rs";
    // queue.rs is the serving crate's one sanctioned VecDeque home: its
    // FairQueue enforces the depth/cost bounds every other module must
    // route backlog through.
    let sanctioned_queue = p == "crates/remos-serve/src/queue.rs";
    RuleScope {
        nondet: solver_path,
        float_eq: audited_crates,
        panic: lib_crate,
        wall_clock: audited_crates && !sanctioned_clock,
        // The positional shims were removed; nothing may call them, and
        // the rule keeps them from creeping back in.
        deprecated_shim: true,
        thread: audited_crates && !sanctioned_pool,
        unbounded_queue: serve_crate && !sanctioned_queue,
        blocking: serve_crate,
    }
}

/// Run every applicable rule over one lexed file.
pub fn check_tokens(file: &Path, toks: &[Token], scope: RuleScope) -> Vec<Violation> {
    let mut out = Vec::new();
    let mk = |rule: &'static str, line: u32, token: &str, message: String| Violation {
        rule,
        file: file.to_path_buf(),
        line,
        message,
        token: token.to_string(),
    };
    for (k, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let name = t.text.as_str();
                if scope.nondet && (name == "HashMap" || name == "HashSet") {
                    out.push(mk(
                        "nondet-collection",
                        t.line,
                        name,
                        format!(
                            "{name} in a solver/simulation path: iteration order can leak \
                             into results; use BTreeMap/BTreeSet or sorted iteration"
                        ),
                    ));
                }
                if scope.wall_clock && (name == "Instant" || name == "SystemTime") {
                    // `Instant` as a bare ident could be a local type; only
                    // flag when it is std::time's (preceded by `time ::` or
                    // followed by `:: now`).
                    let from_std_time = k >= 2
                        && toks[k - 1].text == "::"
                        && toks[k - 2].text == "time";
                    let calls_now = k + 2 < toks.len()
                        && toks[k + 1].text == "::"
                        && toks[k + 2].text == "now";
                    if from_std_time || calls_now || name == "SystemTime" {
                        out.push(mk(
                            "wall-clock",
                            t.line,
                            name,
                            format!(
                                "{name} in simulated-time code: wall-clock reads make runs \
                                 irreproducible; thread SimTime through instead"
                            ),
                        ));
                    }
                }
                if scope.deprecated_shim
                    && matches!(name, "get_graph" | "flow_info" | "reachable_peers")
                {
                    let is_method = k >= 1 && toks[k - 1].text == ".";
                    let is_call = k + 1 < toks.len() && toks[k + 1].text == "(";
                    if is_method && is_call {
                        out.push(mk(
                            "deprecated-shim",
                            t.line,
                            name,
                            format!(
                                ".{name}() is a deprecated positional shim: build the query \
                                 with `Query::..` and execute it with `Remos::run`"
                            ),
                        ));
                    }
                }
                if scope.thread && name == "thread" {
                    // Flag std::thread uses: `std :: thread` before, or
                    // `thread :: <api>` after. Bare `thread` idents
                    // (locals, fields) are left alone.
                    let from_std = k >= 2
                        && toks[k - 1].text == "::"
                        && toks[k - 2].text == "std";
                    let thread_api = k + 2 < toks.len()
                        && toks[k + 1].text == "::"
                        && matches!(
                            toks[k + 2].text.as_str(),
                            "spawn" | "scope" | "sleep" | "Builder" | "available_parallelism"
                        );
                    if from_std || thread_api {
                        out.push(mk(
                            "thread-spawn",
                            t.line,
                            name,
                            "std::thread in library code: OS scheduling leaks into results; \
                             the shared worker pool (remos-net/src/pool.rs) is the \
                             sanctioned exemption"
                                .to_string(),
                        ));
                    }
                }
                if scope.unbounded_queue && name == "VecDeque" {
                    out.push(mk(
                        "unbounded-queue",
                        t.line,
                        name,
                        "VecDeque in the serving path: ad-hoc buffering defeats admission \
                         control; route backlog through the bounded FairQueue (queue.rs)"
                            .to_string(),
                    ));
                }
                if scope.blocking
                    && matches!(
                        name,
                        "recv" | "recv_timeout" | "park" | "park_timeout" | "sleep" | "wait"
                            | "wait_timeout"
                    )
                {
                    // Only calls: `.recv(` / `thread::sleep(` — a field or
                    // local named `wait` is left alone.
                    let is_receiver = k >= 1
                        && (toks[k - 1].text == "." || toks[k - 1].text == "::");
                    let is_call = k + 1 < toks.len() && toks[k + 1].text == "(";
                    if is_receiver && is_call {
                        out.push(mk(
                            "blocking-in-handler",
                            t.line,
                            name,
                            format!(
                                "{name}() in the serving path: the server is a cooperative \
                                 loop on simulated time; a blocking call stalls every tenant"
                            ),
                        ));
                    }
                }
                if scope.panic {
                    let is_method = k >= 1 && toks[k - 1].text == ".";
                    let is_macro = k + 1 < toks.len() && toks[k + 1].text == "!";
                    if (name == "unwrap" || name == "expect") && is_method {
                        out.push(mk(
                            "panic-site",
                            t.line,
                            name,
                            format!(
                                ".{name}() in library code: return a typed error instead \
                                 (or allowlist with a justification)"
                            ),
                        ));
                    }
                    if is_macro
                        && matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                    {
                        out.push(mk(
                            "panic-site",
                            t.line,
                            name,
                            format!("{name}! in library code: return a typed error instead"),
                        ));
                    }
                }
            }
            TokenKind::Punct if scope.float_eq && (t.text == "==" || t.text == "!=") => {
                let float_operand = |tok: Option<&Token>| -> bool {
                    match tok {
                        Some(t) => {
                            t.kind == TokenKind::Float
                                || (t.kind == TokenKind::Ident
                                    && (t.text == "f32" || t.text == "f64"))
                        }
                        None => false,
                    }
                };
                if float_operand(k.checked_sub(1).and_then(|j| toks.get(j)))
                    || float_operand(toks.get(k + 1))
                {
                    out.push(mk(
                        "float-eq",
                        t.line,
                        &t.text,
                        format!(
                            "float `{}` comparison: bandwidth/latency values need an \
                             epsilon or ordering comparison",
                            t.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// One allowlist entry: `rule path-suffix needle...`.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    /// Rule the waiver applies to.
    pub rule: String,
    /// Path suffix matched against the violation's file.
    pub path: String,
    /// Substring that must occur in the offending source line.
    pub needle: String,
    /// Line of the allowlist file (for stale-entry reporting).
    pub line: u32,
}

/// Parse `audit.allow`. Lines: `<rule> <path-suffix> <needle ...>`;
/// `#` comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path), Some(needle)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        out.push(AllowEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            needle: needle.trim().to_string(),
            line: i as u32 + 1,
        });
    }
    out
}

/// Result of filtering violations through the allowlist.
#[derive(Debug, Default)]
pub struct Filtered {
    /// Violations not covered by any allowlist entry.
    pub rejected: Vec<Violation>,
    /// Violations waived, paired with the entry index that covered them.
    pub waived: Vec<(Violation, usize)>,
    /// Indices of allowlist entries that matched nothing (stale).
    pub stale_entries: Vec<usize>,
}

/// Filter `violations` through the allowlist. `source_line` looks up the
/// text of a violation's line so needles can be matched.
pub fn apply_allowlist(
    violations: Vec<Violation>,
    allow: &[AllowEntry],
    mut source_line: impl FnMut(&Path, u32) -> String,
) -> Filtered {
    let mut used = vec![false; allow.len()];
    let mut out = Filtered::default();
    for v in violations {
        let text = source_line(&v.file, v.line);
        let vpath = v.file.to_string_lossy().replace('\\', "/");
        let hit = allow.iter().position(|a| {
            a.rule == v.rule && vpath.ends_with(&a.path) && text.contains(&a.needle)
        });
        match hit {
            Some(i) => {
                used[i] = true;
                out.waived.push((v, i));
            }
            None => out.rejected.push(v),
        }
    }
    out.stale_entries = used
        .iter()
        .enumerate()
        .filter_map(|(i, &u)| if u { None } else { Some(i) })
        .collect();
    out
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name != "target" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src)
    }

    fn all_scope() -> RuleScope {
        RuleScope {
            nondet: true,
            float_eq: true,
            panic: true,
            wall_clock: true,
            deprecated_shim: true,
            thread: true,
            unbounded_queue: true,
            blocking: true,
        }
    }

    fn check(src: &str) -> Vec<Violation> {
        check_tokens(Path::new("crates/remos-net/src/x.rs"), &toks(src), all_scope())
    }

    #[test]
    fn lexer_skips_comments_and_strings() {
        let v = check(
            r##"
            // HashMap in a comment
            /* HashMap in a block /* nested HashMap */ */
            fn f() { let s = "HashMap"; let c = 'H'; let r = r#"HashMap"#; }
            "##,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hashmap_flagged_outside_tests_only() {
        let v = check("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }");
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "nondet-collection"));
        let v = check("#[cfg(test)]\nmod tests { use std::collections::HashMap; }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_region_tracks_braces() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn inner() { x.unwrap(); }
            }
            fn outer() { y.unwrap(); }
        ";
        let v = check(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn unwrap_and_macros_flagged() {
        let v = check("fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }");
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "panic-site"));
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let v = check("fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_detected_by_literal_operand() {
        let v = check("fn f() { if x == 0.0 { } if 1.5 != y { } }");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "float-eq"));
        // Integer equality untouched; ranges not misread as floats.
        let v = check("fn f() { if x == 0 { } for i in 0..n { } }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_lexing_edge_cases() {
        let t = toks("1.0 2e9 0.5f64 1_000 0xFF 0..3 x.0");
        let kinds: Vec<TokenKind> = t.iter().map(|t| t.kind).collect();
        assert_eq!(kinds[0], TokenKind::Float);
        assert_eq!(kinds[1], TokenKind::Float);
        assert_eq!(kinds[2], TokenKind::Float);
        assert_eq!(kinds[3], TokenKind::Int);
        assert_eq!(kinds[4], TokenKind::Int);
        // 0..3 lexes int, dotdot, int.
        assert_eq!(&t[5].text, "0");
        assert_eq!(&t[6].text, "..");
        assert_eq!(&t[7].text, "3");
    }

    #[test]
    fn wall_clock_detected() {
        let v = check("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wall-clock");
        let v = check("fn f() { let t = SystemTime::now(); }");
        assert_eq!(v.len(), 1);
        // A local type named Instant without ::now is not flagged.
        let v = check("struct Instant; fn f(x: Instant) {}");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A lifetime must not open a char literal that swallows the rest.
        let v = check("fn f<'a>(x: &'a str) { y.unwrap(); }");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn test_attribute_gates_next_fn() {
        let src = "
            #[test]
            fn a_test() { x.unwrap(); }
            fn lib() { y.unwrap(); }
        ";
        let v = check(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn scope_classification() {
        let s = scope_for(Path::new("crates/remos-net/src/engine.rs"));
        assert!(s.nondet && s.panic && s.float_eq && s.wall_clock);
        let s = scope_for(Path::new("crates/remos-core/src/api.rs"));
        assert!(!s.nondet && s.panic);
        // The positional shims are gone; api.rs is held to the same bar.
        assert!(s.deprecated_shim);
        let s = scope_for(Path::new("crates/remos-core/src/modeler/mod.rs"));
        assert!(s.nondet && s.deprecated_shim);
        let s = scope_for(Path::new("crates/remos-snmp/src/sim.rs"));
        assert!(s.nondet);
        let s = scope_for(Path::new("crates/remos-fx/src/adapt.rs"));
        assert!(!s.nondet && !s.panic && s.float_eq && s.deprecated_shim);
        let s = scope_for(Path::new("crates/cli/src/commands.rs"));
        assert!(!s.float_eq && !s.panic && s.deprecated_shim);
        let s = scope_for(Path::new("crates/cli/src/main.rs"));
        assert!(!s.float_eq && !s.panic && !s.deprecated_shim);
        let s = scope_for(Path::new("crates/bench/src/bin/fig4.rs"));
        assert!(!s.float_eq && !s.panic && !s.deprecated_shim);
        // remos-obs is audited like the other library crates, except its
        // clock module, which is the sanctioned wall-clock source.
        let s = scope_for(Path::new("crates/remos-obs/src/metrics.rs"));
        assert!(s.float_eq && s.wall_clock && !s.panic);
        let s = scope_for(Path::new("crates/remos-obs/src/clock.rs"));
        assert!(s.float_eq && !s.wall_clock);
        // The shared worker pool is the one sanctioned thread source
        // (both its remos-net home and the modeler re-export path);
        // everywhere else in the library crates threads are flagged.
        let s = scope_for(Path::new("crates/remos-net/src/pool.rs"));
        assert!(!s.thread && s.panic);
        let s = scope_for(Path::new("crates/remos-core/src/modeler/pool.rs"));
        assert!(!s.thread && s.panic && s.nondet);
        let s = scope_for(Path::new("crates/remos-core/src/api.rs"));
        assert!(s.thread);
        let s = scope_for(Path::new("crates/remos-fx/src/adapt.rs"));
        assert!(s.thread);
        let s = scope_for(Path::new("crates/bench/src/bin/fig4.rs"));
        assert!(!s.thread);
        // The serving crate: library-grade (panic, determinism) plus its
        // own queue and blocking rules; queue.rs is the sanctioned home.
        let s = scope_for(Path::new("crates/remos-serve/src/server.rs"));
        assert!(s.panic && s.nondet && s.unbounded_queue && s.blocking);
        let s = scope_for(Path::new("crates/remos-serve/src/queue.rs"));
        assert!(!s.unbounded_queue && s.blocking && s.panic);
        // Examples are audited for panics and shim calls — they are the
        // code users copy — but not for solver-path determinism rules.
        let s = scope_for(Path::new("examples/quickstart.rs"));
        assert!(s.panic && s.deprecated_shim);
        assert!(!s.nondet && !s.float_eq && !s.unbounded_queue && !s.blocking);
    }

    #[test]
    fn vecdeque_flagged_outside_sanctioned_queue() {
        let v = check("use std::collections::VecDeque;\nfn f() { let q: VecDeque<u32>; }");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "unbounded-queue"));
        // The sanctioned queue module's scope turns the rule off.
        let mut s = all_scope();
        s.unbounded_queue = false;
        let v = check_tokens(
            Path::new("crates/remos-serve/src/queue.rs"),
            &toks("use std::collections::VecDeque;"),
            s,
        );
        assert!(v.iter().all(|v| v.rule != "unbounded-queue"), "{v:?}");
    }

    #[test]
    fn blocking_calls_flagged_only_as_calls() {
        let v = check("fn f() { rx.recv(); std::thread::sleep(d); cv.wait(guard); }");
        let blocking: Vec<_> =
            v.iter().filter(|v| v.rule == "blocking-in-handler").collect();
        assert_eq!(blocking.len(), 3, "{v:?}");
        // Fields and locals named like blocking APIs are left alone.
        let v = check("fn f(wait: u64) -> u64 { let sleep = wait + 1; sleep }");
        assert!(v.iter().all(|v| v.rule != "blocking-in-handler"), "{v:?}");
        // Test code is exempt, as for every rule.
        let v = check("#[cfg(test)] mod t { fn f() { rx.recv(); } }");
        assert!(v.iter().all(|v| v.rule != "blocking-in-handler"), "{v:?}");
    }

    #[test]
    fn thread_spawn_flagged_outside_pool() {
        let v = check("fn f() { std::thread::spawn(|| {}); }");
        assert!(v.iter().any(|v| v.rule == "thread-spawn"), "{v:?}");
        let v = check("fn f() { thread::scope(|s| { s.spawn(|| {}); }); }");
        assert!(v.iter().any(|v| v.rule == "thread-spawn"), "{v:?}");
        let v = check("fn f() -> usize { thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }");
        assert!(v.iter().any(|v| v.rule == "thread-spawn"), "{v:?}");
        // Bare `thread` idents (locals, fields) are not std::thread.
        let v = check("fn f(thread: usize) -> usize { thread + 1 }");
        assert!(v.iter().all(|v| v.rule != "thread-spawn"), "{v:?}");
        // Test code is exempt, as for every rule.
        let v = check("#[cfg(test)] mod t { fn f() { std::thread::spawn(|| {}); } }");
        assert!(v.iter().all(|v| v.rule != "thread-spawn"), "{v:?}");
    }

    #[test]
    fn deprecated_shim_calls_flagged() {
        let v = check("fn f() { remos.get_graph(&refs, tf); r.flow_info(&req, tf); }");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "deprecated-shim"));
        // Definitions and path references are not calls.
        let v = check("pub fn get_graph(&mut self) {} fn g() { Modeler::flow_info; }");
        assert!(v.is_empty(), "{v:?}");
        // Migrated call sites pass.
        let v = check("fn f() { remos.run(Query::graph([\"a\"])).unwrap(); }");
        assert!(v.iter().all(|v| v.rule != "deprecated-shim"), "{v:?}");
    }

    #[test]
    fn allowlist_waives_and_reports_stale() {
        let allow = parse_allowlist(
            "# comment\n\
             panic-site src/x.rs SimTime overflow\n\
             panic-site src/never.rs no such line\n",
        );
        assert_eq!(allow.len(), 2);
        let v = vec![Violation {
            rule: "panic-site",
            file: PathBuf::from("crates/remos-net/src/x.rs"),
            line: 3,
            message: String::new(),
            token: "expect".into(),
        }];
        let f = apply_allowlist(v, &allow, |_, _| ".expect(\"SimTime overflow\")".to_string());
        assert_eq!(f.waived.len(), 1);
        assert!(f.rejected.is_empty());
        assert_eq!(f.stale_entries, vec![1]);
    }

    #[test]
    fn needle_must_match_line() {
        let allow = parse_allowlist("panic-site src/x.rs some other text\n");
        let v = vec![Violation {
            rule: "panic-site",
            file: PathBuf::from("crates/remos-net/src/x.rs"),
            line: 3,
            message: String::new(),
            token: "unwrap".into(),
        }];
        let f = apply_allowlist(v, &allow, |_, _| "x.unwrap()".to_string());
        assert_eq!(f.rejected.len(), 1);
        assert!(f.waived.is_empty());
    }
}
