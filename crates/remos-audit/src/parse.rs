//! Item/block parser layered on the audit lexer.
//!
//! The token rules in `lib.rs` see one line at a time; the flow analyses
//! (lock order, determinism taint, error hygiene) need to know *which
//! function* a token belongs to, what that function calls, and what it
//! returns. This module recovers exactly that much structure — no types,
//! no expressions, no full AST — from the token stream:
//!
//! * `mod` / `impl` / `trait` nesting, so every `fn` gets a qualified
//!   name (`CircuitBreaker::allow`) and an owning-type context;
//! * `fn` items with parameter names (and the identifiers mentioned in
//!   each parameter's type, enough to spot `HashMap`-typed inputs) and a
//!   `-> …Result`-shaped return flag;
//! * per-function body token ranges for the analyses to scan.
//!
//! The parser is deliberately lossy: macro bodies, closures, and
//! expression grammar are not modelled. Anything it cannot classify it
//! skips, so a parse surprise degrades to "no finding", never to a crash
//! or a false cycle. That matches the audit's contract: it must run on a
//! bare `rustc` and never be the thing that can't.

use crate::{Token, TokenKind};
use std::path::{Path, PathBuf};

/// One parameter of a parsed function.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Binding name (`self` for receivers, `_` kept as-is).
    pub name: String,
    /// Identifiers appearing in the parameter's type, in order
    /// (`&HashMap<String, u64>` → `["HashMap", "String", "u64"]`).
    pub ty_idents: Vec<String>,
}

/// One function item recovered from a source file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare name (`allow`).
    pub name: String,
    /// Owning `impl`/`trait` type, when inside one (`CircuitBreaker`).
    pub impl_type: Option<String>,
    /// Workspace-relative file.
    pub file: PathBuf,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True for functions inside `#[cfg(test)]` regions.
    pub in_test: bool,
    /// True when the return type mentions a `…Result` identifier.
    pub returns_result: bool,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Token index range of the body (exclusive of the outer braces);
    /// empty for bodyless trait methods.
    pub body: (usize, usize),
}

impl FnInfo {
    /// `Type::name` when inside an impl/trait, else the bare name.
    pub fn qname(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that are never call names even when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] =
    &["if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn"];

/// Parse every `fn` item in a lexed file. `rel` is the workspace-relative
/// path recorded on each item.
pub fn parse_fns(rel: &Path, toks: &[Token]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    parse_items(rel, toks, 0, toks.len(), None, &mut out);
    out
}

/// Scan `toks[i..end]` for items, recursing into `mod`/`impl`/`trait`
/// bodies with the right context.
fn parse_items(
    rel: &Path,
    toks: &[Token],
    mut i: usize,
    end: usize,
    impl_type: Option<&str>,
    out: &mut Vec<FnInfo>,
) {
    while i < end {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" => {
                // `mod name { … }` — recurse; `mod name;` — skip.
                let Some(open) = find_body_open(toks, i + 1, end) else { break };
                if toks[open].text == "{" {
                    let close = matching_brace(toks, open, end);
                    parse_items(rel, toks, open + 1, close, impl_type, out);
                    i = close + 1;
                } else {
                    i = open + 1;
                }
            }
            "impl" | "trait" => {
                let kw_is_impl = t.text == "impl";
                // Find the body `{`, extracting the subject type on the way:
                // `impl<G> Type { …`, `impl<C> Trait for Type<C> { …`,
                // `trait Name { …`.
                let mut j = i + 1;
                let mut ty: Option<String> = None;
                let mut after_for = false;
                while j < end && toks[j].text != "{" && toks[j].text != ";" {
                    if toks[j].text == "<" {
                        j = skip_angles(toks, j, end);
                        continue;
                    }
                    if toks[j].kind == TokenKind::Ident {
                        if toks[j].text == "for" {
                            after_for = true;
                            ty = None;
                        } else if toks[j].text == "where" {
                            break;
                        } else if ty.is_none() || (kw_is_impl && after_for && ty.is_none()) {
                            ty = Some(toks[j].text.clone());
                        }
                    }
                    j += 1;
                }
                while j < end && toks[j].text != "{" && toks[j].text != ";" {
                    j += 1; // where clause
                }
                if j < end && toks[j].text == "{" {
                    let close = matching_brace(toks, j, end);
                    parse_items(rel, toks, j + 1, close, ty.as_deref(), out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" => {
                // `fn` in type position (`fn(usize) -> u32`) has no name.
                let Some(name_tok) = toks.get(i + 1) else { break };
                if name_tok.kind != TokenKind::Ident {
                    i += 1;
                    continue;
                }
                match parse_fn(rel, toks, i, end, impl_type) {
                    Some((info, next)) => {
                        let body = info.body;
                        out.push(info);
                        // Nested `fn` items inside the body are real items.
                        parse_items(rel, toks, body.0, body.1, impl_type, out);
                        i = next;
                    }
                    None => i += 1,
                }
            }
            // Skip token-heavy non-fn items wholesale so struct fields and
            // match arms are never misread as items.
            "struct" | "enum" | "union" | "static" | "const" | "type" | "use" => {
                let Some(open) = find_body_open(toks, i + 1, end) else { break };
                if toks[open].text == "{" {
                    i = matching_brace(toks, open, end) + 1;
                } else {
                    i = open + 1;
                }
            }
            _ => i += 1,
        }
    }
}

/// From `start`, find the first `{` or `;` at angle/paren depth 0.
fn find_body_open(toks: &[Token], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" | ";" if depth <= 0 => return Some(j),
            "{" => {
                // A brace inside a const initializer etc.: balance it.
                j = matching_brace(toks, j, end);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or `end - 1`).
pub fn matching_brace(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    end.saturating_sub(1)
}

/// Skip a balanced `<…>` generic group starting at `open` (`<`). Returns
/// the index just past the matching `>`.
fn skip_angles(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            return j;
        }
    }
    end
}

/// Parse one `fn` item whose `fn` keyword sits at `at`. Returns the item
/// and the index just past it.
fn parse_fn(
    rel: &Path,
    toks: &[Token],
    at: usize,
    end: usize,
    impl_type: Option<&str>,
) -> Option<(FnInfo, usize)> {
    let name = toks[at + 1].text.clone();
    let line = toks[at].line;
    let in_test = toks[at].in_test;
    let mut j = at + 2;
    if j < end && toks[j].text == "<" {
        j = skip_angles(toks, j, end);
    }
    if j >= end || toks[j].text != "(" {
        return None;
    }
    // Parameters: idents followed by `:` at paren depth 1, plus `self`.
    let mut params = Vec::new();
    let mut depth = 0i32;
    let open_paren = j;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "<" => {
                j = skip_angles(toks, j, end);
                continue;
            }
            _ => {}
        }
        if depth == 1 && toks[j].kind == TokenKind::Ident {
            if toks[j].text == "self" && params.is_empty() {
                params.push(Param { name: "self".into(), ty_idents: Vec::new() });
            } else if toks.get(j + 1).is_some_and(|n| n.text == ":")
                && toks[j].text != "mut"
                && j > open_paren
                && !matches!(toks[j - 1].text.as_str(), ":" | "::")
            {
                // `name: Type` — collect type idents up to `,` or `)` at
                // this depth.
                let mut ty = Vec::new();
                let mut k = j + 2;
                let mut d2 = 0i32;
                while k < end {
                    match toks[k].text.as_str() {
                        "(" | "[" => d2 += 1,
                        ")" | "]" if d2 == 0 => break,
                        ")" | "]" => d2 -= 1,
                        "<" => d2 += 1,
                        ">" => d2 -= 1,
                        ">>" => d2 -= 2,
                        "," if d2 <= 0 => break,
                        _ => {}
                    }
                    if toks[k].kind == TokenKind::Ident {
                        ty.push(toks[k].text.clone());
                    }
                    k += 1;
                }
                params.push(Param { name: toks[j].text.clone(), ty_idents: ty });
            }
        }
        j += 1;
    }
    // Return type: tokens between `->` and the body `{` / `;` / `where`.
    let mut returns_result = false;
    j += 1; // past `)`
    if j < end && toks[j].text == "->" {
        j += 1;
        let mut d2 = 0i32;
        while j < end {
            match toks[j].text.as_str() {
                "<" => d2 += 1,
                ">" => d2 -= 1,
                ">>" => d2 -= 2,
                "(" | "[" => d2 += 1,
                ")" | "]" => d2 -= 1,
                "{" | ";" if d2 <= 0 => break,
                _ => {}
            }
            if toks[j].kind == TokenKind::Ident {
                if toks[j].text == "where" && d2 <= 0 {
                    break;
                }
                if toks[j].text.ends_with("Result") {
                    returns_result = true;
                }
            }
            j += 1;
        }
    }
    while j < end && toks[j].text != "{" && toks[j].text != ";" {
        j += 1; // where clause
    }
    if j >= end {
        return None;
    }
    let (body, next) = if toks[j].text == "{" {
        let close = matching_brace(toks, j, end);
        ((j + 1, close), close + 1)
    } else {
        ((j, j), j + 1) // bodyless trait method
    };
    Some((
        FnInfo {
            name,
            impl_type: impl_type.map(str::to_string),
            file: rel.to_path_buf(),
            line,
            in_test,
            returns_result,
            params,
            body,
        },
        next,
    ))
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee's last path segment (`poll`, `solve_scoped`).
    pub name: String,
    /// Path qualifier just before `::name(` (`Solver` in
    /// `Solver::solve_scoped(…)`), when present.
    pub qual: Option<String>,
    /// Dotted receiver chain before `.name(` (`["self", "inner"]` for
    /// `self.inner.poll(…)`), empty for free/path calls.
    pub recv: Vec<String>,
    /// True for `.name(` method calls — including calls on an
    /// expression result (`x.lock().step(…)`), whose `recv` is empty
    /// because the receiver is not a plain ident chain.
    pub method: bool,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// Token index range of the argument list (inside the parens).
    pub args: (usize, usize),
    /// 1-based source line.
    pub line: u32,
}

/// Extract every call site in `toks[range]`. Macro invocations
/// (`name!(…)`) are not calls and are skipped.
pub fn calls_in(toks: &[Token], range: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (start, end) = range;
    for k in start..end {
        if toks[k].kind != TokenKind::Ident {
            continue;
        }
        let name = toks[k].text.as_str();
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let Some(next) = toks.get(k + 1) else { continue };
        if next.text != "(" {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if k > 0 && toks[k - 1].text == "fn" {
            continue;
        }
        let close = matching_paren(toks, k + 1, end);
        let (qual, recv) = context_of(toks, k);
        let method = k > 0 && toks[k - 1].text == ".";
        out.push(CallSite {
            name: name.to_string(),
            qual,
            recv,
            method,
            tok: k,
            args: (k + 2, close),
            line: toks[k].line,
        });
    }
    out
}

/// Index of the `)` matching the `(` at `open` (or `end - 1`).
fn matching_paren(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    end.saturating_sub(1)
}

/// Qualifier and receiver chain of the call whose name sits at `k`.
fn context_of(toks: &[Token], k: usize) -> (Option<String>, Vec<String>) {
    if k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == TokenKind::Ident {
        return (Some(toks[k - 2].text.clone()), Vec::new());
    }
    if k >= 1 && toks[k - 1].text == "." {
        // Walk back over `ident ( . ident )*`.
        let mut chain = Vec::new();
        let mut j = k - 1;
        loop {
            if j == 0 || toks[j].text != "." {
                break;
            }
            let prev = j - 1;
            if toks[prev].kind == TokenKind::Ident {
                chain.push(toks[prev].text.clone());
                if prev == 0 {
                    break;
                }
                j = prev - 1;
            } else {
                break;
            }
        }
        chain.reverse();
        return (None, chain);
    }
    (None, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn fns(src: &str) -> Vec<FnInfo> {
        parse_fns(Path::new("crates/remos-net/src/x.rs"), &lex(src))
    }

    #[test]
    fn free_and_impl_fns_get_qualified_names() {
        let got = fns("
            pub fn free(a: u32) -> CoreResult<u32> { a }
            struct S { f: u32 }
            impl S {
                fn method(&self, m: &HashMap<String, u64>) { let _x = m; }
            }
            impl Clone for S {
                fn clone(&self) -> S { S { f: 0 } }
            }
        ");
        let names: Vec<String> = got.iter().map(|f| f.qname()).collect();
        assert_eq!(names, vec!["free", "S::method", "S::clone"]);
        assert!(got[0].returns_result);
        assert!(!got[1].returns_result);
        assert_eq!(got[1].params[0].name, "self");
        assert_eq!(got[1].params[1].name, "m");
        assert!(got[1].params[1].ty_idents.contains(&"HashMap".to_string()));
    }

    #[test]
    fn generic_impl_for_extracts_the_subject_type() {
        let got = fns("
            impl<C: Collector> Collector for BreakerCollector<C> {
                fn poll(&mut self) -> CoreResult<bool> { self.inner.poll() }
            }
        ");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].qname(), "BreakerCollector::poll");
        assert!(got[0].returns_result);
    }

    #[test]
    fn nested_modules_and_test_gates() {
        let got = fns("
            mod outer {
                pub fn lib_fn() {}
                #[cfg(test)]
                mod tests {
                    fn test_helper() {}
                }
            }
        ");
        assert_eq!(got.len(), 2);
        assert!(!got[0].in_test);
        assert!(got[1].in_test);
    }

    #[test]
    fn trait_methods_with_and_without_bodies() {
        let got = fns("
            trait Collector {
                fn poll(&mut self) -> CoreResult<bool>;
                fn describe(&self) -> String { String::new() }
            }
        ");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].qname(), "Collector::poll");
        assert_eq!(got[0].body.0, got[0].body.1);
        assert_eq!(got[1].qname(), "Collector::describe");
        assert!(got[1].body.1 > got[1].body.0);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let got = fns("pub fn takes(f: fn(usize) -> u32) -> u32 { f(1) }");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "takes");
    }

    #[test]
    fn call_sites_with_receiver_and_qualifier() {
        let src = "fn f(&self) { self.inner.poll(); Solver::solve_scoped(a, b); helper(x); }";
        let toks = lex(src);
        let items = parse_fns(Path::new("x.rs"), &toks);
        let calls = calls_in(&toks, items[0].body);
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[0].name, "poll");
        assert_eq!(calls[0].recv, vec!["self", "inner"]);
        assert_eq!(calls[1].name, "solve_scoped");
        assert_eq!(calls[1].qual.as_deref(), Some("Solver"));
        assert_eq!(calls[2].name, "helper");
        assert!(calls[2].recv.is_empty() && calls[2].qual.is_none());
    }

    #[test]
    fn macros_are_not_calls() {
        let src = "fn f() { panic!(\"x\"); vec![1]; real(1); }";
        let toks = lex(src);
        let items = parse_fns(Path::new("x.rs"), &toks);
        let calls = calls_in(&toks, items[0].body);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "real");
    }

    #[test]
    fn where_clauses_and_nested_fns() {
        let got = fns("
            pub fn outer<J, R>(jobs: &[J]) -> Vec<R>
            where
                J: Sync,
                R: Send,
            {
                fn inner(x: u32) -> u32 { x }
                inner(1);
                Vec::new()
            }
        ");
        let names: Vec<&str> = got.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
