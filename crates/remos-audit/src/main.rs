//! Audit driver: lint every workspace crate's library sources and run
//! the cross-file lock-order / determinism-taint / error-hygiene
//! analyses.
//!
//! ```text
//! cargo run -p remos-audit                         # audit from the workspace root
//! cargo run -p remos-audit -- <root>               # audit an explicit checkout
//! cargo run -p remos-audit -- --format sarif --out remos-audit.sarif
//! cargo run -p remos-audit -- --fix-allowlist      # drop stale audit.allow entries
//! ```
//!
//! Exit status is non-zero when any violation is not covered by the
//! checked-in `audit.allow` file, or when the allowlist contains stale
//! entries (so waivers cannot outlive the code they excuse).
//! `--fix-allowlist` rewrites the allowlist minus the stale entries and
//! exits zero if nothing else is wrong.

use remos_audit::driver::{fix_allowlist, run};
use remos_audit::report;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut out_path: Option<PathBuf> = None;
    let mut fix = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "remos-audit: --format expects text|json|sarif, got {:?}",
                        other.unwrap_or("<none>")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("remos-audit: --out expects a path");
                    return ExitCode::FAILURE;
                }
            },
            "--fix-allowlist" => fix = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: remos-audit [ROOT] [--format text|json|sarif] [--out PATH] [--fix-allowlist]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("remos-audit: unknown flag {flag}");
                return ExitCode::FAILURE;
            }
            path => root = Some(PathBuf::from(path)),
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);

    let result = match run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("remos-audit: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stale: Vec<_> = result.stale_entries.iter().map(|&i| &result.allow[i]).collect();
    let rendered = match format {
        Format::Json => Some(report::to_json(&result.rejected, &stale)),
        Format::Sarif => Some(report::to_sarif(&result.rejected)),
        Format::Text => None,
    };
    match (&rendered, &out_path) {
        (Some(text), Some(path)) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("remos-audit: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        (Some(text), None) => print!("{text}"),
        (None, _) => {
            for v in &result.rejected {
                println!("{v}");
            }
            for idx in &result.stale_entries {
                let a = &result.allow[*idx];
                println!(
                    "{}:{}: [stale-allow] entry `{} {} {}` matched no violation; remove it",
                    result.allow_path.display(),
                    a.line,
                    a.rule,
                    a.path,
                    a.needle
                );
            }
        }
    }

    let mut stale_count = result.stale_entries.len();
    if fix && stale_count > 0 {
        match fix_allowlist(&result) {
            Ok(n) => {
                eprintln!(
                    "remos-audit: removed {n} stale entr{} from {}",
                    if n == 1 { "y" } else { "ies" },
                    result.allow_path.display()
                );
                stale_count = 0;
            }
            Err(e) => {
                eprintln!(
                    "remos-audit: cannot rewrite {}: {e}",
                    result.allow_path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        "remos-audit: {} files scanned, {} violations ({} waived by {}), {} stale allowlist entries",
        result.scanned,
        result.rejected.len(),
        result.waived.len(),
        result.allow_path.file_name().and_then(|n| n.to_str()).unwrap_or("audit.allow"),
        stale_count
    );
    if result.rejected.is_empty() && stale_count == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`; fall back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
