//! Audit driver: lint every workspace crate's library sources.
//!
//! ```text
//! cargo run -p remos-audit            # audit from the workspace root
//! cargo run -p remos-audit -- <root>  # audit an explicit checkout
//! ```
//!
//! Exit status is non-zero when any violation is not covered by the
//! checked-in `audit.allow` file, or when the allowlist contains stale
//! entries (so waivers cannot outlive the code they excuse).

use remos_audit::{
    apply_allowlist, check_tokens, lex, parse_allowlist, rust_files, scope_for, Filtered,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(find_workspace_root);
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        eprintln!("remos-audit: no `crates/` directory under {}", root.display());
        return ExitCode::FAILURE;
    }

    let allow_path = root.join("audit.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };

    let mut files = match rust_files(&crates_dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("remos-audit: cannot walk {}: {e}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    };
    // Examples are audited too (panic-site / deprecated-shim): they are
    // the first code users copy, so they must model typed error handling.
    let examples_dir = root.join("examples");
    if examples_dir.is_dir() {
        match rust_files(&examples_dir) {
            Ok(f) => files.extend(f),
            Err(e) => {
                eprintln!("remos-audit: cannot walk {}: {e}", examples_dir.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let mut violations = Vec::new();
    let mut sources: BTreeMap<PathBuf, Vec<String>> = BTreeMap::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let scope = scope_for(rel);
        if !(scope.nondet
            || scope.float_eq
            || scope.panic
            || scope.wall_clock
            || scope.deprecated_shim
            || scope.thread)
        {
            continue;
        }
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("remos-audit: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        scanned += 1;
        let toks = lex(&src);
        violations.extend(check_tokens(rel, &toks, scope));
        sources.insert(rel.to_path_buf(), src.lines().map(str::to_string).collect());
    }

    let Filtered { rejected, waived, stale_entries } =
        apply_allowlist(violations, &allow, |file, line| {
            sources
                .get(file)
                .and_then(|lines| lines.get(line as usize - 1))
                .cloned()
                .unwrap_or_default()
        });

    for v in &rejected {
        println!("{v}");
    }
    for idx in &stale_entries {
        let a = &allow[*idx];
        println!(
            "{}:{}: [stale-allow] entry `{} {} {}` matched no violation; remove it",
            allow_path.display(),
            a.line,
            a.rule,
            a.path,
            a.needle
        );
    }
    println!(
        "remos-audit: {} files scanned, {} violations ({} waived by {}), {} stale allowlist entries",
        scanned,
        rejected.len(),
        waived.len(),
        allow_path.file_name().and_then(|n| n.to_str()).unwrap_or("audit.allow"),
        stale_entries.len()
    );
    if rejected.is_empty() && stale_entries.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`; fall back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
