//! Workspace model: all lexed files, all parsed functions, and a
//! name-based call-resolution scheme the flow analyses share.
//!
//! Resolution is deliberately conservative-by-name: a call site
//! `x.poll()` resolves to *every* function named `poll` in the
//! workspace unless a qualifier or receiver narrows it. That
//! over-approximates dynamic dispatch (trait objects, generics) the
//! same way a human auditor would — "someone's `poll` runs here" — and
//! is exactly what the lock-order and taint propagation need: missing
//! an edge hides a deadlock, while a spurious edge at worst asks for a
//! waiver.

use crate::parse::{parse_fns, CallSite, FnInfo};
use crate::{lex, Token};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// One lexed source file.
pub struct SourceFile {
    /// Workspace-relative path (`crates/remos-serve/src/breaker.rs`).
    pub rel: PathBuf,
    /// Full token stream.
    pub toks: Vec<Token>,
}

/// One function plus the index of the file that holds its tokens.
pub struct FnRec {
    pub info: FnInfo,
    /// Index into [`Workspace::files`].
    pub file: usize,
}

/// Everything the flow analyses need about the workspace.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnRec>,
    /// Bare function name → indices into `fns`.
    by_name: HashMap<String, Vec<usize>>,
}

impl Workspace {
    /// Build from `(relative path, source text)` pairs.
    pub fn from_sources(sources: Vec<(PathBuf, String)>) -> Self {
        let mut files = Vec::with_capacity(sources.len());
        let mut fns: Vec<FnRec> = Vec::new();
        for (rel, text) in sources {
            let toks = lex(&text);
            let file = files.len();
            for info in parse_fns(&rel, &toks) {
                fns.push(FnRec { info, file });
            }
            files.push(SourceFile { rel, toks });
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.info.name.clone()).or_default().push(i);
        }
        Workspace { files, fns, by_name }
    }

    /// Token stream backing function `i`.
    pub fn toks(&self, i: usize) -> &[Token] {
        &self.files[self.fns[i].file].toks
    }

    /// Crate a path belongs to (`remos-serve` for
    /// `crates/remos-serve/src/...`), or `""`.
    pub fn crate_of(rel: &Path) -> &str {
        let mut comps = rel.components();
        for c in comps.by_ref() {
            if c.as_os_str() == "crates" {
                return comps
                    .next()
                    .and_then(|c| c.as_os_str().to_str())
                    .unwrap_or("");
            }
        }
        ""
    }

    /// All candidate callees for `call` made from function `caller`.
    ///
    /// Narrowing, in order:
    /// 1. `Type::name(…)` keeps only functions in an `impl Type` (when
    ///    any exist — `Vec::new` has none, and resolves to nothing).
    /// 2. `self.name(…)` prefers the caller's own impl type.
    /// 3. Otherwise all same-named functions, preferring the caller's
    ///    crate when it defines any.
    ///
    /// Trait-method calls through a field (`self.inner.poll()`) keep
    /// every impl of `poll` — that is the over-approximation we want.
    pub fn resolve(&self, call: &CallSite, caller: &FnInfo) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        if let Some(q) = &call.qual {
            // Qualified path: either a known impl type, or a foreign
            // type (Vec::new) that resolves to nothing rather than to
            // every same-named local fn.
            return cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].info.impl_type.as_deref() == Some(q.as_str()))
                .collect();
        }
        if call.recv.first().map(String::as_str) == Some("self") && call.recv.len() == 1 {
            if let Some(ty) = &caller.impl_type {
                let own: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].info.impl_type.as_deref() == Some(ty.as_str()))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        // Free calls: all candidates, narrowed to the caller's crate
        // when that crate defines the name (a free helper like `lock`
        // or `digest` is almost always local). Method calls through a
        // field or expression keep the full candidate set.
        if !call.method && call.recv.is_empty() {
            let krate = Self::crate_of(&caller.file);
            if !krate.is_empty() {
                let local: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| Self::crate_of(&self.fns[i].info.file) == krate)
                    .collect();
                if !local.is_empty() {
                    return local;
                }
            }
        }
        cands.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::calls_in;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| (PathBuf::from(p), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn qualified_calls_resolve_to_the_named_impl() {
        let w = ws(&[
            (
                "crates/remos-net/src/a.rs",
                "impl Solver { pub fn solve(&self) {} }
                 impl Other { pub fn solve(&self) {} }
                 fn go(s: &Solver) { Solver::solve(s); Vec::new(); }",
            ),
        ]);
        let go = w.fns.iter().position(|f| f.info.name == "go").unwrap();
        let calls = calls_in(w.toks(go), w.fns[go].info.body);
        let solved = w.resolve(&calls[0], &w.fns[go].info);
        assert_eq!(solved.len(), 1);
        assert_eq!(w.fns[solved[0]].info.qname(), "Solver::solve");
        // Vec::new: foreign qualifier, resolves to nothing.
        let vec_new = w.resolve(&calls[1], &w.fns[go].info);
        assert!(vec_new.is_empty());
    }

    #[test]
    fn self_calls_prefer_own_impl_and_field_calls_fan_out() {
        let w = ws(&[(
            "crates/remos-serve/src/b.rs",
            "impl A { fn step(&self) {} fn run(&self) { self.step(); self.inner.step(); } }
             impl B { fn step(&self) {} }",
        )]);
        let run = w.fns.iter().position(|f| f.info.name == "run").unwrap();
        let calls = calls_in(w.toks(run), w.fns[run].info.body);
        let own = w.resolve(&calls[0], &w.fns[run].info);
        assert_eq!(own.len(), 1);
        assert_eq!(w.fns[own[0]].info.qname(), "A::step");
        let fanned = w.resolve(&calls[1], &w.fns[run].info);
        assert_eq!(fanned.len(), 2);
    }

    #[test]
    fn free_calls_prefer_the_callers_crate() {
        let w = ws(&[
            ("crates/remos-obs/src/l.rs", "pub fn lock() {} pub fn use_it() { lock(); }"),
            ("crates/remos-core/src/l.rs", "pub fn lock() {}"),
        ]);
        let u = w.fns.iter().position(|f| f.info.name == "use_it").unwrap();
        let calls = calls_in(w.toks(u), w.fns[u].info.body);
        let got = w.resolve(&calls[0], &w.fns[u].info);
        assert_eq!(got.len(), 1);
        assert_eq!(Workspace::crate_of(&w.fns[got[0]].info.file), "remos-obs");
    }
}
